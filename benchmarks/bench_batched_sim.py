"""Batched vs scalar probe-kernel throughput (records/second).

Times the same trace through both tiers of ``repro.core.kernel`` --
the columnar batched path and the event-at-a-time scalar reference --
and writes ``BENCH_batched_sim.json`` with the measured records/sec of
each plus the speedup.  CI's perf-smoke job runs this as a script and
fails the build if the batched path is not faster than scalar (exit
code 1); the columnar-pipeline acceptance target is a 3x speedup.

Also runnable under pytest-benchmark alongside the other benchmarks
(``make bench``), where the parity of the two tiers' statistics is
asserted as well.
"""

import json
import sys
import time
from pathlib import Path

from repro.core.bank import MemoTableBank
from repro.core.operations import Operation
from repro.experiments.common import record_mm_trace
from repro.simulator.shade import ShadeSimulator

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _config import BENCH_SCALE  # noqa: E402

#: Where the perf-smoke numbers land (repo root, next to CHANGES.md).
REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_batched_sim.json"

#: Minimum events for a stable records/sec figure.
MIN_EVENTS = 200_000


def _bench_trace():
    """A realistic MM trace, tiled up to ``MIN_EVENTS`` events.

    Returned as a column-backed :class:`Trace` -- the form the corpus
    store hands to the simulators -- so the batched tier actually takes
    the columnar path while the scalar tier walks the same events."""
    from repro.isa.columns import ColumnBatch
    from repro.isa.trace import Trace

    base = record_mm_trace(
        "vgauss", "Muppet1", scale=BENCH_SCALE, cache=False
    ).columns()
    tiled = ColumnBatch()
    while len(tiled) < MIN_EVENTS:
        tiled.extend_batch(base)
    trace = Trace(columns=tiled)
    trace.events  # materialize both views before anything is timed
    return trace


def _throughput(events, scalar):
    bank = MemoTableBank.paper_baseline(
        operations=tuple(Operation), latencies=None
    )
    simulator = ShadeSimulator(bank=bank, scalar=scalar)
    started = time.perf_counter()
    report = simulator.run(events)
    elapsed = time.perf_counter() - started
    return report.instructions / elapsed, bank


def measure(events=None):
    """Measure both tiers; returns the result dict written to JSON."""
    if events is None:
        events = _bench_trace()
    # Warm caches/allocator with a short slice before timing.
    from repro.isa.trace import Trace

    warm = Trace(events.events[:2000])
    _throughput(warm, scalar=False)
    _throughput(warm, scalar=True)
    scalar_rps, _ = _throughput(events, scalar=True)
    batched_rps, _ = _throughput(events, scalar=False)
    return {
        "events": len(events),
        "records_per_sec_scalar": round(scalar_rps, 1),
        "records_per_sec_batched": round(batched_rps, 1),
        "speedup": round(batched_rps / scalar_rps, 3),
        "target_speedup": 3.0,
    }


def test_batched_faster_than_scalar(benchmark):
    """pytest-benchmark entry: batched throughput, parity asserted."""
    events = _bench_trace()
    result = benchmark.pedantic(
        lambda: measure(events), rounds=1, iterations=1
    )
    benchmark.extra_info.update(result)
    assert result["speedup"] > 1.0, (
        f"batched tier slower than scalar: {result}"
    )


def main():
    result = measure()
    REPORT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    if result["speedup"] <= 1.0:
        print("FAIL: batched tier is not faster than the scalar reference",
              file=sys.stderr)
        return 1
    print(
        f"batched/scalar speedup {result['speedup']}x "
        f"(target {result['target_speedup']}x) -> {REPORT_PATH.name}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
