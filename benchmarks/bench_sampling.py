"""Phase-aware sampling accuracy gate (2% absolute at >10x less work).

For every bundled ISA program this benchmark simulates the full trace
once (the reference), then estimates the same per-unit hit ratios from
phase-representative intervals only
(:func:`repro.simulator.sampling.estimate_phases`), and writes
``BENCH_sampling.json`` with each program's worst absolute per-unit
error and achieved work reduction.  CI's sampling-accuracy job runs
this as a script and fails the build (exit 1) unless **every** program
lands within ``ERROR_GATE`` absolute hit ratio of the full run while
touching at least ``WORK_REDUCTION_GATE`` times fewer events
(backend-simulated windows plus oracle replay -- the honest
denominator; the vectorized fingerprinting pass is trace preprocessing,
not per-event simulation).

Everything is seeded, so the gate is deterministic: same trace, same
plan, same estimate.

Also runnable under pytest-benchmark alongside the other benchmarks
(``make bench-sampling``).
"""

import json
import sys
from pathlib import Path

from repro.analysis.static.memo import PROGRAMS, reference_machine
from repro.core import backend as execution
from repro.core.bank import MemoTableBank
from repro.simulator.sampling import PhasePlan, estimate_phases

#: Where the accuracy numbers land (repo root, next to CHANGES.md).
REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_sampling.json"

#: Workload size: big enough that every program's trace dwarfs the
#: sampled windows (sampling is for long traces by construction).
WORKLOAD_N = 65536

#: Absolute per-unit hit-ratio error ceiling, per program.
ERROR_GATE = 0.02

#: Floor on full-trace events over touched (simulated + oracle) events.
WORK_REDUCTION_GATE = 10.0

#: The locked estimation plan the gate certifies (seeded, deterministic).
PLAN = PhasePlan(phases=16, interval=250, warmup=500, samples_per_phase=4)


def _full_ratios(events):
    """Reference per-unit hit ratios from one full-trace simulation."""
    bank = MemoTableBank.paper_baseline()
    execution.dispatch(events, bank.units)
    ratios = {}
    for op, unit in bank.units.items():
        eligible = unit.stats.table.lookups + unit.stats.trivial_hits
        if eligible:
            ratios[op] = unit.stats.hit_ratio
    return ratios


def _one_program(name):
    machine = reference_machine(name, WORKLOAD_N)
    machine.run(max_steps=8_000_000)
    events = machine.trace
    full = _full_ratios(events)
    estimate = estimate_phases(events, plan=PLAN)
    errors = {
        op.name: abs(estimate.hit_ratios[op] - ratio)
        for op, ratio in full.items()
    }
    worst = max(errors.values()) if errors else 0.0
    return {
        "events": estimate.events_total,
        "events_simulated": estimate.events_simulated,
        "oracle_events": estimate.oracle_events,
        "phases": estimate.phases,
        "windows": len(estimate.representatives),
        "work_reduction": round(estimate.work_reduction, 2),
        "max_warmup_error_bound": round(
            estimate.max_warmup_error_bound, 4
        ),
        "abs_errors": {op: round(err, 5) for op, err in sorted(errors.items())},
        "worst_abs_error": round(worst, 5),
        "ok": worst <= ERROR_GATE
        and estimate.work_reduction > WORK_REDUCTION_GATE,
    }


def measure():
    """Gate every bundled program; returns the JSON result dict."""
    programs = {name: _one_program(name) for name in sorted(PROGRAMS)}
    return {
        "n": WORKLOAD_N,
        "plan": {
            "phases": PLAN.phases,
            "interval": PLAN.interval,
            "warmup": PLAN.warmup,
            "seed": PLAN.seed,
            "samples_per_phase": PLAN.samples_per_phase,
        },
        "error_gate": ERROR_GATE,
        "work_reduction_gate": WORK_REDUCTION_GATE,
        "programs": programs,
        "ok": all(entry["ok"] for entry in programs.values()),
    }


def test_sampling_accuracy_gate(benchmark):
    """pytest-benchmark entry: 2%-at->10x on every bundled program."""
    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info.update(result)
    failing = {
        name: entry
        for name, entry in result["programs"].items()
        if not entry["ok"]
    }
    assert not failing, f"sampling accuracy gate failed: {failing}"


def main():
    result = measure()
    REPORT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    if not result["ok"]:
        failing = sorted(
            name
            for name, entry in result["programs"].items()
            if not entry["ok"]
        )
        print(
            "FAIL: sampling accuracy gate missed on: " + ", ".join(failing),
            file=sys.stderr,
        )
        return 1
    worst = max(
        entry["worst_abs_error"] for entry in result["programs"].values()
    )
    lowest = min(
        entry["work_reduction"] for entry in result["programs"].values()
    )
    print(
        f"all {len(result['programs'])} programs within {ERROR_GATE:.0%} "
        f"(worst {worst:.4f}) at >{WORK_REDUCTION_GATE:.0f}x less work "
        f"(lowest {lowest:.1f}x) -> {REPORT_PATH.name}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
