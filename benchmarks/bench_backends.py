"""Per-backend probe-kernel throughput (records/second).

Times the same column-backed MM trace through every registered
execution backend (``repro.core.backend``) and writes
``BENCH_kernel_backends.json`` with each backend's records/sec plus
every backend's speedup over the ``batched`` baseline.  CI's
perf-smoke job runs this as a script and fails the build (exit 1) if
the ``fused`` backend is slower than ``batched`` -- the whole point of
fused is that the LUT precompute amortizes, so a regression here means
the dedup machinery stopped paying for itself.

Best-of-N timing: each backend runs ``ROUNDS`` times on a fresh bank
and the fastest round counts, which filters allocator/GC noise the
same way the sim benchmarks do.

Also runnable under pytest-benchmark alongside the other benchmarks
(``make bench``).
"""

import json
import sys
import time
from pathlib import Path

from repro.core import backend as execution
from repro.core.bank import MemoTableBank
from repro.core.operations import Operation
from repro.experiments.common import record_mm_trace

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _config import BENCH_SCALE  # noqa: E402

#: Where the perf-smoke numbers land (repo root, next to CHANGES.md).
REPORT_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_kernel_backends.json"
)

#: Minimum events for a stable records/sec figure.
MIN_EVENTS = 200_000

#: Timed rounds per backend (best one counts).
ROUNDS = 3

#: The baseline every backend is compared against, and the one backend
#: that must not out-run ``fused``.
BASELINE = "batched"


def _bench_trace():
    """A realistic MM trace, tiled up to ``MIN_EVENTS`` events.

    Column-backed, exactly as the corpus store hands traces to the
    simulators, so the columnar backends take their fast path while the
    scalar reference walks the same events."""
    from repro.isa.columns import ColumnBatch
    from repro.isa.trace import Trace

    base = record_mm_trace(
        "vgauss", "Muppet1", scale=BENCH_SCALE, cache=False
    ).columns()
    tiled = ColumnBatch()
    while len(tiled) < MIN_EVENTS:
        tiled.extend_batch(base)
    trace = Trace(columns=tiled)
    trace.events  # materialize both views before anything is timed
    return trace


def _one_round(events, backend):
    bank = MemoTableBank.paper_baseline(
        operations=tuple(Operation), latencies=None
    )
    started = time.perf_counter()
    report = execution.dispatch(events, bank.units, backend=backend)
    elapsed = time.perf_counter() - started
    return report.instructions / elapsed


def _throughput(events, backend, rounds=ROUNDS):
    return max(_one_round(events, backend) for _ in range(rounds))


def measure(events=None):
    """Measure every registered backend; returns the JSON result dict."""
    if events is None:
        events = _bench_trace()
    from repro.isa.trace import Trace

    warm = Trace(events.events[:2000])
    for name in execution.names():
        _one_round(warm, name)
    # The scalar reference is ~5x slower; one round on the full trace
    # is plenty for a stable baseline-ratio denominator.
    rates = {}
    for name in execution.names():
        rounds = 1 if name == "scalar" else ROUNDS
        rates[name] = _throughput(events, name, rounds=rounds)
    baseline = rates[BASELINE]
    return {
        "events": len(events),
        "backends": {
            name: {
                "records_per_sec": round(rate, 1),
                "speedup_vs_batched": round(rate / baseline, 3),
            }
            for name, rate in rates.items()
        },
        "fused_vs_batched": round(rates["fused"] / baseline, 3),
        "target": 1.0,
    }


def test_fused_not_slower_than_batched(benchmark):
    """pytest-benchmark entry: per-backend throughput, fused >= batched."""
    events = _bench_trace()
    result = benchmark.pedantic(
        lambda: measure(events), rounds=1, iterations=1
    )
    benchmark.extra_info.update(result)
    assert result["fused_vs_batched"] >= 1.0, (
        f"fused backend slower than batched: {result}"
    )


def main():
    result = measure()
    REPORT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    if result["fused_vs_batched"] < result["target"]:
        print(
            "FAIL: fused backend is slower than the batched baseline",
            file=sys.stderr,
        )
        return 1
    print(
        f"fused/batched speedup {result['fused_vs_batched']}x "
        f"(floor {result['target']}x) -> {REPORT_PATH.name}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
