"""Table 6: SPEC CFP95 hit ratios, 32/4 vs infinite MEMO-TABLES."""

from _config import run_once

from repro.experiments import table6


def test_table6_speccfp(benchmark):
    result = run_once(benchmark, lambda: table6.run(scale=0.8))
    print()
    print(result.render())
    imul32, fmul32, fdiv32, imul_inf, fmul_inf, fdiv_inf = result.extras["averages"]
    benchmark.extra_info["fmul_32_avg"] = fmul32
    benchmark.extra_info["fdiv_32_avg"] = fdiv32
    # Paper shape (.20/.17 at 32 entries, .52/.59 infinite): low small-
    # table ratios, large total reuse, hydro2d the high outlier.
    assert fmul32 < 0.45
    assert fmul_inf > fmul32
    hydro = result.extras["ratios"]["hydro2d"]
    assert hydro[1] is not None and hydro[1] > 0.3  # fmul.32 outlier
