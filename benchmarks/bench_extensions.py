"""Benchmarks for the extension experiments (beyond-the-paper studies)."""

from _config import run_once

from repro.experiments import ext_dual_issue, ext_future_ops, ext_reuse_buffer


def test_ext_dual_issue(benchmark):
    result = run_once(
        benchmark,
        lambda: ext_dual_issue.run(scale=0.1, images=("Muppet1", "fractal")),
    )
    print()
    print(result.render())
    benchmark.extra_info["avg_second_slot"] = result.extras["average_second_slot"]
    benchmark.extra_info["avg_speedup"] = result.extras["average_speedup"]
    # A table port can only add issue bandwidth, never cost it.
    assert result.extras["average_speedup"] >= 1.0
    for app, values in result.extras["per_app"].items():
        assert values["speedup"] >= 1.0, app


def test_ext_future_ops(benchmark):
    result = run_once(benchmark, lambda: ext_future_ops.run(scale=0.1))
    print()
    print(result.render())
    per = result.extras["per_workload"]
    benchmark.extra_info["fractal_log_hits"] = per["log_compress(fractal)"][
        "ratios"
    ]["flog"]
    # Section 4's premise: the same value locality extends to the
    # long-latency transcendental units.
    assert per["log_compress(fractal)"]["ratios"]["flog"] > 0.5
    assert per["texture_rotation(fractal)"]["ratios"]["fsin"] > 0.5
    # And the entropy gradient carries over.
    assert (
        per["log_compress(fractal)"]["ratios"]["flog"]
        > per["log_compress(Muppet1)"]["ratios"]["flog"]
    )


def test_ext_reuse_buffer(benchmark):
    result = run_once(benchmark, lambda: ext_reuse_buffer.run(scale=0.1))
    print()
    print(result.render())
    benchmark.extra_info["mean_memo_minus_rb"] = result.extras[
        "mean_memo_minus_rb"
    ]
    # 32-entry value-keyed tables at least match a 32x larger unified
    # PC-keyed buffer on the multi-cycle classes.
    assert result.extras["mean_memo_minus_rb"] >= -0.05
