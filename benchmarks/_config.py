"""Shared settings for the benchmark harness.

Every benchmark regenerates one table/figure of the paper at a reduced
scale (the ``repro`` CLI runs the same drivers at any scale).  Key
reproduced numbers are attached to ``benchmark.extra_info`` so they
appear in pytest-benchmark's report next to the timings.
"""

#: Image scale for benchmark runs (paper-size images are scale 1.0).
BENCH_SCALE = 0.1

#: Input images: one high-, one mid-, one low-entropy (spans Table 8).
BENCH_IMAGES = ("Muppet1", "chroms", "fractal")


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
