"""Ablation: the commutative double-compare of section 2.2.

Multiplication tables compare operands in both orders; this measures
how many hits that second comparator actually contributes.
"""

from _config import BENCH_SCALE, run_once

from repro.analysis.tables import format_ratio, format_table
from repro.core.bank import MemoTableBank
from repro.core.config import MemoTableConfig
from repro.core.memo_table import MemoTable
from repro.core.operations import Operation
from repro.core.unit import MemoizedUnit
from repro.experiments.common import record_mm_trace
from repro.isa.opcodes import Opcode

APPS = ("vdiff", "vgef", "vwarp")
IMAGES = ("Muppet1", "chroms")


def _fmul_hit_ratio(trace, commutative: bool) -> tuple:
    table = MemoTable(MemoTableConfig(commutative=commutative))
    unit = MemoizedUnit(Operation.FP_MUL, table=table)
    for event in trace:
        if event.opcode is Opcode.FMUL:
            unit.execute(event.a, event.b)
    return unit.hit_ratio, table.stats.commutative_hits


def test_commutative_compare_ablation(benchmark):
    def sweep():
        rows = []
        for app in APPS:
            for image in IMAGES:
                trace = record_mm_trace(app, image, scale=BENCH_SCALE)
                with_cc, reversed_hits = _fmul_hit_ratio(trace, True)
                without_cc, _ = _fmul_hit_ratio(trace, False)
                rows.append((app, image, with_cc, without_cc, reversed_hits))
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(
        format_table(
            ["app", "input", "both orders", "one order", "reversed hits"],
            [
                [app, image, format_ratio(w), format_ratio(wo), rev]
                for app, image, w, wo, rev in rows
            ],
            title="Ablation: commutative double-compare (fmul, 32/4)",
        )
    )
    total_gain = sum(w - wo for _, _, w, wo, _ in rows)
    benchmark.extra_info["mean_gain"] = total_gain / len(rows)
    # Checking both orders can only help.
    for app, image, with_cc, without_cc, _ in rows:
        assert with_cc >= without_cc - 1e-9, (app, image)
