"""Trace corpus: cold-record vs warm-replay cost for an MM kernel set.

Recording dominates experiment runtime; the corpus amortises it to one
run.  This benchmark times the same trace set three ways — cold
(record + archive), warm (replay from the on-disk store) and hot
(in-process LRU) — and asserts the replayed traces are identical to
the recorded ones.
"""

import tempfile

from _config import BENCH_IMAGES, BENCH_SCALE, run_once

from repro.corpus.store import TraceCorpus, TraceKey
from repro.experiments.common import record_mm_trace

KERNELS = ("vgauss", "vdiff", "vsqrt")


def _record_all(corpus):
    return [
        corpus.get_or_record(
            TraceKey("mm", kernel, image, BENCH_SCALE),
            lambda kernel=kernel, image=image: record_mm_trace(
                kernel, image, scale=BENCH_SCALE, cache=False
            ),
        )
        for kernel in KERNELS
        for image in BENCH_IMAGES
    ]


def test_corpus_cold_record(benchmark):
    with tempfile.TemporaryDirectory() as root:
        corpus = TraceCorpus(root)
        traces = run_once(benchmark, lambda: _record_all(corpus))
        benchmark.extra_info["traces"] = len(traces)
        benchmark.extra_info["events"] = sum(len(t) for t in traces)
        benchmark.extra_info["store_bytes"] = corpus.total_bytes()
        assert corpus.stats.recorded == len(traces)


def test_corpus_warm_replay(benchmark):
    with tempfile.TemporaryDirectory() as root:
        cold = _record_all(TraceCorpus(root))
        corpus = TraceCorpus(root)  # fresh handle: empty memory tier
        warm = run_once(benchmark, lambda: _record_all(corpus))
        benchmark.extra_info["traces"] = len(warm)
        benchmark.extra_info["disk_hits"] = corpus.stats.disk_hits
        # Every trace came from disk, none was re-recorded, and the
        # replayed events are exactly what was archived.
        assert corpus.stats.recorded == 0
        assert corpus.stats.disk_hits == len(warm)
        assert [t.events for t in warm] == [t.events for t in cold]


def test_corpus_hot_memory_tier(benchmark):
    with tempfile.TemporaryDirectory() as root:
        corpus = TraceCorpus(root)
        first = _record_all(corpus)
        hot = run_once(benchmark, lambda: _record_all(corpus))
        assert corpus.stats.recorded == len(first)
        assert corpus.stats.memory_hits >= len(hot)
        assert [t is f for t, f in zip(hot, first)] == [True] * len(first)
