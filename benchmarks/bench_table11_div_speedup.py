"""Table 11: application speedup with fp division memoized (13/39 cycles)."""

from _config import BENCH_IMAGES, BENCH_SCALE, run_once

from repro.experiments import table11


def test_table11_division_speedup(benchmark):
    result = run_once(
        benchmark,
        lambda: table11.run(scale=BENCH_SCALE, images=BENCH_IMAGES),
    )
    print()
    print(result.render())
    fast = result.extras["averages"]["fast-fp"]
    slow = result.extras["averages"]["slow-fp"]
    benchmark.extra_info["avg_speedup_13cyc"] = fast["speedup"]
    benchmark.extra_info["avg_speedup_39cyc"] = slow["speedup"]
    # Paper: 5% (13-cycle) to 15% (39-cycle) average speedup; the shape
    # that must hold is positive gains that grow with divider latency.
    assert fast["speedup"] > 1.0
    assert slow["speedup"] > fast["speedup"]
    for app, (fast_row, slow_row) in result.extras["rows"].items():
        assert slow_row.speedup >= fast_row.speedup - 1e-9, app
