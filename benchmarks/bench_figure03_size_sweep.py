"""Figure 3: hit ratio vs MEMO-TABLE size (8 to 8192 entries, 4-way)."""

from _config import run_once

from repro.experiments import figure3


def test_figure3_size_sweep(benchmark):
    result = run_once(benchmark, lambda: figure3.run(scale=0.1))
    print()
    print(result.render())
    series = result.extras["series"]
    sizes = sorted(series)
    fmul_curve = [series[s]["fmul"][0] for s in sizes]
    fdiv_curve = [series[s]["fdiv"][0] for s in sizes]
    benchmark.extra_info["fmul_at_32"] = series[32]["fmul"][0]
    benchmark.extra_info["fmul_at_8192"] = series[8192]["fmul"][0]
    # Paper shape: hit ratio grows with size and the curve flattens out
    # (most of the gain arrives by ~1024 entries).
    for earlier, later in zip(fmul_curve, fmul_curve[1:]):
        assert later >= earlier - 1e-9
    for earlier, later in zip(fdiv_curve, fdiv_curve[1:]):
        assert later >= earlier - 1e-9
    early_gain = series[1024]["fmul"][0] - series[8]["fmul"][0]
    late_gain = series[8192]["fmul"][0] - series[1024]["fmul"][0]
    assert late_gain <= early_gain + 1e-9  # flattening
