"""Table 1: processor multiply/divide latencies (static data)."""

from _config import run_once

from repro.experiments import table1


def test_table1_latencies(benchmark):
    result = run_once(benchmark, table1.run)
    print()
    print(result.render())
    ratios = result.extras["div_to_mul_ratio"]
    benchmark.extra_info["max_div_mul_ratio"] = max(ratios.values())
    # The motivation for memoing division: it is many times slower than
    # multiplication on every listed processor.
    assert min(ratios.values()) > 4
