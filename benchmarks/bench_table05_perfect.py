"""Table 5: Perfect-suite hit ratios, 32/4 vs infinite MEMO-TABLES."""

from _config import run_once

from repro.experiments import table5


def test_table5_perfect(benchmark):
    result = run_once(benchmark, lambda: table5.run(scale=0.8))
    print()
    print(result.render())
    imul32, fmul32, fdiv32, imul_inf, fmul_inf, fdiv_inf = result.extras["averages"]
    benchmark.extra_info["fmul_32_avg"] = fmul32
    benchmark.extra_info["fmul_inf_avg"] = fmul_inf
    # Paper shape: small-table fp ratios are poor on scientific codes
    # (.11/.16 in the paper), with much larger total reuse.
    assert fmul32 < 0.35
    assert fdiv32 < 0.35
    assert fmul_inf >= fmul32
    assert fdiv_inf >= fdiv32
