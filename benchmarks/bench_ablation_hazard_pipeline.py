"""Ablation: hazard-aware pipeline (the dynamics behind sections 2.2-2.3).

The headline tables use the paper's simple total-cycle model.  This
bench re-evaluates memoing on an in-order pipeline with RAW and
structural hazards: a non-pipelined divider serializes dependent work,
and MEMO-TABLE hits release it -- so the hazard model should credit
memoing *at least* as much as the simple model on divide-bound kernels,
and wider issue should raise IPC further.
"""

from _config import BENCH_SCALE, run_once

from repro.analysis.tables import format_table
from repro.arch.latency import SLOW_DESIGN
from repro.core.operations import Operation
from repro.experiments.common import record_mm_trace
from repro.simulator.hazard import hazard_speedup

APPS = ("vsqrt", "vgauss", "vkmeans")
IMAGE = "chroms"


def test_hazard_pipeline_ablation(benchmark):
    def sweep():
        rows = []
        for app in APPS:
            trace = record_mm_trace(app, IMAGE, scale=BENCH_SCALE)
            scalar = hazard_speedup(
                SLOW_DESIGN, trace,
                memoized=(Operation.FP_MUL, Operation.FP_DIV),
                issue_width=1,
            )
            dual = hazard_speedup(
                SLOW_DESIGN, trace,
                memoized=(Operation.FP_MUL, Operation.FP_DIV),
                issue_width=2,
            )
            rows.append((app, scalar, dual))
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(
        format_table(
            ["app", "1-wide speedup", "1-wide IPC", "2-wide speedup", "2-wide IPC"],
            [
                [app, f"{s['speedup']:.2f}", f"{s['memo_ipc']:.2f}",
                 f"{d['speedup']:.2f}", f"{d['memo_ipc']:.2f}"]
                for app, s, d in rows
            ],
            title="Ablation: memoing under a hazard-aware pipeline (5/39 machine)",
        )
    )
    for app, scalar, dual in rows:
        benchmark.extra_info[f"{app}_speedup_1w"] = scalar["speedup"]
        assert scalar["speedup"] >= 1.0, app
        assert dual["speedup"] >= 1.0, app
        # Memoing must never lower achieved IPC.
        assert dual["memo_ipc"] >= dual["baseline_ipc"] - 1e-9, app
