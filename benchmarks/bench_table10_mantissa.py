"""Table 10: mantissa-only vs full floating point tags."""

from _config import BENCH_IMAGES, BENCH_SCALE, run_once

from repro.experiments import table10


def test_table10_mantissa_tags(benchmark):
    result = run_once(
        benchmark,
        lambda: table10.run(scale=BENCH_SCALE, images=BENCH_IMAGES),
    )
    print()
    print(result.render())
    for suite, values in result.extras["averages"].items():
        fmul_full, fmul_mant, fdiv_full, fdiv_mant = values
        if fmul_full is not None:
            benchmark.extra_info[f"{suite}_fmul_gain"] = fmul_mant - fmul_full
            # Paper: mantissa-only tags raise hit ratios, "albeit not by
            # much" -- never lower them.
            assert fmul_mant >= fmul_full - 1e-9, suite
        if fdiv_full is not None:
            assert fdiv_mant >= fdiv_full - 1e-9, suite
