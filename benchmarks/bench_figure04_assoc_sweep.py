"""Figure 4: hit ratio vs associativity (32-entry table, 1 to 8 ways)."""

from _config import run_once

from repro.experiments import figure4


def test_figure4_associativity_sweep(benchmark):
    result = run_once(benchmark, lambda: figure4.run(scale=0.1))
    print()
    print(result.render())
    series = result.extras["series"]
    benchmark.extra_info["fdiv_direct_mapped"] = series[1]["fdiv"][0]
    benchmark.extra_info["fdiv_4way"] = series[4]["fdiv"][0]
    # Paper: conflict misses hurt the direct-mapped table; a set size of
    # 2 avoids the alternating-conflict pathology, and beyond 4 ways
    # there is little left to gain.
    assert series[2]["fdiv"][0] >= series[1]["fdiv"][0] - 0.02
    assert series[4]["fmul"][0] >= series[1]["fmul"][0] - 0.02
    gain_2_to_4 = series[4]["fdiv"][0] - series[2]["fdiv"][0]
    gain_4_to_8 = series[8]["fdiv"][0] - series[4]["fdiv"][0]
    assert gain_4_to_8 <= gain_2_to_4 + 0.05
