"""Service load test: >= 1000 jobs through the queue + worker pool.

Starts a real ``repro serve`` subprocess (ephemeral port, temp queue),
submits ``JOB_COUNT`` cheap bundled-program jobs over HTTP, polls to
completion and writes ``BENCH_serve.json`` with sustained jobs/second
plus p50/p99 end-to-end latency (submission to completion, derived from
each durable record's ``queue_latency + wall``).

Jobs vary ``n`` so every spec hashes to a distinct id (no dedup), and
each executes in milliseconds -- the benchmark measures the *service*
(queue claim/lease/complete churn and HTTP round-trips), not the
simulator.  Runnable as a plain script (CI's serve-smoke job) or under
pytest-benchmark with the rest of ``make bench``.
"""

import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve.client import ServeClient, ServeError  # noqa: E402
from repro.serve.server import endpoint_for  # noqa: E402

#: Where the load-test numbers land (repo root, next to CHANGES.md).
REPORT_PATH = REPO_ROOT / "BENCH_serve.json"

#: Queued jobs per run (the ISSUE's load-test floor).
JOB_COUNT = 1000

#: Bundled programs cycled across the job stream.
PROGRAMS = ("saxpy", "dot_product", "gamma_lut", "sobel_gx")

#: Worker processes draining the queue.
WORKERS = 4


def _spec(index: int) -> dict:
    # Every index yields a distinct (program, n, mantissa, ways) tuple
    # => distinct content hash => no dedup -- while n stays small, so
    # each job remains a milliseconds-cheap unit of service churn.
    return {
        "type": "program",
        "program": PROGRAMS[index % len(PROGRAMS)],
        "n": 8 + (index // len(PROGRAMS)) % 64,
        "mantissa": bool((index // 256) % 2),
        "ways": (2, 4)[(index // 512) % 2],
    }


def _percentile(values, fraction: float) -> float:
    ordered = sorted(values)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _start_server(queue_dir: str) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--queue-dir", queue_dir, "--port", "0",
            "--workers", str(WORKERS),
            "--lease-ttl", "30", "--reap-interval", "1.0",
        ],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        cwd=str(REPO_ROOT), env=dict(
            __import__("os").environ, PYTHONPATH=str(REPO_ROOT / "src")
        ),
    )


def _wait_client(queue_dir: str, timeout: float = 30.0) -> ServeClient:
    deadline = time.monotonic() + timeout
    while True:
        endpoint = endpoint_for(queue_dir)
        if endpoint:
            client = ServeClient(
                f"http://{endpoint['host']}:{endpoint['port']}", timeout=60.0
            )
            try:
                client.healthz()
                return client
            except ServeError:
                pass
        if time.monotonic() > deadline:
            raise SystemExit("bench_serve: server did not come up")
        time.sleep(0.1)


def run_load_test(job_count: int = JOB_COUNT) -> dict:
    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as tmp:
        queue_dir = str(Path(tmp) / "queue")
        proc = _start_server(queue_dir)
        try:
            client = _wait_client(queue_dir)
            started = time.perf_counter()
            ids = []
            for index in range(job_count):
                ids.append(client.submit(_spec(index))["id"])
            submitted = time.perf_counter() - started

            pending = set(ids)
            deadline = time.monotonic() + 1800.0
            while pending:
                if time.monotonic() > deadline:
                    raise SystemExit(
                        f"bench_serve: {len(pending)} jobs unfinished"
                    )
                for row in client.jobs(state="done"):
                    pending.discard(row["id"])
                for row in client.jobs(state="failed"):
                    if row["id"] in pending:
                        raise SystemExit(
                            f"bench_serve: job failed: {row['error']}"
                        )
                if pending:
                    time.sleep(0.2)
            elapsed = time.perf_counter() - started

            latencies = []
            wall = cpu = 0.0
            for job_id in ids:
                record = client.job(job_id)
                latencies.append(record["queue_latency"] + record["wall"])
                wall += record["wall"]
                cpu += record["cpu"]
            metrics = client.metrics_text()
            try:
                client.stop()
            except ServeError:
                pass
        finally:
            try:
                proc.wait(timeout=15.0)
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    proc.kill()

    for series in ("repro_serve_jobs_completed_total",
                   "repro_span_serve_job_seconds_total"):
        if series not in metrics:
            raise SystemExit(f"bench_serve: /metrics missing {series}")

    return {
        "jobs": job_count,
        "workers": WORKERS,
        "submit_seconds": round(submitted, 3),
        "elapsed_seconds": round(elapsed, 3),
        "jobs_per_sec": round(job_count / elapsed, 1),
        "latency_p50_seconds": round(_percentile(latencies, 0.50), 4),
        "latency_p99_seconds": round(_percentile(latencies, 0.99), 4),
        "worker_wall_seconds": round(wall, 3),
        "worker_cpu_seconds": round(cpu, 3),
    }


def test_serve_load(benchmark):
    """pytest-benchmark entry point (one full load-test round)."""
    report = benchmark.pedantic(run_load_test, rounds=1, iterations=1)
    benchmark.extra_info.update(report)
    assert report["jobs"] >= 1000
    assert report["jobs_per_sec"] > 0


def main() -> int:
    report = run_load_test()
    REPORT_PATH.write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )
    print(json.dumps(report, indent=2))
    print(f"wrote {REPORT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
