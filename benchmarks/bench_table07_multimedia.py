"""Table 7: Multi-Media suite hit ratios, 32/4 vs infinite MEMO-TABLES."""

from _config import BENCH_IMAGES, BENCH_SCALE, run_once

from repro.experiments import table7


def test_table7_multimedia(benchmark):
    result = run_once(
        benchmark, lambda: table7.run(scale=BENCH_SCALE, images=BENCH_IMAGES)
    )
    print()
    print(result.render())
    imul32, fmul32, fdiv32, imul_inf, fmul_inf, fdiv_inf = result.extras["averages"]
    benchmark.extra_info["fmul_32_avg"] = fmul32
    benchmark.extra_info["fdiv_32_avg"] = fdiv32
    benchmark.extra_info["fmul_inf_avg"] = fmul_inf
    benchmark.extra_info["fdiv_inf_avg"] = fdiv_inf
    # Paper: MM apps average .39 (fmul) / .47 (fdiv) at 32 entries and
    # .82/.85 with an infinite table; assert the memoizable regime.
    assert fmul32 > 0.2
    assert fdiv32 > 0.2
    assert fmul_inf > fmul32
    assert fdiv_inf > fdiv32
