"""Table 12: application speedup with fp multiplication memoized (3/5 cycles)."""

from _config import BENCH_IMAGES, BENCH_SCALE, run_once

from repro.experiments import table11, table12


def test_table12_multiplication_speedup(benchmark):
    result = run_once(
        benchmark,
        lambda: table12.run(scale=BENCH_SCALE, images=BENCH_IMAGES),
    )
    print()
    print(result.render())
    fast = result.extras["averages"]["fast-fp"]
    slow = result.extras["averages"]["slow-fp"]
    benchmark.extra_info["avg_speedup_3cyc"] = fast["speedup"]
    benchmark.extra_info["avg_speedup_5cyc"] = slow["speedup"]
    assert fast["speedup"] >= 1.0
    assert slow["speedup"] >= fast["speedup"] - 1e-9


def test_division_memoing_beats_multiplication_memoing(benchmark):
    """Paper section 3.3: long division latencies make fdiv memoing the
    bigger win, motivating sqrt/log/trig as future targets."""

    def both():
        kwargs = dict(scale=BENCH_SCALE, images=BENCH_IMAGES)
        return table11.run(**kwargs), table12.run(**kwargs)

    div_result, mul_result = run_once(benchmark, both)
    div_gain = div_result.extras["averages"]["slow-fp"]["speedup"] - 1
    mul_gain = mul_result.extras["averages"]["slow-fp"]["speedup"] - 1
    benchmark.extra_info["div_gain"] = div_gain
    benchmark.extra_info["mul_gain"] = mul_gain
    assert div_gain >= mul_gain
