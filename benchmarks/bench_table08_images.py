"""Table 8: the image catalogue -- entropies and per-image hit ratios."""

from _config import run_once

from repro.experiments import table8


def test_table8_images(benchmark):
    result = run_once(
        benchmark, lambda: table8.run(scale=0.1, kernels=("vgauss", "vslope"))
    )
    print()
    print(result.render())
    profiles = result.extras["profiles"]
    benchmark.extra_info["fractal_fdiv"] = profiles["fractal"]["ratios"][2]
    benchmark.extra_info["mandrill_fdiv"] = profiles["mandrill"]["ratios"][2]
    # Low-entropy inputs must hit more (the Table 8 gradient).
    assert (
        profiles["fractal"]["ratios"][2] > profiles["mandrill"]["ratios"][2]
    )
    # Window entropies sit below full-image entropies on byte images.
    for name, profile in profiles.items():
        full, e16, e8 = profile["entropy"]
        if full is not None:
            assert e8 <= full + 1e-9, name
