"""Table 9: trivial-operation policies (all / non-trivial / integrated)."""

from _config import BENCH_IMAGES, BENCH_SCALE, run_once

from repro.experiments import table9


def test_table9_trivial_policies(benchmark):
    result = run_once(
        benchmark,
        lambda: table9.run(
            scale=BENCH_SCALE,
            images=BENCH_IMAGES,
            apps=("vdiff", "vcost", "vgauss", "vspatial"),
        ),
    )
    print()
    print(result.render())
    averages = result.extras["averages"]
    # Columns per op: trv, all, non, intgr.  The paper's conclusion:
    # integrating the trivial detector gives the highest hit ratios.
    for op_index, op_name in enumerate(("imul", "fmul", "fdiv")):
        trv, _all, non, intgr = averages[op_index * 4 : op_index * 4 + 4]
        if non is None or intgr is None:
            continue
        benchmark.extra_info[f"{op_name}_intgr_minus_non"] = intgr - non
        assert intgr >= non - 1e-9, op_name
