"""Ablation: memoing the paper's future-work operations (sqrt, reciprocal).

Section 4 proposes extending MEMO-TABLES to sqrt, log and trigonometric
functions.  This bench builds a workload that uses a hardware fsqrt unit
and a reciprocal unit, memoizes both, and measures the same indicators.
"""

import numpy as np
from _config import run_once

from repro.analysis.amdahl import speedup_enhanced
from repro.analysis.tables import format_ratio, format_table
from repro.core.bank import MemoTableBank
from repro.core.operations import Operation
from repro.images import generate
from repro.simulator.shade import ShadeSimulator
from repro.workloads.recorder import OperationRecorder


def _normal_map_workload(recorder, image):
    """Surface normals via hardware fsqrt + reciprocal (not Newton)."""
    pixels = recorder.track(image.astype(np.float64))
    height, width = pixels.shape
    out = recorder.new_array((height, width))
    for i in recorder.loop(range(height - 1)):
        for j in recorder.loop(range(width - 1)):
            here = pixels[i, j]
            dzx = recorder.fsub(pixels[i, j + 1], here)
            dzy = recorder.fsub(pixels[i + 1, j], here)
            norm_sq = recorder.fadd(
                recorder.fadd(
                    recorder.fmul(dzx, dzx), recorder.fmul(dzy, dzy)
                ),
                1.0,
            )
            norm = recorder.fsqrt(norm_sq)
            inverse = recorder.frecip(norm)
            out[i, j] = recorder.fmul(dzx, inverse)
    return out


def test_future_operation_memoing(benchmark):
    def sweep():
        rows = []
        for name in ("Muppet1", "chroms", "fractal"):
            recorder = OperationRecorder()
            _normal_map_workload(recorder, generate(name, scale=0.12))
            bank = MemoTableBank.paper_baseline(
                operations=(Operation.FP_SQRT, Operation.FP_RECIP)
            )
            report = ShadeSimulator(bank).run(recorder.trace)
            rows.append(
                (
                    name,
                    report.hit_ratio(Operation.FP_SQRT),
                    report.hit_ratio(Operation.FP_RECIP),
                )
            )
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(
        format_table(
            ["input", "fsqrt hits", "frecip hits", "SE(sqrt@20cyc)"],
            [
                [name, format_ratio(s), format_ratio(r),
                 f"{speedup_enhanced(20, s):.2f}"]
                for name, s, r in rows
            ],
            title="Ablation: memoing sqrt and reciprocal (32/4 tables)",
        )
    )
    by_name = {name: (s, r) for name, s, r in rows}
    benchmark.extra_info["fractal_sqrt_hits"] = by_name["fractal"][0]
    # sqrt operand streams inherit the same value locality; on the
    # low-entropy input the table must capture substantial reuse.
    assert by_name["fractal"][0] > 0.5
    assert by_name["fractal"][1] > 0.5
    # Entropy ordering holds for the new operations too.
    assert by_name["fractal"][0] > by_name["Muppet1"][0]
