"""Ablation: MEMO-TABLE vs Sodani & Sohi Reuse Buffer (section 1.1).

The paper claims two advantages over PC-indexed Dynamic Instruction
Reuse: dedicated per-unit tables are not bumped by single-cycle
instructions, and value-keying survives loop unrolling.  This bench
measures both on the same recorded traces.
"""

from _config import BENCH_SCALE, run_once

from repro.analysis.tables import format_ratio, format_table
from repro.core.config import MemoTableConfig
from repro.core.memo_table import MemoTable
from repro.core.operations import Operation
from repro.core.reuse_buffer import ReuseBuffer, run_reuse_buffer
from repro.images import generate
from repro.isa.opcodes import Opcode
from repro.workloads.khoros import run_kernel
from repro.workloads.recorder import OperationRecorder

APPS = ("vgauss", "vslope")
IMAGE = "chroms"


def _memo_ratio(trace, opcode, operation):
    table = MemoTable(
        MemoTableConfig(commutative=operation.commutative)
    )
    compute = (lambda x, y: x * y) if operation.commutative else (lambda x, y: x / y)
    for event in trace:
        if event.opcode is opcode:
            table.access(event.a, event.b, compute)
    return table.stats.hit_ratio


def test_memo_table_vs_reuse_buffer(benchmark):
    def sweep():
        rows = []
        for app in APPS:
            recorder = OperationRecorder(record_sites=True)
            run_kernel(app, recorder, generate(IMAGE, scale=BENCH_SCALE))
            trace = recorder.trace
            # A unified RB with 32x the memo-table capacity, shared by
            # every instruction class.
            _, rb_report = run_reuse_buffer(
                trace, ReuseBuffer(entries=1024, associativity=4)
            )
            rows.append(
                (
                    app,
                    _memo_ratio(trace, Opcode.FMUL, Operation.FP_MUL),
                    rb_report.hit_ratio(Opcode.FMUL),
                    _memo_ratio(trace, Opcode.FDIV, Operation.FP_DIV),
                    rb_report.hit_ratio(Opcode.FDIV),
                )
            )
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(
        format_table(
            ["app", "fmul memo.32", "fmul RB.1024", "fdiv memo.32", "fdiv RB.1024"],
            [
                [app] + [format_ratio(v) for v in values]
                for app, *values in rows
            ],
            title="Ablation: 32-entry MEMO-TABLEs vs a 1024-entry Reuse Buffer",
        )
    )
    for app, fmul_memo, fmul_rb, fdiv_memo, fdiv_rb in rows:
        benchmark.extra_info[f"{app}_fdiv_memo_minus_rb"] = fdiv_memo - fdiv_rb
    # The RB's PC+operand keying can only match a value-keyed table's
    # reuse when the same site sees the same operands; across these
    # kernels the tiny dedicated tables must at least stay competitive
    # on the multi-cycle classes despite 32x less storage.
    mean_memo = sum(r[3] for r in rows) / len(rows)
    mean_rb = sum(r[4] for r in rows) / len(rows)
    assert mean_memo >= mean_rb - 0.10
