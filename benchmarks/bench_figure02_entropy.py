"""Figure 2: hit ratio vs entropy, with the LM best-fit line."""

from _config import run_once

from repro.experiments import figure2


def test_figure2_entropy_fit(benchmark):
    result = run_once(
        benchmark, lambda: figure2.run(scale=0.1, kernels=("vgauss", "vslope"))
    )
    print()
    print(result.render())
    for panel, fit in result.extras["panels"].items():
        benchmark.extra_info[f"slope_{panel.replace('/', '_')}"] = fit["slope"]
        # Paper: hit ratio falls with entropy (a ~5% drop per bit); the
        # reproduced slope must at least be negative with a real
        # correlation behind it.
        assert fit["slope"] < 0, panel
        assert fit["pearson_r"] < -0.3, panel
