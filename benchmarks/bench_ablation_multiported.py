"""Ablation: shared multi-ported table vs per-unit tables (section 2.3).

Two scenarios from the paper:

* duplicated units with private tables recompute (and double-store)
  recurring work; a shared table lets one unit reuse the other's results;
* a MEMO-TABLE port can stand in for a second divider, adding issue
  bandwidth exactly as often as the second slot hits.
"""

from _config import BENCH_SCALE, run_once

from repro.analysis.tables import format_ratio, format_table
from repro.core.config import MemoTableConfig
from repro.core.memo_table import MemoTable
from repro.core.multiported import DualIssueModel
from repro.core.operations import Operation
from repro.core.unit import MemoizedUnit
from repro.experiments.common import record_mm_trace
from repro.isa.opcodes import Opcode


def _div_operands(trace):
    return [(e.a, e.b) for e in trace if e.opcode is Opcode.FDIV]


def _private_tables(pairs):
    """Round-robin dispatch to two units with private 16-entry tables."""
    units = [
        MemoizedUnit(
            Operation.FP_DIV,
            config=MemoTableConfig(entries=16, associativity=4),
            latency=13,
        )
        for _ in range(2)
    ]
    for index, (a, b) in enumerate(pairs):
        units[index % 2].execute(a, b)
    lookups = sum(u.table.stats.lookups for u in units)
    hits = sum(u.table.stats.hits for u in units)
    return hits / lookups if lookups else 0.0


def _shared_table(pairs):
    """The same streams sharing one 32-entry dual-ported table."""
    model = DualIssueModel(
        Operation.FP_DIV,
        MemoTable(MemoTableConfig(entries=32, associativity=4)),
        latency=13,
    )
    for index in range(0, len(pairs) - 1, 2):
        a1, b1 = pairs[index]
        a2, b2 = pairs[index + 1]
        model.issue_pair(a1, b1, a2, b2)
    stats = model.shared.stats
    ratio = stats.hits / stats.lookups if stats.lookups else 0.0
    return ratio, model.second_slot_hit_ratio, model.speedup


def test_shared_vs_private_tables(benchmark):
    def sweep():
        rows = []
        for app in ("vgauss", "vkmeans", "vspatial"):
            trace = record_mm_trace(app, "chroms", scale=BENCH_SCALE)
            pairs = _div_operands(trace)
            private = _private_tables(pairs)
            shared, second_slot, dual_speedup = _shared_table(pairs)
            rows.append((app, private, shared, second_slot, dual_speedup))
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(
        format_table(
            ["app", "private 2x16", "shared 32 (2 ports)",
             "2nd-slot hits", "dual-issue speedup"],
            [
                [app, format_ratio(p), format_ratio(s),
                 format_ratio(slot), f"{speed:.2f}"]
                for app, p, s, slot, speed in rows
            ],
            title="Ablation: shared multi-ported MEMO-TABLE (fdiv)",
        )
    )
    for app, private, shared, second_slot, dual_speedup in rows:
        benchmark.extra_info[f"{app}_shared_minus_private"] = shared - private
        # A table port in place of a second divider must still beat the
        # serialized single-divider baseline.
        assert dual_speedup >= 1.0, app
    # Sharing must help (or at worst tie) on average: recurring work
    # dispatched to different units is found in the common table.
    mean_gain = sum(s - p for _, p, s, _, _ in rows) / len(rows)
    assert mean_gain >= -0.02
