"""Hot-loop throughput of the ``speculative`` backend.

Times a hot-loop trace -- the workload shape the speculation layer
exists for: a short body of non-trivial multiply/divide operations
replayed under recurring pcs -- through the ``batched``, ``fused`` and
``speculative`` backends, and writes ``BENCH_speculate.json`` with
records/sec, speedups, and the run's commit/abort accounting.

CI's perf-smoke job runs this as a script and fails the build (exit 1)
if either gate breaks:

* ``speculative`` must be at least ``TARGET``x (1.2x) faster than
  ``fused`` on the hot-loop trace -- guarded bulk commits have to beat
  re-probing the loop body event by event, or the layer is dead weight;
* at a 100% commit rate ``speculative`` must not be slower than
  ``batched`` -- if fully-successful speculation loses to the general
  batched tier, the guard overhead has regressed.

Best-of-N timing on fresh banks, same discipline as
``bench_backends.py``.  Also runnable under pytest-benchmark
(``make bench``).
"""

import json
import sys
import time
from pathlib import Path

from repro.core import backend as execution
from repro.core.bank import MemoTableBank
from repro.core.operations import Operation
from repro.isa.columns import ColumnBatch
from repro.isa.opcodes import Opcode
from repro.isa.trace import Trace, TraceEvent

#: Where the perf-smoke numbers land (repo root, next to CHANGES.md).
REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_speculate.json"

#: Minimum events for a stable records/sec figure.
MIN_EVENTS = 200_000

#: Timed rounds per backend (best one counts; more rounds than the
#: backend sweep because two of the three gates are ratios of noisy
#: single-dispatch timings).
ROUNDS = 5

#: Speedup floor for speculative over fused on the hot-loop trace.
TARGET = 1.2

#: The loop body: distinct non-trivial pairs under recurring pcs.
_BODY = [
    (Opcode.FMUL, 2.5, 3.0),
    (Opcode.FDIV, 9.0, 2.0),
    (Opcode.FMUL, 1.5, 7.0),
    (Opcode.FDIV, 27.0, 4.0),
    (Opcode.FMUL, 6.5, 1.5),
    (Opcode.FMUL, 3.5, 5.0),
    (Opcode.FDIV, 33.0, 8.0),
    (Opcode.FMUL, 9.5, 2.5),
]


def _bench_trace():
    """One hot loop tiled to ``MIN_EVENTS``: every iteration replays the
    same operand pairs at the same pcs, so a healthy detector commits
    essentially the whole trace after training."""
    iters = -(-MIN_EVENTS // len(_BODY))  # ceil
    batch = ColumnBatch()
    pc_base = 0x4000
    for _ in range(iters):
        for slot, (opcode, a, b) in enumerate(_BODY):
            result = a * b if opcode is Opcode.FMUL else a / b
            batch.append(
                TraceEvent(opcode, a, b, result, pc=pc_base + 4 * slot)
            )
    trace = Trace(columns=batch)
    trace.events  # materialize both views before anything is timed
    return trace


def _one_round(events, backend):
    bank = MemoTableBank.paper_baseline(
        operations=tuple(Operation), latencies=None
    )
    started = time.perf_counter()
    report = execution.dispatch(events, bank.units, backend=backend)
    elapsed = time.perf_counter() - started
    return report.instructions / elapsed, report


def measure(events=None):
    """Measure the three columnar tiers; returns the JSON result dict.

    Rounds are interleaved across backends (round-robin, best round
    counts) so a noisy stretch of machine time degrades every
    contender's draw, not just whichever one it landed on."""
    if events is None:
        events = _bench_trace()
    contenders = ("batched", "fused", "speculative")
    # Full-size warmup dispatch per backend: the first run of each
    # kernel pays page-cache and allocator growth that would otherwise
    # land inside somebody's timed rounds.
    for name in contenders:
        _one_round(events, name)
    rates = {name: 0.0 for name in contenders}
    speculation = None
    for _ in range(ROUNDS):
        for name in contenders:
            rate, report = _one_round(events, name)
            if rate > rates[name]:
                rates[name] = rate
            if name == "speculative":
                speculation = report.speculation.as_dict()
    return {
        "events": len(events),
        "loop_body": len(_BODY),
        "backends": {
            name: {
                "records_per_sec": round(rate, 1),
                "speedup_vs_fused": round(rate / rates["fused"], 3),
            }
            for name, rate in rates.items()
        },
        "speculation": speculation,
        "speculative_vs_fused": round(
            rates["speculative"] / rates["fused"], 3
        ),
        "speculative_vs_batched": round(
            rates["speculative"] / rates["batched"], 3
        ),
        "target": TARGET,
    }


def _gate(result):
    """Both perf gates; returns a list of failure messages."""
    failures = []
    if result["speculative_vs_fused"] < result["target"]:
        failures.append(
            f"speculative only {result['speculative_vs_fused']}x over fused "
            f"on the hot-loop trace (floor {result['target']}x)"
        )
    commit_rate = result["speculation"]["commit_rate"]
    if commit_rate >= 1.0 and result["speculative_vs_batched"] < 1.0:
        failures.append(
            f"speculative at 100% commit rate is slower than batched "
            f"({result['speculative_vs_batched']}x)"
        )
    return failures


def test_speculative_beats_fused_on_hot_loops(benchmark):
    """pytest-benchmark entry: hot-loop throughput, both gates."""
    events = _bench_trace()
    result = benchmark.pedantic(
        lambda: measure(events), rounds=1, iterations=1
    )
    benchmark.extra_info.update(result)
    assert not _gate(result), f"perf gates failed: {_gate(result)}\n{result}"


def main():
    result = measure()
    REPORT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    failures = _gate(result)
    for message in failures:
        print(f"FAIL: {message}", file=sys.stderr)
    if failures:
        return 1
    print(
        f"speculative/fused speedup {result['speculative_vs_fused']}x "
        f"(floor {result['target']}x), commit rate "
        f"{result['speculation']['commit_rate']:.3f} -> {REPORT_PATH.name}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
