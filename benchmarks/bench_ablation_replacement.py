"""Ablation: replacement policy (LRU vs FIFO vs random).

The paper assumes cache-like most-recently-used retention (section 2.1);
this ablation quantifies what cheaper victim selection would cost.
"""

from _config import BENCH_SCALE, run_once

from repro.analysis.tables import format_ratio, format_table
from repro.core.config import MemoTableConfig, ReplacementKind
from repro.core.operations import Operation
from repro.experiments.common import record_mm_trace, replay

APPS = ("vgauss", "vspatial", "vkmeans")
IMAGES = ("Muppet1", "chroms")


def test_replacement_policy_ablation(benchmark):
    def sweep():
        traces = [
            record_mm_trace(app, image, scale=BENCH_SCALE)
            for app in APPS
            for image in IMAGES
        ]
        results = {}
        for kind in ReplacementKind:
            config = MemoTableConfig(replacement=kind, seed=17)
            fmul = []
            fdiv = []
            for trace in traces:
                report = replay(trace, config)
                fmul.append(report.hit_ratio(Operation.FP_MUL))
                fdiv.append(report.hit_ratio(Operation.FP_DIV))
            results[kind] = (
                sum(fmul) / len(fmul),
                sum(fdiv) / len(fdiv),
            )
        return results

    results = run_once(benchmark, sweep)
    print()
    print(
        format_table(
            ["policy", "fmul", "fdiv"],
            [
                [kind.value, format_ratio(fm), format_ratio(fd)]
                for kind, (fm, fd) in results.items()
            ],
            title="Ablation: replacement policy (32/4 table)",
        )
    )
    lru = results[ReplacementKind.LRU]
    for kind, values in results.items():
        benchmark.extra_info[f"{kind.value}_fmul"] = values[0]
    # LRU must be competitive: no alternative policy may beat it by a
    # wide margin on temporally local MM streams.
    for kind in (ReplacementKind.FIFO, ReplacementKind.RANDOM):
        assert results[kind][0] <= lru[0] + 0.10
        assert results[kind][1] <= lru[1] + 0.10
