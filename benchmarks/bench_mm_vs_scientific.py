"""Cross-suite comparison: the paper's central Table 5/6/7 claim.

Multi-Media applications must show far more 32-entry value reuse than
the scientific suites; this bench regenerates the three suite averages
side by side.
"""

from _config import BENCH_IMAGES, BENCH_SCALE, run_once

from repro.analysis.tables import format_ratio, format_table
from repro.experiments import table5, table6, table7


def test_mm_beats_scientific(benchmark):
    def all_three():
        return (
            table5.run(scale=0.8),
            table6.run(scale=0.8),
            table7.run(scale=BENCH_SCALE, images=BENCH_IMAGES),
        )

    perfect, spec, mm = run_once(benchmark, all_three)
    rows = []
    for name, result in (("Perfect", perfect), ("SPEC CFP95", spec),
                         ("Multi-Media", mm)):
        avgs = result.extras["averages"]
        rows.append([name] + [format_ratio(v) for v in avgs])
    print()
    print(
        format_table(
            ["suite", "imul.32", "fmul.32", "fdiv.32",
             "imul.inf", "fmul.inf", "fdiv.inf"],
            rows,
            title="Suite-average hit ratios (Tables 5-7 bottom rows)",
        )
    )
    mm_fdiv = mm.extras["averages"][2]
    benchmark.extra_info["mm_over_perfect_fdiv"] = (
        mm_fdiv / max(perfect.extras["averages"][2] or 1e-9, 1e-9)
    )
    assert mm.extras["averages"][1] > perfect.extras["averages"][1]
    assert mm_fdiv > perfect.extras["averages"][2]
    assert mm_fdiv > spec.extras["averages"][2]
