"""Table 13: speedup with both fmul and fdiv memoized (the headline result)."""

from _config import BENCH_IMAGES, BENCH_SCALE, run_once

from repro.experiments import table13


def test_table13_combined_speedup(benchmark):
    result = run_once(
        benchmark,
        lambda: table13.run(scale=BENCH_SCALE, images=BENCH_IMAGES),
    )
    print()
    print(result.render())
    fast = result.extras["averages"]["fast-fp"]
    slow = result.extras["averages"]["slow-fp"]
    benchmark.extra_info["avg_speedup_fast"] = fast["speedup"]
    benchmark.extra_info["avg_speedup_slow"] = slow["speedup"]
    benchmark.extra_info["measured_speedup_slow"] = slow["measured_speedup"]
    # Paper: average speedup between 8% (3/13 machine) and 22% (5/39).
    # The reproduction's shape requirements: both machines gain, the
    # slow-FP machine gains more, and Amdahl agrees with the directly
    # measured cycle ratio.
    assert fast["speedup"] > 1.0
    assert slow["speedup"] > fast["speedup"]
    assert abs(slow["speedup"] - slow["measured_speedup"]) < 0.15
