"""Trace tooling CLI: record, inspect and simulate archived traces.

Subcommands::

    repro-trace record vgauss mandrill out.trc [--scale S] [--v2] [--pc]
        Record one MM kernel on one catalogue image.  ``.trc`` writes the
        compact binary format; any other extension writes text.  ``--v2``
        archives the versioned v2 records (dataflow + PC annotations
        kept); ``--pc`` additionally stamps events with synthetic call
        sites (useful for PC-indexed schemes like the Reuse Buffer).

    repro-trace stats out.trc
        Instruction frequency breakdown of an archived trace.

    repro-trace simulate out.trc [--entries N --ways W --mantissa]
        Replay a trace through MEMO-TABLES and print hit ratios.

    repro-trace programs
        List the bundled assembly programs.

    repro-trace asm saxpy out.trc [--n 64]
        Assemble + execute a bundled program, archiving its trace.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .analysis.tables import format_ratio, format_table
from .core.bank import MemoTableBank
from .core.config import MemoTableConfig, TagMode
from .core.operations import Operation
from .images import catalog_names, generate
from .isa.binfmt import read_binary_trace, write_binary_trace
from .isa.machine import Machine, assemble
from .isa.programs import PROGRAMS
from .isa.trace import Trace, read_trace, write_trace
from .simulator.shade import ShadeSimulator
from .workloads.khoros import kernel_names, run_kernel
from .workloads.recorder import OperationRecorder

__all__ = ["main"]


def _is_binary(path: Path) -> bool:
    return path.suffix in (".trc", ".bin")


def _save(trace, path: Path, version: int = 1) -> int:
    if _is_binary(path):
        with path.open("wb") as stream:
            return write_binary_trace(trace, stream, version=version)
    with path.open("w", encoding="ascii") as stream:
        return write_trace(trace, stream)


def _load(path: Path) -> Trace:
    if _is_binary(path):
        with path.open("rb") as stream:
            return Trace(read_binary_trace(stream))
    with path.open("r", encoding="ascii") as stream:
        return Trace(read_trace(stream))


def _cmd_record(args) -> int:
    recorder = OperationRecorder(record_sites=args.pc)
    image = generate(args.image, scale=args.scale)
    run_kernel(args.kernel, recorder, image)
    version = 2 if (args.v2 or args.pc) else 1
    written = _save(recorder.trace, Path(args.output), version=version)
    print(f"recorded {written} events from {args.kernel} on {args.image} "
          f"-> {args.output}")
    return 0


def _cmd_stats(args) -> int:
    trace = _load(Path(args.trace))
    counts = trace.breakdown()
    total = len(trace)
    rows = [
        [opcode.value, count, f"{count / total:.1%}"]
        for opcode, count in sorted(counts.items(), key=lambda kv: -kv[1])
    ]
    print(format_table(["opcode", "count", "share"], rows,
                       title=f"{args.trace}: {total} events"))
    return 0


def _cmd_simulate(args) -> int:
    trace = _load(Path(args.trace))
    config = MemoTableConfig(
        entries=args.entries,
        associativity=args.ways,
        tag_mode=TagMode.MANTISSA if args.mantissa else TagMode.FULL,
    )
    bank = MemoTableBank.paper_baseline(config=config)
    report = ShadeSimulator(bank).run(trace)
    rows = []
    for op in (Operation.INT_MUL, Operation.FP_MUL, Operation.FP_DIV):
        stats = report.unit_stats.get(op)
        if stats is None or stats.operations == 0:
            continue
        rows.append(
            [op.mnemonic, stats.operations, format_ratio(stats.hit_ratio)]
        )
    print(
        format_table(
            ["unit", "operations", "hit ratio"],
            rows,
            title=(
                f"{args.trace} on {args.entries}-entry "
                f"{args.ways}-way tables"
                + (" (mantissa tags)" if args.mantissa else "")
            ),
        )
    )
    return 0


def _cmd_programs(_args) -> int:
    for name in PROGRAMS:
        print(name)
    return 0


def _cmd_asm(args) -> int:
    source = PROGRAMS.get(args.program)
    if source is None:
        print(f"unknown program {args.program!r}; try: {', '.join(PROGRAMS)}",
              file=sys.stderr)
        return 2
    machine = Machine(assemble(source))
    machine.int_regs[1] = args.n
    # Seed deterministic quantised inputs at the programs' conventional
    # input addresses.
    values = [float((i * 7) % 16 + 1) for i in range(args.n)]
    machine.write_doubles(0x1000, values)
    machine.write_doubles(0x2000, values[::-1])
    steps = machine.run()
    written = _save(machine.trace, Path(args.output))
    print(f"executed {steps} instructions; archived {written} events "
          f"-> {args.output}")
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace", description="Trace tooling for the repro library."
    )
    commands = parser.add_subparsers(dest="command", required=True)

    record = commands.add_parser("record", help="record an MM kernel trace")
    record.add_argument("kernel", choices=list(kernel_names()))
    record.add_argument("image", choices=list(catalog_names()))
    record.add_argument("output")
    record.add_argument("--scale", type=float, default=0.15)
    record.add_argument(
        "--v2", action="store_true",
        help="archive v2 binary records (annotations kept)",
    )
    record.add_argument(
        "--pc", action="store_true",
        help="stamp events with synthetic call-site PCs (implies --v2)",
    )
    record.set_defaults(func=_cmd_record)

    stats = commands.add_parser("stats", help="instruction breakdown")
    stats.add_argument("trace")
    stats.set_defaults(func=_cmd_stats)

    simulate = commands.add_parser("simulate", help="replay through MEMO-TABLES")
    simulate.add_argument("trace")
    simulate.add_argument("--entries", type=int, default=32)
    simulate.add_argument("--ways", type=int, default=4)
    simulate.add_argument("--mantissa", action="store_true")
    simulate.set_defaults(func=_cmd_simulate)

    programs = commands.add_parser("programs", help="list bundled programs")
    programs.set_defaults(func=_cmd_programs)

    asm = commands.add_parser("asm", help="run a bundled assembly program")
    asm.add_argument("program")
    asm.add_argument("output")
    asm.add_argument("--n", type=int, default=64)
    asm.set_defaults(func=_cmd_asm)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
