"""Corpus maintenance subcommands (``repro corpus ...``).

::

    repro corpus record [EXPERIMENT ...] [--scale S] [--jobs N]
        Pre-record every trace the named experiments (default: all)
        will replay, fanning misses out across a worker pool.

    repro corpus ls        List stored traces (LRU order, oldest first).
    repro corpus verify    Re-hash and re-parse every object; exit 1 on damage.
    repro corpus gc        Evict least-recently-used traces to a size bound.

All subcommands take ``--dir PATH`` (default: ``$REPRO_CORPUS_DIR`` or
``~/.cache/repro/corpus``).  The store shards objects into two-hex-digit
prefix subdirectories (``objects/ab/<digest>.trc.gz``); every
maintenance command traverses both the sharded and the legacy flat
layout, counting each digest exactly once (shard copy wins), so a
mid-migration corpus is always safe to ls/verify/gc.
"""

from __future__ import annotations

import argparse
import time
from typing import List, Optional

from ..analysis.tables import format_table
from .engine import prefetch_traces, trace_plan
from .store import TraceCorpus, default_corpus_dir

__all__ = ["main"]


def _add_dir(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dir",
        default=None,
        help="corpus directory (default: $REPRO_CORPUS_DIR or ~/.cache/repro/corpus)",
    )


def _corpus(args, **kwargs) -> TraceCorpus:
    return TraceCorpus(args.dir or default_corpus_dir(), **kwargs)


def _fmt_size(size: int) -> str:
    if size >= 1 << 20:
        return f"{size / (1 << 20):.1f}M"
    if size >= 1 << 10:
        return f"{size / (1 << 10):.1f}K"
    return f"{size}B"


def _cmd_record(args) -> int:
    from ..experiments import experiment_names

    known = list(experiment_names())
    unknown = [name for name in args.experiments if name not in known]
    if unknown:
        print(
            f"unknown experiment(s): {', '.join(unknown)}; "
            f"choose from: {', '.join(known)}"
        )
        return 2
    names = args.experiments or known
    plan = trace_plan(names, scale=args.scale)
    if not plan:
        print("nothing to record: the selected experiments keep no traces")
        return 0
    corpus = _corpus(args)
    started = time.perf_counter()
    stats = prefetch_traces(plan, jobs=args.jobs, corpus_dir=str(corpus.root))
    elapsed = time.perf_counter() - started
    print(
        f"{len(plan)} traces planned for {len(names)} experiment(s): "
        f"{stats.recorded} recorded, "
        f"{stats.disk_hits + stats.memory_hits} already cached "
        f"[{elapsed:.1f}s, jobs={args.jobs}]"
    )
    print(f"corpus {corpus.root}: {len(corpus)} traces, "
          f"{_fmt_size(corpus.total_bytes())}")
    return 0


def _cmd_ls(args) -> int:
    corpus = _corpus(args)
    entries = corpus.entries()
    rows = [
        [
            entry.key.digest[:12],
            entry.suite,
            entry.name,
            entry.variant or "-",
            f"{entry.scale:g}",
            entry.events,
            _fmt_size(entry.size),
        ]
        for entry in entries
    ]
    print(
        format_table(
            ["digest", "suite", "app", "input", "scale", "events", "size"],
            rows,
            title=(
                f"{corpus.root}: {len(entries)} traces, "
                f"{_fmt_size(corpus.total_bytes())}"
            ),
        )
    )
    return 0


def _cmd_verify(args) -> int:
    corpus = _corpus(args)
    report = corpus.verify()
    bad = [(entry, reason) for entry, ok, reason in report if not ok]
    for entry, ok, reason in report:
        marker = "ok  " if ok else "BAD "
        print(f"{marker} {entry.key.digest[:12]}  {entry.key.describe():40} {reason}")
    print(f"{len(report) - len(bad)}/{len(report)} entries verified clean")
    return 1 if bad else 0


def _cmd_gc(args) -> int:
    corpus = _corpus(args)
    before = corpus.total_bytes()
    max_bytes = int(args.max_mb * (1 << 20)) if args.max_mb is not None else None
    evicted = corpus.gc(max_bytes)
    for entry in evicted:
        print(f"evicted {entry.key.describe()} ({_fmt_size(entry.size)})")
    print(
        f"{len(evicted)} evicted; {_fmt_size(before)} -> "
        f"{_fmt_size(corpus.total_bytes())}"
        + (f" (bound {_fmt_size(max_bytes)})" if max_bytes is not None else "")
    )
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro corpus",
        description="Maintain the persistent trace corpus store.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    record = commands.add_parser(
        "record", help="pre-record the traces an experiment selection needs"
    )
    record.add_argument(
        "experiments", nargs="*",
        help="experiment ids (default: every registered experiment)",
    )
    record.add_argument("--scale", type=float, default=None)
    record.add_argument("--jobs", type=int, default=1)
    _add_dir(record)
    record.set_defaults(func=_cmd_record)

    ls = commands.add_parser("ls", help="list stored traces")
    _add_dir(ls)
    ls.set_defaults(func=_cmd_ls)

    verify = commands.add_parser("verify", help="check every entry's integrity")
    _add_dir(verify)
    verify.set_defaults(func=_cmd_verify)

    gc = commands.add_parser("gc", help="evict LRU traces to a size bound")
    gc.add_argument(
        "--max-mb", type=float, default=None,
        help="size bound in MiB (default: sweep orphans only)",
    )
    _add_dir(gc)
    gc.set_defaults(func=_cmd_gc)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    return args.func(args)
