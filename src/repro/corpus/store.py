"""Persistent, content-addressed trace corpus.

The paper's methodology is record-once / replay-many: Shade records each
application's operand stream once, then every MEMO-TABLE configuration
replays the same recording.  :class:`TraceCorpus` gives the repository
the same economics across *processes*: a trace is identified by a
:class:`TraceKey` -- (suite, application/kernel, input, scale) plus the
recorder version -- and stored on disk exactly once, so any number of
experiment runs (serial or a whole worker pool) replay it for the cost
of a gzip read.

Layout of a corpus directory::

    <root>/manifest.json          key metadata + integrity checksums
    <root>/objects/<dd>/<digest>.trc.gz   gzip'd binary trace, sharded by
                                  the first two digest hex chars
    <root>/objects/<digest>.trc.gz   legacy flat layout (still readable)
    <root>/locks/                 cooperative lock files

Objects are **sharded by content hash**: new writes land in a 256-way
prefix fan-out (``objects/3f/<digest>.trc.gz``), which keeps directory
listings bounded when the experiment service floods the store with
thousands of traces, and gives a natural unit for placing shards on
separate disks/hosts.  The migration is incremental and safe: the flat
layout remains readable, a flat object is promoted into its shard on
first use, and the maintenance paths (``verify``/``gc``/``ls``) see
each digest exactly once no matter which layout(s) it occupies.

Properties:

* **content-addressed** -- the object name is a SHA-256 digest of the
  key fields and the recorder version, so a recorder change can never
  silently serve stale traces;
* **verified** -- every load re-hashes the compressed object against the
  manifest checksum; a truncated or flipped file is dropped and the
  caller transparently re-records;
* **bounded** -- :meth:`TraceCorpus.gc` evicts least-recently-used
  objects (recency = object mtime, touched on every hit) until the
  store fits ``max_bytes``;
* **concurrent** -- writers serialize per entry through ``O_EXCL`` lock
  files (with stale-lock breaking), objects land via atomic rename, and
  the manifest is read-merge-written under its own lock, so a worker
  pool records each missing trace exactly once and never clobbers the
  manifest;
* **two-tier** -- a small in-process LRU of deserialized traces sits in
  front of the disk store, so replay loops inside one experiment stay
  as fast as the old per-process dict cache.
"""

from __future__ import annotations

import gzip
import hashlib
import io
import json
import os
import time
from collections import OrderedDict
from dataclasses import dataclass, asdict
from pathlib import Path
from typing import Callable, Dict, List, NamedTuple, Optional, Tuple, Union

from ..errors import CorpusError, CorpusLockError, TraceFormatError
from ..fsutil import FileLock, atomic_write_json, mtime, mtime_age, touch
from ..isa.binfmt import read_column_blocks, write_column_trace
from ..isa.columns import ColumnBatch
from ..isa.trace import Trace

__all__ = [
    "RECORDER_VERSION",
    "TraceKey",
    "CorpusEntry",
    "CorpusStats",
    "TraceCorpus",
    "active_corpus",
    "set_active_corpus",
    "default_corpus_dir",
]

#: Bump when :class:`OperationRecorder` or any workload kernel changes
#: the events it emits -- digests include it, so stale corpora are
#: transparently re-recorded rather than silently replayed.
RECORDER_VERSION = 1

_MANIFEST_FORMAT = 1
_GZIP_LEVEL = 3

#: Hex chars of the digest used as the shard directory name (2 -> 256
#: subdirectories under ``objects/``).
_SHARD_WIDTH = 2


class TraceKey(NamedTuple):
    """Identity of one recorded trace.

    ``suite`` is ``"mm"``, ``"perfect"`` or ``"spec"``; ``variant`` is
    the input (catalogue image name for MM kernels, empty for the
    scientific suites whose apps have a single input).
    """

    suite: str
    name: str
    variant: str = ""
    scale: float = 1.0

    @property
    def digest(self) -> str:
        material = "\x1f".join(
            (self.suite, self.name, self.variant, repr(float(self.scale)),
             f"recorder-v{RECORDER_VERSION}")
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()[:32]

    def describe(self) -> str:
        inp = f"({self.variant})" if self.variant else ""
        return f"{self.suite}:{self.name}{inp}@{self.scale:g}"


@dataclass
class CorpusEntry:
    """Manifest record for one stored trace."""

    suite: str
    name: str
    variant: str
    scale: float
    checksum: str  # sha256 of the compressed object file
    events: int
    size: int  # compressed bytes on disk
    created: float

    @property
    def key(self) -> TraceKey:
        return TraceKey(self.suite, self.name, self.variant, self.scale)


@dataclass
class CorpusStats:
    """Per-process counters (the acceptance check for warm runs:
    ``recorded == 0`` means every trace came from the store)."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    recorded: int = 0
    corrupt_dropped: int = 0
    evicted: int = 0
    bytes_written: int = 0
    bytes_read: int = 0

    def as_dict(self) -> Dict[str, int]:
        return asdict(self)

    def add(self, other: Union["CorpusStats", Dict[str, int]]) -> "CorpusStats":
        data = other.as_dict() if isinstance(other, CorpusStats) else other
        for name, value in data.items():
            setattr(self, name, getattr(self, name) + value)
        return self

    def diff(self, earlier: "CorpusStats") -> Dict[str, int]:
        return {
            name: value - getattr(earlier, name)
            for name, value in self.as_dict().items()
        }


def default_corpus_dir() -> Path:
    """``$REPRO_CORPUS_DIR`` or ``~/.cache/repro/corpus``."""
    env = os.environ.get("REPRO_CORPUS_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "corpus"


class TraceCorpus:
    """A persistent store of recorded traces (see module docstring)."""

    def __init__(
        self,
        root: Union[str, Path],
        max_bytes: Optional[int] = None,
        memory_entries: int = 64,
        lock_timeout: float = 120.0,
    ) -> None:
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.locks_dir = self.root / "locks"
        self.manifest_path = self.root / "manifest.json"
        for directory in (self.root, self.objects_dir, self.locks_dir):
            directory.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.memory_entries = memory_entries
        self.lock_timeout = lock_timeout
        self.stats = CorpusStats()
        self._memory: "OrderedDict[str, Trace]" = OrderedDict()

    # -- serialization -----------------------------------------------------

    @staticmethod
    def _serialize(trace: Trace) -> bytes:
        # v3 columnar blocks: a column-backed trace serializes without
        # ever materializing event objects.
        raw = io.BytesIO()
        write_column_trace(trace, raw)
        # mtime=0 keeps the gzip container deterministic, so identical
        # traces always produce identical checksums.
        out = io.BytesIO()
        with gzip.GzipFile(
            fileobj=out, mode="wb", compresslevel=_GZIP_LEVEL, mtime=0
        ) as zipped:
            zipped.write(raw.getvalue())
        return out.getvalue()

    @staticmethod
    def _deserialize(blob: bytes) -> Trace:
        # Traces come back column-backed, so the simulators' batched
        # kernel path engages without an events round trip.  Objects
        # written by older stores (v1/v2 record formats) are adapted to
        # columns by the reader.
        with gzip.GzipFile(fileobj=io.BytesIO(blob), mode="rb") as zipped:
            payload = io.BytesIO(zipped.read())
        merged: Optional[ColumnBatch] = None
        for block in read_column_blocks(payload):
            if merged is None:
                merged = block
            else:
                merged.extend_batch(block)
        return Trace(columns=merged if merged is not None else ColumnBatch())

    @staticmethod
    def _checksum(blob: bytes) -> str:
        return hashlib.sha256(blob).hexdigest()

    # -- manifest ----------------------------------------------------------

    def _read_manifest(self) -> Dict[str, dict]:
        try:
            with self.manifest_path.open("r", encoding="utf-8") as stream:
                document = json.load(stream)
        except FileNotFoundError:
            return {}
        except (json.JSONDecodeError, OSError):
            # A torn manifest orphans its objects; they are re-recorded
            # (and the orphans collected by gc), never half-trusted.
            return {}
        if document.get("format") != _MANIFEST_FORMAT:
            return {}
        return document.get("entries", {})

    def _write_manifest(self, entries: Dict[str, dict]) -> None:
        document = {
            "format": _MANIFEST_FORMAT,
            "recorder_version": RECORDER_VERSION,
            "entries": entries,
        }
        atomic_write_json(self.manifest_path, document)

    def _update_manifest(
        self, mutate: Callable[[Dict[str, dict]], None]
    ) -> Dict[str, dict]:
        """Read-merge-write the manifest under the manifest lock."""
        with self._lock("manifest"):
            entries = self._read_manifest()
            mutate(entries)
            self._write_manifest(entries)
        return entries

    def _lock(self, name: str) -> FileLock:
        return FileLock(
            self.locks_dir / f"{name}.lock",
            timeout=self.lock_timeout,
            stale_after=600.0,
            error=CorpusLockError,
            poll=0.02,
        )

    def entries(self) -> List[CorpusEntry]:
        """Manifest contents, most recently used last."""
        loaded = []
        for digest, data in self._read_manifest().items():
            try:
                entry = CorpusEntry(**data)
            except TypeError:
                continue
            loaded.append((self._mtime(digest), entry))
        loaded.sort(key=lambda pair: pair[0])
        return [entry for _, entry in loaded]

    def _mtime(self, digest: str) -> float:
        path = self._find_object(digest)
        if path is None:
            return 0.0
        stamp = mtime(path)
        return 0.0 if stamp is None else stamp

    def _object_path(self, digest: str) -> Path:
        """Canonical (sharded) location of a digest's object."""
        return self.objects_dir / digest[:_SHARD_WIDTH] / f"{digest}.trc.gz"

    def _flat_path(self, digest: str) -> Path:
        """Pre-sharding flat location (still readable, never written)."""
        return self.objects_dir / f"{digest}.trc.gz"

    def _find_object(self, digest: str) -> Optional[Path]:
        """The on-disk object for a digest, preferring the shard."""
        sharded = self._object_path(digest)
        if sharded.exists():
            return sharded
        flat = self._flat_path(digest)
        if flat.exists():
            return flat
        return None

    def _object_exists(self, digest: str) -> bool:
        return self._find_object(digest) is not None

    def _unlink_object(self, digest: str) -> None:
        """Remove every copy of a digest's object (both layouts)."""
        for path in (self._object_path(digest), self._flat_path(digest)):
            try:
                path.unlink()
            except OSError:
                pass

    def _promote(self, digest: str) -> None:
        """Move a flat-layout object into its shard (incremental
        migration; atomic rename, no-op if already sharded)."""
        flat = self._flat_path(digest)
        sharded = self._object_path(digest)
        if sharded.exists() or not flat.exists():
            return
        try:
            sharded.parent.mkdir(parents=True, exist_ok=True)
            os.replace(flat, sharded)
        except OSError:
            pass  # raced with another promoter/evictor; either is fine

    def _iter_objects(self) -> Dict[str, Path]:
        """Every stored object, deduplicated: digest -> preferred path.

        An object present in both layouts mid-migration counts exactly
        once (the sharded copy wins).
        """
        objects: Dict[str, Path] = {}
        for path in self.objects_dir.glob("*.trc.gz"):
            objects[path.name[: -len(".trc.gz")]] = path
        for path in self.objects_dir.glob(f"{'[0-9a-f]' * _SHARD_WIDTH}/*.trc.gz"):
            objects[path.name[: -len(".trc.gz")]] = path
        return objects

    def total_bytes(self) -> int:
        total = 0
        for path in self._iter_objects().values():
            try:
                total += path.stat().st_size
            except OSError:
                pass  # concurrently evicted between glob and stat
        return total

    def __len__(self) -> int:
        return len(self._read_manifest())

    # -- the two cache tiers ----------------------------------------------

    def _memory_get(self, digest: str) -> Optional[Trace]:
        trace = self._memory.get(digest)
        if trace is not None:
            self._memory.move_to_end(digest)
        return trace

    def _memory_put(self, digest: str, trace: Trace) -> None:
        self._memory[digest] = trace
        self._memory.move_to_end(digest)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)

    def clear_memory(self) -> None:
        self._memory.clear()

    def _drop(self, digest: str) -> None:
        """Remove a corrupt/evicted entry (object file + manifest row)."""
        self._memory.pop(digest, None)
        self._unlink_object(digest)
        self._update_manifest(lambda entries: entries.pop(digest, None))

    def get(self, key: TraceKey) -> Optional[Trace]:
        """Load ``key`` from memory or disk; None on miss.

        A checksum mismatch or undecodable object counts as a miss: the
        entry is dropped so the caller re-records a clean one.
        """
        digest = key.digest
        trace = self._memory_get(digest)
        if trace is not None:
            self.stats.memory_hits += 1
            return trace
        entry = self._read_manifest().get(digest)
        if entry is None:
            self.stats.misses += 1
            return None
        path = self._find_object(digest)
        try:
            blob = path.read_bytes() if path is not None else None
        except OSError:
            blob = None
        if blob is None:
            self.stats.misses += 1
            self._update_manifest(lambda entries: entries.pop(digest, None))
            return None
        if self._checksum(blob) != entry.get("checksum"):
            self.stats.corrupt_dropped += 1
            self.stats.misses += 1
            self._drop(digest)
            return None
        try:
            trace = self._deserialize(blob)
        except (TraceFormatError, OSError, EOFError):
            self.stats.corrupt_dropped += 1
            self.stats.misses += 1
            self._drop(digest)
            return None
        self.stats.disk_hits += 1
        self.stats.bytes_read += len(blob)
        self._promote(digest)  # incremental flat -> shard migration
        path = self._find_object(digest)
        if path is not None:
            # LRU recency for gc; a concurrent eviction is fine -- the
            # blob in hand is still good.
            touch(path)
        self._memory_put(digest, trace)
        return trace

    def put(self, key: TraceKey, trace: Trace) -> CorpusEntry:
        """Store ``trace`` under ``key`` (atomic, checksum recorded)."""
        digest = key.digest
        blob = self._serialize(trace)
        path = self._object_path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".tmp-{digest}-{os.getpid()}"
        tmp.write_bytes(blob)
        os.replace(tmp, path)
        try:
            # A re-recorded entry must not leave a stale flat twin behind.
            self._flat_path(digest).unlink()
        except OSError:
            pass
        entry = CorpusEntry(
            suite=key.suite,
            name=key.name,
            variant=key.variant,
            scale=float(key.scale),
            checksum=self._checksum(blob),
            events=len(trace),
            size=len(blob),
            created=time.time(),
        )
        self._update_manifest(
            lambda entries: entries.__setitem__(digest, asdict(entry))
        )
        self.stats.bytes_written += len(blob)
        self._memory_put(digest, trace)
        if self.max_bytes is not None:
            self.gc()
        return entry

    def get_or_record(
        self, key: TraceKey, record: Callable[[], Trace]
    ) -> Trace:
        """Two-tier lookup, recording (exactly once) on miss.

        The per-entry lock means that when a worker pool floods the
        store with the same missing key, one worker records while the
        rest block, re-check, and load the freshly stored object.
        """
        trace = self.get(key)
        if trace is not None:
            return trace
        with self._lock(key.digest):
            trace = self.get(key)  # someone may have recorded meanwhile
            if trace is not None:
                return trace
            trace = record()
            self.stats.recorded += 1
            self.put(key, trace)
        return trace

    # -- maintenance -------------------------------------------------------

    def verify(self) -> List[Tuple[CorpusEntry, bool, str]]:
        """Re-hash and re-parse every entry; (entry, ok, reason) rows.

        Shard-aware: each manifest digest is checked against its single
        preferred object (sharded copy wins over a flat leftover), so an
        entry occupying both layouts mid-migration is verified -- and
        counted -- exactly once.
        """
        report = []
        for entry in self.entries():
            digest = entry.key.digest
            path = self._find_object(digest)
            try:
                blob = path.read_bytes() if path is not None else None
            except OSError:
                blob = None
            if blob is None:
                report.append((entry, False, "object file missing"))
                continue
            if self._checksum(blob) != entry.checksum:
                report.append((entry, False, "checksum mismatch"))
                continue
            try:
                events = len(self._deserialize(blob))
            except (TraceFormatError, OSError, EOFError):
                report.append((entry, False, "undecodable object"))
                continue
            if events != entry.events:
                report.append(
                    (entry, False, f"{events} events, manifest says {entry.events}")
                )
                continue
            report.append((entry, True, "ok"))
        return report

    def gc(
        self,
        max_bytes: Optional[int] = None,
        orphan_grace: float = 60.0,
    ) -> List[CorpusEntry]:
        """Evict least-recently-used entries until the store fits.

        Also sweeps orphans: objects with no manifest row and manifest
        rows with no object.  Returns the evicted entries.

        ``orphan_grace`` protects objects younger than that many seconds
        from the orphan sweep: a concurrent :meth:`put` writes its
        object *before* its manifest row lands, so a zero-grace sweep
        could destroy a trace mid-store (the same race git's
        ``gc --prune=<age>`` exists for).
        """
        bound = self.max_bytes if max_bytes is None else max_bytes
        evicted: List[CorpusEntry] = []
        now = time.time()
        with self._lock("gc"):
            entries = self._read_manifest()
            known = set(entries)
            for digest, path in self._iter_objects().items():
                if digest in known:
                    # De-duplicate mid-migration twins: when the shard
                    # copy exists, a flat leftover is dead weight (put
                    # and promote both target the shard) -- remove it so
                    # nothing is ever counted or served twice.
                    flat = self._flat_path(digest)
                    if path != flat:
                        try:
                            flat.unlink()
                        except OSError:
                            pass
                    continue
                age = mtime_age(path, now)
                if age is not None and age < orphan_grace:
                    continue  # likely a put() awaiting its manifest row
                try:
                    path.unlink()
                except OSError:
                    pass  # another process already removed it
            removed = {
                digest
                for digest in entries
                if not self._object_exists(digest)
            }
            if bound is not None:
                survivors = [d for d in entries if d not in removed]
                survivors.sort(key=self._mtime)
                sizes = {}
                for digest in survivors:
                    path = self._find_object(digest)
                    try:
                        sizes[digest] = path.stat().st_size if path else 0
                    except OSError:
                        sizes[digest] = 0
                total = sum(sizes.values())
                for digest in survivors:
                    if total <= bound:
                        break
                    total -= sizes[digest]
                    self._unlink_object(digest)
                    self._memory.pop(digest, None)
                    removed.add(digest)
                    evicted.append(CorpusEntry(**entries[digest]))
            if removed:
                self._update_manifest(
                    lambda rows: [rows.pop(digest, None) for digest in removed]
                )
        self.stats.evicted += len(evicted)
        return evicted


# -- process-wide active corpus -------------------------------------------
#
# The record_* helpers in repro.experiments.common consult this, so one
# assignment (or the REPRO_CORPUS_DIR environment variable) routes every
# experiment's traces through the persistent store.

_active: Optional[TraceCorpus] = None
_explicitly_set = False


def active_corpus() -> Optional[TraceCorpus]:
    """The process's corpus, or None.

    Unless :func:`set_active_corpus` was called, a corpus is opened
    lazily from ``$REPRO_CORPUS_DIR`` when that variable is set.
    """
    global _active
    if _active is None and not _explicitly_set:
        if os.environ.get("REPRO_CORPUS_DIR"):
            _active = TraceCorpus(default_corpus_dir())
    return _active


def set_active_corpus(  # conc: ok[CONC006] per-process config: each worker opens its own view, corpus_dir rides in via initializer/env
    corpus: Union[TraceCorpus, str, Path, None], **kwargs
) -> Optional[TraceCorpus]:
    """Install (or, with None, disable) the process-wide corpus."""
    global _active, _explicitly_set
    if isinstance(corpus, (str, Path)):
        corpus = TraceCorpus(corpus, **kwargs)
    _active = corpus
    _explicitly_set = True
    return _active
