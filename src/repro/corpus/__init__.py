"""Persistent trace corpus + parallel experiment execution.

``repro.corpus`` turns the paper's record-once / replay-many
methodology into an artifact cache that survives the process:

* :class:`TraceCorpus` -- content-addressed, checksum-verified,
  size-bounded on-disk store of recorded traces (see
  :mod:`repro.corpus.store`);
* :func:`run_experiments` / :func:`prefetch_traces` -- a
  ``multiprocessing`` fan-out engine over (experiment x application x
  input) work items with deterministic result merging (see
  :mod:`repro.corpus.engine`).

Point the whole library at a store with one call (or set
``$REPRO_CORPUS_DIR``)::

    from repro.corpus import set_active_corpus, run_experiments
    set_active_corpus("~/.cache/repro/corpus")
    batch = run_experiments(["table5", "table7"], jobs=4)
"""

from .store import (
    RECORDER_VERSION,
    CorpusEntry,
    CorpusStats,
    TraceCorpus,
    TraceKey,
    active_corpus,
    default_corpus_dir,
    set_active_corpus,
)
from .engine import (
    ExperimentBatch,
    prefetch_traces,
    record_trace_for_key,
    run_experiments,
    trace_plan,
)

__all__ = [
    "RECORDER_VERSION",
    "CorpusEntry",
    "CorpusStats",
    "TraceCorpus",
    "TraceKey",
    "active_corpus",
    "default_corpus_dir",
    "set_active_corpus",
    "ExperimentBatch",
    "prefetch_traces",
    "record_trace_for_key",
    "run_experiments",
    "trace_plan",
]
