"""Parallel experiment execution over the trace corpus.

Two fan-out layers, both feeding the persistent store:

1. :func:`trace_plan` enumerates every :class:`TraceKey` an experiment
   selection will replay -- the (suite x application x input x scale)
   work items of the paper's methodology -- and
   :func:`prefetch_traces` records the cache-missing ones across a
   ``multiprocessing`` worker pool.  The store's per-entry locks make
   each recording happen exactly once no matter how many workers race.
2. :func:`run_experiments` then fans the experiments themselves out
   across the same pool.  Every worker replays from the (now warm)
   corpus, results come back as the ordinary :class:`ExperimentResult`
   objects in the order requested, and per-worker corpus counters are
   merged so a warm run can prove it re-recorded nothing.

Everything degrades gracefully: ``jobs=1`` (or a pool that cannot be
created) runs serially through the exact same code paths.

Traces flow through this engine in columnar form end to end: the store
serializes v3 column blocks and deserializes straight into
column-backed :class:`~repro.isa.trace.Trace` objects, so every replay
a worker performs enters the simulators through the execution-backend
registry (:mod:`repro.core.backend`) without materializing per-event
tuples.  ``repro --backend NAME`` (propagated to workers via
``REPRO_BACKEND``; ``--scalar``/``REPRO_SCALAR`` are the deprecated
aliases for the reference loop) selects which kernel serves the run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .store import (
    CorpusStats,
    TraceCorpus,
    TraceKey,
    active_corpus,
    default_corpus_dir,
    set_active_corpus,
)
from .. import obs
from ..errors import CorpusError

__all__ = [
    "ExperimentBatch",
    "ExperimentTiming",
    "trace_plan",
    "record_trace_for_key",
    "prefetch_traces",
    "run_experiments",
]

#: Default workload scales of the experiment drivers (mirrors each
#: ``run()`` signature); used when the caller does not pass ``--scale``.
_MM_SCALE = 0.15
_SUITE_SCALE = 1.0


@dataclass(frozen=True)
class ExperimentTiming:
    """Worker-side timing of one experiment.

    Measured *inside* the worker with monotonic clocks
    (``time.perf_counter`` / ``time.process_time``), so a serial run and
    a ``--jobs N`` run report the same quantity: the time the experiment
    itself took, never pool scheduling or result-pickling overhead.
    """

    wall: float = 0.0
    cpu: float = 0.0


@dataclass
class ExperimentBatch:
    """Outcome of one (possibly parallel) multi-experiment run."""

    #: (name, result) pairs in the order requested -- identical to what
    #: a serial loop over :func:`repro.experiments.run_experiment` yields.
    results: List[Tuple[str, Any]] = field(default_factory=list)
    #: Corpus counters summed over the prefetch phase and every worker.
    corpus_stats: Dict[str, int] = field(default_factory=dict)
    #: Worker processes used (1 = serial).
    jobs: int = 1
    #: Trace keys the plan covered.
    planned: int = 0
    #: Traces actually recorded this run (0 on a fully warm corpus).
    recorded: int = 0
    elapsed: float = 0.0
    #: Per-experiment wall seconds (worker-side ``perf_counter`` spans),
    #: keyed by experiment name in the order requested.  Kept as the
    #: compact view of :attr:`timings`.
    durations: Dict[str, float] = field(default_factory=dict)
    #: Per-experiment worker-side wall/CPU timings, keyed by name.
    timings: Dict[str, ExperimentTiming] = field(default_factory=dict)


def _mm_keys(
    apps: Iterable[str], images: Iterable[str], scale: float
) -> List[TraceKey]:
    return [
        TraceKey("mm", app, image, scale) for app in apps for image in images
    ]


def trace_plan(
    names: Sequence[str], scale: Optional[float] = None
) -> List[TraceKey]:
    """Every trace key the named experiments will replay, deduplicated.

    ``scale`` overrides each driver's default workload scale, exactly as
    the CLI's ``--scale`` flag does.  Experiments that record through
    their own specialized recorders (table1, ext-future-ops,
    ext-reuse-buffer) contribute nothing: they never hit the store.
    """
    from ..experiments.common import DEFAULT_IMAGE_SET
    from ..experiments.table8 import DEFAULT_KERNEL_SET
    from ..images import IMAGE_CATALOG
    from ..workloads.khoros import (
        SAMPLE_APPS,
        SPEEDUP_APPS,
        TABLE7_ORDER,
        TABLE9_APPS,
    )
    from ..workloads.perfect import perfect_names
    from ..workloads.speccfp import speccfp_names

    mm = _MM_SCALE if scale is None else scale
    suite = _SUITE_SCALE if scale is None else scale
    sweep_images = ("Muppet1", "chroms", "fractal")
    catalogue = tuple(img.name for img in IMAGE_CATALOG)
    nonfloat = tuple(
        img.name for img in IMAGE_CATALOG if img.pixel_type != "FLOAT"
    )
    plans: Dict[str, List[TraceKey]] = {
        "table5": [TraceKey("perfect", app, "", suite) for app in perfect_names()],
        "table6": [TraceKey("spec", app, "", suite) for app in speccfp_names()],
        "table7": _mm_keys(TABLE7_ORDER, DEFAULT_IMAGE_SET, mm),
        "table8": _mm_keys(DEFAULT_KERNEL_SET, catalogue, mm),
        "table9": _mm_keys(TABLE9_APPS, DEFAULT_IMAGE_SET, mm),
        # table10 always records the Perfect suite at its default scale.
        "table10": [
            TraceKey("perfect", app, "", _SUITE_SCALE) for app in perfect_names()
        ]
        + _mm_keys(TABLE7_ORDER[:8], DEFAULT_IMAGE_SET[:3], mm),
        "table11": _mm_keys(SPEEDUP_APPS, DEFAULT_IMAGE_SET, mm),
        "table12": _mm_keys(SPEEDUP_APPS, DEFAULT_IMAGE_SET, mm),
        "table13": _mm_keys(SPEEDUP_APPS, DEFAULT_IMAGE_SET, mm),
        "figure2": _mm_keys(DEFAULT_KERNEL_SET, nonfloat, mm),
        "figure3": _mm_keys(SAMPLE_APPS, sweep_images, mm),
        "figure4": _mm_keys(SAMPLE_APPS, sweep_images, mm),
        "ext-dual-issue": _mm_keys(SPEEDUP_APPS, DEFAULT_IMAGE_SET[:3], mm),
        "ext-hazard": _mm_keys(
            SPEEDUP_APPS,
            DEFAULT_IMAGE_SET[:3],
            0.12 if scale is None else scale,
        ),
        "ext-matrix": _mm_keys(
            TABLE7_ORDER,
            DEFAULT_IMAGE_SET,
            0.12 if scale is None else scale,
        ),
    }
    seen = set()
    keys: List[TraceKey] = []
    for name in names:
        for key in plans.get(name, ()):
            if key not in seen:
                seen.add(key)
                keys.append(key)
    return keys


def record_trace_for_key(key: TraceKey):
    """Record (or fetch, via the active corpus) the trace behind ``key``."""
    from ..experiments import common

    if key.suite == "mm":
        return common.record_mm_trace(key.name, key.variant, scale=key.scale)
    if key.suite == "perfect":
        return common.record_perfect_trace(key.name, scale=key.scale)
    if key.suite == "spec":
        return common.record_speccfp_trace(key.name, scale=key.scale)
    raise CorpusError(f"no recorder for suite {key.suite!r}")


# -- worker-pool plumbing --------------------------------------------------
#
# Top-level functions (spawn-safe); each worker opens its own view of the
# shared corpus directory in the initializer.


def _pool_init(corpus_dir: Optional[str], max_bytes: Optional[int]) -> None:
    if corpus_dir is not None:
        set_active_corpus(TraceCorpus(corpus_dir, max_bytes=max_bytes))


def _stats_snapshot() -> Optional[CorpusStats]:
    corpus = active_corpus()
    if corpus is None:
        return None
    return CorpusStats(**corpus.stats.as_dict())


def _stats_delta(before: Optional[CorpusStats]) -> Dict[str, int]:
    corpus = active_corpus()
    if corpus is None or before is None:
        return {}
    return corpus.stats.diff(before)


def _prefetch_one(key: TraceKey) -> Dict[str, int]:
    before = _stats_snapshot()
    record_trace_for_key(key)
    return _stats_delta(before)


def _run_one(item: Tuple[str, Dict[str, Any]]):
    """Run one experiment; returns ``(name, result, corpus-delta,
    timing, metrics-snapshot)``.

    The timing is measured here, inside the worker, so serial and pooled
    runs account durations identically.  When metrics are enabled the
    experiment executes under its own scoped registry (the same code
    path in-process and in a pool worker); the snapshot rides back with
    the result for the parent to merge.
    """
    from ..experiments import run_experiment

    name, kwargs = item
    before = _stats_snapshot()
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    snapshot = None
    if obs.enabled():
        local = obs.MetricsRegistry()
        with obs.use_registry(local):
            with local.span(f"experiment.{name}"):
                result = run_experiment(name, **kwargs)
        snapshot = local.as_dict()
    else:
        result = run_experiment(name, **kwargs)
    timing = ExperimentTiming(
        wall=time.perf_counter() - wall0,
        cpu=time.process_time() - cpu0,
    )
    return name, result, _stats_delta(before), timing, snapshot


def _make_pool(jobs: int, corpus_dir: Optional[str], max_bytes: Optional[int]):
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context(
        "fork" if "fork" in methods else None
    )
    return context.Pool(
        processes=jobs,
        initializer=_pool_init,
        initargs=(corpus_dir, max_bytes),
    )


def prefetch_traces(
    keys: Sequence[TraceKey],
    jobs: int = 1,
    corpus_dir: Union[str, None] = None,
    max_bytes: Optional[int] = None,
) -> CorpusStats:
    """Ensure every key is in the corpus, recording misses in parallel.

    Returns the summed corpus counters of the phase (``recorded`` says
    how many traces were actually cold).
    """
    total = CorpusStats()
    keys = list(keys)
    if not keys:
        return total
    if corpus_dir is not None:
        set_active_corpus(TraceCorpus(corpus_dir, max_bytes=max_bytes))
    if jobs <= 1 or len(keys) == 1:
        for key in keys:
            total.add(_prefetch_one(key))
        return total
    corpus = active_corpus()
    root = str(corpus.root) if corpus is not None else None
    try:
        pool = _make_pool(min(jobs, len(keys)), root, max_bytes)
    except (OSError, ImportError, ValueError):
        for key in keys:
            total.add(_prefetch_one(key))
        return total
    with pool:
        for delta in pool.imap_unordered(_prefetch_one, keys, chunksize=1):
            total.add(delta)
    return total


def _absorb(
    batch: ExperimentBatch,
    total: CorpusStats,
    outcome: Tuple[str, Any, Dict[str, int], ExperimentTiming, Optional[dict]],
) -> None:
    """Fold one :func:`_run_one` outcome into the batch (shared by the
    serial and pooled branches, so both report identically)."""
    name, result, delta, timing, snapshot = outcome
    total.add(delta)
    batch.results.append((name, result))
    batch.timings[name] = timing
    batch.durations[name] = timing.wall
    if snapshot is not None and obs.enabled():
        obs.registry().merge(snapshot)


def _count(name: str, delta: int = 1) -> None:
    """Bump an obs counter iff the metrics layer is enabled."""
    if obs.enabled():
        obs.registry().counter_add(name, delta)


def _run_pool_with_timeouts(
    pool,
    items: Sequence[Tuple[str, Dict[str, Any]]],
    jobs: int,
    corpus_dir: Optional[str],
    max_bytes: Optional[int],
    job_timeout: float,
    job_retries: int,
    retry_backoff: float,
):
    """Drain ``items`` through worker pools under a per-job timeout.

    Every outstanding item is submitted with ``apply_async`` and results
    are awaited in request order, each wait bounded by ``job_timeout``.
    A job that blows its bound stalls exactly one wait: already-finished
    siblings are harvested, the (possibly hung) pool is torn down with
    ``terminate()``, and a fresh pool re-runs everything still missing.
    The timed-out job itself is retried up to ``job_retries`` times with
    exponential backoff (``retry_backoff * 2**attempt`` seconds) before
    :class:`~repro.errors.ExperimentError` is raised.

    Counters ``engine.jobs_timed_out`` / ``engine.jobs_retried`` stream
    into :mod:`repro.obs` (rendered ``repro_engine_jobs_timed_out_total``
    / ``repro_engine_jobs_retried_total``) when metrics are enabled.

    Returns ``(pool, outcomes)``: the pool now owning the workers (the
    caller closes it) and the per-index :func:`_run_one` outcomes.
    """
    import multiprocessing

    from ..errors import ExperimentError

    outcomes: Dict[int, Any] = {}
    attempts: Dict[int, int] = {index: 0 for index in range(len(items))}
    try:
        while True:
            remaining = sorted(
                index for index in attempts if index not in outcomes
            )
            if not remaining:
                return pool, outcomes
            asyncs = {
                index: pool.apply_async(_run_one, (items[index],))
                for index in remaining
            }
            timed_out = None
            for index in remaining:
                try:
                    outcomes[index] = asyncs[index].get(job_timeout)
                except multiprocessing.TimeoutError:
                    timed_out = index
                    break
            if timed_out is None:
                return pool, outcomes
            # Harvest siblings that finished before the hang was
            # noticed, so their work survives the pool teardown.
            for index in remaining:
                if index not in outcomes and asyncs[index].ready():
                    try:
                        outcomes[index] = asyncs[index].get(0)
                    except Exception:
                        pass  # re-run it on the fresh pool
            pool.terminate()
            pool.join()
            attempts[timed_out] += 1
            _count("engine.jobs_timed_out")
            name = items[timed_out][0]
            if attempts[timed_out] > job_retries:
                raise ExperimentError(
                    f"experiment {name!r} timed out "
                    f"({job_timeout:g}s x {attempts[timed_out]} attempt(s))"
                )
            _count("engine.jobs_retried")
            time.sleep(retry_backoff * (2 ** (attempts[timed_out] - 1)))
            pool = _make_pool(jobs, corpus_dir, max_bytes)
    except BaseException:
        # The caller's ``finally`` only sees the pool object it passed
        # in; after a rebuild that object is already dead and the live
        # replacement would leak its workers.  Tear down whichever pool
        # is current before propagating (double-terminate is harmless).
        try:
            pool.terminate()
            pool.join()
        except Exception:
            pass
        raise


def run_experiments(
    names: Sequence[str],
    jobs: int = 1,
    corpus_dir: Union[str, None] = None,
    max_bytes: Optional[int] = None,
    prefetch: bool = True,
    overrides: Optional[Dict[str, Dict[str, Any]]] = None,
    job_timeout: Optional[float] = None,
    job_retries: int = 2,
    retry_backoff: float = 0.5,
    **kwargs,
) -> ExperimentBatch:
    """Run experiments, optionally across a worker pool.

    Results are merged deterministically: ``batch.results`` holds the
    usual :class:`ExperimentResult` objects in the order ``names`` was
    given, so ``--jobs 4`` output is byte-identical to a serial run.
    With ``jobs > 1`` and no explicit ``corpus_dir``, the active corpus
    (or the default corpus directory) is used so workers share traces.

    ``overrides`` maps experiment names to *replacement* keyword
    dictionaries: an experiment listed there receives exactly those
    keywords instead of ``**kwargs`` (the CLI uses this to keep
    ``--scale`` away from table1, which takes no workload).

    ``job_timeout`` bounds each pooled experiment's wall time: a job
    that exceeds it is abandoned (the hung pool is torn down so no
    other job stalls behind it) and retried up to ``job_retries`` times
    with ``retry_backoff``-seconds exponential backoff, after which
    :class:`~repro.errors.ExperimentError` is raised.  The serial path
    cannot preempt an in-process experiment, so ``job_timeout`` only
    applies when a worker pool is actually in use.
    """
    names = list(names)
    jobs = max(1, int(jobs))
    overrides = overrides or {}
    started = time.perf_counter()
    batch = ExperimentBatch(jobs=jobs)
    total = CorpusStats()

    if corpus_dir is None and jobs > 1:
        corpus = active_corpus()
        corpus_dir = str(corpus.root) if corpus else str(default_corpus_dir())
    if corpus_dir is not None:
        set_active_corpus(TraceCorpus(str(corpus_dir), max_bytes=max_bytes))

    plan = trace_plan(
        names, scale=kwargs.get("scale")
    ) if prefetch and jobs > 1 else []
    batch.planned = len(plan)
    items = [
        (name, dict(overrides[name]) if name in overrides else dict(kwargs))
        for name in names
    ]

    pool = None
    if jobs > 1:
        try:
            pool = _make_pool(jobs, corpus_dir, max_bytes)
        except (OSError, ImportError, ValueError):
            pool = None  # no worker pool available: degrade to serial

    if pool is None:
        for item in items:
            _absorb(batch, total, _run_one(item))
    else:
        try:
            if plan:
                for delta in pool.imap_unordered(
                    _prefetch_one, plan, chunksize=1
                ):
                    total.add(delta)
            if job_timeout is None:
                for outcome in pool.map(_run_one, items, chunksize=1):
                    _absorb(batch, total, outcome)
            else:
                pool, outcomes = _run_pool_with_timeouts(
                    pool, items, jobs, corpus_dir, max_bytes,
                    job_timeout, job_retries, retry_backoff,
                )
                for index in range(len(items)):
                    _absorb(batch, total, outcomes[index])
        finally:
            pool.terminate()
            pool.join()

    batch.corpus_stats = total.as_dict()
    batch.recorded = total.recorded
    batch.elapsed = time.perf_counter() - started
    return batch
