"""Divergence shrinking: delta-debug a failing case to a minimal one.

A fuzz divergence is only useful if a human can stare at it, so any
failing :class:`~repro.verify.differential.FuzzCase` is reduced before
it is reported or written to the regression corpus:

1. **Event minimization** -- classic ddmin: remove ever-smaller chunks
   of the trace, keeping each removal that still diverges;
2. **Value simplification** -- try replacing each operand with a small
   "obvious" value of the same kind, and strip annotations;
3. **Config simplification** -- try the plainest table that still
   diverges (fewer entries, LRU, full tags, EXCLUDE, finite).

Every candidate is re-run through the full differential check; the
total number of re-runs is bounded, and the original case is returned
unshrunk if reduction stalls.  Deterministic: no randomness at all.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import List

from ..core.config import (
    MemoTableConfig,
    ReplacementKind,
    TagMode,
    TrivialPolicy,
)
from ..isa.trace import TraceEvent
from .differential import FuzzCase, canonicalize, run_case

__all__ = ["shrink_case"]

#: Replacement candidates per operand kind, plainest first.
_SIMPLE_FLOATS = (2.0, 1.5, 3.0, 0.5)
_SIMPLE_INTS = (2, 3, 5, 7)


class _Budget:
    """Caps the number of differential re-runs a shrink may spend."""

    def __init__(self, limit: int) -> None:
        self.left = limit

    def spend(self) -> bool:
        if self.left <= 0:
            return False
        self.left -= 1
        return True


def _with_events(case: FuzzCase, events) -> FuzzCase:
    return dc_replace(case, events=canonicalize(events))


def _diverges(case: FuzzCase, budget: _Budget) -> bool:
    if not case.events or not budget.spend():
        return False
    return bool(run_case(case).divergences)


def _shrink_events(case: FuzzCase, budget: _Budget) -> FuzzCase:
    events = list(case.events)
    chunk = max(1, len(events) // 2)
    while chunk >= 1:
        i = 0
        while i < len(events):
            candidate = events[:i] + events[i + chunk:]
            if candidate:
                smaller = _with_events(case, candidate)
                if _diverges(smaller, budget):
                    events = candidate
                    case = smaller
                    continue  # retry the same position
            i += chunk
        chunk //= 2
    return case


def _simplify_values(case: FuzzCase, budget: _Budget) -> FuzzCase:
    events: List[TraceEvent] = list(case.events)
    for i, event in enumerate(events):
        if event.opcode.operation is None:
            continue
        is_int = isinstance(event.a, int)
        pool = _SIMPLE_INTS if is_int else _SIMPLE_FLOATS
        for which in ("a", "b"):
            current = getattr(event, which)
            for value in pool:
                if current == value:
                    break
                trial = list(events)
                trial[i] = event._replace(**{which: value})
                candidate = _with_events(case, trial)
                if _diverges(candidate, budget):
                    events = trial
                    event = trial[i]
                    case = candidate
                    break
        # Annotations never affect probing; drop them if they are set.
        if event.address is not None or event.dst is not None or event.srcs:
            trial = list(events)
            trial[i] = event._replace(address=None, dst=None, srcs=(), pc=None)
            candidate = _with_events(case, trial)
            if _diverges(candidate, budget):
                events = trial
                case = candidate
    return case


def _simplify_config(case: FuzzCase, budget: _Budget) -> FuzzCase:
    cfg = case.config
    candidates = []
    if case.infinite:
        candidates.append(dc_replace(case, infinite=False))
    if case.trivial_policy is not TrivialPolicy.EXCLUDE:
        candidates.append(
            dc_replace(case, trivial_policy=TrivialPolicy.EXCLUDE)
        )
    if cfg.tag_mode is not TagMode.FULL:
        candidates.append(dc_replace(
            case, config=dc_replace(cfg, tag_mode=TagMode.FULL)
        ))
    if cfg.replacement is not ReplacementKind.LRU:
        candidates.append(dc_replace(
            case, config=dc_replace(cfg, replacement=ReplacementKind.LRU)
        ))
    for candidate in candidates:
        if _diverges(candidate, budget):
            case = candidate
            cfg = case.config
    # Smallest geometry that still diverges.
    entries = cfg.entries
    while entries > 2:
        entries //= 2
        assoc = min(cfg.associativity, entries)
        while entries % assoc:
            assoc //= 2
        try:
            smaller_cfg = MemoTableConfig(
                entries=entries,
                associativity=assoc,
                operand_kind=cfg.operand_kind,
                tag_mode=cfg.tag_mode,
                commutative=cfg.commutative,
                replacement=cfg.replacement,
                seed=cfg.seed,
            )
        except Exception:
            break
        candidate = dc_replace(case, config=smaller_cfg)
        if not _diverges(candidate, budget):
            break
        case = candidate
        cfg = smaller_cfg
    return case


def shrink_case(case: FuzzCase, max_runs: int = 600) -> FuzzCase:
    """Reduce a diverging case; returns a (usually much) smaller one.

    The result is guaranteed to still diverge (the last accepted
    candidate always re-ran the differential check).
    """
    budget = _Budget(max_runs)
    case = _shrink_events(case, budget)
    case = _simplify_config(case, budget)
    case = _simplify_values(case, budget)
    # One more event pass: simplified values often unlock more removal.
    case = _shrink_events(case, budget)
    return dc_replace(case, label=f"{case.label}-shrunk")
