"""Divergence shrinking: delta-debug a failing case to a minimal one.

A fuzz divergence is only useful if a human can stare at it, so any
failing :class:`~repro.verify.differential.FuzzCase` is reduced before
it is reported or written to the regression corpus:

1. **Event minimization** -- classic ddmin: remove ever-smaller chunks
   of the trace, keeping each removal that still diverges;
2. **Value simplification** -- try replacing each operand with a small
   "obvious" value of the same kind, and strip annotations;
3. **Config simplification** -- try the plainest table that still
   diverges (fewer entries, LRU, full tags, EXCLUDE, finite).

Every candidate is re-run through the full differential check **and
must reproduce the original divergence**: a candidate is accepted only
if its divergence signature (kind of report line; for crashes, the
crashing path and exception class) intersects the signature of the case
being shrunk.  Without this, ddmin happily walks from a genuine stats
divergence to any unrelated crash a truncated trace happens to trigger
-- the "decoy" bug this module's regression test pins down.

The total number of re-runs is bounded, and the original case is
returned unshrunk if reduction stalls.  Deterministic: no randomness.
"""

from __future__ import annotations

import re
from dataclasses import replace as dc_replace
from typing import FrozenSet, Iterable, List, Optional

from ..core.config import (
    MemoTableConfig,
    ReplacementKind,
    TagMode,
    TrivialPolicy,
)
from ..isa.trace import TraceEvent
from .differential import CaseResult, FuzzCase, canonicalize, run_case

__all__ = ["divergence_signature", "shrink_case"]

#: ``crash: <path> raised <ExcClass>(...)`` -- the shape every crash
#: divergence line of :mod:`repro.verify.differential` has.
_CRASH_LINE = re.compile(
    r"^crash: (?P<path>.+?) raised (?P<exc>[A-Za-z_][A-Za-z0-9_.]*)\("
)

#: Replacement candidates per operand kind, plainest first.
_SIMPLE_FLOATS = (2.0, 1.5, 3.0, 0.5)
_SIMPLE_INTS = (2, 3, 5, 7)


class _Budget:
    """Caps the number of differential re-runs a shrink may spend."""

    def __init__(self, limit: int) -> None:
        self.left = limit

    def spend(self) -> bool:
        if self.left <= 0:
            return False
        self.left -= 1
        return True


def _with_events(case: FuzzCase, events) -> FuzzCase:
    return dc_replace(case, events=canonicalize(events))


def divergence_signature(divergences: Iterable[str]) -> FrozenSet[str]:
    """The *kinds* of divergence in a report, as a comparable set.

    Non-crash lines contribute their report kind (``stats``,
    ``table contents``, ``delivered value``, ``report``, ``reuse
    bound``); crash lines contribute ``crash:<path>:<ExcClass>`` so a
    ``ZeroDivisionError`` from the oracle is never confused with, say, a
    ``ValueError`` out of the batched kernel.
    """
    kinds = set()
    for line in divergences:
        match = _CRASH_LINE.match(line)
        if match is not None:
            kinds.add(f"crash:{match.group('path')}:{match.group('exc')}")
        else:
            kinds.add(line.split(":", 1)[0])
    return frozenset(kinds)


def _diverges(
    case: FuzzCase,
    budget: _Budget,
    signature: Optional[FrozenSet[str]] = None,
) -> bool:
    """Does ``case`` still reproduce the divergence being shrunk?

    With a ``signature``, a candidate only counts if at least one of its
    divergence kinds matches the original's -- *any* divergence is not
    good enough (a truncated trace can crash in ways the original case
    never did).
    """
    if not case.events or not budget.spend():
        return False
    divergences = run_case(case).divergences
    if not divergences:
        return False
    if signature is None:
        return True
    return bool(divergence_signature(divergences) & signature)


def _shrink_events(
    case: FuzzCase,
    budget: _Budget,
    signature: Optional[FrozenSet[str]] = None,
) -> FuzzCase:
    events = list(case.events)
    chunk = max(1, len(events) // 2)
    while chunk >= 1:
        i = 0
        while i < len(events):
            candidate = events[:i] + events[i + chunk:]
            if candidate:
                smaller = _with_events(case, candidate)
                if _diverges(smaller, budget, signature):
                    events = candidate
                    case = smaller
                    continue  # retry the same position
            i += chunk
        chunk //= 2
    return case


def _simplify_values(
    case: FuzzCase,
    budget: _Budget,
    signature: Optional[FrozenSet[str]] = None,
) -> FuzzCase:
    events: List[TraceEvent] = list(case.events)
    for i, event in enumerate(events):
        if event.opcode.operation is None:
            continue
        is_int = isinstance(event.a, int)
        pool = _SIMPLE_INTS if is_int else _SIMPLE_FLOATS
        for which in ("a", "b"):
            current = getattr(event, which)
            for value in pool:
                if current == value:
                    break
                trial = list(events)
                trial[i] = event._replace(**{which: value})
                candidate = _with_events(case, trial)
                if _diverges(candidate, budget, signature):
                    events = trial
                    event = trial[i]
                    case = candidate
                    break
        # Annotations never affect probing; drop them if they are set.
        if event.address is not None or event.dst is not None or event.srcs:
            trial = list(events)
            trial[i] = event._replace(address=None, dst=None, srcs=(), pc=None)
            candidate = _with_events(case, trial)
            if _diverges(candidate, budget, signature):
                events = trial
                case = candidate
    return case


def _simplify_config(
    case: FuzzCase,
    budget: _Budget,
    signature: Optional[FrozenSet[str]] = None,
) -> FuzzCase:
    cfg = case.config
    candidates = []
    if case.infinite:
        candidates.append(dc_replace(case, infinite=False))
    if case.trivial_policy is not TrivialPolicy.EXCLUDE:
        candidates.append(
            dc_replace(case, trivial_policy=TrivialPolicy.EXCLUDE)
        )
    if cfg.tag_mode is not TagMode.FULL:
        candidates.append(dc_replace(
            case, config=dc_replace(cfg, tag_mode=TagMode.FULL)
        ))
    if cfg.replacement is not ReplacementKind.LRU:
        candidates.append(dc_replace(
            case, config=dc_replace(cfg, replacement=ReplacementKind.LRU)
        ))
    for candidate in candidates:
        if _diverges(candidate, budget, signature):
            case = candidate
            cfg = case.config
    # Smallest geometry that still diverges.
    entries = cfg.entries
    while entries > 2:
        entries //= 2
        assoc = min(cfg.associativity, entries)
        while entries % assoc:
            assoc //= 2
        try:
            smaller_cfg = MemoTableConfig(
                entries=entries,
                associativity=assoc,
                operand_kind=cfg.operand_kind,
                tag_mode=cfg.tag_mode,
                commutative=cfg.commutative,
                replacement=cfg.replacement,
                seed=cfg.seed,
            )
        except Exception:
            break
        candidate = dc_replace(case, config=smaller_cfg)
        if not _diverges(candidate, budget, signature):
            break
        case = candidate
        cfg = smaller_cfg
    return case


def shrink_case(
    case: FuzzCase,
    max_runs: int = 600,
    result: Optional[CaseResult] = None,
) -> FuzzCase:
    """Reduce a diverging case; returns a (usually much) smaller one.

    ``result`` is the original differential outcome, if the caller
    already has it (the fuzz loop does); otherwise one re-run records
    the divergence signature.  Every accepted reduction reproduces a
    divergence of the *same kind* -- the result is never a smaller case
    that fails differently from the one reported.
    """
    budget = _Budget(max_runs)
    if result is None:
        budget.spend()
        result = run_case(case)
    signature: Optional[FrozenSet[str]] = (
        divergence_signature(result.divergences) or None
    )
    case = _shrink_events(case, budget, signature)
    case = _simplify_config(case, budget, signature)
    case = _simplify_values(case, budget, signature)
    # One more event pass: simplified values often unlock more removal.
    case = _shrink_events(case, budget, signature)
    return dc_replace(case, label=f"{case.label}-shrunk")
