"""``repro verify`` -- the differential fuzzing front door.

Subcommands:

* ``fuzz``  -- run a seeded fuzz campaign; any divergence is shrunk and
  written into the regression corpus (exit 1).  With ``--inject FAULT``
  the campaign instead runs against a deliberately-broken kernel and
  exits 0 only if the harness *caught* the planted bug.
* ``smoke`` -- the mutation-testing gate: a clean pass must find
  nothing, and each known kernel fault must be detected within a small
  budget.  Run on every PR.
* ``seed``  -- materialize the hand-minimized seed regressions.
* ``replay`` -- re-run every stored regression through the full
  differential check (what ``tests/test_regressions.py`` automates).
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional

from ..core import backend as execution
from .differential import run_case
from .faults import KERNEL_FAULTS, inject
from .fuzz import fuzz_run
from .regressions import load_cases, seed_cases, write_case
from .shrink import shrink_case

__all__ = ["main"]

DEFAULT_REGRESSIONS = Path("tests/regressions")

#: Bundled programs cross-checked against the static analyzer's bounds
#: during a fuzz campaign (dynamic hit ratio must fall inside them).
STATIC_CHECK_PROGRAMS = ("saxpy", "dot_product", "gamma_lut")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro verify",
        description="Golden-oracle differential fuzzing of the memo kernel.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fuzz = sub.add_parser("fuzz", help="run a fuzz campaign")
    fuzz.add_argument("--budget", type=int, default=1000,
                      help="number of fuzz cases (default 1000)")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="campaign seed (default 0)")
    fuzz.add_argument("--max-events", type=int, default=192,
                      help="max events per generated trace")
    fuzz.add_argument("--regressions-dir", type=Path,
                      default=DEFAULT_REGRESSIONS,
                      help="where shrunk divergences are written")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="report divergences without minimizing them")
    fuzz.add_argument("--no-static-check", action="store_true",
                      help="skip the static-bounds cross-validation")
    fuzz.add_argument("--inject", choices=sorted(KERNEL_FAULTS),
                      help="plant a known kernel fault; exit 0 iff caught")
    fuzz.add_argument("--metrics-out", metavar="PATH", default=None,
                      help="enable the metrics registry for the campaign "
                           "and write its JSON snapshot to PATH")
    fuzz.add_argument("--submit", action="store_true",
                      help="run the campaign as a job on a running "
                           "`repro serve` instance instead of in-process "
                           "(endpoint discovered via the default queue "
                           "directory's server.json)")

    smoke = sub.add_parser(
        "smoke", help="mutation-testing gate: clean pass + all faults caught"
    )
    smoke.add_argument("--budget", type=int, default=400,
                       help="fuzz cases per fault (default 400)")
    smoke.add_argument("--seed", type=int, default=0)

    seed = sub.add_parser("seed", help="write the hand-minimized seed cases")
    seed.add_argument("--dir", type=Path, default=DEFAULT_REGRESSIONS)
    seed.add_argument("--overwrite", action="store_true")

    replay = sub.add_parser("replay", help="re-run the regression corpus")
    replay.add_argument("--dir", type=Path, default=DEFAULT_REGRESSIONS)
    return parser


def _progress(done: int, report) -> None:
    print(
        f"  ... {done} cases, {report.features} coverage features, "
        f"{len(report.divergent)} divergent",
        flush=True,
    )


def _static_cross_check(seed: int) -> List[str]:
    """Fuzz the static analyzer's reference harness size too.

    The fuzzer proper exercises synthetic traces; this leg runs a few
    bundled programs at a seeded problem size and demands the measured
    infinite-table hit ratio stay inside the analyzer's sound bracket.
    """
    from ..analysis.static.memo import check_program

    failures = []
    for i, name in enumerate(STATIC_CHECK_PROGRAMS):
        n = 4 + (seed * 7 + i * 13) % 61  # deterministic n in [4, 64]
        result = check_program(name, n=n)
        if not result.ok:
            failures.append(
                f"static bounds violated for {name} (n={n}): measured "
                f"{result.measured:.4f} outside "
                f"[{result.bounds.lower:.4f}, {result.bounds.upper:.4f}]"
            )
    return failures


def _submit_fuzz(args) -> int:
    """Run the campaign as a ``fuzz`` job on a live ``repro serve``.

    The service executes the identical :func:`fuzz_run` the in-process
    path uses, so the verdict (and exit status) carries over; shrinking
    and fault injection stay local-only concerns.
    """
    from ..serve.cli import _default_url, render_result_document
    from ..serve.client import ServeClient, ServeError

    if args.inject:
        print("--submit cannot be combined with --inject", file=sys.stderr)
        return 2
    spec = {"type": "fuzz", "budget": args.budget, "seed": args.seed,
            "max_events": args.max_events}
    client = ServeClient(_default_url(None))
    try:
        submitted = client.submit(spec)
        job_id = submitted["id"]
        print(f"{job_id} submitted ({submitted.get('describe')})")
        record = client.wait(job_id)
        if record["state"] != "done":
            print(f"job {job_id} {record['state']}: {record.get('error')}",
                  file=sys.stderr)
            return 1
        document = client.result(job_id)
    except ServeError as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 1
    print(render_result_document(document))
    return 0 if document.get("ok", not document.get("divergent")) else 1


def _run_fuzz(args) -> int:
    if args.submit:
        return _submit_fuzz(args)
    if execution.selected_name() != execution.DEFAULT_BACKEND:
        # Faults and most divergences live in the batched fast path, and
        # the differential legs pin their backends explicitly; forcing a
        # process-wide backend would fuzz a path against itself.
        execution.set_backend(None)
        os.environ.pop(execution.LEGACY_ENV_VAR, None)
        print("note: REPRO_BACKEND/REPRO_SCALAR ignored under `repro verify`")

    if args.inject:
        with inject(args.inject):
            report = fuzz_run(
                args.budget, seed=args.seed, max_events=args.max_events,
                stop_after=1, progress=_progress,
            )
        if report.divergent:
            case = report.divergent[0]
            print(
                f"fault {args.inject!r} DETECTED after {report.cases} "
                f"cases ({case.case.describe()})"
            )
            return 0
        print(
            f"fault {args.inject!r} NOT detected within {report.cases} cases",
            file=sys.stderr,
        )
        return 1

    report = fuzz_run(
        args.budget, seed=args.seed, max_events=args.max_events,
        stop_after=1, progress=_progress,
    )
    print(
        f"{report.cases} cases, {report.events} events, "
        f"{report.features} coverage features, "
        f"{len(report.divergent)} divergent"
    )
    status = 0
    for result in report.divergent:
        status = 1
        case = result.case
        print(f"\nDIVERGENCE in {case.describe()}:")
        for line in result.divergences:
            print(f"  - {line}")
        if not args.no_shrink:
            small = shrink_case(case, result=result)
            final = run_case(small)
            print(f"  shrunk to {small.describe()}:")
            for line in final.divergences:
                print(f"  - {line}")
            path = write_case(
                args.regressions_dir, small,
                description="; ".join(final.divergences)
                or "; ".join(result.divergences),
                name=f"fuzz-seed{args.seed}",
            )
            print(f"  regression written to {path}")

    if status == 0 and not args.no_static_check:
        failures = _static_cross_check(args.seed)
        for line in failures:
            status = 1
            print(f"DIVERGENCE: {line}")
        if not failures:
            print(
                "static-bounds cross-check ok "
                f"({len(STATIC_CHECK_PROGRAMS)} programs)"
            )
    return status


def _run_smoke(args) -> int:
    if execution.selected_name() != execution.DEFAULT_BACKEND:
        execution.set_backend(None)
        os.environ.pop(execution.LEGACY_ENV_VAR, None)
        print("note: REPRO_BACKEND/REPRO_SCALAR ignored under `repro verify`")
    failures = []

    clean = fuzz_run(args.budget, seed=args.seed, stop_after=1)
    if clean.divergent:
        failures.append(
            "clean kernel diverged: "
            + "; ".join(clean.divergent[0].divergences)
        )
        print(f"clean pass: FAILED ({clean.cases} cases)")
    else:
        print(f"clean pass: ok ({clean.cases} cases, no divergence)")

    for fault in KERNEL_FAULTS:
        with inject(fault):
            report = fuzz_run(args.budget, seed=args.seed, stop_after=1)
        if report.divergent:
            print(f"fault {fault}: detected after {report.cases} cases")
        else:
            failures.append(f"fault {fault} escaped {report.cases} cases")
            print(f"fault {fault}: NOT DETECTED")

    if failures:
        print(f"\nsmoke FAILED: {len(failures)} problem(s)", file=sys.stderr)
        for line in failures:
            print(f"  - {line}", file=sys.stderr)
        return 1
    print("\nsmoke ok: clean pass silent, all "
          f"{len(KERNEL_FAULTS)} faults detected")
    return 0


def _run_seed(args) -> int:
    written = seed_cases(args.dir, overwrite=args.overwrite)
    for path in written:
        print(f"wrote {path}")
    if not written:
        print("seed cases already present (use --overwrite to rewrite)")
    return 0


def _run_replay(args) -> int:
    cases = load_cases(args.dir)
    if not cases:
        print(f"no regressions under {args.dir}", file=sys.stderr)
        return 1
    status = 0
    for regression in cases:
        result = run_case(regression.case)
        if result.ok:
            print(f"{regression.name}: ok ({regression.case.describe()})")
        else:
            status = 1
            print(f"{regression.name}: DIVERGED")
            for line in result.divergences:
                print(f"  - {line}")
    return status


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "fuzz":
        if args.metrics_out is not None:
            from .. import obs
            from ..obs.cli import write_snapshot

            obs.set_enabled(True)
            obs.registry().clear()
            try:
                with obs.span("verify.fuzz"):
                    status = _run_fuzz(args)
                write_snapshot(obs.registry().as_dict(), args.metrics_out)
            finally:
                obs.set_enabled(None)
            return status
        return _run_fuzz(args)
    if args.command == "smoke":
        return _run_smoke(args)
    if args.command == "seed":
        return _run_seed(args)
    return _run_replay(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
