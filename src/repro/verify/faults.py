"""Known-fault injection for the mutation smoke mode.

A verification harness that has never caught a bug proves nothing, so
``repro verify smoke`` plants real bugs: each named fault below flips
one decision inside the batched kernel's fast path
(:func:`repro.core.kernel._probe_fast`) or the speculation layer's
guard/abort machinery (:mod:`repro.core.speculate`) the way a
plausible regression would, and the differential fuzzer must detect
the divergence within its budget.  The seam is the kernel's active-fault latch, reached
through the backend facade (:func:`repro.core.backend.set_active_fault`);
it is only ever set through the :func:`inject` context manager and
therefore never leaks into production runs.
"""

from __future__ import annotations

import contextlib
from typing import Dict, Iterator

from ..core import backend as execution

__all__ = ["KERNEL_FAULTS", "inject"]

#: fault name -> what the planted bug does to the fast path.
KERNEL_FAULTS: Dict[str, str] = {
    "lru_victim_off_by_one": (
        "the inlined LRU scan evicts the way AFTER the least recently "
        "used one"
    ),
    "dropped_trivial_mask": (
        "the vectorized trivial-operand mask is discarded, so trivial "
        "operations flow into the table under EXCLUDE"
    ),
    "wrong_set_index_mask": (
        "the set-index mask loses its top bit, aliasing half the sets"
    ),
    "stale_tag_on_abort": (
        "a miss inserts under the previous probe's tag (a stale tag "
        "latch), corrupting future lookups"
    ),
    "speculate_guard_false_pass": (
        "the speculative region guard always passes, committing a "
        "trained region plan even when the operand sequence changed"
    ),
    "speculate_abort_drops_stats": (
        "a speculative abort re-executes the region but drops its "
        "in-flight lookup/hit/insert counters on the floor"
    ),
}

assert (
    tuple(KERNEL_FAULTS)
    == execution.KERNEL_FAULTS + execution.SPECULATE_FAULTS
)


@contextlib.contextmanager
def inject(name: str) -> Iterator[None]:
    """Activate one named kernel fault for the duration of the block."""
    if name not in KERNEL_FAULTS:
        raise ValueError(
            f"unknown fault {name!r}; known: {', '.join(KERNEL_FAULTS)}"
        )
    previous = execution.active_fault()
    execution.set_active_fault(name)
    try:
        yield
    finally:
        execution.set_active_fault(previous)
