"""Seeded, coverage-guided trace/config fuzzer.

Generates and mutates :class:`~repro.verify.differential.FuzzCase`
objects biased toward the places memo-table implementations break:

* IEEE-754 edge values -- denormals, both signed zeros, NaN payloads
  and infinities whose mantissa fields collide with ordinary values
  (the mantissa-tag variant must disambiguate via the fix-up path);
* set-index aliasing -- operand reuse and single-bit flips concentrate
  distinct pairs in the same set, forcing replacement decisions;
* INT64 corners -- ``INT_MIN`` division (the quotient that overflows),
  ``INT_MAX``, values differing only in masked-out bits;
* table geometry -- tiny tables (4/8 entries) that evict constantly,
  every replacement policy and trivial policy, mantissa tags, and the
  infinite reference table;
* hot-loop traces -- small op bodies replayed under recurring pcs
  (loop-invariant or per-iteration-redrawn operands), so the
  speculative backend's region detector, guard and abort paths are all
  on the differential hook.

Coverage guidance is behavioural: each executed case reports a feature
signature (per-operation hit/eviction/commutative/trivial activity under
its config shape, from the *oracle's* counters); cases that light up new
features join a mutation corpus that later cases are bred from.

Everything is driven by one ``random.Random(seed)``: same seed, same
case stream, no wall clock anywhere.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..arch.ieee754 import bits_to_float64
from ..core.config import (
    MemoTableConfig,
    ReplacementKind,
    TagMode,
    TrivialPolicy,
)
from ..isa.opcodes import Opcode
from ..isa.trace import TraceEvent
from .differential import CaseResult, FuzzCase, canonicalize, run_case

__all__ = ["TraceFuzzer", "FuzzReport", "fuzz_run"]

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1

#: Opcodes with a memoized unit behind them.
MEMO_OPCODES = (
    Opcode.IMUL, Opcode.IDIV, Opcode.FMUL, Opcode.FDIV,
    Opcode.FSQRT, Opcode.FRECIP, Opcode.FLOG, Opcode.FSIN, Opcode.FCOS,
)
_INT_OPCODES = (Opcode.IMUL, Opcode.IDIV)
_UNARY_OPCODES = (
    Opcode.FSQRT, Opcode.FRECIP, Opcode.FLOG, Opcode.FSIN, Opcode.FCOS,
)
_PLAIN_OPCODES = (
    Opcode.IALU, Opcode.FADD, Opcode.LOAD, Opcode.STORE,
    Opcode.BRANCH, Opcode.NOP,
)

# -- edge-value pools -------------------------------------------------------

#: The 1.5 family: identical 52-bit mantissa (0x8000000000000) across
#: different exponents -- and the default NaN and the infinities share
#: mantissa fields with ordinary values, so mantissa-only tags collide.
_FLOAT_EDGES = (
    0.0, -0.0, 1.0, -1.0, 2.0, -2.0, 0.5, 4.0,
    1.5, 3.0, 6.0, 0.75, 0.1875, -1.5, -3.0,
    float("inf"), float("-inf"),
    bits_to_float64(0x7FF8000000000000),   # quiet NaN (mantissa = 1.5's)
    bits_to_float64(0x7FF0000000000001),   # signalling-style NaN payload
    bits_to_float64(0xFFF8000000000123),   # negative NaN, odd payload
    5e-324,                                # smallest subnormal
    bits_to_float64(0x000FFFFFFFFFFFFF),   # largest subnormal
    bits_to_float64(0x0010000000000000),   # smallest normal
    1.7976931348623157e308,                # largest finite
    2.5, -2.5, 0.1, 3.141592653589793,
)

_INT_EDGES = (
    0, 1, -1, 2, -2, 3, 7, -13, 255, 256,
    _INT64_MIN, _INT64_MIN + 1, _INT64_MAX, _INT64_MAX - 1,
    1 << 32, -(1 << 32), 1 << 52, 1 << 62, -(1 << 62),
)

_ENTRY_CHOICES = (4, 4, 8, 8, 8, 16, 32, 64)


def _wrap_int64(value: int) -> int:
    """Wrap an int into int64 (hardware register truth; keeps events
    serializable -- the columnar format rejects wide integers)."""
    value &= (1 << 64) - 1
    return value - (1 << 64) if value >> 63 else value


class TraceFuzzer:
    """Deterministic coverage-guided generator of fuzz cases."""

    def __init__(self, seed: int = 0, max_events: int = 192) -> None:
        self.rng = random.Random(seed)
        self.max_events = max_events
        self.corpus: List[FuzzCase] = []
        self.seen_features: set = set()
        self.cases_made = 0

    # -- value providers --------------------------------------------------

    def _float_value(self, recent: List) -> float:
        rng = self.rng
        roll = rng.random()
        if roll < 0.45:
            return rng.choice(_FLOAT_EDGES)
        if roll < 0.75 and recent:
            return rng.choice(recent)
        strategy = rng.randrange(3)
        if strategy == 0:
            return rng.uniform(-1000.0, 1000.0)
        if strategy == 1:
            # Random bit pattern: any float, including NaN/Inf/denormals.
            return bits_to_float64(rng.getrandbits(64))
        # Power-of-two scaling: exact mantissa collisions by design.
        return rng.choice((1.5, 2.5, 0.1, 7.0)) * 2.0 ** rng.randint(-60, 60)

    def _int_value(self, recent: List) -> int:
        rng = self.rng
        roll = rng.random()
        if roll < 0.45:
            return rng.choice(_INT_EDGES)
        if roll < 0.75 and recent:
            return rng.choice(recent)
        if rng.random() < 0.5:
            return rng.randint(-64, 64)
        return _wrap_int64(rng.getrandbits(64))

    def _operand(self, opcode: Opcode, recent_i: List, recent_f: List):
        if opcode in _INT_OPCODES:
            return self._int_value(recent_i)
        return self._float_value(recent_f)

    # -- event construction ----------------------------------------------

    def _sanitize(self, event: TraceEvent) -> TraceEvent:
        """Keep events inside the domain every path computes on."""
        from ..core.operations import compute

        opcode = event.opcode
        operation = opcode.operation
        if operation is None:
            return event
        a, b = event.a, event.b
        if opcode in _INT_OPCODES:
            # Integer units: operands must be exact int64 register values.
            a = _wrap_int64(int(a) if a == a and abs(a) != float("inf")
                            else 0)
            b = _wrap_int64(int(b) if b == b and abs(b) != float("inf")
                            else 0)
        elif opcode in (Opcode.FSIN, Opcode.FCOS):
            # math.sin/cos raise on infinities (NaN is fine).
            if a == float("inf") or a == float("-inf"):
                a = 1.25
            if b == float("inf") or b == float("-inf"):
                b = 0.0
        result = compute(operation, a, b)
        if isinstance(result, int):
            result = _wrap_int64(result)
        return event._replace(a=a, b=b, result=result)

    def _fresh_events(self) -> List[TraceEvent]:
        rng = self.rng
        size_class = rng.random()
        if size_class < 0.25:
            n = rng.randint(1, 8)
        elif size_class < 0.75:
            n = rng.randint(8, 48)
        else:
            n = rng.randint(48, self.max_events)
        if rng.random() < 0.2:
            opcodes = [rng.choice(MEMO_OPCODES)]
        else:
            opcodes = list(rng.sample(
                MEMO_OPCODES, rng.randint(2, len(MEMO_OPCODES))
            ))
        plain_p = 0.1 if rng.random() < 0.5 else 0.0
        recent_i: List[int] = []
        recent_f: List[float] = []
        events = []
        for _ in range(n):
            if plain_p and rng.random() < plain_p:
                opcode = rng.choice(_PLAIN_OPCODES)
                address = (
                    rng.randrange(1 << 20) if opcode.is_memory else None
                )
                events.append(TraceEvent(opcode, address=address))
                continue
            opcode = rng.choice(opcodes)
            a = self._operand(opcode, recent_i, recent_f)
            if opcode in _UNARY_OPCODES and rng.random() < 0.85:
                b = 0.0
            else:
                b = self._operand(opcode, recent_i, recent_f)
            events.append(self._sanitize(TraceEvent(opcode, a, b, 0.0)))
            recent = recent_i if opcode in _INT_OPCODES else recent_f
            recent.append(a)
            if len(recent) > 12:
                del recent[0]
        return events

    def _loop_events(self) -> List[TraceEvent]:
        """A hot loop: one small body of memo ops replayed under
        recurring pcs -- the trace shape the speculative backend's
        region detector engages on.  Loop-invariant operand streams
        drive the commit path; redrawn operands drive guard failures
        and the abort handoff."""
        rng = self.rng
        body_n = rng.randint(2, 6)
        iters = rng.randint(4, max(4, min(14, self.max_events // body_n)))
        pc_base = rng.randrange(1 << 16) * 4
        stable = rng.random() < 0.5
        recent_i: List[int] = []
        recent_f: List[float] = []
        body = []
        for _ in range(body_n):
            opcode = rng.choice(MEMO_OPCODES)
            a = self._operand(opcode, recent_i, recent_f)
            if opcode in _UNARY_OPCODES and rng.random() < 0.85:
                b = 0.0
            else:
                b = self._operand(opcode, recent_i, recent_f)
            body.append((opcode, a, b))
        events = []
        for _ in range(iters):
            for slot, (opcode, a, b) in enumerate(body):
                if not stable and rng.random() < 0.4:
                    a = self._operand(opcode, recent_i, recent_f)
                events.append(self._sanitize(
                    TraceEvent(opcode, a, b, 0.0, pc=pc_base + 4 * slot)
                ))
        return events

    def _fresh_config(self) -> MemoTableConfig:
        rng = self.rng
        entries = rng.choice(_ENTRY_CHOICES)
        assoc = rng.choice(
            [d for d in (1, 2, 4, 8, 16, 32, 64)
             if d <= entries and entries % d == 0]
        )
        tag_mode = TagMode.MANTISSA if rng.random() < 0.25 else TagMode.FULL
        replacement = rng.choice((
            ReplacementKind.LRU, ReplacementKind.LRU,
            ReplacementKind.FIFO, ReplacementKind.RANDOM,
        ))
        return MemoTableConfig(
            entries=entries,
            associativity=assoc,
            tag_mode=tag_mode,
            replacement=replacement,
            seed=rng.randrange(4),
        )

    def _fresh_policy(self) -> TrivialPolicy:
        return self.rng.choice((
            TrivialPolicy.EXCLUDE, TrivialPolicy.EXCLUDE,
            TrivialPolicy.INTEGRATED, TrivialPolicy.CACHE_ALL,
        ))

    def _build(self, events, config, policy, infinite, label) -> FuzzCase:
        self.cases_made += 1
        return FuzzCase(
            events=canonicalize(events),
            config=config,
            trivial_policy=policy,
            infinite=infinite,
            label=label,
        )

    def _generate(self) -> FuzzCase:
        return self._build(
            self._fresh_events(),
            self._fresh_config(),
            self._fresh_policy(),
            self.rng.random() < 0.1,
            f"gen-{self.cases_made}",
        )

    def _generate_loop(self) -> FuzzCase:
        """A hot-loop case.  The speculation tier only engages on the
        stock configuration (EXCLUDE, full tags, LRU, finite), so bias
        -- not pin -- the config there; the unbiased tail still
        exercises the degrade path under loop traces."""
        rng = self.rng
        config = self._fresh_config()
        if rng.random() < 0.8:
            config = MemoTableConfig(
                entries=config.entries,
                associativity=config.associativity,
                tag_mode=TagMode.FULL,
                replacement=ReplacementKind.LRU,
                seed=config.seed,
            )
        policy = (
            TrivialPolicy.EXCLUDE
            if rng.random() < 0.8
            else self._fresh_policy()
        )
        return self._build(
            self._loop_events(),
            config,
            policy,
            rng.random() < 0.05,
            f"loop-{self.cases_made}",
        )

    # -- mutation ---------------------------------------------------------

    def _flip_float_bit(self, value: float) -> float:
        from ..arch.ieee754 import float64_to_bits

        bit = self.rng.randrange(64)
        return bits_to_float64(float64_to_bits(float(value)) ^ (1 << bit))

    def _mutate_value(self, event: TraceEvent, which: str) -> TraceEvent:
        rng = self.rng
        value = getattr(event, which)
        if event.opcode in _INT_OPCODES:
            choice = rng.randrange(4)
            if choice == 0:
                value = rng.choice(_INT_EDGES)
            elif choice == 1:
                value = _wrap_int64(int(value) + rng.choice((-1, 1)))
            elif choice == 2:
                value = _wrap_int64(-int(value))
            else:
                value = _wrap_int64(int(value) ^ (1 << rng.randrange(63)))
        else:
            choice = rng.randrange(3)
            if choice == 0:
                value = rng.choice(_FLOAT_EDGES)
            elif choice == 1:
                value = self._flip_float_bit(value)
            else:
                value = float(value) * 2.0 ** rng.randint(-8, 8)
        return event._replace(**{which: value})

    def _mutate_events(self, events: List[TraceEvent]) -> List[TraceEvent]:
        rng = self.rng
        events = list(events)
        for _ in range(rng.randint(1, 3)):
            if not events:
                break
            op = rng.randrange(7)
            i = rng.randrange(len(events))
            event = events[i]
            memoizable = event.opcode.operation is not None
            if op == 0:
                # Duplicate an event later in the trace: forced reuse.
                j = rng.randint(i, len(events))
                events.insert(j, event)
            elif op == 1 and memoizable:
                events[i] = self._sanitize(
                    event._replace(a=event.b, b=event.a)
                )
            elif op == 2 and memoizable:
                # Copy an operand across events: index/tag aliasing.
                j = rng.randrange(len(events))
                donor = events[j]
                if donor.opcode.operation is not None and (
                    (donor.opcode in _INT_OPCODES)
                    == (event.opcode in _INT_OPCODES)
                ):
                    which = rng.choice(("a", "b"))
                    value = getattr(donor, rng.choice(("a", "b")))
                    events[i] = self._sanitize(
                        event._replace(**{which: value})
                    )
            elif op == 3 and memoizable:
                events[i] = self._sanitize(
                    self._mutate_value(event, rng.choice(("a", "b")))
                )
            elif op == 4 and len(events) > 2:
                lo = rng.randrange(len(events) - 1)
                hi = rng.randint(lo + 1, min(len(events), lo + 8))
                del events[lo:hi]
            elif op == 5 and len(events) <= self.max_events // 2:
                events = events + events
            elif op == 6 and memoizable:
                family = (
                    _INT_OPCODES
                    if event.opcode in _INT_OPCODES
                    else tuple(
                        o for o in MEMO_OPCODES if o not in _INT_OPCODES
                    )
                )
                events[i] = self._sanitize(
                    event._replace(opcode=rng.choice(family))
                )
        return events

    def _mutate(self, parent: FuzzCase) -> FuzzCase:
        rng = self.rng
        events = self._mutate_events(list(parent.events))
        config = parent.config
        policy = parent.trivial_policy
        infinite = parent.infinite
        if rng.random() < 0.25:
            roll = rng.randrange(3)
            if roll == 0:
                config = self._fresh_config()
            elif roll == 1:
                policy = self._fresh_policy()
            else:
                infinite = not infinite
        return self._build(
            events, config, policy, infinite, f"mut-{self.cases_made}"
        )

    # -- the fuzz loop ----------------------------------------------------

    def next_case(self) -> FuzzCase:
        # Every third case is a hot-loop case, independently of the
        # corpus: the speculation tier's guard/abort bugs (both planted
        # ones live there) only manifest on recurring-pc traces, which
        # mutation of an arbitrary corpus parent essentially never
        # produces -- and a fixed cadence (rather than a coin flip)
        # keeps the first loop cases inside the small smoke budgets for
        # every seed.
        if self.cases_made % 3 == 1:
            return self._generate_loop()
        if self.corpus and self.rng.random() < 0.6:
            return self._mutate(self.rng.choice(self.corpus))
        return self._generate()

    def observe(self, case: FuzzCase, result: CaseResult) -> None:
        novel = result.features - self.seen_features
        if not novel:
            return
        self.seen_features |= novel
        self.corpus.append(case)
        if len(self.corpus) > 128:
            self.corpus.pop(self.rng.randrange(len(self.corpus)))


@dataclass
class FuzzReport:
    """Outcome of one fuzzing campaign."""

    cases: int = 0
    events: int = 0
    features: int = 0
    divergent: List[CaseResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergent


def fuzz_run(
    budget: int,
    seed: int = 0,
    max_events: int = 192,
    stop_after: int = 1,
    progress: Optional[Callable[[int, FuzzReport], None]] = None,
) -> FuzzReport:
    """Run ``budget`` differential fuzz cases; collect divergences.

    Stops early once ``stop_after`` divergent cases have been found
    (shrinking wants just the first; a survey run can raise it).
    ``progress(case_index, report)`` is called every 500 cases.
    """
    fuzzer = TraceFuzzer(seed=seed, max_events=max_events)
    report = FuzzReport()
    for index in range(budget):
        case = fuzzer.next_case()
        result = run_case(case)
        report.cases += 1
        report.events += len(case.events)
        fuzzer.observe(case, result)
        if result.divergences:
            report.divergent.append(result)
            if len(report.divergent) >= stop_after:
                break
        if progress is not None and (index + 1) % 500 == 0:
            report.features = len(fuzzer.seen_features)
            progress(index + 1, report)
    report.features = len(fuzzer.seen_features)
    return report
