"""A golden oracle for the memo-table hierarchy.

This is the trivially-correct model the differential fuzzer compares the
production paths against.  It re-implements the complete observable
semantics of :class:`repro.core.memo_table.MemoTable` /
:class:`InfiniteMemoTable` / :class:`repro.core.unit.MemoizedUnit` --
set indexing, full and mantissa-only tags, commutative double-order
compare, LRU/FIFO/RANDOM replacement, the table clock, trivial-operand
policies, the mantissa-hit exponent fix-up, and cycle accounting -- in
the most obvious way possible: plain lists of dict-like entries, one
small step method per event, no numpy, no batching, no shared probe
machinery.

What it deliberately *shares* with production code is the semantic
ground truth that is not under test: :func:`repro.core.operations.compute`
(what a multiply/divide produces) and the configuration vocabulary
(:mod:`repro.core.config` enums).  Everything the kernel could get wrong
-- who hits, who is evicted, what the counters say -- is independent.

Speed is explicitly a non-goal; if a line here is not obviously correct
against the paper's section 2 description, that is a bug.
"""

from __future__ import annotations

import math
import random
import struct
from typing import Dict, List, Optional, Tuple

from ..core.config import (
    MemoTableConfig,
    OperandKind,
    ReplacementKind,
    TagMode,
    TrivialPolicy,
)
from ..core.operations import Operation, compute
from ..core.unit import DEFAULT_LATENCIES

__all__ = ["OracleEntry", "OracleTable", "OracleInfiniteTable",
           "OracleUnit", "OracleBank"]

_MANT_MASK = (1 << 52) - 1
_PACK = struct.Struct("<d").pack
_UNPACK = struct.Struct("<Q").unpack


def _float_bits(value: float) -> int:
    """The 64 raw bits of ``value`` (NaN payloads, -0.0 preserved)."""
    return _UNPACK(_PACK(value))[0]


class OracleEntry:
    """One stored way: a tag guarding a value, with recency timestamps."""

    __slots__ = ("tag", "value", "operands", "last_used", "inserted")

    def __init__(self, tag, value, operands, now: int) -> None:
        self.tag = tag
        self.value = value
        self.operands = operands
        self.last_used = now
        self.inserted = now


class OracleTable:
    """Obvious set-associative MEMO-TABLE model.

    The protocol is two calls per miss: :meth:`probe` (advances the
    clock, updates hit statistics) and, on a miss, :meth:`store`
    (advances the clock again, inserts, evicting per policy).  That is
    exactly the lookup/insert cadence of the production table.
    """

    def __init__(self, config: MemoTableConfig) -> None:
        self.config = config
        self.sets: List[List[OracleEntry]] = [
            [] for _ in range(config.n_sets)
        ]
        self.clock = 0
        self.rng = random.Random(config.seed)  # RANDOM replacement draws
        self.lookups = 0
        self.hits = 0
        self.insertions = 0
        self.evictions = 0
        self.commutative_hits = 0

    # -- indexing and tagging --------------------------------------------

    def index_and_tag(self, a, b) -> Tuple[int, tuple]:
        mask = self.config.n_sets - 1
        if self.config.operand_kind is OperandKind.INT:
            ia, ib = int(a), int(b)
            return (ia ^ ib) & mask, (ia, ib)
        bits_a = _float_bits(float(a))
        bits_b = _float_bits(float(b))
        mant_a = bits_a & _MANT_MASK
        mant_b = bits_b & _MANT_MASK
        shift = 52 - mask.bit_length()
        index = ((mant_a >> shift) ^ (mant_b >> shift)) & mask
        if self.config.tag_mode is TagMode.MANTISSA:
            return index, (mant_a, mant_b)
        return index, (bits_a, bits_b)

    # -- the probe/store protocol ----------------------------------------

    def probe(self, a, b) -> Optional[OracleEntry]:
        """One lookup: the matching entry (recency refreshed) or None."""
        self.clock += 1
        self.lookups += 1
        index, tag = self.index_and_tag(a, b)
        ways = self.sets[index]
        # Forward order first, then (for commutative units) the swapped
        # order -- both full scans, in way order, like the hardware
        # comparator tree.
        for entry in ways:
            if entry.tag == tag:
                entry.last_used = self.clock
                self.hits += 1
                return entry
        if self.config.commutative:
            swapped = (tag[1], tag[0])
            for entry in ways:
                if entry.tag == swapped:
                    entry.last_used = self.clock
                    self.hits += 1
                    self.commutative_hits += 1
                    return entry
        return None

    def store(self, a, b, value) -> None:
        """Insert after a miss, evicting per the replacement policy."""
        self.clock += 1
        self.insertions += 1
        index, tag = self.index_and_tag(a, b)
        ways = self.sets[index]
        entry = OracleEntry(tag, value, (a, b), self.clock)
        if len(ways) < self.config.associativity:
            ways.append(entry)
            return
        kind = self.config.replacement
        if kind is ReplacementKind.LRU:
            victim = 0
            for i in range(1, len(ways)):
                if ways[i].last_used < ways[victim].last_used:
                    victim = i
        elif kind is ReplacementKind.FIFO:
            victim = 0
            for i in range(1, len(ways)):
                if ways[i].inserted < ways[victim].inserted:
                    victim = i
        else:  # RANDOM: one seeded draw per eviction
            victim = self.rng.randrange(len(ways))
        ways[victim] = entry
        self.evictions += 1

    # -- inspection -------------------------------------------------------

    def snapshot(self):
        """Final contents in the production comparison shape."""
        return [
            [(e.tag, e.value, e.operands, e.last_used) for e in ways]
            for ways in self.sets
        ]


class OracleInfiniteTable:
    """Obvious unbounded fully-associative MEMO-TABLE model."""

    def __init__(self, operand_kind: OperandKind, commutative: bool) -> None:
        # Geometry is irrelevant; one set holds the tag machinery.
        self.config = MemoTableConfig(
            entries=1,
            associativity=1,
            operand_kind=operand_kind,
            commutative=commutative,
        )
        self.entries: Dict[tuple, Tuple[object, tuple]] = {}
        self.lookups = 0
        self.hits = 0
        self.insertions = 0
        self.evictions = 0
        self.commutative_hits = 0

    def _tag(self, a, b) -> tuple:
        if self.config.operand_kind is OperandKind.INT:
            return (int(a), int(b))
        return (_float_bits(float(a)), _float_bits(float(b)))

    def probe(self, a, b):
        self.lookups += 1
        tag = self._tag(a, b)
        found = self.entries.get(tag)
        if found is None and self.config.commutative:
            found = self.entries.get((tag[1], tag[0]))
            if found is not None:
                self.commutative_hits += 1
        if found is None:
            return None
        self.hits += 1
        value, operands = found
        entry = OracleEntry(tag, value, operands, 0)
        return entry

    def store(self, a, b, value) -> None:
        tag = self._tag(a, b)
        if tag not in self.entries:
            self.insertions += 1
        self.entries[tag] = (value, (a, b))

    def snapshot(self):
        return dict(self.entries)


# -- trivial-operand detection (independent re-statement of Table 9) -------


def _is_trivial(op: Operation, a, b) -> bool:
    if op is Operation.FP_MUL or op is Operation.INT_MUL:
        return a == 0 or b == 0 or a == 1 or b == 1 or a == -1 or b == -1
    if op is Operation.FP_DIV or op is Operation.INT_DIV:
        # 0/0 is NOT trivial: it must produce NaN like the divider would.
        return b == 1 or b == -1 or (a == 0 and b != 0)
    if op is Operation.FP_SQRT:
        return a == 0 or a == 1
    if op is Operation.FP_RECIP:
        return a == 1 or a == -1
    if op is Operation.FP_LOG:
        return a == 1
    if op is Operation.FP_SIN or op is Operation.FP_COS:
        return a == 0
    return False


def _trivial_value(op: Operation, a, b):
    """What the trivial detector forwards (signed zeros preserved)."""
    if op is Operation.FP_MUL or op is Operation.INT_MUL:
        if a == 0 or b == 0:
            return a * b
        if a == 1:
            return b
        if b == 1:
            return a
        if a == -1:
            return -b
        return -a  # b == -1
    if op is Operation.FP_DIV or op is Operation.INT_DIV:
        if b == 1:
            return a
        if b == -1:
            return -a
        return a / b  # a == 0, b != 0: keeps the correct signed zero
    if op is Operation.FP_SQRT:
        return a  # sqrt(0) == 0, sqrt(1) == 1
    if op is Operation.FP_RECIP:
        return a  # 1/1 == 1, 1/-1 == -1
    if op is Operation.FP_LOG:
        return 0.0  # log(1)
    if op is Operation.FP_SIN:
        return a  # sin(0) == 0 (signed zero preserved)
    return 1.0  # FP_COS: cos(0)


class OracleUnit:
    """Obvious model of one memoized unit (table + trivial detector)."""

    def __init__(
        self,
        operation: Operation,
        config: Optional[MemoTableConfig] = None,
        trivial_policy: TrivialPolicy = TrivialPolicy.EXCLUDE,
        latency: Optional[int] = None,
        hit_latency: int = 1,
        trivial_latency: int = 2,
        infinite: bool = False,
    ) -> None:
        self.operation = operation
        if infinite:
            self.table = OracleInfiniteTable(
                operation.operand_kind, operation.commutative
            )
        else:
            base = config if config is not None else MemoTableConfig()
            tag_mode = base.tag_mode
            if operation.operand_kind is OperandKind.INT:
                tag_mode = TagMode.FULL  # mantissa tags are a float concept
            from dataclasses import replace as dc_replace

            self.table = OracleTable(dc_replace(
                base,
                operand_kind=operation.operand_kind,
                commutative=operation.commutative,
                tag_mode=tag_mode,
            ))
        self.trivial_policy = trivial_policy
        self.latency = (
            latency if latency is not None else DEFAULT_LATENCIES[operation]
        )
        self.hit_latency = hit_latency
        self.trivial_latency = trivial_latency
        self.operations = 0
        self.trivial = 0
        self.trivial_hits = 0
        self.cycles_base = 0
        self.cycles_memo = 0

    # -- mantissa-hit exponent fix-up -------------------------------------

    def _mantissa_fixup(self, entry: OracleEntry, a, b):
        """Rebuild a mantissa-only hit's result (Table 10 fix-up rule).

        The production unit scales the stored value by the exact
        power-of-two operand ratios when everything is finite and
        nonzero, and recomputes exactly otherwise; the oracle states the
        same rule so the comparison checks the *kernel's plumbing*, not
        two different roundings of the fix-up itself.
        """
        sa, sb = entry.operands
        if (sa, sb) == (a, b):
            return entry.value
        finite = all(
            math.isfinite(x) and x != 0 for x in (sa, sb, a, b)
        )
        if (
            not finite
            or not math.isfinite(entry.value)
            or entry.value == 0
        ):
            return compute(self.operation, a, b)
        ra, rb = a / sa, b / sb
        if self.operation is Operation.FP_MUL:
            scale = ra * rb
        elif self.operation is Operation.FP_DIV:
            scale = ra / rb if rb else math.inf
        else:
            return compute(self.operation, a, b)
        if not math.isfinite(scale) or scale == 0:
            # Exponent adder over/underflow: full-path recompute.
            return compute(self.operation, a, b)
        return entry.value * scale

    # -- one event --------------------------------------------------------

    def step(self, a, b=0.0):
        """Present one operation; returns the delivered value."""
        self.operations += 1
        latency = self.latency

        if _is_trivial(self.operation, a, b):
            self.trivial += 1
            policy = self.trivial_policy
            if policy is TrivialPolicy.EXCLUDE:
                # Bypasses the table; short early-out on both machines.
                cost = min(self.trivial_latency, latency)
                self.cycles_base += cost
                self.cycles_memo += cost
                return _trivial_value(self.operation, a, b)
            if policy is TrivialPolicy.INTEGRATED:
                # Detector in front of the table: a one-cycle "hit".
                self.trivial_hits += 1
                self.cycles_base += min(self.trivial_latency, latency)
                self.cycles_memo += self.hit_latency
                return _trivial_value(self.operation, a, b)
            # CACHE_ALL: falls through to the table like any operation.

        entry = self.table.probe(a, b)
        if entry is not None:
            value = entry.value
            if (
                isinstance(self.table, OracleTable)
                and self.table.config.tag_mode is TagMode.MANTISSA
            ):
                value = self._mantissa_fixup(entry, a, b)
            self.cycles_base += latency
            self.cycles_memo += self.hit_latency
            return value
        value = compute(self.operation, a, b)
        self.table.store(a, b, value)
        self.cycles_base += latency
        self.cycles_memo += latency
        return value

    def stats_key(self) -> tuple:
        """Counters in the shape of the production fingerprint."""
        t = self.table
        return (
            self.operations,
            self.trivial,
            self.trivial_hits,
            self.cycles_base,
            self.cycles_memo,
            t.lookups,
            t.hits,
            t.insertions,
            t.evictions,
            t.commutative_hits,
        )


class OracleBank:
    """Per-operation oracle units behind one step call."""

    def __init__(
        self,
        config: Optional[MemoTableConfig] = None,
        trivial_policy: TrivialPolicy = TrivialPolicy.EXCLUDE,
        operations=tuple(Operation),
        infinite: bool = False,
    ) -> None:
        self.units: Dict[Operation, OracleUnit] = {
            op: OracleUnit(
                op,
                config=config,
                trivial_policy=trivial_policy,
                infinite=infinite,
            )
            for op in operations
        }

    def step(self, operation: Operation, a, b=0.0):
        return self.units[operation].step(a, b)

    def fingerprint(self) -> Dict[Operation, tuple]:
        return {op: unit.stats_key() for op, unit in self.units.items()}
