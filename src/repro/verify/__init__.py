"""Golden-oracle differential verification of the memo-table hierarchy.

The batched probe kernel (:mod:`repro.core.kernel`) concentrates every
hit/miss decision of the simulation into one optimized inner loop.  This
package is its adversarial safety net:

* :mod:`~repro.verify.oracle` -- a deliberately-simple pure-Python model
  of the MEMO-TABLE hierarchy, written for obviousness rather than
  speed, sharing no probe machinery with the kernel;
* :mod:`~repro.verify.fuzz` -- a seeded, coverage-guided trace/config
  fuzzer biased toward IEEE-754 and table-geometry edge cases;
* :mod:`~repro.verify.differential` -- runs oracle vs. batched kernel
  vs. scalar reference on each case and demands bit-exact agreement of
  statistics, final table contents and delivered values;
* :mod:`~repro.verify.shrink` -- delta-debugs any divergence down to a
  minimal v3 trace;
* :mod:`~repro.verify.regressions` -- reads/writes the in-tree
  regression corpus (``tests/regressions/``) that pytest replays;
* :mod:`~repro.verify.faults` -- known-fault injection for the mutation
  smoke mode (the harness must catch each one).

CLI: ``repro verify fuzz --budget N --seed S`` and ``repro verify
smoke`` (see :mod:`repro.verify.cli`).
"""

from .differential import FuzzCase, run_case
from .faults import KERNEL_FAULTS, inject
from .fuzz import TraceFuzzer, fuzz_run
from .oracle import OracleBank
from .shrink import shrink_case

__all__ = [
    "FuzzCase",
    "run_case",
    "KERNEL_FAULTS",
    "inject",
    "TraceFuzzer",
    "fuzz_run",
    "OracleBank",
    "shrink_case",
]
