"""The regression corpus: shrunk divergences that replay forever.

Every divergence the fuzzer finds is shrunk and written here as a pair
of files under ``tests/regressions/``:

* ``<name>.trc`` -- the minimized trace, raw v3 columnar bytes (the
  same binary format ``repro record``/``repro replay`` speak);
* ``<name>.json`` -- a sidecar describing the table configuration the
  divergence needs, plus a human-readable description of what broke.

``tests/test_regressions.py`` parametrizes over every sidecar in the
directory and re-runs the full differential check, so a bug caught once
stays caught.  The corpus is also seeded with hand-minimized cases for
the classic hazards (mantissa-tag collision, replacement tie-break,
trivial-operand short-circuit) so the replay harness is exercised even
before the fuzzer ever finds anything.
"""

from __future__ import annotations

import io
import json
import os
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

from ..core.config import (
    MemoTableConfig,
    ReplacementKind,
    TagMode,
    TrivialPolicy,
)
from ..isa.binfmt import read_binary_trace, write_binary_trace
from ..isa.trace import Opcode, TraceEvent
from .differential import FuzzCase, canonicalize

__all__ = [
    "RegressionCase",
    "load_cases",
    "write_case",
    "seed_cases",
    "SEED_CASES",
]

_NAME_RE = re.compile(r"[^a-z0-9]+")


def _slug(text: str) -> str:
    return _NAME_RE.sub("-", text.lower()).strip("-") or "case"


@dataclass(frozen=True)
class RegressionCase:
    """One on-disk regression: a minimal trace plus its table config."""

    name: str
    description: str
    case: FuzzCase

    def __str__(self) -> str:  # pytest id
        return self.name


def _config_to_json(config: MemoTableConfig) -> dict:
    return {
        "entries": config.entries,
        "associativity": config.associativity,
        "tag_mode": config.tag_mode.value,
        "replacement": config.replacement.value,
        "seed": config.seed,
    }


def _config_from_json(data: dict) -> MemoTableConfig:
    return MemoTableConfig(
        entries=int(data["entries"]),
        associativity=int(data["associativity"]),
        tag_mode=TagMode(data["tag_mode"]),
        replacement=ReplacementKind(data["replacement"]),
        seed=int(data.get("seed", 0)),
    )


def write_case(
    directory: Path,
    case: FuzzCase,
    description: str,
    name: Optional[str] = None,
    source: str = "fuzz",
) -> Path:
    """Write one regression (trace + sidecar); returns the sidecar path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    base = _slug(name or case.label or "divergence")
    candidate = base
    n = 1
    while (directory / f"{candidate}.json").exists():
        n += 1
        candidate = f"{base}-{n}"
    trace_path = directory / f"{candidate}.trc"
    buffer = io.BytesIO()
    write_binary_trace(case.events, buffer, version=3)
    trace_path.write_bytes(buffer.getvalue())
    sidecar = {
        "name": candidate,
        "description": description,
        "trace": trace_path.name,
        "events": len(case.events),
        "config": _config_to_json(case.config),
        "trivial_policy": case.trivial_policy.value,
        "infinite": case.infinite,
        "source": source,
    }
    sidecar_path = directory / f"{candidate}.json"
    sidecar_path.write_text(json.dumps(sidecar, indent=2) + "\n")
    return sidecar_path


def load_cases(directory: Path) -> List[RegressionCase]:
    """Load every regression under ``directory`` (sorted by name)."""
    directory = Path(directory)
    cases: List[RegressionCase] = []
    if not directory.is_dir():
        return cases
    for sidecar_path in sorted(directory.glob("*.json")):
        data = json.loads(sidecar_path.read_text())
        trace_path = directory / data["trace"]
        with trace_path.open("rb") as stream:
            events = canonicalize(read_binary_trace(stream))
        cases.append(
            RegressionCase(
                name=data["name"],
                description=data.get("description", ""),
                case=FuzzCase(
                    events=events,
                    config=_config_from_json(data["config"]),
                    trivial_policy=TrivialPolicy(data["trivial_policy"]),
                    infinite=bool(data.get("infinite", False)),
                    label=data["name"],
                ),
            )
        )
    return cases


# ---------------------------------------------------------------------------
# Hand-minimized seed cases
# ---------------------------------------------------------------------------


def _seed_mantissa_collision() -> Tuple[str, str, FuzzCase]:
    # 1.5 * 2.0 and 3.0 * 4.0 share mantissa bit patterns (0x8000... and
    # 0x0/0x0): under MANTISSA tags the second multiply HITS the first
    # entry and must be fixed up by exponent rescaling, not returned raw.
    events = [
        TraceEvent(Opcode.FMUL, 1.5, 2.0, 3.0),
        TraceEvent(Opcode.FMUL, 3.0, 4.0, 12.0),
        TraceEvent(Opcode.FMUL, 0.75, 0.5, 0.375),
        TraceEvent(Opcode.FDIV, 6.0, 1.5, 4.0),
        TraceEvent(Opcode.FDIV, 3.0, 0.75, 4.0),
    ]
    config = MemoTableConfig(
        entries=8, associativity=2, tag_mode=TagMode.MANTISSA
    )
    return (
        "seed-mantissa-tag-collision",
        "Same-mantissa/different-exponent operands must hit under "
        "MANTISSA tags and be rescaled, bit-exactly, on all paths.",
        FuzzCase(
            events=canonicalize(events),
            config=config,
            label="seed-mantissa-tag-collision",
        ),
    )


def _seed_replacement_tiebreak() -> Tuple[str, str, FuzzCase]:
    # Four distinct pairs land in the same set of a 4-entry 2-way LRU
    # table, forcing evictions where both ways were inserted on
    # consecutive clocks; the victim choice (strict argmin, first way
    # wins ties) must match across oracle, scalar and batched paths.
    events = [
        TraceEvent(Opcode.FMUL, 3.0, 5.0, 15.0),
        TraceEvent(Opcode.FMUL, 7.0, 11.0, 77.0),
        TraceEvent(Opcode.FMUL, 13.0, 17.0, 221.0),
        TraceEvent(Opcode.FMUL, 3.0, 5.0, 15.0),
        TraceEvent(Opcode.FMUL, 19.0, 23.0, 437.0),
        TraceEvent(Opcode.FMUL, 7.0, 11.0, 77.0),
        TraceEvent(Opcode.FMUL, 13.0, 17.0, 221.0),
    ]
    config = MemoTableConfig(
        entries=4, associativity=2, replacement=ReplacementKind.LRU
    )
    return (
        "seed-replacement-tiebreak",
        "Eviction pressure in one set of a tiny LRU table: the victim "
        "scan's tie-break (lowest way index) must agree on all paths.",
        FuzzCase(
            events=canonicalize(events),
            config=config,
            label="seed-replacement-tiebreak",
        ),
    )


def _seed_trivial_shortcircuit() -> Tuple[str, str, FuzzCase]:
    # Trivial operands (x*0, x*1, 0/x, x/1, x/x) must short-circuit
    # under EXCLUDE -- never entering the table -- while the non-trivial
    # neighbours still memoize; includes the signed-zero multiply and
    # the a==0 division whose result is float 0.0 by definition.
    events = [
        TraceEvent(Opcode.FMUL, 2.5, 0.0, 0.0),
        TraceEvent(Opcode.FMUL, -0.0, 2.5, -0.0),
        TraceEvent(Opcode.FMUL, 2.5, 1.0, 2.5),
        TraceEvent(Opcode.FMUL, 2.5, 3.0, 7.5),
        TraceEvent(Opcode.FDIV, 0.0, 7.0, 0.0),
        TraceEvent(Opcode.FDIV, 7.0, 1.0, 7.0),
        TraceEvent(Opcode.FDIV, 7.0, 7.0, 1.0),
        TraceEvent(Opcode.FDIV, 7.0, 2.0, 3.5),
        TraceEvent(Opcode.FMUL, 2.5, 3.0, 7.5),
        TraceEvent(Opcode.IMUL, 6, 0, 0),
        TraceEvent(Opcode.IMUL, 6, 9, 54),
    ]
    config = MemoTableConfig(entries=8, associativity=4)
    return (
        "seed-trivial-shortcircuit",
        "Trivial operands under EXCLUDE must bypass the table on every "
        "path while interleaved non-trivial work still memoizes.",
        FuzzCase(
            events=canonicalize(events),
            config=config,
            label="seed-trivial-shortcircuit",
        ),
    )


def _seed_speculation_abort() -> Tuple[str, str, FuzzCase]:
    # A hot two-op loop (recurring pcs) that trains the speculative
    # backend's region plans, commits several stable iterations, then
    # changes one operand on the final iteration: the region guard must
    # fail and the abort handoff must re-execute the iteration through
    # the general path bit-exactly (stats, recency and the new entry's
    # insertion all land as the scalar protocol would).
    events = []
    for _ in range(5):
        events.append(TraceEvent(Opcode.FMUL, 2.5, 3.0, 7.5, pc=64))
        events.append(TraceEvent(Opcode.FDIV, 9.0, 2.0, 4.5, pc=68))
    events.append(TraceEvent(Opcode.FMUL, 2.5, 4.0, 10.0, pc=64))
    events.append(TraceEvent(Opcode.FDIV, 9.0, 2.0, 4.5, pc=68))
    config = MemoTableConfig(entries=8, associativity=2)
    return (
        "seed-speculation-abort",
        "A trained hot region whose last iteration changes an operand: "
        "the speculative guard must fail and the abort path must hand "
        "state to the general loop bit-exactly on every counter.",
        FuzzCase(
            events=canonicalize(events),
            config=config,
            label="seed-speculation-abort",
        ),
    )


#: name -> (description, case) for the hand-minimized seeds.
SEED_CASES = {
    name: (description, case)
    for name, description, case in (
        _seed_mantissa_collision(),
        _seed_replacement_tiebreak(),
        _seed_trivial_shortcircuit(),
        _seed_speculation_abort(),
    )
}


def seed_cases(directory: Path, overwrite: bool = False) -> List[Path]:
    """Materialize the built-in seed regressions into ``directory``."""
    directory = Path(directory)
    written = []
    for name, (description, case) in SEED_CASES.items():
        sidecar = directory / f"{name}.json"
        if sidecar.exists():
            if not overwrite:
                continue
            os.unlink(sidecar)
            trace = directory / f"{name}.trc"
            if trace.exists():
                os.unlink(trace)
        written.append(
            write_case(
                directory, case, description, name=name, source="hand-minimized"
            )
        )
    return written


def iter_case_ids(directory: Path) -> Iterator[str]:
    """Names only (cheap, for collection-time parametrization)."""
    directory = Path(directory)
    if not directory.is_dir():
        return iter(())
    return (p.stem for p in sorted(directory.glob("*.json")))
