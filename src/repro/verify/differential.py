"""Differential driver: oracle vs. scalar vs. batched vs. fused vs.
speculative.

One fuzz case is a (trace, table configuration, trivial policy) triple.
:func:`run_case` executes it five ways --

* the pure-Python golden oracle (:mod:`repro.verify.oracle`),
* the scalar reference path (event-at-a-time
  :func:`repro.core.backend.probe_one`, which is ``unit.execute``),
* the batched columnar kernel (the ``batched`` execution backend over
  a :class:`~repro.isa.columns.ColumnBatch`),
* the LUT-fused kernel (the ``fused`` execution backend),
* the hot-trace speculation layer (the ``speculative`` execution
  backend: region plans, guarded bulk commits, fused abort path),

each backend pinned explicitly through the registry so a process-wide
``REPRO_BACKEND`` can never alias two parties onto the same code path
-- and demands bit-exact agreement on every unit/table counter, the
final table contents (tags, values, stored operands, recency), and the
per-event delivered values (oracle vs. scalar).  It additionally checks
two sound cross-invariants: the batched report's opcode accounting
matches the column breakdown, and no finite full-tag table ever hits
more often than the infinite-table replay upper bound
(:func:`repro.core.backend.replay_infinite` -- the same quantity the
static analyzer's bounds are validated against).

Any violated comparison becomes a human-readable divergence string; an
empty list means the five implementations agree exactly.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..core import backend as execution
from ..core.bank import MemoTableBank
from ..core.config import MemoTableConfig, TagMode, TrivialPolicy
from ..core.operations import Operation
from ..isa.columns import ColumnBatch
from ..isa.trace import TraceEvent
from .oracle import OracleBank

__all__ = [
    "ALL_OPERATIONS",
    "FuzzCase",
    "CaseResult",
    "canonicalize",
    "make_bank",
    "run_case",
]

ALL_OPERATIONS = tuple(Operation)

_PACK = struct.Struct("<d").pack
_UNPACK = struct.Struct("<Q").unpack


def _bits(value) -> tuple:
    """Bit-exact comparison key (NaN payloads and -0.0 must survive)."""
    if isinstance(value, int) and not isinstance(value, bool):
        return ("i", value)
    if value is None:
        return ("n",)
    return ("f", _UNPACK(_PACK(float(value)))[0])


@dataclass(frozen=True)
class FuzzCase:
    """One differential test case: a trace plus a table configuration."""

    events: Tuple[TraceEvent, ...]
    config: MemoTableConfig
    trivial_policy: TrivialPolicy = TrivialPolicy.EXCLUDE
    infinite: bool = False
    label: str = ""

    def describe(self) -> str:
        cfg = self.config
        table = (
            "infinite"
            if self.infinite
            else f"{cfg.entries}e/{cfg.associativity}w"
            f"/{cfg.replacement.value}/{cfg.tag_mode.value}"
        )
        return (
            f"{len(self.events)} events, {table}, "
            f"trivial={self.trivial_policy.value}"
            + (f" [{self.label}]" if self.label else "")
        )


@dataclass
class CaseResult:
    """What one differential run observed."""

    case: FuzzCase
    divergences: List[str] = field(default_factory=list)
    features: frozenset = frozenset()
    memoizable_events: int = 0

    @property
    def ok(self) -> bool:
        return not self.divergences


def canonicalize(events) -> Tuple[TraceEvent, ...]:
    """Round-trip events through the columnar encoding.

    The production pipeline always flows through columns, which
    canonicalize operand typing (e.g. an int-typed operand of a float
    opcode decodes as its float64 coercion).  Comparing against raw
    events would flag those re-typings as false divergences, so every
    path consumes the same canonical view.
    """
    return tuple(ColumnBatch.from_events(events).to_events())


def make_bank(case: FuzzCase) -> MemoTableBank:
    """A fresh production bank for one case (all operations covered)."""
    if case.infinite:
        return MemoTableBank.infinite(
            operations=ALL_OPERATIONS, trivial_policy=case.trivial_policy
        )
    return MemoTableBank.paper_baseline(
        config=case.config,
        operations=ALL_OPERATIONS,
        trivial_policy=case.trivial_policy,
    )


def _unit_key(stats) -> tuple:
    t = stats.table
    return (
        stats.operations,
        stats.trivial,
        stats.trivial_hits,
        stats.cycles_base,
        stats.cycles_memo,
        t.lookups,
        t.hits,
        t.insertions,
        t.evictions,
        t.commutative_hits,
    )


def _bank_fingerprint(bank: MemoTableBank) -> Dict[Operation, tuple]:
    return {op: _unit_key(unit.stats) for op, unit in bank.units.items()}


def _bank_contents(bank: MemoTableBank):
    """Final table contents of a production bank, bit-exact."""
    contents = {}
    for op, unit in bank.units.items():
        table = unit.table
        if hasattr(table, "_sets"):
            contents[op] = [
                [
                    (e.tag, _bits(e.value), tuple(map(_bits, e.operands)),
                     e.last_used)
                    for e in ways
                ]
                for ways in table._sets
            ]
        else:  # InfiniteMemoTable
            contents[op] = {
                tag: (_bits(value), tuple(map(_bits, operands)))
                for tag, (value, operands) in table._entries.items()
            }
    return contents


def _oracle_contents(oracle: OracleBank):
    contents = {}
    for op, unit in oracle.units.items():
        snap = unit.table.snapshot()
        if isinstance(snap, dict):
            contents[op] = {
                tag: (_bits(value), tuple(map(_bits, operands)))
                for tag, (value, operands) in snap.items()
            }
        else:
            contents[op] = [
                [
                    (tag, _bits(value), tuple(map(_bits, operands)), used)
                    for tag, value, operands, used in ways
                ]
                for ways in snap
            ]
    return contents


def _first_diff(left: dict, right: dict) -> str:
    """Short description of the first differing key between two dicts."""
    for key in left:
        if left[key] != right[key]:
            return f"{getattr(key, 'name', key)}"
    return "?"


def _features(case: FuzzCase, oracle: OracleBank) -> frozenset:
    """Coverage signature: which behaviours this case exercised."""
    cfg = case.config
    shape = (
        "inf" if case.infinite
        else f"{cfg.entries}/{cfg.associativity}"
        f"/{cfg.replacement.value}/{cfg.tag_mode.value}"
    )
    feats = {("policy", case.trivial_policy.value, shape)}
    for op, unit in oracle.units.items():
        if not unit.operations:
            continue
        t = unit.table
        feats.add((
            op.name,
            shape,
            case.trivial_policy.value,
            t.hits > 0,
            t.evictions > 0,
            t.commutative_hits > 0,
            unit.trivial > 0,
        ))
    return frozenset(feats)


def run_case(case: FuzzCase) -> CaseResult:
    """Execute one case five ways and cross-check everything.

    A crash in any path is itself a divergence (reported, not raised),
    so the campaign survives it and the shrinker can minimize it.
    """
    result = CaseResult(case=case)
    diverge = result.divergences.append
    events = case.events
    batch = ColumnBatch.from_events(events)

    # Path 1: golden oracle, collecting per-event delivered values.
    oracle = OracleBank(
        config=case.config,
        trivial_policy=case.trivial_policy,
        infinite=case.infinite,
    )
    oracle_values = []
    memoizable = []
    try:
        for event in events:
            operation = event.opcode.operation
            if operation is None:
                continue
            memoizable.append(event)
            oracle_values.append(oracle.step(operation, event.a, event.b))
    except Exception as exc:
        diverge(f"crash: oracle raised {exc!r}")
        return result
    result.memoizable_events = len(memoizable)

    # Path 2: scalar reference (event-at-a-time unit probes).
    scalar_bank = make_bank(case)
    scalar_values = []
    try:
        for event in memoizable:
            unit = scalar_bank.units[event.opcode.operation]
            scalar_values.append(
                execution.probe_one(unit, event.a, event.b).value
            )
    except Exception as exc:
        diverge(f"crash: scalar path raised {exc!r}")
        return result

    # Path 3: batched kernel over the columnar view (pinned by name so
    # the environment cannot redirect this leg onto another backend).
    batched_bank = make_bank(case)
    try:
        report = execution.get("batched").probe_batch(
            batch, batched_bank.units, execution.KernelConfig()
        )
    except Exception as exc:
        diverge(f"crash: batched kernel raised {exc!r}")
        return result

    # Path 4: LUT-fused kernel, likewise pinned.
    fused_bank = make_bank(case)
    try:
        fused_report = execution.get("fused").probe_batch(
            batch, fused_bank.units, execution.KernelConfig()
        )
    except Exception as exc:
        diverge(f"crash: fused kernel raised {exc!r}")
        return result

    # Path 5: hot-trace speculation layer, likewise pinned (traces
    # without recurring pcs simply detect no regions and degrade to
    # the fused tier, which is itself under test above).
    spec_bank = make_bank(case)
    try:
        spec_report = execution.get("speculative").probe_batch(
            batch, spec_bank.units, execution.KernelConfig()
        )
    except Exception as exc:
        diverge(f"crash: speculative kernel raised {exc!r}")
        return result

    # -- comparisons ------------------------------------------------------

    oracle_fp = oracle.fingerprint()
    scalar_fp = _bank_fingerprint(scalar_bank)
    batched_fp = _bank_fingerprint(batched_bank)
    fused_fp = _bank_fingerprint(fused_bank)
    if batched_fp != scalar_fp:
        diverge(
            "stats: batched != scalar for unit "
            f"{_first_diff(batched_fp, scalar_fp)}"
        )
    if fused_fp != scalar_fp:
        diverge(
            "stats: fused != scalar for unit "
            f"{_first_diff(fused_fp, scalar_fp)}"
        )
    spec_fp = _bank_fingerprint(spec_bank)
    if spec_fp != scalar_fp:
        diverge(
            "stats: speculative != scalar for unit "
            f"{_first_diff(spec_fp, scalar_fp)}"
        )
    if oracle_fp != scalar_fp:
        diverge(
            "stats: oracle != scalar for unit "
            f"{_first_diff(oracle_fp, scalar_fp)}"
        )

    scalar_contents = _bank_contents(scalar_bank)
    batched_contents = _bank_contents(batched_bank)
    fused_contents = _bank_contents(fused_bank)
    oracle_contents = _oracle_contents(oracle)
    if batched_contents != scalar_contents:
        diverge(
            "table contents: batched != scalar for unit "
            f"{_first_diff(batched_contents, scalar_contents)}"
        )
    if fused_contents != scalar_contents:
        diverge(
            "table contents: fused != scalar for unit "
            f"{_first_diff(fused_contents, scalar_contents)}"
        )
    spec_contents = _bank_contents(spec_bank)
    if spec_contents != scalar_contents:
        diverge(
            "table contents: speculative != scalar for unit "
            f"{_first_diff(spec_contents, scalar_contents)}"
        )
    if oracle_contents != scalar_contents:
        diverge(
            "table contents: oracle != scalar for unit "
            f"{_first_diff(oracle_contents, scalar_contents)}"
        )

    for i, (ours, theirs) in enumerate(zip(oracle_values, scalar_values)):
        if _bits(ours) != _bits(theirs):
            diverge(
                f"delivered value: oracle {ours!r} != scalar {theirs!r} "
                f"at memoizable event {i} "
                f"({memoizable[i].opcode.name})"
            )
            break

    if report.instructions != len(events):
        diverge(
            f"report: batched saw {report.instructions} instructions, "
            f"trace has {len(events)}"
        )
    if report.counts != batch.breakdown():
        diverge("report: batched opcode counts != column breakdown")
    if fused_report.instructions != report.instructions:
        diverge(
            f"report: fused saw {fused_report.instructions} instructions, "
            f"batched saw {report.instructions}"
        )
    if fused_report.counts != report.counts:
        diverge("report: fused opcode counts != batched opcode counts")
    if spec_report.instructions != report.instructions:
        diverge(
            f"report: speculative saw {spec_report.instructions} "
            f"instructions, batched saw {report.instructions}"
        )
    if spec_report.counts != report.counts:
        diverge("report: speculative opcode counts != batched opcode counts")

    # Sound reuse bound: a finite full-tag table can never out-hit the
    # infinite-table replay of the same trace (mantissa tags can, by
    # matching across exponents, so they are exempt).
    if case.config.tag_mode is TagMode.FULL or case.infinite:
        _, infinite_hits, _ = execution.replay_infinite(batch)
        finite_hits = sum(
            unit.stats.table.hits for unit in scalar_bank.units.values()
        )
        if finite_hits > infinite_hits:
            diverge(
                f"reuse bound: finite tables hit {finite_hits} times, "
                f"infinite replay bound is {infinite_hits}"
            )

    result.features = _features(case, oracle)
    return result
