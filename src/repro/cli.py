"""Command line interface: ``repro <experiment> [--scale S]``.

Regenerates any table or figure of the paper on the terminal::

    repro table7 --scale 0.2
    repro figure3
    repro all
    repro all --jobs 4 --corpus-dir ~/.cache/repro/corpus

``--jobs N`` fans the experiments (and the traces they need) out across
a worker pool; ``--corpus-dir`` persists recorded traces so later runs
replay them from disk.  ``--backend NAME`` pins the execution backend
(``scalar`` | ``batched`` | ``fused`` | ``speculative``, see
:mod:`repro.core.backend`) for the whole run including workers; ``--scalar`` is the deprecated
alias for ``--backend scalar``.  ``repro corpus record|ls|verify|gc`` maintains
the store (see :mod:`repro.corpus.cli`).  ``repro analyze`` runs the
static dataflow passes that bound memo-table hit ratios, and ``repro
lint`` checks the repo's determinism invariants (see
:mod:`repro.analysis.cli`).  ``repro stats`` renders/validates metrics
snapshots (see :mod:`repro.obs.cli`); ``--metrics-out PATH`` on an
experiment run enables the observability layer and writes its snapshot.
``repro sample`` estimates memo hit ratios from phase-representative
trace intervals instead of full simulation (see
:mod:`repro.simulator.sampling.cli`).
``repro serve`` runs the long-lived experiment service (durable leased
job queue + worker pool + HTTP API), and ``repro submit`` / ``repro
jobs`` / ``repro result`` are its client commands (see
:mod:`repro.serve.cli`).

Serial and ``--jobs N`` runs share one code path
(:func:`repro.corpus.engine.run_experiments`): durations are measured
inside the worker in both cases, so the ``[per experiment: ...]``
report line has an identical shape either way.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .experiments import experiment_names, run_experiments
from .experiments.plots import render_plot
from .experiments.reference import compare_to_paper

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce tables/figures of 'Accelerating Multi-Media "
            "Processing by Implementing Memoing in Multiplication and "
            "Division Units' (ASPLOS 1998)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=list(experiment_names()) + ["all", "list"],
        help="experiment id, 'all', or 'list'",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="workload scale factor (bigger = slower, closer to paper sizes)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write results as JSON ('-' for stdout)",
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="render figure experiments as terminal charts",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="print paper-vs-measured comparison where reference data exists",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for multi-experiment runs (1 = serial)",
    )
    parser.add_argument(
        "--corpus-dir",
        metavar="PATH",
        default=None,
        help="persist/replay traces through an on-disk corpus at PATH",
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        help=(
            "per-experiment wall-time bound for --jobs N runs; a hung "
            "worker is replaced and the experiment retried with backoff"
        ),
    )
    parser.add_argument(
        "--job-retries",
        type=int,
        default=2,
        help="retries after a --job-timeout expiry before failing (default 2)",
    )
    parser.add_argument(
        "--backend",
        metavar="NAME",
        default=None,
        help=(
            "execution backend for every simulation in this run "
            "(scalar | batched | fused | speculative; default batched, "
            "or REPRO_BACKEND; propagates to worker processes)"
        ),
    )
    parser.add_argument(
        "--scalar",
        action="store_true",
        help=(
            "deprecated alias for --backend scalar (the event-at-a-time "
            "reference path; bit-identical results, slower)"
        ),
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help=(
            "enable the metrics registry (REPRO_METRICS) for this run and "
            "write its JSON snapshot to PATH ('-' for stdout)"
        ),
    )
    return parser


def _format_durations(durations) -> str:
    return ", ".join(
        f"{name} {seconds:.1f}s" for name, seconds in durations.items()
    )


def _print_result(result, args) -> None:
    print(result.render())
    if args.plot:
        chart = render_plot(result)
        if chart is not None:
            print()
            print(chart)
    if args.compare:
        comparison = compare_to_paper(result)
        if comparison is not None:
            print()
            print(comparison.render())


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "corpus":
        from .corpus.cli import main as corpus_main

        return corpus_main(argv[1:])
    if argv and argv[0] == "analyze":
        from .analysis.cli import main_analyze

        return main_analyze(argv[1:])
    if argv and argv[0] == "lint":
        from .analysis.cli import main_lint

        return main_lint(argv[1:])
    if argv and argv[0] == "verify":
        from .verify.cli import main as verify_main

        return verify_main(argv[1:])
    if argv and argv[0] == "stats":
        from .obs.cli import main as stats_main

        return stats_main(argv[1:])
    if argv and argv[0] == "sample":
        from .simulator.sampling.cli import main_sample

        return main_sample(argv[1:])
    if argv and argv[0] == "serve":
        from .serve.cli import main_serve

        return main_serve(argv[1:])
    if argv and argv[0] == "submit":
        from .serve.cli import main_submit

        return main_submit(argv[1:])
    if argv and argv[0] == "jobs":
        from .serve.cli import main_jobs

        return main_jobs(argv[1:])
    if argv and argv[0] == "result":
        from .serve.cli import main_result

        return main_result(argv[1:])
    args = _build_parser().parse_args(argv)
    if args.scalar or args.backend is not None:
        from .core import backend as execution

        if args.scalar and args.backend not in (None, "scalar"):
            print(
                f"--scalar conflicts with --backend {args.backend}; "
                "drop the deprecated --scalar flag",
                file=sys.stderr,
            )
            return 2
        chosen = args.backend if args.backend is not None else "scalar"
        try:
            # Sets REPRO_BACKEND too, so --jobs worker processes inherit
            # it (the propagation contract REPRO_SCALAR used to carry).
            execution.set_backend(chosen)
        except execution.UnknownBackendError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    if args.experiment == "list":
        for name in experiment_names():
            print(name)
        return 0
    names = list(experiment_names()) if args.experiment == "all" else [args.experiment]
    if args.corpus_dir is not None:
        from .corpus import set_active_corpus

        set_active_corpus(args.corpus_dir)
    metrics_enabled = args.metrics_out is not None
    if metrics_enabled:
        from . import obs

        # Sets REPRO_METRICS too, so --jobs worker processes inherit it.
        obs.set_enabled(True)
        obs.registry().clear()
    try:
        documents = []
        kwargs = {}
        if args.scale is not None:
            kwargs["scale"] = args.scale
        # table1 reproduces a static latency table; no workload to scale.
        overrides = {"table1": {}} if "scale" in kwargs else {}
        batch = run_experiments(
            names,
            jobs=args.jobs,
            corpus_dir=args.corpus_dir,
            overrides=overrides,
            job_timeout=args.job_timeout,
            job_retries=args.job_retries,
            **kwargs,
        )
        for name, result in batch.results:
            _print_result(result, args)
            duration = batch.durations.get(name)
            if duration is not None:
                print(f"[{name} in {duration:.1f}s]")
            else:
                print(f"[{name}]")
            print()
            documents.append(result.to_dict())
        if len(names) > 1 or batch.jobs > 1:
            stats = batch.corpus_stats
            print(
                f"[{len(names)} experiment(s) in {batch.elapsed:.1f}s with "
                f"{batch.jobs} jobs; corpus: {batch.recorded} recorded, "
                f"{stats.get('disk_hits', 0)} disk hits, "
                f"{stats.get('memory_hits', 0)} memory hits]"
            )
            if batch.durations:
                print(
                    f"[per experiment: {_format_durations(batch.durations)}]"
                )
            print()
        if metrics_enabled:
            from . import obs
            from .obs.cli import write_snapshot

            write_snapshot(obs.registry().as_dict(), args.metrics_out)
    finally:
        if metrics_enabled:
            obs.set_enabled(None)
    if args.json is not None:
        payload = json.dumps(
            documents[0] if len(documents) == 1 else documents, indent=2
        )
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as stream:
                stream.write(payload + "\n")
            print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
