"""Columnar (struct-of-arrays) trace batches.

The record-at-a-time :class:`~repro.isa.trace.TraceEvent` stream is the
interface workloads speak, but replaying millions of NamedTuples through
a Python loop is where simulation time goes.  A :class:`ColumnBatch`
holds the same events as parallel fixed-width columns -- one
``array('B')`` of opcode indices, one of per-event flags, int64 columns
for operands/result/address/pc/dst and a flattened srcs column -- so the
simulator kernel (:mod:`repro.core.kernel`) can partition a whole batch
by opcode, extract index/tag columns and trivial-operand masks with
numpy, and probe the MEMO-TABLES without touching an event object.

Encoding rules match the v2 binary format (:mod:`repro.isa.binfmt`):

* operands are stored as int64 values when ``a``/``b``/``result`` are
  all non-bool ints (``_F_INT``), otherwise as the raw IEEE-754 bit
  patterns of their float64 coercion -- exactly the distinction the v2
  writer draws, so a batch serializes to v3 blocks verbatim;
* optional fields (``address``/``pc``/``dst``) store 0 with their flag
  bit clear when absent, so ``None`` round-trips;
* the rare event a fixed column cannot hold (an out-of-int64 integer
  operand, or a mixed int/float triple whose float coercion overflows)
  is marked ``_F_WIDE`` and kept verbatim in a side table; such events
  reconstruct exactly but cannot be serialized (the v2 writer rejects
  them too).

Batches reconstruct their events bit-exactly: NaN payloads, ``-0.0``
and int64 corner values all survive the round trip.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..arch.ieee754 import bits_to_float64, float64_to_bits
from .opcodes import OPCODE_INDEX, OPCODE_LIST, Opcode
from .trace import TraceEvent

__all__ = ["ColumnBatch", "ColumnBatchBuilder", "DEFAULT_BATCH_EVENTS"]

#: Events per block in streaming/serialized form: large enough that the
#: per-batch numpy fixed costs amortize, small enough to keep resident.
DEFAULT_BATCH_EVENTS = 65536

# Per-event flag bits (shared with the v3 on-disk block format, where
# _F_WIDE never appears -- wide events are re-encoded or rejected).
_F_INT = 1
_F_ADDRESS = 2
_F_PC = 4
_F_DST = 8
_F_WIDE = 16

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1
_U64_MASK = 0xFFFFFFFFFFFFFFFF


def _signed(bits: int) -> int:
    bits &= _U64_MASK
    return bits - (1 << 64) if bits >> 63 else bits


class _Views:
    """Cached numpy views over a batch's columns (zero-copy)."""

    __slots__ = (
        "length", "opcode", "flags", "a_i", "b_i", "r_i",
        "a_f", "b_f", "r_f", "address", "pc", "dst",
    )

    def __init__(self, batch: "ColumnBatch") -> None:
        import numpy as np

        self.length = len(batch)
        self.opcode = np.frombuffer(batch.opcode_col, dtype=np.uint8)
        self.flags = np.frombuffer(batch.flags_col, dtype=np.uint8)
        self.a_i = np.frombuffer(batch.a_col, dtype=np.int64)
        self.b_i = np.frombuffer(batch.b_col, dtype=np.int64)
        self.r_i = np.frombuffer(batch.result_col, dtype=np.int64)
        self.a_f = self.a_i.view(np.float64)
        self.b_f = self.b_i.view(np.float64)
        self.r_f = self.r_i.view(np.float64)
        self.address = np.frombuffer(batch.address_col, dtype=np.int64)
        self.pc = np.frombuffer(batch.pc_col, dtype=np.int64)
        self.dst = np.frombuffer(batch.dst_col, dtype=np.int64)


class ColumnBatch:
    """A trace slice as parallel columns (see module docstring)."""

    __slots__ = (
        "opcode_col", "flags_col", "a_col", "b_col", "result_col",
        "address_col", "pc_col", "dst_col", "src_offsets", "srcs_col",
        "wide", "_views",
    )

    def __init__(self) -> None:
        self.opcode_col = array("B")
        self.flags_col = array("B")
        self.a_col = array("q")
        self.b_col = array("q")
        self.result_col = array("q")
        self.address_col = array("q")
        self.pc_col = array("q")
        self.dst_col = array("q")
        #: Prefix-sum boundaries into :attr:`srcs_col`; length ``n + 1``.
        self.src_offsets = array("Q", [0])
        self.srcs_col = array("q")
        #: index -> (a, b, result) for events the fixed columns cannot hold.
        self.wide: Dict[int, Tuple] = {}
        self._views: Optional[_Views] = None

    # -- construction ------------------------------------------------------

    def append(self, event: TraceEvent) -> None:
        flags = 0
        a = b = result = 0
        ea, eb, er = event.a, event.b, event.result
        if (
            isinstance(ea, int) and isinstance(eb, int)
            and isinstance(er, int)
            and not (
                isinstance(ea, bool) or isinstance(eb, bool)
                or isinstance(er, bool)
            )
        ):
            if (
                _INT64_MIN <= ea <= _INT64_MAX
                and _INT64_MIN <= eb <= _INT64_MAX
                and _INT64_MIN <= er <= _INT64_MAX
            ):
                flags |= _F_INT
                a, b, result = ea, eb, er
            else:
                flags |= _F_WIDE
                self.wide[len(self.opcode_col)] = (ea, eb, er)
        else:
            try:
                a = _signed(float64_to_bits(float(ea)))
                b = _signed(float64_to_bits(float(eb)))
                result = _signed(float64_to_bits(float(er)))
            except OverflowError:
                flags |= _F_WIDE
                a = b = result = 0
                self.wide[len(self.opcode_col)] = (ea, eb, er)
        address = pc = dst = 0
        if event.address is not None:
            flags |= _F_ADDRESS
            address = event.address
        if event.pc is not None:
            flags |= _F_PC
            pc = event.pc
        if event.dst is not None:
            flags |= _F_DST
            dst = event.dst
        self.opcode_col.append(OPCODE_INDEX[event.opcode])
        self.flags_col.append(flags)
        self.a_col.append(a)
        self.b_col.append(b)
        self.result_col.append(result)
        self.address_col.append(address)
        self.pc_col.append(pc)
        self.dst_col.append(dst)
        if event.srcs:
            self.srcs_col.extend(event.srcs)
        self.src_offsets.append(len(self.srcs_col))

    def extend(self, events: Iterable[TraceEvent]) -> None:
        for event in events:
            self.append(event)

    @classmethod
    def from_events(cls, events: Iterable[TraceEvent]) -> "ColumnBatch":
        batch = cls()
        batch.extend(events)
        return batch

    def extend_batch(self, other: "ColumnBatch") -> None:
        """Append every event of ``other`` (column-level concatenation)."""
        offset = len(self.opcode_col)
        src_base = len(self.srcs_col)
        self.opcode_col.extend(other.opcode_col)
        self.flags_col.extend(other.flags_col)
        self.a_col.extend(other.a_col)
        self.b_col.extend(other.b_col)
        self.result_col.extend(other.result_col)
        self.address_col.extend(other.address_col)
        self.pc_col.extend(other.pc_col)
        self.dst_col.extend(other.dst_col)
        self.srcs_col.extend(other.srcs_col)
        self.src_offsets.extend(
            src_base + bound for bound in other.src_offsets[1:]
        )
        for index, triple in other.wide.items():
            self.wide[offset + index] = triple

    # -- numpy views -------------------------------------------------------

    def views(self) -> _Views:
        """Zero-copy numpy views; rebuilt whenever the batch has grown
        (``array`` reallocation invalidates older buffers)."""
        if self._views is None or self._views.length != len(self):
            self._views = _Views(self)
        return self._views

    # -- reconstruction ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.opcode_col)

    def operand_triple(self, index: int) -> Tuple:
        """Raw ``(a, b, result)`` of one event, wide-aware."""
        flags = self.flags_col[index]
        if flags & _F_WIDE:
            return self.wide[index]
        if flags & _F_INT:
            return (
                self.a_col[index], self.b_col[index], self.result_col[index]
            )
        return (
            bits_to_float64(self.a_col[index] & _U64_MASK),
            bits_to_float64(self.b_col[index] & _U64_MASK),
            bits_to_float64(self.result_col[index] & _U64_MASK),
        )

    def srcs_for(self, index: int) -> tuple:
        lo, hi = self.src_offsets[index], self.src_offsets[index + 1]
        return tuple(self.srcs_col[lo:hi])

    def __getitem__(self, index: int) -> TraceEvent:
        # Indexing parity with list-backed traces: the scalar backend's
        # sliced dispatch (and anything else that windows a trace by
        # position) does events[i], which used to TypeError on a
        # ColumnBatch even though event(i) existed.
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError("ColumnBatch index out of range")
        return self.event(index)

    def event(self, index: int) -> TraceEvent:
        flags = self.flags_col[index]
        a, b, result = self.operand_triple(index)
        return TraceEvent(
            OPCODE_LIST[self.opcode_col[index]],
            a,
            b,
            result,
            address=self.address_col[index] if flags & _F_ADDRESS else None,
            dst=self.dst_col[index] if flags & _F_DST else None,
            srcs=self.srcs_for(index),
            pc=self.pc_col[index] if flags & _F_PC else None,
        )

    def to_events(self) -> List[TraceEvent]:
        """Materialize the whole batch (the bulk inverse of append)."""
        opcodes = self.opcode_col
        flags_col = self.flags_col
        a_col, b_col, r_col = self.a_col, self.b_col, self.result_col
        addr_col, pc_col, dst_col = self.address_col, self.pc_col, self.dst_col
        offsets, srcs_col = self.src_offsets, self.srcs_col
        wide = self.wide
        events: List[TraceEvent] = []
        append = events.append
        for i in range(len(opcodes)):
            flags = flags_col[i]
            if flags & _F_WIDE:
                a, b, result = wide[i]
            elif flags & _F_INT:
                a, b, result = a_col[i], b_col[i], r_col[i]
            else:
                a = bits_to_float64(a_col[i] & _U64_MASK)
                b = bits_to_float64(b_col[i] & _U64_MASK)
                result = bits_to_float64(r_col[i] & _U64_MASK)
            lo, hi = offsets[i], offsets[i + 1]
            append(
                TraceEvent(
                    OPCODE_LIST[opcodes[i]],
                    a,
                    b,
                    result,
                    address=addr_col[i] if flags & _F_ADDRESS else None,
                    dst=dst_col[i] if flags & _F_DST else None,
                    srcs=tuple(srcs_col[lo:hi]) if hi > lo else (),
                    pc=pc_col[i] if flags & _F_PC else None,
                )
            )
        return events

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.to_events())

    def breakdown(self) -> Dict[Opcode, int]:
        """Instruction frequency breakdown without materializing events."""
        import numpy as np

        counts = np.bincount(
            self.views().opcode, minlength=len(OPCODE_LIST)
        ).tolist()
        return {
            OPCODE_LIST[i]: count for i, count in enumerate(counts) if count
        }


class ColumnBatchBuilder:
    """Streaming event consumer that flushes :class:`ColumnBatch` blocks.

    Plug into :class:`~repro.workloads.recorder.OperationRecorder` as a
    consumer; every ``batch_events`` events the accumulated batch is
    handed to ``sink`` and a fresh one started.  Call :meth:`flush` at
    end of recording for the final partial block.
    """

    def __init__(self, sink, batch_events: int = DEFAULT_BATCH_EVENTS) -> None:
        if batch_events < 1:
            raise ValueError(f"batch_events must be >= 1, got {batch_events}")
        self._sink = sink
        self._batch_events = batch_events
        self._batch = ColumnBatch()
        self.batches_emitted = 0

    def __call__(self, event: TraceEvent) -> None:
        self._batch.append(event)
        if len(self._batch) >= self._batch_events:
            self.flush()

    def flush(self) -> None:
        """Emit the current partial batch (no-op when empty)."""
        if len(self._batch):
            self._sink(self._batch)
            self.batches_emitted += 1
            self._batch = ColumnBatch()
