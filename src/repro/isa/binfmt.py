"""Compact binary trace format.

The text format (:mod:`repro.isa.trace`) is greppable but ~50 bytes per
event; full-size workload runs produce tens of millions of events, so a
fixed-width binary record keeps archives practical:

========  =====  =========================================
field     bytes  contents
========  =====  =========================================
opcode        1  index into the Opcode enum
flags         1  bit 0: operands present, bit 1: address present
a             8  operand bit pattern (IEEE-754 or int64)
b             8  operand bit pattern
result        8  result bit pattern
address       8  load/store address
========  =====  =========================================

Integer-multiply operands are stored as two's-complement int64 (flag
bit 2 marks them), float operands as raw IEEE-754 bits, so round-trips
are exact.  A 8-byte magic + version header guards the format.

Two on-disk versions exist:

* **v1** (``RPROTRC1``) is the fixed 34-byte record above.  It archives
  value streams only -- dataflow (``dst``/``srcs``) and PC annotations
  are dropped, the same information Shade recorded.
* **v2** (``RPROTRC2``) appends optional variable-length annotation
  fields after the fixed record, marked by three extra flag bits: a
  synthetic PC (bit 3), a dataflow destination id (bit 4) and a
  source-id list (bit 5: one count byte then that many ids).  v2 exists
  so the trace corpus can persist *exactly* what the recorder produced;
  PC-indexed schemes (the Reuse Buffer) and the hazard-aware pipeline
  replay identically from disk.  Readers accept both versions
  transparently; writers default to v1 for compatibility.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Iterable, Iterator

from ..errors import TraceFormatError
from .opcodes import Opcode
from .trace import TraceEvent
from ..arch.ieee754 import bits_to_float64, float64_to_bits

__all__ = [
    "write_binary_trace",
    "read_binary_trace",
    "BINARY_MAGIC",
    "BINARY_MAGIC_V2",
]

BINARY_MAGIC = b"RPROTRC1"
BINARY_MAGIC_V2 = b"RPROTRC2"

_RECORD = struct.Struct("<BBqqqq")
_QWORD = struct.Struct("<q")
_OPCODES = list(Opcode)
_OPCODE_INDEX = {opcode: i for i, opcode in enumerate(_OPCODES)}

_FLAG_OPERANDS = 1
_FLAG_ADDRESS = 2
_FLAG_INT_OPERANDS = 4
# v2-only annotation flags.
_FLAG_PC = 8
_FLAG_DST = 16
_FLAG_SRCS = 32

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


def _signed(bits: int) -> int:
    bits &= 0xFFFFFFFFFFFFFFFF
    return bits - (1 << 64) if bits >> 63 else bits


def write_binary_trace(
    events: Iterable[TraceEvent], stream: BinaryIO, version: int = 1
) -> int:
    """Serialize events; returns the number written.

    ``version=1`` archives the value stream only (dataflow and PC
    annotations dropped); ``version=2`` appends the annotations so the
    round-trip is lossless.  Integer-multiply operands outside int64
    range are rejected (they could not exist in a real register trace).
    """
    if version == 1:
        stream.write(BINARY_MAGIC)
    elif version == 2:
        stream.write(BINARY_MAGIC_V2)
    else:
        raise TraceFormatError(f"unknown binary trace version {version!r}")
    annotate = version == 2
    count = 0
    pack = _RECORD.pack
    pack_q = _QWORD.pack
    for event in events:
        flags = 0
        a = b = result = address = 0
        # v1 archives operands of memoizable opcodes only (the value
        # stream Shade kept); v2 keeps any operands the recorder
        # attached -- e.g. fp-add values -- so round-trips are lossless.
        has_operands = event.opcode.is_memoizable or (
            annotate
            and not (event.a == 0 and event.b == 0 and event.result == 0)
        )
        if has_operands:
            flags |= _FLAG_OPERANDS
            as_int = (
                event.opcode in (Opcode.IMUL, Opcode.IDIV)
                if not annotate
                else all(
                    isinstance(v, int) and not isinstance(v, bool)
                    for v in (event.a, event.b, event.result)
                )
            )
            if as_int:
                flags |= _FLAG_INT_OPERANDS
                for value in (event.a, event.b, event.result):
                    if not _INT64_MIN <= int(value) <= _INT64_MAX:
                        raise TraceFormatError(
                            f"integer operand {value} exceeds int64 range"
                        )
                a, b, result = int(event.a), int(event.b), int(event.result)
            else:
                a = _signed(float64_to_bits(float(event.a)))
                b = _signed(float64_to_bits(float(event.b)))
                result = _signed(float64_to_bits(float(event.result)))
        elif event.opcode.is_memory:
            flags |= _FLAG_ADDRESS
            address = event.address or 0
        tail = b""
        if annotate:
            if event.pc is not None:
                flags |= _FLAG_PC
                tail += pack_q(event.pc)
            if event.dst is not None:
                flags |= _FLAG_DST
                tail += pack_q(event.dst)
            if event.srcs:
                if len(event.srcs) > 255:
                    raise TraceFormatError(
                        f"event has {len(event.srcs)} sources; v2 caps at 255"
                    )
                flags |= _FLAG_SRCS
                tail += bytes((len(event.srcs),))
                for src in event.srcs:
                    tail += pack_q(src)
        stream.write(
            pack(_OPCODE_INDEX[event.opcode], flags, a, b, result, address)
            + tail
        )
        count += 1
    return count


def _read_exact(stream: BinaryIO, size: int, what: str) -> bytes:
    blob = stream.read(size)
    if len(blob) != size:
        raise TraceFormatError(f"truncated binary trace {what}")
    return blob


def read_binary_trace(stream: BinaryIO) -> Iterator[TraceEvent]:
    """Parse events written by :func:`write_binary_trace` (v1 or v2)."""
    magic = stream.read(len(BINARY_MAGIC))
    if magic == BINARY_MAGIC:
        annotated = False
    elif magic == BINARY_MAGIC_V2:
        annotated = True
    else:
        raise TraceFormatError(
            f"bad magic {magic!r}; not a binary trace (expected "
            f"{BINARY_MAGIC!r} or {BINARY_MAGIC_V2!r})"
        )
    record_size = _RECORD.size
    unpack = _RECORD.unpack
    unpack_q = _QWORD.unpack
    while True:
        blob = stream.read(record_size)
        if not blob:
            return
        if len(blob) != record_size:
            raise TraceFormatError("truncated binary trace record")
        opcode_index, flags, a, b, result, address = unpack(blob)
        try:
            opcode = _OPCODES[opcode_index]
        except IndexError:
            raise TraceFormatError(
                f"unknown opcode index {opcode_index}"
            ) from None
        pc = dst = None
        srcs: tuple = ()
        if annotated:
            if flags & _FLAG_PC:
                pc = unpack_q(_read_exact(stream, 8, "pc field"))[0]
            if flags & _FLAG_DST:
                dst = unpack_q(_read_exact(stream, 8, "dst field"))[0]
            if flags & _FLAG_SRCS:
                n = _read_exact(stream, 1, "srcs count")[0]
                srcs = tuple(
                    unpack_q(_read_exact(stream, 8, "src field"))[0]
                    for _ in range(n)
                )
        elif flags & (_FLAG_PC | _FLAG_DST | _FLAG_SRCS):
            raise TraceFormatError(
                "annotation flags present in a v1 binary trace record"
            )
        if flags & _FLAG_OPERANDS:
            if flags & _FLAG_INT_OPERANDS:
                yield TraceEvent(opcode, a, b, result, dst=dst, srcs=srcs, pc=pc)
            else:
                yield TraceEvent(
                    opcode,
                    bits_to_float64(a & 0xFFFFFFFFFFFFFFFF),
                    bits_to_float64(b & 0xFFFFFFFFFFFFFFFF),
                    bits_to_float64(result & 0xFFFFFFFFFFFFFFFF),
                    dst=dst,
                    srcs=srcs,
                    pc=pc,
                )
        elif flags & _FLAG_ADDRESS:
            yield TraceEvent(opcode, address=address, dst=dst, srcs=srcs, pc=pc)
        else:
            yield TraceEvent(opcode, dst=dst, srcs=srcs, pc=pc)
