"""Compact binary trace format.

The text format (:mod:`repro.isa.trace`) is greppable but ~50 bytes per
event; full-size workload runs produce tens of millions of events, so a
fixed-width binary record keeps archives practical:

========  =====  =========================================
field     bytes  contents
========  =====  =========================================
opcode        1  index into the Opcode enum
flags         1  bit 0: operands present, bit 1: address present
a             8  operand bit pattern (IEEE-754 or int64)
b             8  operand bit pattern
result        8  result bit pattern
address       8  load/store address
========  =====  =========================================

Integer-multiply operands are stored as two's-complement int64 (flag
bit 2 marks them), float operands as raw IEEE-754 bits, so round-trips
are exact.  A 8-byte magic + version header guards the format.

Two on-disk versions exist:

* **v1** (``RPROTRC1``) is the fixed 34-byte record above.  It archives
  value streams only -- dataflow (``dst``/``srcs``) and PC annotations
  are dropped, the same information Shade recorded.
* **v2** (``RPROTRC2``) appends optional variable-length annotation
  fields after the fixed record, marked by three extra flag bits: a
  synthetic PC (bit 3), a dataflow destination id (bit 4) and a
  source-id list (bit 5: one count byte then that many ids).  v2 exists
  so the trace corpus can persist *exactly* what the recorder produced;
  PC-indexed schemes (the Reuse Buffer) and the hazard-aware pipeline
  replay identically from disk.
* **v3** (``RPROTRC3``) is the columnar block format: the stream is a
  sequence of blocks, each holding up to :data:`~repro.isa.columns.
  DEFAULT_BATCH_EVENTS` events as the parallel columns of a
  :class:`~repro.isa.columns.ColumnBatch` (opcode bytes, flag bytes,
  little-endian int64 operand/result columns, then address/pc/dst/srcs
  columns present only when some event in the block uses them).  It
  archives exactly the v2 information, but deserializes straight into
  batches -- :func:`read_column_blocks` never builds an event object,
  which is what makes corpus replay fast.

Readers accept all versions transparently; :func:`read_column_blocks`
adapts v1/v2 streams into batches so every consumer can be columnar.
Writers default to v1 for compatibility.
"""

from __future__ import annotations

import struct
import sys
from typing import BinaryIO, Iterable, Iterator, Optional

from ..errors import TraceFormatError
from .opcodes import OPCODE_INDEX, OPCODE_LIST, Opcode
from .trace import TraceEvent
from ..arch.ieee754 import bits_to_float64, float64_to_bits

__all__ = [
    "write_binary_trace",
    "read_binary_trace",
    "write_column_trace",
    "read_column_blocks",
    "BINARY_MAGIC",
    "BINARY_MAGIC_V2",
    "BINARY_MAGIC_V3",
]

BINARY_MAGIC = b"RPROTRC1"
BINARY_MAGIC_V2 = b"RPROTRC2"
BINARY_MAGIC_V3 = b"RPROTRC3"

_RECORD = struct.Struct("<BBqqqq")
_QWORD = struct.Struct("<q")
_OPCODES = list(OPCODE_LIST)
_OPCODE_INDEX = OPCODE_INDEX

_FLAG_OPERANDS = 1
_FLAG_ADDRESS = 2
_FLAG_INT_OPERANDS = 4
# v2-only annotation flags.
_FLAG_PC = 8
_FLAG_DST = 16
_FLAG_SRCS = 32

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


def _signed(bits: int) -> int:
    bits &= 0xFFFFFFFFFFFFFFFF
    return bits - (1 << 64) if bits >> 63 else bits


def write_binary_trace(
    events: Iterable[TraceEvent], stream: BinaryIO, version: int = 1
) -> int:
    """Serialize events; returns the number written.

    ``version=1`` archives the value stream only (dataflow and PC
    annotations dropped); ``version=2`` appends the annotations so the
    round-trip is lossless.  Integer-multiply operands outside int64
    range are rejected (they could not exist in a real register trace).
    """
    if version == 3:
        return write_column_trace(events, stream)
    if version == 1:
        stream.write(BINARY_MAGIC)
    elif version == 2:
        stream.write(BINARY_MAGIC_V2)
    else:
        raise TraceFormatError(f"unknown binary trace version {version!r}")
    annotate = version == 2
    count = 0
    pack = _RECORD.pack
    pack_q = _QWORD.pack
    for event in events:
        flags = 0
        a = b = result = address = 0
        # v1 archives operands of memoizable opcodes only (the value
        # stream Shade kept); v2 keeps any operands the recorder
        # attached -- e.g. fp-add values -- so round-trips are lossless.
        has_operands = event.opcode.is_memoizable or (
            annotate
            and not (event.a == 0 and event.b == 0 and event.result == 0)
        )
        if has_operands:
            flags |= _FLAG_OPERANDS
            as_int = (
                event.opcode in (Opcode.IMUL, Opcode.IDIV)
                if not annotate
                else all(
                    isinstance(v, int) and not isinstance(v, bool)
                    for v in (event.a, event.b, event.result)
                )
            )
            if as_int:
                flags |= _FLAG_INT_OPERANDS
                for value in (event.a, event.b, event.result):
                    if not _INT64_MIN <= int(value) <= _INT64_MAX:
                        raise TraceFormatError(
                            f"integer operand {value} exceeds int64 range"
                        )
                a, b, result = int(event.a), int(event.b), int(event.result)
            else:
                a = _signed(float64_to_bits(float(event.a)))
                b = _signed(float64_to_bits(float(event.b)))
                result = _signed(float64_to_bits(float(event.result)))
        elif event.opcode.is_memory:
            flags |= _FLAG_ADDRESS
            address = event.address or 0
        tail = b""
        if annotate:
            if event.pc is not None:
                flags |= _FLAG_PC
                tail += pack_q(event.pc)
            if event.dst is not None:
                flags |= _FLAG_DST
                tail += pack_q(event.dst)
            if event.srcs:
                if len(event.srcs) > 255:
                    raise TraceFormatError(
                        f"event has {len(event.srcs)} sources; v2 caps at 255"
                    )
                flags |= _FLAG_SRCS
                tail += bytes((len(event.srcs),))
                for src in event.srcs:
                    tail += pack_q(src)
        stream.write(
            pack(_OPCODE_INDEX[event.opcode], flags, a, b, result, address)
            + tail
        )
        count += 1
    return count


def _read_exact(stream: BinaryIO, size: int, what: str) -> bytes:
    blob = stream.read(size)
    if len(blob) != size:
        raise TraceFormatError(f"truncated binary trace {what}")
    return blob


def read_binary_trace(stream: BinaryIO) -> Iterator[TraceEvent]:
    """Parse events written by :func:`write_binary_trace` (v1, v2 or v3)."""
    magic = stream.read(len(BINARY_MAGIC))
    if magic == BINARY_MAGIC:
        annotated = False
    elif magic == BINARY_MAGIC_V2:
        annotated = True
    elif magic == BINARY_MAGIC_V3:
        for batch in _read_v3_blocks(stream):
            yield from batch.to_events()
        return
    else:
        raise TraceFormatError(
            f"bad magic {magic!r}; not a binary trace (expected "
            f"{BINARY_MAGIC!r}, {BINARY_MAGIC_V2!r} or {BINARY_MAGIC_V3!r})"
        )
    yield from _read_records(stream, annotated)


def _read_records(stream: BinaryIO, annotated: bool) -> Iterator[TraceEvent]:
    """Yield the fixed-record events of a v1/v2 stream (magic consumed)."""
    record_size = _RECORD.size
    unpack = _RECORD.unpack
    unpack_q = _QWORD.unpack
    while True:
        blob = stream.read(record_size)
        if not blob:
            return
        if len(blob) != record_size:
            raise TraceFormatError("truncated binary trace record")
        opcode_index, flags, a, b, result, address = unpack(blob)
        try:
            opcode = _OPCODES[opcode_index]
        except IndexError:
            raise TraceFormatError(
                f"unknown opcode index {opcode_index}"
            ) from None
        pc = dst = None
        srcs: tuple = ()
        if annotated:
            if flags & _FLAG_PC:
                pc = unpack_q(_read_exact(stream, 8, "pc field"))[0]
            if flags & _FLAG_DST:
                dst = unpack_q(_read_exact(stream, 8, "dst field"))[0]
            if flags & _FLAG_SRCS:
                n = _read_exact(stream, 1, "srcs count")[0]
                srcs = tuple(
                    unpack_q(_read_exact(stream, 8, "src field"))[0]
                    for _ in range(n)
                )
        elif flags & (_FLAG_PC | _FLAG_DST | _FLAG_SRCS):
            raise TraceFormatError(
                "annotation flags present in a v1 binary trace record"
            )
        if flags & _FLAG_OPERANDS:
            if flags & _FLAG_INT_OPERANDS:
                yield TraceEvent(opcode, a, b, result, dst=dst, srcs=srcs, pc=pc)
            else:
                yield TraceEvent(
                    opcode,
                    bits_to_float64(a & 0xFFFFFFFFFFFFFFFF),
                    bits_to_float64(b & 0xFFFFFFFFFFFFFFFF),
                    bits_to_float64(result & 0xFFFFFFFFFFFFFFFF),
                    dst=dst,
                    srcs=srcs,
                    pc=pc,
                )
        elif flags & _FLAG_ADDRESS:
            yield TraceEvent(opcode, address=address, dst=dst, srcs=srcs, pc=pc)
        else:
            yield TraceEvent(opcode, dst=dst, srcs=srcs, pc=pc)


# -- v3: columnar blocks ----------------------------------------------------
#
# Stream layout: the 8-byte magic, then zero or more blocks.  Each block:
#
#   <u32 n_events> <u8 presence>
#   opcode column   (n bytes, codes into OPCODE_LIST)
#   flags column    (n bytes, the ColumnBatch flag bits)
#   a/b/result      (3 x 8n bytes, little-endian int64)
#   [address 8n]    if presence bit 1
#   [pc 8n]         if presence bit 2
#   [dst 8n]        if presence bit 4
#   [src offsets (n+1) x u32, then 8 x offsets[-1] src ids]  if bit 8
#
# Optional columns are omitted when no event in the block uses them; a
# reader fills zeros (the flag bits stay authoritative per event).  EOF
# is only legal on a block boundary; anything shorter raises.

_BLOCK_HEADER = struct.Struct("<IB")
_P_ADDRESS = 1
_P_PC = 2
_P_DST = 4
_P_SRCS = 8
# In-memory ColumnBatch flag bits legal on disk (everything but _F_WIDE).
_V3_FLAG_MASK = 1 | 2 | 4 | 8


def _le_bytes(column) -> bytes:
    if sys.byteorder == "little":
        return column.tobytes()
    from array import array as _array

    clone = _array(column.typecode, column)
    clone.byteswap()
    return clone.tobytes()


def _column_from_le(typecode: str, blob: bytes):
    from array import array as _array

    column = _array(typecode)
    column.frombytes(blob)
    if sys.byteorder != "little":
        column.byteswap()
    return column


def _reject_wide(batch, start: int, stop: int) -> None:
    """Raise exactly as the v2 writer would for unencodable operands."""
    for index in sorted(batch.wide):
        if not start <= index < stop:
            continue
        a, b, result = batch.wide[index]
        if all(
            isinstance(v, int) and not isinstance(v, bool)
            for v in (a, b, result)
        ):
            for value in (a, b, result):
                if not _INT64_MIN <= int(value) <= _INT64_MAX:
                    raise TraceFormatError(
                        f"integer operand {value} exceeds int64 range"
                    )
        # A mixed triple went wide because float coercion overflowed;
        # coercing again raises the same OverflowError the v2 writer
        # surfaces for such events.
        float(a), float(b), float(result)
        raise TraceFormatError(
            "unencodable wide operands"
        )  # pragma: no cover - unreachable by construction


def _write_block(stream: BinaryIO, batch, start: int, stop: int) -> None:
    n = stop - start
    if batch.wide:
        _reject_wide(batch, start, stop)
    flags = batch.flags_col[start:stop]
    or_flags = 0
    for value in flags:
        or_flags |= value
    src_lo = batch.src_offsets[start]
    src_hi = batch.src_offsets[stop]
    presence = 0
    if or_flags & 2:  # _F_ADDRESS
        presence |= _P_ADDRESS
    if or_flags & 4:  # _F_PC
        presence |= _P_PC
    if or_flags & 8:  # _F_DST
        presence |= _P_DST
    if src_hi > src_lo:
        presence |= _P_SRCS
    stream.write(_BLOCK_HEADER.pack(n, presence))
    stream.write(batch.opcode_col[start:stop].tobytes())
    stream.write(flags.tobytes())
    stream.write(_le_bytes(batch.a_col[start:stop]))
    stream.write(_le_bytes(batch.b_col[start:stop]))
    stream.write(_le_bytes(batch.result_col[start:stop]))
    if presence & _P_ADDRESS:
        stream.write(_le_bytes(batch.address_col[start:stop]))
    if presence & _P_PC:
        stream.write(_le_bytes(batch.pc_col[start:stop]))
    if presence & _P_DST:
        stream.write(_le_bytes(batch.dst_col[start:stop]))
    if presence & _P_SRCS:
        from array import array as _array

        offsets = _array(
            "I", (bound - src_lo for bound in batch.src_offsets[start:stop + 1])
        )
        stream.write(_le_bytes(offsets))
        stream.write(_le_bytes(batch.srcs_col[src_lo:src_hi]))


def write_column_trace(
    source, stream: BinaryIO, block_events: Optional[int] = None
) -> int:
    """Serialize a trace as v3 columnar blocks; returns events written.

    ``source`` may be a :class:`~repro.isa.columns.ColumnBatch`, a
    :class:`~repro.isa.trace.Trace` (its columnar view is used -- no
    event objects are materialized), or any iterable of events.
    """
    from .columns import ColumnBatch, DEFAULT_BATCH_EVENTS

    if block_events is None:
        block_events = DEFAULT_BATCH_EVENTS
    if block_events < 1:
        raise TraceFormatError(f"block_events must be >= 1, got {block_events}")
    stream.write(BINARY_MAGIC_V3)
    columns = getattr(source, "columns", None)
    if callable(columns):
        source = columns()
    if isinstance(source, ColumnBatch):
        total = len(source)
        for start in range(0, total, block_events):
            _write_block(stream, source, start, min(start + block_events, total))
        return total
    # Plain event iterable: batch incrementally so memory stays bounded.
    total = 0
    batch = ColumnBatch()
    for event in source:
        batch.append(event)
        if len(batch) >= block_events:
            _write_block(stream, batch, 0, len(batch))
            total += len(batch)
            batch = ColumnBatch()
    if len(batch):
        _write_block(stream, batch, 0, len(batch))
        total += len(batch)
    return total


def _read_v3_blocks(stream: BinaryIO) -> Iterator["object"]:
    """Yield ColumnBatch blocks of a v3 stream (magic already consumed)."""
    from array import array as _array

    from .columns import ColumnBatch

    header_size = _BLOCK_HEADER.size
    while True:
        header = stream.read(header_size)
        if not header:
            return
        if len(header) != header_size:
            raise TraceFormatError("truncated binary trace block header")
        n, presence = _BLOCK_HEADER.unpack(header)
        if presence & ~(_P_ADDRESS | _P_PC | _P_DST | _P_SRCS):
            raise TraceFormatError(
                f"unknown column presence bits 0x{presence:02x}"
            )
        batch = ColumnBatch()
        batch.opcode_col = _column_from_le(
            "B", _read_exact(stream, n, "opcode column")
        )
        limit = len(_OPCODES)
        for code in batch.opcode_col:
            if code >= limit:
                raise TraceFormatError(f"unknown opcode index {code}")
        batch.flags_col = _column_from_le(
            "B", _read_exact(stream, n, "flags column")
        )
        for flag_bits in batch.flags_col:
            if flag_bits & ~_V3_FLAG_MASK:
                raise TraceFormatError(
                    f"unknown event flag bits 0x{flag_bits:02x}"
                )
        batch.a_col = _column_from_le(
            "q", _read_exact(stream, 8 * n, "operand column")
        )
        batch.b_col = _column_from_le(
            "q", _read_exact(stream, 8 * n, "operand column")
        )
        batch.result_col = _column_from_le(
            "q", _read_exact(stream, 8 * n, "result column")
        )
        zeros = bytes(8 * n)
        batch.address_col = _column_from_le(
            "q",
            _read_exact(stream, 8 * n, "address column")
            if presence & _P_ADDRESS
            else zeros,
        )
        batch.pc_col = _column_from_le(
            "q",
            _read_exact(stream, 8 * n, "pc column")
            if presence & _P_PC
            else zeros,
        )
        batch.dst_col = _column_from_le(
            "q",
            _read_exact(stream, 8 * n, "dst column")
            if presence & _P_DST
            else zeros,
        )
        if presence & _P_SRCS:
            offsets = _column_from_le(
                "I", _read_exact(stream, 4 * (n + 1), "src offsets")
            )
            previous = offsets[0]
            if previous != 0:
                raise TraceFormatError("src offsets must start at 0")
            for bound in offsets:
                if bound < previous:
                    raise TraceFormatError("src offsets must be monotonic")
                previous = bound
            batch.src_offsets = _array("Q", offsets)
            batch.srcs_col = _column_from_le(
                "q", _read_exact(stream, 8 * offsets[-1], "src ids")
            )
        else:
            batch.src_offsets = _array("Q", bytes(8 * (n + 1)))
            batch.srcs_col = _array("q")
        yield batch


def read_column_blocks(
    stream: BinaryIO, block_events: Optional[int] = None
) -> Iterator["object"]:
    """Yield :class:`~repro.isa.columns.ColumnBatch` blocks of any version.

    v3 streams deserialize straight into their stored blocks; v1/v2
    streams are adapted through the record reader, grouped into blocks
    of ``block_events``.  This is the single entry point the corpus and
    the batched simulators read traces through.
    """
    from .columns import ColumnBatch, DEFAULT_BATCH_EVENTS

    if block_events is None:
        block_events = DEFAULT_BATCH_EVENTS
    magic = stream.read(len(BINARY_MAGIC))
    if magic == BINARY_MAGIC_V3:
        yield from _read_v3_blocks(stream)
        return
    if magic == BINARY_MAGIC:
        annotated = False
    elif magic == BINARY_MAGIC_V2:
        annotated = True
    else:
        raise TraceFormatError(
            f"bad magic {magic!r}; not a binary trace (expected "
            f"{BINARY_MAGIC!r}, {BINARY_MAGIC_V2!r} or {BINARY_MAGIC_V3!r})"
        )
    batch = ColumnBatch()
    for event in _read_records(stream, annotated):
        batch.append(event)
        if len(batch) >= block_events:
            yield batch
            batch = ColumnBatch()
    if len(batch):
        yield batch
