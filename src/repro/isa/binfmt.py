"""Compact binary trace format.

The text format (:mod:`repro.isa.trace`) is greppable but ~50 bytes per
event; full-size workload runs produce tens of millions of events, so a
fixed-width binary record keeps archives practical:

========  =====  =========================================
field     bytes  contents
========  =====  =========================================
opcode        1  index into the Opcode enum
flags         1  bit 0: operands present, bit 1: address present
a             8  operand bit pattern (IEEE-754 or int64)
b             8  operand bit pattern
result        8  result bit pattern
address       8  load/store address
========  =====  =========================================

Integer-multiply operands are stored as two's-complement int64 (flag
bit 2 marks them), float operands as raw IEEE-754 bits, so round-trips
are exact.  A 8-byte magic + version header guards the format.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Iterable, Iterator, List

from ..errors import TraceFormatError
from .opcodes import Opcode
from .trace import TraceEvent
from ..arch.ieee754 import bits_to_float64, float64_to_bits

__all__ = ["write_binary_trace", "read_binary_trace", "BINARY_MAGIC"]

BINARY_MAGIC = b"RPROTRC1"

_RECORD = struct.Struct("<BBqqqq")
_OPCODES = list(Opcode)
_OPCODE_INDEX = {opcode: i for i, opcode in enumerate(_OPCODES)}

_FLAG_OPERANDS = 1
_FLAG_ADDRESS = 2
_FLAG_INT_OPERANDS = 4

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


def _signed(bits: int) -> int:
    bits &= 0xFFFFFFFFFFFFFFFF
    return bits - (1 << 64) if bits >> 63 else bits


def write_binary_trace(events: Iterable[TraceEvent], stream: BinaryIO) -> int:
    """Serialize events; returns the number written.

    Dataflow (dst/srcs) and PC annotations are not archived -- binary
    traces are value streams, the same information Shade recorded.
    Integer-multiply operands outside int64 range are rejected (they
    could not exist in a real register trace).
    """
    stream.write(BINARY_MAGIC)
    count = 0
    pack = _RECORD.pack
    for event in events:
        flags = 0
        a = b = result = address = 0
        if event.opcode.is_memoizable:
            flags |= _FLAG_OPERANDS
            if event.opcode is Opcode.IMUL:
                flags |= _FLAG_INT_OPERANDS
                for value in (event.a, event.b, event.result):
                    if not _INT64_MIN <= int(value) <= _INT64_MAX:
                        raise TraceFormatError(
                            f"imul operand {value} exceeds int64 range"
                        )
                a, b, result = int(event.a), int(event.b), int(event.result)
            else:
                a = _signed(float64_to_bits(float(event.a)))
                b = _signed(float64_to_bits(float(event.b)))
                result = _signed(float64_to_bits(float(event.result)))
        elif event.opcode.is_memory:
            flags |= _FLAG_ADDRESS
            address = event.address or 0
        stream.write(
            pack(_OPCODE_INDEX[event.opcode], flags, a, b, result, address)
        )
        count += 1
    return count


def read_binary_trace(stream: BinaryIO) -> Iterator[TraceEvent]:
    """Parse events written by :func:`write_binary_trace`."""
    magic = stream.read(len(BINARY_MAGIC))
    if magic != BINARY_MAGIC:
        raise TraceFormatError(
            f"bad magic {magic!r}; not a binary trace (expected {BINARY_MAGIC!r})"
        )
    record_size = _RECORD.size
    unpack = _RECORD.unpack
    while True:
        blob = stream.read(record_size)
        if not blob:
            return
        if len(blob) != record_size:
            raise TraceFormatError("truncated binary trace record")
        opcode_index, flags, a, b, result, address = unpack(blob)
        try:
            opcode = _OPCODES[opcode_index]
        except IndexError:
            raise TraceFormatError(
                f"unknown opcode index {opcode_index}"
            ) from None
        if flags & _FLAG_OPERANDS:
            if flags & _FLAG_INT_OPERANDS:
                yield TraceEvent(opcode, a, b, result)
            else:
                yield TraceEvent(
                    opcode,
                    bits_to_float64(a & 0xFFFFFFFFFFFFFFFF),
                    bits_to_float64(b & 0xFFFFFFFFFFFFFFFF),
                    bits_to_float64(result & 0xFFFFFFFFFFFFFFFF),
                )
        elif flags & _FLAG_ADDRESS:
            yield TraceEvent(opcode, address=address)
        else:
            yield TraceEvent(opcode)
