"""Instruction classes for the trace format.

The paper's simulator (Shade on SPARC) collected two things: operand
values of all multiply/divide instructions, and the frequency breakdown
of *all* instructions.  The opcode set here is therefore a classed ISA:
the memoizable operations are first-class, everything else is grouped by
its pipeline behaviour (ALU, FP add, load, store, branch), which is all
the cycle model needs.
"""

from __future__ import annotations

import enum
from typing import Optional

from ..core.operations import Operation

__all__ = [
    "Opcode",
    "MEMOIZABLE_OPCODES",
    "OPCODE_LIST",
    "OPCODE_INDEX",
    "opcode_to_operation",
    "operation_to_opcode",
]


class Opcode(enum.Enum):
    """A SPARC-like instruction class."""

    # Memoizable multi-cycle operations.
    IMUL = "imul"
    IDIV = "idiv"
    FMUL = "fmul"
    FDIV = "fdiv"
    FSQRT = "fsqrt"
    FRECIP = "frecip"
    FLOG = "flog"
    FSIN = "fsin"
    FCOS = "fcos"
    # Single-cycle / short operations, classed.
    IALU = "ialu"  # integer add/sub/logic/shift
    FADD = "fadd"  # fp add/sub/compare/convert
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    NOP = "nop"

    @property
    def is_memoizable(self) -> bool:
        return self in MEMOIZABLE_OPCODES

    @property
    def is_memory(self) -> bool:
        return self is Opcode.LOAD or self is Opcode.STORE


MEMOIZABLE_OPCODES = frozenset(
    {
        Opcode.IMUL,
        Opcode.IDIV,
        Opcode.FMUL,
        Opcode.FDIV,
        Opcode.FSQRT,
        Opcode.FRECIP,
        Opcode.FLOG,
        Opcode.FSIN,
        Opcode.FCOS,
    }
)

#: Canonical opcode order shared by the binary trace formats and the
#: columnar batches: the uint8 code of an opcode is its position here.
#: Append-only -- reordering would silently re-interpret archived traces.
OPCODE_LIST: tuple = tuple(Opcode)
OPCODE_INDEX = {opcode: i for i, opcode in enumerate(OPCODE_LIST)}

_OP_BY_OPCODE = {
    Opcode.IMUL: Operation.INT_MUL,
    Opcode.IDIV: Operation.INT_DIV,
    Opcode.FMUL: Operation.FP_MUL,
    Opcode.FDIV: Operation.FP_DIV,
    Opcode.FSQRT: Operation.FP_SQRT,
    Opcode.FRECIP: Operation.FP_RECIP,
    Opcode.FLOG: Operation.FP_LOG,
    Opcode.FSIN: Operation.FP_SIN,
    Opcode.FCOS: Operation.FP_COS,
}

_OPCODE_BY_OP = {v: k for k, v in _OP_BY_OPCODE.items()}

# Hot-path accessor: simulators resolve opcode -> operation per event, so
# cache it as a member attribute (no dict hash on an Enum per event).
for _opcode in Opcode:
    _opcode.operation = _OP_BY_OPCODE.get(_opcode)


def opcode_to_operation(opcode: Opcode) -> Optional[Operation]:
    """Memoizable operation for ``opcode``, or None for plain instructions."""
    return _OP_BY_OPCODE.get(opcode)


def operation_to_opcode(operation: Operation) -> Opcode:
    """Trace opcode carrying ``operation``."""
    return _OPCODE_BY_OP[operation]
