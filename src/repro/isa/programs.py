"""Demonstration assembly programs for the SPARC-flavoured machine.

Small numeric kernels written in the textual ISA of
:mod:`repro.isa.machine`, used by tests, the assembly example, and as
templates for writing new programs.  Each entry documents its memory
protocol (where inputs/outputs live).
"""

from __future__ import annotations

from typing import Dict

__all__ = [
    "PROGRAMS",
    "SAXPY",
    "DOT_PRODUCT",
    "VECTOR_NORMALIZE",
    "GAMMA_LUT",
    "SOBEL_GX",
    "MEMO_SHOWCASE",
]

#: y[i] <- a*x[i] + y[i].  Inputs: n at %r1, x at 0x1000, y at 0x2000,
#: a in %f1 (seeded by the harness via fset prologue below).
SAXPY = """
        ! saxpy: y[i] = a * x[i] + y[i]
        fset    2.5, %f1        ! a
        set     0, %r2          ! i = 0
        set     4096, %r3       ! &x
        set     8192, %r4       ! &y
loop:
        cmp     %r2, %r1
        bge     done
        ld      [%r3 + 0], %f2
        ld      [%r4 + 0], %f3
        fmul    %f1, %f2, %f4
        fadd    %f4, %f3, %f5
        st      %f5, [%r4 + 0]
        add     %r3, 8, %r3
        add     %r4, 8, %r4
        add     %r2, 1, %r2
        ba      loop
done:
        halt
"""

#: dot <- sum x[i]*y[i].  Inputs: n at %r1, x at 0x1000, y at 0x2000;
#: output written to 0x3000.
DOT_PRODUCT = """
        ! dot product with result at 0x3000
        set     0, %r2
        set     4096, %r3
        set     8192, %r4
        fset    0.0, %f6
loop:
        cmp     %r2, %r1
        bge     done
        ld      [%r3 + 0], %f2
        ld      [%r4 + 0], %f3
        fmul    %f2, %f3, %f4
        fadd    %f6, %f4, %f6
        add     %r3, 8, %r3
        add     %r4, 8, %r4
        add     %r2, 1, %r2
        ba      loop
done:
        set     12288, %r5
        st      %f6, [%r5 + 0]
        halt
"""

#: x[i] <- x[i] / norm, norm = sqrt(sum x[i]^2).  n at %r1, x at 0x1000.
VECTOR_NORMALIZE = """
        ! two passes: sum of squares + sqrt, then divide through
        set     0, %r2
        set     4096, %r3
        fset    0.0, %f6
sumsq:
        cmp     %r2, %r1
        bge     scale
        ld      [%r3 + 0], %f2
        fmul    %f2, %f2, %f4
        fadd    %f6, %f4, %f6
        add     %r3, 8, %r3
        add     %r2, 1, %r2
        ba      sumsq
scale:
        fsqrt   %f6, %f7        ! the norm
        set     0, %r2
        set     4096, %r3
divloop:
        cmp     %r2, %r1
        bge     done
        ld      [%r3 + 0], %f2
        fdiv    %f2, %f7, %f5   ! same divisor every iteration
        st      %f5, [%r3 + 0]
        add     %r3, 8, %r3
        add     %r2, 1, %r2
        ba      divloop
done:
        halt
"""

#: out[i] <- x[i]*x[i] / 255  (the gamma curve of the custom_kernel
#: example, as a binary).  n at %r1, x at 0x1000, out at 0x2000.
GAMMA_LUT = """
        set     0, %r2
        set     4096, %r3
        set     8192, %r4
        fset    255.0, %f1
loop:
        cmp     %r2, %r1
        bge     done
        ld      [%r3 + 0], %f2
        fmul    %f2, %f2, %f3
        fdiv    %f3, %f1, %f4
        st      %f4, [%r4 + 0]
        add     %r3, 8, %r3
        add     %r4, 8, %r4
        add     %r2, 1, %r2
        ba      loop
done:
        halt
"""

#: Sobel horizontal-gradient magnitude over a row-major double image.
#: Inputs: width in %r1, height in %r2, image at 0x1000; output (same
#: layout) at 0x20000.  The address arithmetic uses smul per pixel --
#: the integer-multiply stream Table 5/7 measure.
SOBEL_GX = """
        set     1, %r5          ! i = 1
rows:
        add     %r2, -1, %r9    ! height-1
        cmp     %r5, %r9
        bge     done
        set     1, %r6          ! j = 1
cols:
        add     %r1, -1, %r9    ! width-1
        cmp     %r6, %r9
        bge     nextrow
        ! base offset of (i-1, j-1): ((i-1)*w + (j-1)) * 8 + 0x1000
        add     %r5, -1, %r7
        smul    %r7, %r1, %r7   ! (i-1) * w
        add     %r7, %r6, %r7
        add     %r7, -1, %r7
        sll     %r7, 3, %r7
        add     %r7, 4096, %r7  ! &p[i-1][j-1]
        ! right column minus left column, rows i-1, i, i+1
        ld      [%r7 + 16], %f2     ! p[i-1][j+1]
        ld      [%r7 + 0],  %f3     ! p[i-1][j-1]
        fsub    %f2, %f3, %f4
        sll     %r1, 3, %r8         ! row stride in bytes
        add     %r7, %r8, %r7       ! &p[i][j-1]
        ld      [%r7 + 16], %f2
        ld      [%r7 + 0],  %f3
        fsub    %f2, %f3, %f5
        fset    2.0, %f1
        fmul    %f5, %f1, %f5       ! centre row weighted x2
        add     %r7, %r8, %r7       ! &p[i+1][j-1]
        ld      [%r7 + 16], %f2
        ld      [%r7 + 0],  %f3
        fsub    %f2, %f3, %f6
        fadd    %f4, %f5, %f7
        fadd    %f7, %f6, %f7       ! gx
        ! out[i][j] = gx / 8
        fset    8.0, %f1
        fdiv    %f7, %f1, %f7
        smul    %r5, %r1, %r9
        add     %r9, %r6, %r9
        sll     %r9, 3, %r9
        add     %r9, 131072, %r9    ! &out[i][j]
        st      %f7, [%r9 + 0]
        add     %r6, 1, %r6
        ba      cols
nextrow:
        add     %r5, 1, %r5
        ba      rows
done:
        halt
"""

#: Exercises every static memo-opportunity class in one loop: a trivial
#: multiply (x1), a compile-time-constant pair, a locally redundant
#: (CSE-able) repeat, a range-bounded integer multiply (operands masked
#: to 3 bits), and an unknown data-dependent divide.  n at %r1, x at
#: 0x1000, out at 0x2000.  Used by `repro analyze` demos and the
#: static-vs-dynamic cross-validation tests.
MEMO_SHOWCASE = """
        set     0, %r2          ! i = 0
        set     4096, %r3       ! &x
        set     8192, %r4       ! &out
        fset    1.0, %f1        ! trivial multiplier
        fset    3.0, %f8
        fset    7.0, %f9
loop:
        cmp     %r2, %r1
        bge     done
        ld      [%r3 + 0], %f2
        fmul    %f2, %f1, %f3   ! trivial: x[i] * 1.0
        fmul    %f8, %f9, %f4   ! constant: 3.0 * 7.0 every iteration
        fmul    %f2, %f2, %f5   ! unknown: x[i]^2
        fmul    %f2, %f2, %f6   ! redundant: same pair as the line above
        fdiv    %f5, %f2, %f7   ! unknown: data-dependent divide
        and     %r2, 7, %r5     ! i mod 8
        and     %r2, 3, %r6     ! i mod 4
        smul    %r5, %r6, %r7   ! range-bounded: pair space <= 8*4
        fadd    %f3, %f4, %f3
        fadd    %f3, %f5, %f3
        fadd    %f3, %f7, %f3
        st      %f3, [%r4 + 0]
        add     %r3, 8, %r3
        add     %r4, 8, %r4
        add     %r2, 1, %r2
        ba      loop
done:
        halt
"""

PROGRAMS: Dict[str, str] = {
    "saxpy": SAXPY,
    "dot_product": DOT_PRODUCT,
    "vector_normalize": VECTOR_NORMALIZE,
    "gamma_lut": GAMMA_LUT,
    "sobel_gx": SOBEL_GX,
    "memo_showcase": MEMO_SHOWCASE,
}
