"""A SPARC-flavoured register machine and assembler.

The paper's measurement substrate is Shade executing SPARC binaries.
The instrumented-Python workloads reproduce its *value streams*; this
module closes the remaining gap for users who want to study real
(if small) programs: an assembler for a SPARC-like textual ISA and an
interpreter that executes programs while emitting the same
:class:`~repro.isa.trace.TraceEvent` stream the simulators consume --
with genuine program counters (for the Reuse Buffer comparison) and
genuine register dataflow (for the hazard pipeline).

Syntax (one instruction per line, ``!`` or ``#`` comments)::

    ! integer:   %r0..%r31  (r0 reads as zero), floats: %f0..%f31
    set     1024, %r1        ! r1 <- immediate
    fset    2.5, %f1         ! f1 <- float immediate
    add     %r1, 8, %r2      ! also sub/and/or/xor/sll/srl
    smul    %r1, %r2, %r3    ! integer multiply     (traced IMUL)
    ld      [%r1 + 8], %f2   ! load double          (traced LOAD)
    st      %f2, [%r1 + 16]  ! store double         (traced STORE)
    fadd    %f1, %f2, %f3    ! also fsub            (traced FADD)
    fmul    %f1, %f2, %f3    !                      (traced FMUL)
    fdiv    %f1, %f2, %f3    !                      (traced FDIV)
    fsqrt   %f1, %f3         !                      (traced FSQRT)
    frecip  %f1, %f3         !                      (traced FRECIP)
    flog    %f1, %f3         !                      (traced FLOG)
    fsin    %f1, %f3         !                      (traced FSIN)
    fcos    %f1, %f3         !                      (traced FCOS)
    cmp     %r1, %r2         ! set condition codes  (traced IALU)
    bne     loop             ! be/bne/bl/ble/bg/bge/ba
    nop
    halt

Loads/stores address a flat 8-byte-word memory; ``Machine.write_doubles``
seeds input arrays.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.operations import ieee_div, ieee_log, ieee_recip, ieee_sqrt, int_div
from ..errors import TraceFormatError
from .opcodes import Opcode
from .trace import Trace, TraceEvent

__all__ = ["Program", "Instruction", "assemble", "Machine", "MachineError"]

#: Address of the first instruction (text segment base).
TEXT_BASE = 0x10000

_INT_OPS = {"add", "sub", "and", "or", "xor", "sll", "srl"}
_BRANCHES = {"ba", "be", "bne", "bl", "ble", "bg", "bge"}
def _ieee_sin(a: float) -> float:
    """sin with IEEE default results (NaN for non-finite inputs)."""
    return math.sin(a) if math.isfinite(a) else math.nan


def _ieee_cos(a: float) -> float:
    """cos with IEEE default results (NaN for non-finite inputs)."""
    return math.cos(a) if math.isfinite(a) else math.nan


#: Unary FP mnemonics -> (compute, traced opcode).
_FP_UNARY = {
    "fsqrt": (ieee_sqrt, Opcode.FSQRT),
    "frecip": (ieee_recip, Opcode.FRECIP),
    "flog": (ieee_log, Opcode.FLOG),
    "fsin": (_ieee_sin, Opcode.FSIN),
    "fcos": (_ieee_cos, Opcode.FCOS),
}


class MachineError(TraceFormatError):
    """Assembly or execution error."""


@dataclass(frozen=True)
class Instruction:
    """One assembled instruction."""

    mnemonic: str
    operands: Tuple[str, ...]
    pc: int
    line: int  # source line, for diagnostics


@dataclass
class Program:
    """An assembled program: instructions + label addresses."""

    instructions: List[Instruction] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.instructions)


_LABEL_RE = re.compile(r"^([A-Za-z_][\w]*):$")
_MEM_RE = re.compile(r"^\[%r(\d+)(?:\s*\+\s*(-?\d+))?\]$")


def _split_operands(rest: str) -> Tuple[str, ...]:
    """Split on commas that are not inside [...] memory operands."""
    parts: List[str] = []
    depth = 0
    current = ""
    for char in rest:
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        if char == "," and depth == 0:
            parts.append(current.strip())
            current = ""
        else:
            current += char
    if current.strip():
        parts.append(current.strip())
    return tuple(parts)


def assemble(source: str) -> Program:
    """Assemble textual source into a :class:`Program`."""
    program = Program()
    pending_labels: List[str] = []
    for line_number, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("!")[0].split("#")[0].strip()
        if not line:
            continue
        label_match = _LABEL_RE.match(line)
        if label_match:
            pending_labels.append(label_match.group(1))
            continue
        fields = line.split(None, 1)
        mnemonic = fields[0].lower()
        operands = _split_operands(fields[1]) if len(fields) > 1 else ()
        pc = TEXT_BASE + 4 * len(program.instructions)
        for label in pending_labels:
            if label in program.labels:
                raise MachineError(f"line {line_number}: duplicate label {label!r}")
            program.labels[label] = pc
        pending_labels.clear()
        program.instructions.append(
            Instruction(mnemonic, operands, pc, line_number)
        )
    for label in pending_labels:
        program.labels[label] = TEXT_BASE + 4 * len(program.instructions)
    return program


class Machine:
    """Interpreter executing a :class:`Program` and emitting a trace."""

    def __init__(
        self,
        program: Program,
        consumer: Optional[Callable[[TraceEvent], None]] = None,
        keep_trace: bool = True,
    ) -> None:
        self.program = program
        self.int_regs: List[int] = [0] * 32
        self.fp_regs: List[float] = [0.0] * 32
        self.memory: Dict[int, float] = {}
        self.cc = 0  # condition codes: sign of last cmp
        self.trace: Optional[Trace] = Trace() if keep_trace else None
        self._consumer = consumer
        self.steps = 0
        self.halted = False
        # Dataflow: last writer event id per register / memory word.
        self._next_vid = 0
        self._int_vids: List[Optional[int]] = [None] * 32
        self._fp_vids: List[Optional[int]] = [None] * 32
        self._mem_vids: Dict[int, int] = {}

    # -- helpers -----------------------------------------------------------

    def _emit(self, event: TraceEvent) -> None:
        if self.trace is not None:
            self.trace.append(event)
        if self._consumer is not None:
            self._consumer(event)

    def _new_vid(self) -> int:
        self._next_vid += 1
        return self._next_vid

    @staticmethod
    def _int_reg(token: str) -> int:
        if not token.startswith("%r"):
            raise MachineError(f"expected integer register, got {token!r}")
        number = int(token[2:])
        if not 0 <= number < 32:
            raise MachineError(f"no such register {token!r}")
        return number

    @staticmethod
    def _fp_reg(token: str) -> int:
        if not token.startswith("%f"):
            raise MachineError(f"expected fp register, got {token!r}")
        number = int(token[2:])
        if not 0 <= number < 32:
            raise MachineError(f"no such register {token!r}")
        return number

    def _read_int(self, token: str) -> Tuple[int, Optional[int]]:
        """Integer register or immediate -> (value, producing vid)."""
        if token.startswith("%r"):
            number = self._int_reg(token)
            if number == 0:
                return 0, None
            return self.int_regs[number], self._int_vids[number]
        try:
            return int(token, 0), None
        except ValueError:
            raise MachineError(f"bad integer operand {token!r}") from None

    def _write_int(self, token: str, value: int, vid: Optional[int]) -> None:
        number = self._int_reg(token)
        if number == 0:
            return  # %r0 is hardwired zero
        self.int_regs[number] = value
        self._int_vids[number] = vid

    def _read_fp(self, token: str) -> Tuple[float, Optional[int]]:
        number = self._fp_reg(token)
        return self.fp_regs[number], self._fp_vids[number]

    def _write_fp(self, token: str, value: float, vid: Optional[int]) -> None:
        number = self._fp_reg(token)
        self.fp_regs[number] = value
        self._fp_vids[number] = vid

    def _effective_address(self, token: str) -> Tuple[int, Optional[int]]:
        match = _MEM_RE.match(token)
        if not match:
            raise MachineError(f"bad memory operand {token!r}")
        base = int(match.group(1))
        offset = int(match.group(2) or 0)
        base_value = 0 if base == 0 else self.int_regs[base]
        base_vid = None if base == 0 else self._int_vids[base]
        return base_value + offset, base_vid

    # -- memory seeding / inspection ----------------------------------------

    def write_doubles(self, address: int, values: Sequence[float]) -> None:
        """Seed memory with an array of doubles (8 bytes per element)."""
        for index, value in enumerate(values):
            self.memory[address + 8 * index] = float(value)

    def read_doubles(self, address: int, count: int) -> List[float]:
        return [self.memory.get(address + 8 * i, 0.0) for i in range(count)]

    # -- execution -----------------------------------------------------------

    def run(self, max_steps: int = 1_000_000) -> int:
        """Execute until ``halt`` or the step budget; returns steps taken."""
        index = 0
        instructions = self.program.instructions
        labels = self.program.labels
        while not self.halted:
            if self.steps >= max_steps:
                raise MachineError(f"step budget exhausted ({max_steps})")
            if index >= len(instructions):
                break  # fell off the end: implicit halt
            instruction = instructions[index]
            index = self._execute(instruction, index, labels)
            self.steps += 1
        return self.steps

    def _execute(self, ins: Instruction, index: int, labels) -> int:
        m = ins.mnemonic
        ops = ins.operands
        pc = ins.pc
        try:
            if m == "halt":
                self.halted = True
                return index
            if m == "nop":
                self._emit(TraceEvent(Opcode.NOP, pc=pc))
                return index + 1
            if m == "set":
                value, _ = self._read_int(ops[0])
                vid = self._new_vid()
                self._write_int(ops[1], value, vid)
                self._emit(TraceEvent(Opcode.IALU, dst=vid, pc=pc))
                return index + 1
            if m == "fset":
                vid = self._new_vid()
                self._write_fp(ops[1], float(ops[0]), vid)
                self._emit(TraceEvent(Opcode.IALU, dst=vid, pc=pc))
                return index + 1
            if m in _INT_OPS:
                a, va = self._read_int(ops[0])
                b, vb = self._read_int(ops[1])
                result = {
                    "add": a + b,
                    "sub": a - b,
                    "and": a & b,
                    "or": a | b,
                    "xor": a ^ b,
                    "sll": a << (b & 63),
                    "srl": (a % (1 << 64)) >> (b & 63),
                }[m]
                vid = self._new_vid()
                self._write_int(ops[2], result, vid)
                srcs = tuple(v for v in (va, vb) if v is not None)
                self._emit(TraceEvent(Opcode.IALU, dst=vid, srcs=srcs, pc=pc))
                return index + 1
            if m == "sdiv":
                a, va = self._read_int(ops[0])
                b, vb = self._read_int(ops[1])
                result = int_div(a, b)
                vid = self._new_vid()
                self._write_int(ops[2], result, vid)
                srcs = tuple(v for v in (va, vb) if v is not None)
                self._emit(
                    TraceEvent(Opcode.IDIV, a, b, result, dst=vid, srcs=srcs, pc=pc)
                )
                return index + 1
            if m == "smul":
                a, va = self._read_int(ops[0])
                b, vb = self._read_int(ops[1])
                result = a * b
                vid = self._new_vid()
                self._write_int(ops[2], result, vid)
                srcs = tuple(v for v in (va, vb) if v is not None)
                self._emit(
                    TraceEvent(Opcode.IMUL, a, b, result, dst=vid, srcs=srcs, pc=pc)
                )
                return index + 1
            if m == "ld":
                address, base_vid = self._effective_address(ops[0])
                value = self.memory.get(address, 0.0)
                vid = self._new_vid()
                srcs = tuple(
                    v
                    for v in (base_vid, self._mem_vids.get(address))
                    if v is not None
                )
                self._write_fp(ops[1], value, vid)
                self._emit(
                    TraceEvent(
                        Opcode.LOAD, address=address, dst=vid, srcs=srcs, pc=pc
                    )
                )
                return index + 1
            if m == "st":
                value, value_vid = self._read_fp(ops[0])
                address, base_vid = self._effective_address(ops[1])
                self.memory[address] = value
                vid = self._new_vid()
                self._mem_vids[address] = vid
                srcs = tuple(v for v in (value_vid, base_vid) if v is not None)
                self._emit(
                    TraceEvent(
                        Opcode.STORE, address=address, dst=vid, srcs=srcs, pc=pc
                    )
                )
                return index + 1
            if m in ("fadd", "fsub"):
                a, va = self._read_fp(ops[0])
                b, vb = self._read_fp(ops[1])
                result = a + b if m == "fadd" else a - b
                vid = self._new_vid()
                self._write_fp(ops[2], result, vid)
                srcs = tuple(v for v in (va, vb) if v is not None)
                self._emit(
                    TraceEvent(Opcode.FADD, a, b, result, dst=vid, srcs=srcs, pc=pc)
                )
                return index + 1
            if m in ("fmul", "fdiv"):
                a, va = self._read_fp(ops[0])
                b, vb = self._read_fp(ops[1])
                result = a * b if m == "fmul" else ieee_div(a, b)
                opcode = Opcode.FMUL if m == "fmul" else Opcode.FDIV
                vid = self._new_vid()
                self._write_fp(ops[2], result, vid)
                srcs = tuple(v for v in (va, vb) if v is not None)
                self._emit(
                    TraceEvent(opcode, a, b, result, dst=vid, srcs=srcs, pc=pc)
                )
                return index + 1
            if m in _FP_UNARY:
                compute, opcode = _FP_UNARY[m]
                a, va = self._read_fp(ops[0])
                result = float(compute(a))
                vid = self._new_vid()
                self._write_fp(ops[1], result, vid)
                srcs = (va,) if va is not None else ()
                self._emit(
                    TraceEvent(
                        opcode, a, 0.0, result, dst=vid, srcs=srcs, pc=pc
                    )
                )
                return index + 1
            if m == "cmp":
                a, _ = self._read_int(ops[0])
                b, _ = self._read_int(ops[1])
                self.cc = (a > b) - (a < b)
                self._emit(TraceEvent(Opcode.IALU, pc=pc))
                return index + 1
            if m in _BRANCHES:
                taken = {
                    "ba": True,
                    "be": self.cc == 0,
                    "bne": self.cc != 0,
                    "bl": self.cc < 0,
                    "ble": self.cc <= 0,
                    "bg": self.cc > 0,
                    "bge": self.cc >= 0,
                }[m]
                self._emit(TraceEvent(Opcode.BRANCH, pc=pc))
                if taken:
                    target = labels.get(ops[0])
                    if target is None:
                        raise MachineError(f"unknown label {ops[0]!r}")
                    return (target - TEXT_BASE) // 4
                return index + 1
        except (IndexError, ValueError) as exc:
            raise MachineError(
                f"line {ins.line}: malformed {m!r} instruction"
            ) from exc
        raise MachineError(f"line {ins.line}: unknown mnemonic {m!r}")
