"""Instruction-set substrate: opcodes, traces, and a SPARC-like machine."""

from .machine import Machine, MachineError, Program, assemble
from .opcodes import MEMOIZABLE_OPCODES, Opcode, opcode_to_operation, operation_to_opcode
from .programs import PROGRAMS
from .trace import Trace, TraceEvent, dumps, frequency_breakdown, loads, read_trace, write_trace

__all__ = [
    "Machine",
    "MachineError",
    "Program",
    "assemble",
    "MEMOIZABLE_OPCODES",
    "Opcode",
    "opcode_to_operation",
    "operation_to_opcode",
    "PROGRAMS",
    "Trace",
    "TraceEvent",
    "dumps",
    "frequency_breakdown",
    "loads",
    "read_trace",
    "write_trace",
]
