"""Instruction traces: the interface between workloads and simulators.

A trace is a sequence of :class:`TraceEvent` records.  Memoizable events
carry operand and result values (what Shade extracted from registers);
memory events carry an address (for the cache hierarchy of section 3.3);
everything else is just an opcode for the frequency breakdown.

Traces can be held in memory (:class:`Trace`), streamed event by event,
or round-tripped through a simple line-oriented text format so recorded
workloads can be archived and replayed.
"""

from __future__ import annotations

import io
from collections import Counter
from typing import Dict, Iterable, Iterator, List, NamedTuple, Optional, TextIO, Union

from ..arch.ieee754 import bits_to_float64, float64_to_bits
from ..errors import TraceFormatError
from .opcodes import Opcode

__all__ = ["TraceEvent", "Trace", "write_trace", "read_trace", "frequency_breakdown"]


class TraceEvent(NamedTuple):
    """One dynamic instruction.

    ``a``/``b``/``result`` are meaningful for memoizable opcodes (for
    integer multiply they hold exact integers); ``address`` for loads and
    stores.  Plain instructions carry neither.

    ``dst``/``srcs`` are optional dataflow edges (virtual value ids
    assigned by the recorder): ``dst`` names the value this instruction
    produces, ``srcs`` the values it consumes.  The hazard-aware pipeline
    model uses them to charge RAW stalls; the text serialization drops
    them (archived traces are value streams only).

    A NamedTuple rather than a dataclass: traces run to millions of
    events and construction cost dominates recording.
    """

    opcode: Opcode
    a: Union[int, float] = 0.0
    b: Union[int, float] = 0.0
    result: Union[int, float] = 0.0
    address: Optional[int] = None
    dst: Optional[int] = None
    srcs: tuple = ()
    #: Static instruction identity (synthetic PC), recorded when the
    #: recorder's ``record_sites`` is on.  Used by the Reuse Buffer
    #: comparison (Sodani & Sohi index by instruction address).
    pc: Optional[int] = None


class Trace:
    """An in-memory instruction trace.

    Events are held either as a list of :class:`TraceEvent` records, as
    a columnar :class:`~repro.isa.columns.ColumnBatch`, or both: a trace
    loaded from the v3 binary format starts column-backed and only
    materializes event objects when :attr:`events` is first read, while
    a trace built by appending events converts lazily (and caches the
    result) when :meth:`columns` is first called.  Either view describes
    the identical event sequence.
    """

    def __init__(
        self,
        events: Optional[Iterable[TraceEvent]] = None,
        columns: Optional["object"] = None,
    ) -> None:
        if columns is not None and events is not None:
            raise ValueError("pass either events or columns, not both")
        self._events: Optional[List[TraceEvent]] = (
            None if columns is not None else list(events or [])
        )
        self._columns = columns

    @property
    def events(self) -> List[TraceEvent]:
        """The event list (materialized from columns on first access)."""
        if self._events is None:
            self._events = self._columns.to_events()
        return self._events

    def columns(self):
        """The columnar view (built from the event list on first call)."""
        if self._columns is not None and (
            self._events is None or len(self._events) == len(self._columns)
        ):
            return self._columns
        from .columns import ColumnBatch  # deferred: columns imports us

        self._columns = ColumnBatch.from_events(self._events)
        return self._columns

    def append(self, event: TraceEvent) -> None:
        self.events.append(event)
        self._columns = None

    def extend(self, events: Iterable[TraceEvent]) -> None:
        self.events.extend(events)
        self._columns = None

    def __len__(self) -> int:
        if self._events is None:
            return len(self._columns)
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __getitem__(self, index: int) -> TraceEvent:
        return self.events[index]

    def filter(self, *opcodes: Opcode) -> "Trace":
        """Sub-trace containing only the given opcodes."""
        wanted = frozenset(opcodes)
        return Trace(e for e in self.events if e.opcode in wanted)

    def count(self, opcode: Opcode) -> int:
        return sum(1 for e in self.events if e.opcode is opcode)

    def breakdown(self) -> Dict[Opcode, int]:
        """Instruction frequency breakdown (per section 3 of the paper)."""
        if self._events is None:
            return self._columns.breakdown()  # no need to materialize
        return frequency_breakdown(self.events)


def frequency_breakdown(events: Iterable[TraceEvent]) -> Dict[Opcode, int]:
    """Count dynamic instructions by opcode class."""
    counts: Counter = Counter(e.opcode for e in events)
    return dict(counts)


# -- text serialization ----------------------------------------------------
#
# Format: one event per line, space separated:
#   <opcode> [a_bits b_bits result_bits | addr]
# Float operands are stored as hex bit patterns so round-trips are exact;
# integer multiply operands are stored as decimal integers prefixed "i".


def _encode_operand(value: Union[int, float]) -> str:
    if isinstance(value, int) and not isinstance(value, bool):
        return f"i{value:d}"
    return f"{float64_to_bits(float(value)):016x}"


def _decode_operand(token: str) -> Union[int, float]:
    if token.startswith("i"):
        return int(token[1:])
    return bits_to_float64(int(token, 16))


def write_trace(events: Iterable[TraceEvent], stream: TextIO) -> int:
    """Serialize events to ``stream``; returns the number written."""
    count = 0
    for event in events:
        if event.opcode.is_memoizable:
            stream.write(
                f"{event.opcode.value} {_encode_operand(event.a)} "
                f"{_encode_operand(event.b)} {_encode_operand(event.result)}\n"
            )
        elif event.opcode.is_memory:
            address = event.address if event.address is not None else 0
            stream.write(f"{event.opcode.value} @{address:x}\n")
        else:
            stream.write(f"{event.opcode.value}\n")
        count += 1
    return count


def read_trace(stream: TextIO) -> Iterator[TraceEvent]:
    """Parse events from ``stream`` (inverse of :func:`write_trace`)."""
    for line_number, line in enumerate(stream, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        try:
            opcode = Opcode(parts[0])
        except ValueError as exc:
            raise TraceFormatError(
                f"line {line_number}: unknown opcode {parts[0]!r}"
            ) from exc
        if opcode.is_memoizable:
            if len(parts) != 4:
                raise TraceFormatError(
                    f"line {line_number}: {opcode.value} needs 3 operand fields"
                )
            try:
                a, b, result = (_decode_operand(p) for p in parts[1:4])
            except ValueError as exc:
                raise TraceFormatError(
                    f"line {line_number}: bad operand encoding"
                ) from exc
            yield TraceEvent(opcode, a, b, result)
        elif opcode.is_memory:
            if len(parts) != 2 or not parts[1].startswith("@"):
                raise TraceFormatError(
                    f"line {line_number}: {opcode.value} needs one @address field"
                )
            try:
                address = int(parts[1][1:], 16)
            except ValueError as exc:
                raise TraceFormatError(
                    f"line {line_number}: bad address {parts[1]!r}"
                ) from exc
            yield TraceEvent(opcode, address=address)
        else:
            if len(parts) != 1:
                raise TraceFormatError(
                    f"line {line_number}: {opcode.value} takes no operands"
                )
            yield TraceEvent(opcode)


def dumps(events: Iterable[TraceEvent]) -> str:
    """Serialize a trace to a string."""
    buffer = io.StringIO()
    write_trace(events, buffer)
    return buffer.getvalue()


def loads(text: str) -> Trace:
    """Parse a trace from a string."""
    return Trace(read_trace(io.StringIO(text)))
