"""Extension experiment: a MEMO-TABLE port in place of a second divider.

Section 2.3 suggests that instead of duplicating a divider, a processor
could add a multi-ported MEMO-TABLE interface: when two divides issue
together, the second goes to the table and only stalls on a miss.  The
paper leaves quantifying this to future work; this experiment measures
it on the MM division streams: the fraction of second-issue slots the
table services alone, and the dual-issue speedup over a serializing
single-divider baseline.
"""

from __future__ import annotations

from typing import Sequence

from ..core.config import MemoTableConfig
from ..core.memo_table import MemoTable
from ..core.multiported import DualIssueModel
from ..core.operations import Operation
from ..isa.opcodes import Opcode
from ..workloads.khoros import SPEEDUP_APPS
from .base import ExperimentResult, ratio_cell
from .common import DEFAULT_IMAGE_SET, record_mm_trace

__all__ = ["run"]


def run(
    scale: float = 0.15,
    images: Sequence[str] = DEFAULT_IMAGE_SET[:3],
    apps: Sequence[str] = SPEEDUP_APPS,
    latency: int = 13,
    entries: int = 32,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="ext-dual-issue",
        title=(
            "Extension: MEMO-TABLE port as a second divider "
            f"({latency}-cycle divider, {entries}-entry shared table)"
        ),
        headers=[
            "app", "div pairs", "2nd-slot hits", "dual speedup",
            "port conflicts",
        ],
        notes="(pairs of consecutive fdivs issued together, section 2.3)",
    )
    summary = {}
    for app in apps:
        pairs_issued = 0
        slot_hits = 0.0
        speedups = []
        conflicts = 0
        for image in images:
            trace = record_mm_trace(app, image, scale=scale)
            operands = [
                (event.a, event.b)
                for event in trace
                if event.opcode is Opcode.FDIV
            ]
            if len(operands) < 2:
                continue
            model = DualIssueModel(
                Operation.FP_DIV,
                MemoTable(MemoTableConfig(entries=entries, associativity=4)),
                latency=latency,
            )
            for index in range(0, len(operands) - 1, 2):
                a1, b1 = operands[index]
                a2, b2 = operands[index + 1]
                model.issue_pair(a1, b1, a2, b2)
            pairs_issued += model.pairs_issued
            slot_hits += model.second_slot_hits
            speedups.append(model.speedup)
            conflicts += model.shared.port_conflicts
        if not pairs_issued:
            result.rows.append([app, 0, "-", "-", 0])
            continue
        slot_ratio = slot_hits / pairs_issued
        mean_speedup = sum(speedups) / len(speedups)
        summary[app] = {
            "pairs": pairs_issued,
            "second_slot_hit_ratio": slot_ratio,
            "speedup": mean_speedup,
        }
        result.rows.append(
            [
                app,
                pairs_issued,
                ratio_cell(slot_ratio),
                f"{mean_speedup:.2f}",
                conflicts,
            ]
        )
    if summary:
        mean_slot = sum(v["second_slot_hit_ratio"] for v in summary.values()) / len(summary)
        mean_speed = sum(v["speedup"] for v in summary.values()) / len(summary)
        result.rows.append(
            ["average", "", ratio_cell(mean_slot), f"{mean_speed:.2f}", ""]
        )
        result.extras["average_second_slot"] = mean_slot
        result.extras["average_speedup"] = mean_speed
    result.extras["per_app"] = summary
    return result
