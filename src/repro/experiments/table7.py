"""Table 7: hit ratios for the Multi-Media applications.

Each kernel runs on a set of input images (the paper uses 8-14 inputs
per application); per-input hit ratios are averaged per kernel, for the
32/4 table and the infinite one.
"""

from __future__ import annotations

from typing import Sequence

from ..core.operations import Operation
from ..workloads.khoros import TABLE7_ORDER
from .base import ExperimentResult, ratio_cell
from .common import (
    DEFAULT_IMAGE_SET,
    average_ratios,
    hit_ratio_or_none,
    record_mm_trace,
    replay,
)

__all__ = ["run"]

_OPS = (Operation.INT_MUL, Operation.FP_MUL, Operation.FP_DIV)


def run(
    scale: float = 0.15,
    images: Sequence[str] = DEFAULT_IMAGE_SET,
    kernels: Sequence[str] = TABLE7_ORDER,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="table7",
        title="Table 7: Hit ratios for Multi-Media applications (32/4 vs infinite)",
        headers=[
            "application",
            "imul.32", "fmul.32", "fdiv.32",
            "imul.inf", "fmul.inf", "fdiv.inf",
        ],
        notes=f"(averaged over inputs: {', '.join(images)})",
    )
    columns: list = [[] for _ in range(6)]
    raw = {}
    for kernel in kernels:
        per_input: list = [[] for _ in range(6)]
        for image_name in images:
            trace = record_mm_trace(kernel, image_name, scale=scale)
            finite = replay(trace, None)
            infinite = replay(trace, "infinite")
            for index, op in enumerate(_OPS):
                per_input[index].append(hit_ratio_or_none(finite, op))
                per_input[index + 3].append(hit_ratio_or_none(infinite, op))
        ratios = [average_ratios(values) for values in per_input]
        raw[kernel] = ratios
        for column, value in zip(columns, ratios):
            column.append(value)
        result.rows.append([kernel] + [ratio_cell(v) for v in ratios])
    averages = [average_ratios(column) for column in columns]
    result.rows.append(["average"] + [ratio_cell(v) for v in averages])
    result.extras["ratios"] = raw
    result.extras["averages"] = averages
    return result
