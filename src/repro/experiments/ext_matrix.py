"""Extension experiment: the full kernel x image hit-ratio matrix.

Tables 7 and 8 are both projections of the same underlying object --
per-(application, input) hit ratios, averaged over inputs (Table 7) or
over applications (Table 8).  This experiment materializes the matrix
itself for one operation class, which is the dataset to mine when
choosing per-unit table sizes for a specific product workload.
"""

from __future__ import annotations

from typing import Sequence

from ..core.operations import Operation
from ..workloads.khoros import TABLE7_ORDER
from .base import ExperimentResult, ratio_cell
from .common import (
    DEFAULT_IMAGE_SET,
    hit_ratio_or_none,
    record_mm_trace,
    replay,
)

__all__ = ["run"]

_OP_BY_NAME = {
    "imul": Operation.INT_MUL,
    "fmul": Operation.FP_MUL,
    "fdiv": Operation.FP_DIV,
}


def run(
    scale: float = 0.12,
    images: Sequence[str] = DEFAULT_IMAGE_SET,
    kernels: Sequence[str] = TABLE7_ORDER,
    operation: str = "fdiv",
) -> ExperimentResult:
    op = _OP_BY_NAME.get(operation)
    if op is None:
        raise ValueError(
            f"operation must be one of {sorted(_OP_BY_NAME)}, got {operation!r}"
        )
    result = ExperimentResult(
        experiment="ext-matrix",
        title=f"Extension: per-(kernel, input) {operation} hit ratios (32/4)",
        headers=["kernel"] + list(images) + ["mean"],
        notes="(the dataset Tables 7 and 8 both average over)",
    )
    matrix = {}
    for kernel in kernels:
        cells = [kernel]
        values = []
        for image in images:
            trace = record_mm_trace(kernel, image, scale=scale)
            ratio = hit_ratio_or_none(replay(trace, None), op)
            values.append(ratio)
            cells.append(ratio_cell(ratio))
        present = [v for v in values if v is not None]
        mean = sum(present) / len(present) if present else None
        matrix[kernel] = {"values": values, "mean": mean}
        cells.append(ratio_cell(mean))
        result.rows.append(cells)
    # Column means (the Table 8 view).
    column_cells = ["(input mean)"]
    for index in range(len(images)):
        column = [
            matrix[k]["values"][index]
            for k in kernels
            if matrix[k]["values"][index] is not None
        ]
        column_cells.append(
            ratio_cell(sum(column) / len(column) if column else None)
        )
    column_cells.append("")
    result.rows.append(column_cells)
    result.extras["matrix"] = matrix
    result.extras["operation"] = operation
    return result
