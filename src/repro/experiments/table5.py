"""Table 5: hit ratios for the Perfect benchmarks.

32-entry 4-way MEMO-TABLES vs infinitely large fully associative ones,
for integer multiply, FP multiply and FP divide, per application plus
the suite average.  Trivial operations are excluded, as in the paper.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.operations import Operation
from ..workloads.perfect import perfect_names
from .base import ExperimentResult, ratio_cell
from .common import (
    average_ratios,
    hit_ratio_or_none,
    record_perfect_trace,
    replay,
)

__all__ = ["run"]

_OPS = (Operation.INT_MUL, Operation.FP_MUL, Operation.FP_DIV)


def _suite_result(
    experiment: str,
    title: str,
    apps: Sequence[str],
    record,
    scale: float,
) -> ExperimentResult:
    """Shared driver for Tables 5 and 6 (same layout, different suite)."""
    result = ExperimentResult(
        experiment=experiment,
        title=title,
        headers=[
            "application",
            "imul.32", "fmul.32", "fdiv.32",
            "imul.inf", "fmul.inf", "fdiv.inf",
        ],
        notes="('-' marks operations that don't appear in the application)",
    )
    columns: list = [[] for _ in range(6)]
    raw = {}
    for app in apps:
        trace = record(app, scale=scale)
        finite = replay(trace, None)
        infinite = replay(trace, "infinite")
        ratios = [hit_ratio_or_none(finite, op) for op in _OPS]
        ratios += [hit_ratio_or_none(infinite, op) for op in _OPS]
        raw[app] = ratios
        for column, value in zip(columns, ratios):
            column.append(value)
        result.rows.append([app] + [ratio_cell(v) for v in ratios])
    averages = [average_ratios(column) for column in columns]
    result.rows.append(["average"] + [ratio_cell(v) for v in averages])
    result.extras["ratios"] = raw
    result.extras["averages"] = averages
    return result


def run(scale: float = 1.0) -> ExperimentResult:
    return _suite_result(
        "table5",
        "Table 5: Hit ratios for the Perfect benchmarks (32/4 vs infinite)",
        perfect_names(),
        record_perfect_trace,
        scale,
    )
