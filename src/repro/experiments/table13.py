"""Table 13: application speedup with both fmul and fdiv memoized.

Two whole-machine design points: fast FP units (3-cycle multiply,
13-cycle divide) and slow ones (5 / 39).  The paper's bottom line -- an
average speedup between roughly 8% and 22% -- comes from this table.
"""

from __future__ import annotations

from typing import Sequence

from ..arch.latency import FAST_DESIGN, SLOW_DESIGN
from ..core.operations import Operation
from ..workloads.khoros import SPEEDUP_APPS
from .base import ExperimentResult
from .common import DEFAULT_IMAGE_SET
from .speedup import speedup_table

__all__ = ["run"]


def run(
    scale: float = 0.15,
    images = DEFAULT_IMAGE_SET,
    apps: Sequence[str] = SPEEDUP_APPS,
) -> ExperimentResult:
    return speedup_table(
        "table13",
        "Table 13: Speedup with fp multiplication AND division memoized",
        memoized=(Operation.FP_MUL, Operation.FP_DIV),
        machines=(FAST_DESIGN, SLOW_DESIGN),
        apps=apps,
        scale=scale,
        images=images,
        show_hit_ratio=False,
    )
