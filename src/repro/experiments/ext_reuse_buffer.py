"""Extension experiment: MEMO-TABLEs vs the Reuse Buffer (section 1.1).

The paper differentiates its scheme from Sodani & Sohi's Dynamic
Instruction Reuse on two grounds; this experiment measures both on the
MM workloads: dedicated 32-entry value-keyed tables against a unified
1024-entry PC-keyed buffer shared by all instruction classes.
"""

from __future__ import annotations

from typing import Sequence

from ..core.config import MemoTableConfig
from ..core.memo_table import MemoTable
from ..core.operations import Operation, compute
from ..core.reuse_buffer import ReuseBuffer, run_reuse_buffer
from ..images import generate
from ..isa.opcodes import Opcode
from ..workloads.khoros import run_kernel
from ..workloads.recorder import OperationRecorder
from .base import ExperimentResult, ratio_cell

__all__ = ["run"]

_PAIRS = ((Opcode.FMUL, Operation.FP_MUL), (Opcode.FDIV, Operation.FP_DIV))


def _memo_ratio(trace, opcode: Opcode, operation: Operation) -> float:
    table = MemoTable(MemoTableConfig(commutative=operation.commutative))
    for event in trace:
        if event.opcode is opcode:
            table.access(
                event.a, event.b, lambda x, y, op=operation: compute(op, x, y)
            )
    return table.stats.hit_ratio


def run(
    scale: float = 0.15,
    images: Sequence[str] = ("Muppet1", "chroms"),
    apps: Sequence[str] = ("vgauss", "vslope", "vkmeans", "vgpwl"),
    rb_entries: int = 1024,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="ext-reuse-buffer",
        title=(
            "Extension: 32-entry MEMO-TABLEs vs a "
            f"{rb_entries}-entry unified Reuse Buffer"
        ),
        headers=[
            "app", "input",
            "fmul.memo", "fmul.RB", "fdiv.memo", "fdiv.RB",
        ],
        notes="(RB is PC-indexed with operand verification; all classes share it)",
    )
    deltas = []
    for app in apps:
        for image_name in images:
            recorder = OperationRecorder(record_sites=True)
            run_kernel(app, recorder, generate(image_name, scale=scale))
            trace = recorder.trace
            _, rb_report = run_reuse_buffer(
                trace, ReuseBuffer(entries=rb_entries, associativity=4)
            )
            cells = [app, image_name]
            for opcode, operation in _PAIRS:
                has_op = any(e.opcode is opcode for e in trace)
                if not has_op:
                    cells += ["-", "-"]
                    continue
                memo = _memo_ratio(trace, opcode, operation)
                rb = rb_report.hit_ratio(opcode)
                deltas.append(memo - rb)
                cells += [ratio_cell(memo), ratio_cell(rb)]
            result.rows.append(cells)
    result.extras["mean_memo_minus_rb"] = (
        sum(deltas) / len(deltas) if deltas else 0.0
    )
    return result
