"""Figure 2: hit ratio as a function of image entropy.

Four panels: {fp division, fp multiplication} x {8x8-window entropy,
whole-image entropy}.  Points are per-image average hit ratios (as in
Table 8); the best-fit line uses Levenberg-Marquardt least squares, and
the paper's headline -- roughly a 5% hit-ratio decrease per bit of
entropy -- is reproduced as the fitted slope.
"""

from __future__ import annotations

from typing import Sequence

from ..analysis.fitting import fit_line_lm, pearson_r
from ..core.operations import Operation
from ..images import IMAGE_CATALOG, histogram_entropy, windowed_entropy
from .base import ExperimentResult
from .table8 import DEFAULT_KERNEL_SET, image_hit_profile

__all__ = ["run"]


def run(
    scale: float = 0.15,
    kernels: Sequence[str] = DEFAULT_KERNEL_SET,
) -> ExperimentResult:
    points = {  # panel -> (entropies, ratios)
        ("fdiv", "full"): ([], []),
        ("fdiv", "8x8"): ([], []),
        ("fmul", "full"): ([], []),
        ("fmul", "8x8"): ([], []),
    }
    for image in IMAGE_CATALOG:
        if image.pixel_type == "FLOAT":
            continue  # no byte histogram -> no entropy coordinate
        data = image.generate(scale=scale)
        grey = data if data.ndim == 2 else data[:, :, 0]
        entropy_full = histogram_entropy(data)
        entropy_8 = windowed_entropy(grey, 8)
        ratios = image_hit_profile(image, scale, kernels)
        fmul, fdiv = ratios[1], ratios[2]
        for (op_name, which), value, entropy in (
            (("fdiv", "full"), fdiv, entropy_full),
            (("fdiv", "8x8"), fdiv, entropy_8),
            (("fmul", "full"), fmul, entropy_full),
            (("fmul", "8x8"), fmul, entropy_8),
        ):
            if value is not None:
                xs, ys = points[(op_name, which)]
                xs.append(entropy)
                ys.append(value)

    result = ExperimentResult(
        experiment="figure2",
        title="Figure 2: Hit ratio vs entropy (LM best-fit per panel)",
        headers=["panel", "points", "slope", "pct/bit", "intercept", "pearson r"],
        notes="(paper: ~5% hit-ratio decrease per bit of entropy)",
    )
    fits = {}
    for (op_name, which), (xs, ys) in points.items():
        fit = fit_line_lm(xs, ys)
        correlation = pearson_r(xs, ys)
        fits[f"{op_name}/{which}"] = {
            "x": xs,
            "y": ys,
            "slope": fit.slope,
            "intercept": fit.intercept,
            "percent_per_bit": fit.percent_per_bit,
            "pearson_r": correlation,
        }
        result.rows.append(
            [
                f"{op_name} vs {which} entropy",
                len(xs),
                f"{fit.slope:+.3f}",
                f"{fit.percent_per_bit:+.1f}%",
                f"{fit.intercept:.3f}",
                f"{correlation:+.2f}",
            ]
        )
    result.extras["panels"] = fits
    return result
