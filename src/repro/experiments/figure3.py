"""Figure 3: hit ratio as a function of MEMO-TABLE size.

FP division and multiplication hit ratios over table sizes 8..8192
entries (4-way sets throughout), averaged over the five sample MM
applications, with min/max across applications -- exactly the series
the paper plots.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import MemoTableConfig
from ..core.operations import Operation
from ..workloads.khoros import SAMPLE_APPS
from .base import ExperimentResult, ratio_cell
from .common import (
    DEFAULT_IMAGE_SET,
    average_ratios,
    hit_ratio_or_none,
    record_mm_trace,
    replay,
)

__all__ = ["run", "PAPER_SIZES"]

#: The paper sweeps 8 to 8192 entries.
PAPER_SIZES = (8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192)


def _sweep_stat(values: List[Optional[float]]):
    present = [v for v in values if v is not None]
    if not present:
        return None, None, None
    return (sum(present) / len(present), min(present), max(present))


def run(
    scale: float = 0.15,
    images: Sequence[str] = ("Muppet1", "chroms", "fractal"),
    apps: Sequence[str] = SAMPLE_APPS,
    sizes: Sequence[int] = PAPER_SIZES,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="figure3",
        title="Figure 3: Hit ratio vs MEMO-TABLE size (set size 4)",
        headers=[
            "entries",
            "fmul.avg", "fmul.min", "fmul.max",
            "fdiv.avg", "fdiv.min", "fdiv.max",
        ],
        notes=f"(five sample apps: {', '.join(apps)})",
    )
    traces = [
        record_mm_trace(app, image, scale=scale)
        for app in apps
        for image in images
    ]
    series: Dict[int, dict] = {}
    for entries in sizes:
        config = MemoTableConfig(entries=entries, associativity=4)
        fmul_values: List[Optional[float]] = []
        fdiv_values: List[Optional[float]] = []
        for trace in traces:
            report = replay(trace, config)
            fmul_values.append(hit_ratio_or_none(report, Operation.FP_MUL))
            fdiv_values.append(hit_ratio_or_none(report, Operation.FP_DIV))
        fmul_stat = _sweep_stat(fmul_values)
        fdiv_stat = _sweep_stat(fdiv_values)
        series[entries] = {"fmul": fmul_stat, "fdiv": fdiv_stat}
        result.rows.append(
            [entries]
            + [ratio_cell(v) for v in fmul_stat]
            + [ratio_cell(v) for v in fdiv_stat]
        )
    result.extras["series"] = series
    return result
