"""Shared machinery for the experiment drivers.

The pattern every hit-ratio experiment follows:

1. record a trace per (application, input) with a fresh
   :class:`OperationRecorder` (the paper runs each application on 8-14
   inputs and averages);
2. replay the same trace through however many MEMO-TABLE configurations
   the experiment sweeps (finite/infinite, sizes, associativities,
   policies) -- replaying one recorded trace is much cheaper than
   re-running the kernel;
3. average the per-input hit ratios.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.bank import MemoTableBank, PAPER_OPERATIONS
from ..core.config import MemoTableConfig, TrivialPolicy
from ..core.operations import Operation
from ..images import generate
from ..isa.trace import Trace
from ..simulator.shade import ShadeSimulator, SimulationReport
from ..workloads.khoros import run_kernel
from ..workloads.perfect import run_perfect
from ..workloads.recorder import OperationRecorder
from ..workloads.speccfp import run_speccfp

__all__ = [
    "DEFAULT_IMAGE_SET",
    "SPEEDUP_IMAGE",
    "record_mm_trace",
    "record_perfect_trace",
    "record_speccfp_trace",
    "replay",
    "hit_ratio_or_none",
    "average_ratios",
]

#: Default inputs for MM experiments: five images spanning the paper's
#: entropy range (7.3 bits down to 1.4).
DEFAULT_IMAGE_SET: Tuple[str, ...] = (
    "mandrill",
    "Muppet1",
    "chroms",
    "lablabel",
    "fractal",
)

#: Single representative input for the (expensive) cycle-level speedup
#: experiments.
SPEEDUP_IMAGE = "Muppet1"

_trace_cache: Dict[Tuple, Trace] = {}


def record_mm_trace(
    kernel: str, image_name: str, scale: float = 0.15, cache: bool = True
) -> Trace:
    """Trace of one MM kernel on one catalogue image."""
    key = ("mm", kernel, image_name, scale)
    if cache and key in _trace_cache:
        return _trace_cache[key]
    recorder = OperationRecorder()
    image = generate(image_name, scale=scale)
    run_kernel(kernel, recorder, image)
    trace = recorder.trace
    if cache:
        _trace_cache[key] = trace
    return trace


def record_perfect_trace(app: str, scale: float = 1.0, cache: bool = True) -> Trace:
    key = ("perfect", app, scale)
    if cache and key in _trace_cache:
        return _trace_cache[key]
    recorder = OperationRecorder()
    run_perfect(app, recorder, scale=scale)
    trace = recorder.trace
    if cache:
        _trace_cache[key] = trace
    return trace


def record_speccfp_trace(app: str, scale: float = 1.0, cache: bool = True) -> Trace:
    key = ("spec", app, scale)
    if cache and key in _trace_cache:
        return _trace_cache[key]
    recorder = OperationRecorder()
    run_speccfp(app, recorder, scale=scale)
    trace = recorder.trace
    if cache:
        _trace_cache[key] = trace
    return trace


def clear_trace_cache() -> None:
    _trace_cache.clear()


BankSpec = Union[str, MemoTableConfig, None]


def _build_bank(spec: BankSpec, trivial_policy: TrivialPolicy) -> MemoTableBank:
    if spec == "infinite":
        return MemoTableBank.infinite(trivial_policy=trivial_policy)
    if spec is None or isinstance(spec, MemoTableConfig):
        return MemoTableBank.paper_baseline(
            config=spec, trivial_policy=trivial_policy
        )
    raise ValueError(f"unknown bank spec {spec!r}")


def replay(
    trace: Trace,
    spec: BankSpec = None,
    trivial_policy: TrivialPolicy = TrivialPolicy.EXCLUDE,
) -> SimulationReport:
    """Run one recorded trace through a fresh bank built from ``spec``.

    ``spec`` is ``None`` (paper 32/4 baseline), ``"infinite"`` or an
    explicit :class:`MemoTableConfig`.
    """
    bank = _build_bank(spec, trivial_policy)
    return ShadeSimulator(bank).run(trace)


def hit_ratio_or_none(report: SimulationReport, op: Operation) -> Optional[float]:
    """Hit ratio, or None when the operation never occurred (paper's '-')."""
    stats = report.unit_stats.get(op)
    if stats is None or (stats.table.lookups == 0 and stats.trivial == 0):
        return None
    return stats.hit_ratio


def average_ratios(values: Iterable[Optional[float]]) -> Optional[float]:
    """Mean of the non-None entries (None when all are absent)."""
    present = [v for v in values if v is not None]
    if not present:
        return None
    return float(np.mean(present))
