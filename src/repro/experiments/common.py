"""Shared machinery for the experiment drivers.

The pattern every hit-ratio experiment follows:

1. record a trace per (application, input) with a fresh
   :class:`OperationRecorder` (the paper runs each application on 8-14
   inputs and averages);
2. replay the same trace through however many MEMO-TABLE configurations
   the experiment sweeps (finite/infinite, sizes, associativities,
   policies) -- replaying one recorded trace is much cheaper than
   re-running the kernel;
3. average the per-input hit ratios.

Step 1 is cached in two tiers.  A bounded in-process LRU keeps the hot
traces of the current run; when a corpus is active (see
:mod:`repro.corpus`), traces are also persisted to the on-disk store,
so a second invocation -- or a whole pool of worker processes --
replays them without paying the recording cost again.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.bank import MemoTableBank, PAPER_OPERATIONS
from ..core.config import MemoTableConfig, TrivialPolicy
from ..core.operations import Operation
from ..corpus.store import TraceKey, active_corpus
from ..images import generate
from ..isa.trace import Trace
from ..simulator.shade import ShadeSimulator, SimulationReport
from ..workloads.khoros import run_kernel
from ..workloads.perfect import run_perfect
from ..workloads.recorder import OperationRecorder
from ..workloads.speccfp import run_speccfp

__all__ = [
    "DEFAULT_IMAGE_SET",
    "SPEEDUP_IMAGE",
    "record_mm_trace",
    "record_perfect_trace",
    "record_speccfp_trace",
    "clear_trace_cache",
    "set_trace_cache_limit",
    "trace_cache_len",
    "replay",
    "hit_ratio_or_none",
    "average_ratios",
]

#: Default inputs for MM experiments: five images spanning the paper's
#: entropy range (7.3 bits down to 1.4).
DEFAULT_IMAGE_SET: Tuple[str, ...] = (
    "mandrill",
    "Muppet1",
    "chroms",
    "lablabel",
    "fractal",
)

#: Single representative input for the (expensive) cycle-level speedup
#: experiments.
SPEEDUP_IMAGE = "Muppet1"

#: Entry bound of the in-process trace LRU.  Long-lived processes (the
#: parallel workers, the test suite) would otherwise hold every trace
#: they ever recorded.
_DEFAULT_CACHE_ENTRIES = int(os.environ.get("REPRO_TRACE_CACHE_ENTRIES", "128"))

_trace_cache: "OrderedDict[TraceKey, Trace]" = OrderedDict()
_trace_cache_limit = _DEFAULT_CACHE_ENTRIES


def clear_trace_cache() -> None:
    """Drop every trace held by the in-process LRU."""
    _trace_cache.clear()


def set_trace_cache_limit(entries: int) -> None:
    """Bound the in-process trace LRU to ``entries`` traces (>= 0)."""
    global _trace_cache_limit
    _trace_cache_limit = max(0, int(entries))
    while len(_trace_cache) > _trace_cache_limit:
        _trace_cache.popitem(last=False)


def trace_cache_len() -> int:
    return len(_trace_cache)


def _cached_record(
    key: TraceKey, record: Callable[[], Trace], cache: bool
) -> Trace:
    """Two-tier trace lookup: in-process LRU, then the active corpus.

    ``cache=False`` bypasses both tiers and records fresh.  Freshly
    recorded traces are pushed to the corpus so later processes replay
    them from disk.
    """
    if not cache:
        return record()
    trace = _trace_cache.get(key)
    if trace is not None:
        _trace_cache.move_to_end(key)
        return trace
    corpus = active_corpus()
    if corpus is not None:
        trace = corpus.get_or_record(key, record)
    else:
        trace = record()
    if _trace_cache_limit > 0:
        _trace_cache[key] = trace
        while len(_trace_cache) > _trace_cache_limit:
            _trace_cache.popitem(last=False)
    return trace


def record_mm_trace(
    kernel: str, image_name: str, scale: float = 0.15, cache: bool = True
) -> Trace:
    """Trace of one MM kernel on one catalogue image."""

    def record() -> Trace:
        recorder = OperationRecorder()
        run_kernel(kernel, recorder, generate(image_name, scale=scale))
        return recorder.trace

    return _cached_record(
        TraceKey("mm", kernel, image_name, scale), record, cache
    )


def record_perfect_trace(app: str, scale: float = 1.0, cache: bool = True) -> Trace:
    def record() -> Trace:
        recorder = OperationRecorder()
        run_perfect(app, recorder, scale=scale)
        return recorder.trace

    return _cached_record(TraceKey("perfect", app, "", scale), record, cache)


def record_speccfp_trace(app: str, scale: float = 1.0, cache: bool = True) -> Trace:
    def record() -> Trace:
        recorder = OperationRecorder()
        run_speccfp(app, recorder, scale=scale)
        return recorder.trace

    return _cached_record(TraceKey("spec", app, "", scale), record, cache)


BankSpec = Union[str, MemoTableConfig, None]


def _build_bank(spec: BankSpec, trivial_policy: TrivialPolicy) -> MemoTableBank:
    if spec == "infinite":
        return MemoTableBank.infinite(trivial_policy=trivial_policy)
    if spec is None or isinstance(spec, MemoTableConfig):
        return MemoTableBank.paper_baseline(
            config=spec, trivial_policy=trivial_policy
        )
    raise ValueError(f"unknown bank spec {spec!r}")


def replay(
    trace: Trace,
    spec: BankSpec = None,
    trivial_policy: TrivialPolicy = TrivialPolicy.EXCLUDE,
) -> SimulationReport:
    """Run one recorded trace through a fresh bank built from ``spec``.

    ``spec`` is ``None`` (paper 32/4 baseline), ``"infinite"`` or an
    explicit :class:`MemoTableConfig`.
    """
    bank = _build_bank(spec, trivial_policy)
    return ShadeSimulator(bank).run(trace)


def hit_ratio_or_none(report: SimulationReport, op: Operation) -> Optional[float]:
    """Hit ratio, or None when the operation never occurred (paper's '-')."""
    stats = report.unit_stats.get(op)
    if stats is None or (stats.table.lookups == 0 and stats.trivial == 0):
        return None
    return stats.hit_ratio


def average_ratios(values: Iterable[Optional[float]]) -> Optional[float]:
    """Mean of the non-None entries (None when all are absent)."""
    present = [v for v in values if v is not None]
    if not present:
        return None
    return float(np.mean(present))
