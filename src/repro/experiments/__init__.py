"""Experiment drivers: one module per table/figure of the paper.

Use :func:`run_experiment` (or the ``repro`` CLI) to regenerate any of
them::

    from repro.experiments import run_experiment
    print(run_experiment("table7", scale=0.2).render())
"""

from .base import ExperimentResult
from .runner import REGISTRY, experiment_names, run_experiment, run_experiments

__all__ = [
    "ExperimentResult",
    "REGISTRY",
    "experiment_names",
    "run_experiment",
    "run_experiments",
]
