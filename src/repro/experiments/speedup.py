"""Shared driver for the speedup tables (Tables 11-13).

For each of the nine MM applications: run the full trace (arithmetic,
loads/stores through the two-level cache hierarchy, loop overhead)
through the cycle model once per machine design point and per input
image, then derive Fraction Enhanced, Speedup Enhanced and the Amdahl
speedup exactly as section 3.3 does, averaging over inputs.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..arch.latency import ProcessorModel
from ..core.operations import Operation
from ..simulator.cpu import MemoizedCPU, SpeedupRow
from .base import ExperimentResult, ratio_cell
from .common import DEFAULT_IMAGE_SET, record_mm_trace

__all__ = ["speedup_table"]


def _mean_row(app: str, machine: str, rows: Sequence[SpeedupRow]) -> SpeedupRow:
    """Average a per-input set of rows into one table row."""
    return SpeedupRow(
        app=app,
        machine=machine,
        hit_ratio=float(np.mean([r.hit_ratio for r in rows])),
        fraction_enhanced=float(np.mean([r.fraction_enhanced for r in rows])),
        speedup_enhanced=float(np.mean([r.speedup_enhanced for r in rows])),
        speedup=float(np.mean([r.speedup for r in rows])),
        measured_speedup=float(np.mean([r.measured_speedup for r in rows])),
    )


def speedup_table(
    experiment: str,
    title: str,
    memoized: Sequence[Operation],
    machines: Sequence[ProcessorModel],
    apps: Sequence[str],
    scale: float = 0.15,
    images: Sequence[str] = DEFAULT_IMAGE_SET,
    show_hit_ratio: bool = True,
    overhead_factor: float = 1.0,
) -> ExperimentResult:
    """Build one speedup table over ``apps`` x ``machines``.

    ``overhead_factor`` models the whole-program cycles around the
    traced kernel (the paper traces complete Khoros binaries, whose
    startup/IO dilutes Fraction Enhanced); see
    :meth:`MemoizedCPU.speedup_row`.
    """
    headers = ["app"]
    if show_hit_ratio:
        headers.append("hit ratio")
    for machine in machines:
        headers += [
            f"FE.{machine.name}",
            f"SE.{machine.name}",
            f"speedup.{machine.name}",
        ]
    result = ExperimentResult(
        experiment=experiment,
        title=title,
        headers=headers,
        notes=f"(inputs: {', '.join(images)}; memoized: "
        f"{', '.join(op.mnemonic for op in memoized)})",
    )

    all_rows: List[List[SpeedupRow]] = []
    for app in apps:
        machine_rows: List[SpeedupRow] = []
        for machine in machines:
            per_image: List[SpeedupRow] = []
            for image in images:
                trace = record_mm_trace(app, image, scale=scale)
                cpu = MemoizedCPU(machine, memoized=memoized)
                row, _report = cpu.speedup_row(
                    app, trace, overhead_factor=overhead_factor
                )
                per_image.append(row)
            machine_rows.append(_mean_row(app, machine.name, per_image))
        all_rows.append(machine_rows)
        cells: List[object] = [app]
        if show_hit_ratio:
            cells.append(ratio_cell(machine_rows[0].hit_ratio))
        for row in machine_rows:
            cells += [
                f"{row.fraction_enhanced:.3f}",
                f"{row.speedup_enhanced:.2f}",
                f"{row.speedup:.2f}",
            ]
        result.rows.append(cells)

    # Suite averages, per machine.
    average_cells: List[object] = ["average"]
    if show_hit_ratio:
        average_cells.append(
            ratio_cell(float(np.mean([rows[0].hit_ratio for rows in all_rows])))
        )
    summary = {}
    for index, machine in enumerate(machines):
        fe = float(np.mean([rows[index].fraction_enhanced for rows in all_rows]))
        se = float(np.mean([rows[index].speedup_enhanced for rows in all_rows]))
        speedup = float(np.mean([rows[index].speedup for rows in all_rows]))
        measured = float(np.mean([rows[index].measured_speedup for rows in all_rows]))
        summary[machine.name] = {
            "fe": fe,
            "se": se,
            "speedup": speedup,
            "measured_speedup": measured,
        }
        average_cells += [f"{fe:.3f}", f"{se:.2f}", f"{speedup:.2f}"]
    result.rows.append(average_cells)
    result.extras["rows"] = {app: rows for app, rows in zip(apps, all_rows)}
    result.extras["averages"] = summary
    return result
