"""Table 1: FP multiplication/division latencies of six processors.

Static data (taken verbatim from the paper); regenerated here so the
benchmark harness covers every numbered table.
"""

from __future__ import annotations

from ..arch.latency import TABLE1_PROCESSORS
from .base import ExperimentResult

__all__ = ["run"]


def run(scale: float = 1.0) -> ExperimentResult:
    """``scale`` is accepted for interface uniformity and ignored."""
    result = ExperimentResult(
        experiment="table1",
        title="Table 1: Cycle times of leading microprocessors",
        headers=["processor", "multiplication", "division"],
    )
    for model in TABLE1_PROCESSORS:
        result.rows.append([model.name, model.fp_mul, model.fp_div])
    result.extras["div_to_mul_ratio"] = {
        m.name: m.fp_div / m.fp_mul for m in TABLE1_PROCESSORS
    }
    return result
