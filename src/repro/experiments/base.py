"""Common result container for experiment drivers.

Each driver in :mod:`repro.experiments` regenerates one table or figure
of the paper and returns an :class:`ExperimentResult`: the same rows and
columns the paper prints, plus free-form extras (fit parameters, raw
series) for programmatic use.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..analysis.tables import format_ratio, format_table

__all__ = ["ExperimentResult", "ratio_cell", "jsonable"]


def jsonable(value: Any) -> Any:
    """Recursively convert experiment data to JSON-serializable types.

    Handles the types experiment extras actually contain: dataclasses
    (SpeedupRow, fits), enums (Operation/Opcode keys), numpy scalars,
    tuples and nested containers.  Anything else falls back to ``str``.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return value.name
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {k: jsonable(v) for k, v in dataclasses.asdict(value).items()}
    if isinstance(value, dict):
        return {
            (key.name if isinstance(key, enum.Enum) else str(key)): jsonable(v)
            for key, v in value.items()
        }
    if isinstance(value, (list, tuple, set)):
        return [jsonable(v) for v in value]
    if hasattr(value, "item"):  # numpy scalar
        try:
            return value.item()
        except (TypeError, ValueError):
            pass
    return str(value)


def ratio_cell(value: Optional[float], digits: int = 2) -> str:
    """Paper-style ratio cell (``.39`` / ``-``)."""
    return format_ratio(value, digits)


@dataclass
class ExperimentResult:
    """Rows/columns of one regenerated table or figure."""

    experiment: str  # e.g. "table7"
    title: str
    headers: List[str]
    rows: List[List[Any]] = field(default_factory=list)
    notes: str = ""
    extras: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        """Plain-text rendering in the paper's layout."""
        text = format_table(self.headers, self.rows, title=self.title)
        if self.notes:
            text += "\n" + self.notes
        return text

    def row_by_label(self, label: str) -> List[Any]:
        """Find a row by its first cell (application/image name)."""
        for row in self.rows:
            if row and str(row[0]) == label:
                return row
        raise KeyError(f"no row labelled {label!r} in {self.experiment}")

    def column(self, header: str) -> List[Any]:
        """All cells of one named column."""
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (rows, headers and sanitized extras)."""
        return {
            "experiment": self.experiment,
            "title": self.title,
            "headers": list(self.headers),
            "rows": jsonable(self.rows),
            "notes": self.notes,
            "extras": jsonable(self.extras),
        }
