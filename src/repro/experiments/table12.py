"""Table 12: application speedup when fp multiplication is memoized.

Two multiplier latencies -- 3 and 5 cycles -- over the nine MM
applications (same set as Table 11, using their fmul MEMO-TABLE).
"""

from __future__ import annotations

from typing import Sequence

from ..arch.latency import FAST_DESIGN, SLOW_DESIGN
from ..core.operations import Operation
from ..workloads.khoros import SPEEDUP_APPS
from .base import ExperimentResult
from .common import DEFAULT_IMAGE_SET
from .speedup import speedup_table

__all__ = ["run"]


def run(
    scale: float = 0.15,
    images = DEFAULT_IMAGE_SET,
    apps: Sequence[str] = SPEEDUP_APPS,
) -> ExperimentResult:
    return speedup_table(
        "table12",
        "Table 12: Speedup with fp multiplication memoized (3 / 5 cycle multipliers)",
        memoized=(Operation.FP_MUL,),
        machines=(FAST_DESIGN, SLOW_DESIGN),
        apps=apps,
        scale=scale,
        images=images,
    )
