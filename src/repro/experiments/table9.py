"""Table 9: how trivial operations interact with the MEMO-TABLE.

For eight MM applications and each operation class, reports:

* ``trv`` -- the fraction of operations that are trivial;
* ``all`` -- hit ratio when trivial operations are cached like any other;
* ``non`` -- hit ratio when only non-trivial operations are cached
  (trivial ones bypass the table);
* ``intgr`` -- hit ratio when trivial detection is integrated in front
  of the table (trivial operations count as hits, are never stored).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.config import TrivialPolicy
from ..core.operations import Operation
from ..workloads.khoros import TABLE9_APPS
from .base import ExperimentResult, ratio_cell
from .common import (
    DEFAULT_IMAGE_SET,
    average_ratios,
    hit_ratio_or_none,
    record_mm_trace,
    replay,
)

__all__ = ["run"]

_OPS = (Operation.INT_MUL, Operation.FP_MUL, Operation.FP_DIV)
_POLICIES = (
    TrivialPolicy.CACHE_ALL,
    TrivialPolicy.EXCLUDE,
    TrivialPolicy.INTEGRATED,
)


def _trivial_fraction(report, op) -> Optional[float]:
    stats = report.unit_stats.get(op)
    if stats is None or stats.operations == 0:
        return None
    return stats.trivial_fraction


def run(
    scale: float = 0.15,
    images: Sequence[str] = DEFAULT_IMAGE_SET,
    apps: Sequence[str] = TABLE9_APPS,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="table9",
        title="Table 9: Trivial-operation policies (32/4 MEMO-TABLE)",
        headers=["application"]
        + [
            f"{op.mnemonic}.{col}"
            for op in _OPS
            for col in ("trv", "all", "non", "intgr")
        ],
    )
    columns: list = [[] for _ in range(len(_OPS) * 4)]
    raw = {}
    for app in apps:
        per_input: list = [[] for _ in range(len(_OPS) * 4)]
        for image_name in images:
            trace = record_mm_trace(app, image_name, scale=scale)
            reports = {
                policy: replay(trace, None, trivial_policy=policy)
                for policy in _POLICIES
            }
            for op_index, op in enumerate(_OPS):
                base = op_index * 4
                per_input[base].append(
                    _trivial_fraction(reports[TrivialPolicy.EXCLUDE], op)
                )
                for offset, policy in enumerate(_POLICIES, start=1):
                    per_input[base + offset].append(
                        hit_ratio_or_none(reports[policy], op)
                    )
        values = [average_ratios(v) for v in per_input]
        raw[app] = values
        for column, value in zip(columns, values):
            column.append(value)
        result.rows.append([app] + [ratio_cell(v) for v in values])
    averages = [average_ratios(column) for column in columns]
    result.rows.append(["average"] + [ratio_cell(v) for v in averages])
    result.extras["values"] = raw
    result.extras["averages"] = averages
    return result
