"""Table 8: the input images -- entropy and average hit ratios.

For every catalogue image: its geometry, pixel type, band count, the
full-image / 16x16 / 8x8 entropies, and the average 32/4-table hit
ratios over the applications run on that image.  FLOAT images get '-'
entropies, as in the paper (their histogram is not byte-binned).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.operations import Operation
from ..images import IMAGE_CATALOG, histogram_entropy, windowed_entropy
from .base import ExperimentResult, ratio_cell
from .common import (
    average_ratios,
    hit_ratio_or_none,
    record_mm_trace,
    replay,
)

__all__ = ["run", "DEFAULT_KERNEL_SET", "image_hit_profile"]

#: Kernels used to profile each image: together they exercise imul,
#: fmul and fdiv on every input.
DEFAULT_KERNEL_SET = ("vdiff", "vgauss", "vspatial", "vslope", "vgpwl")

_OPS = (Operation.INT_MUL, Operation.FP_MUL, Operation.FP_DIV)


def image_hit_profile(
    image, scale: float, kernels: Sequence[str]
) -> list:
    """Average (imul, fmul, fdiv) 32/4 hit ratios of ``kernels`` on ``image``."""
    per_op: list = [[] for _ in _OPS]
    for kernel in kernels:
        trace = record_mm_trace(kernel, image.name, scale=scale)
        report = replay(trace, None)
        for index, op in enumerate(_OPS):
            per_op[index].append(hit_ratio_or_none(report, op))
    return [average_ratios(values) for values in per_op]


def run(
    scale: float = 0.15,
    kernels: Sequence[str] = DEFAULT_KERNEL_SET,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="table8",
        title="Table 8: Description of the images used in IP applications",
        headers=[
            "image", "size", "type", "bands",
            "E.full", "E.16x16", "E.8x8",
            "imul", "fmul", "fdiv",
        ],
        notes=f"(hit ratios averaged over kernels: {', '.join(kernels)})",
    )
    profiles = {}
    for image in IMAGE_CATALOG:
        data = image.generate(scale=scale)
        grey = data if data.ndim == 2 else data[:, :, 0]
        if image.pixel_type == "FLOAT":
            entropies = [None, None, None]
        else:
            entropies = [
                histogram_entropy(data),
                windowed_entropy(grey, 16),
                windowed_entropy(grey, 8),
            ]
        ratios = image_hit_profile(image, scale, kernels)
        profiles[image.name] = {"entropy": entropies, "ratios": ratios}
        result.rows.append(
            [
                image.name,
                f"{image.height}x{image.width}",
                image.pixel_type,
                image.bands,
                ratio_cell(entropies[0]) if entropies[0] is None else f"{entropies[0]:.2f}",
                ratio_cell(entropies[1]) if entropies[1] is None else f"{entropies[1]:.2f}",
                ratio_cell(entropies[2]) if entropies[2] is None else f"{entropies[2]:.2f}",
                ratio_cell(ratios[0]),
                ratio_cell(ratios[1]),
                ratio_cell(ratios[2]),
            ]
        )
    result.extras["profiles"] = profiles
    return result
