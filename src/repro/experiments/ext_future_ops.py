"""Extension experiment: memoing sqrt, log and trigonometric units.

Section 4: "Future work will be to extend the MEMO-TABLE technique to
sqrt, log, trigonometric and other mathematical functions based on the
success and promise of this work."  This experiment runs the
transcendental DSP workloads with 32/4 MEMO-TABLES on those units and
reports hit ratios plus the Amdahl potential (SE) at period latencies.
"""

from __future__ import annotations

from typing import Sequence

from ..analysis.amdahl import speedup_enhanced
from ..core.bank import MemoTableBank
from ..core.operations import Operation
from ..core.unit import DEFAULT_LATENCIES
from ..images import generate
from ..simulator.shade import ShadeSimulator
from ..workloads.recorder import OperationRecorder
from ..workloads.transcendental import (
    log_compress,
    sine_synthesis,
    texture_rotation,
)
from .base import ExperimentResult, ratio_cell

__all__ = ["run"]

_UNITS = (Operation.FP_SQRT, Operation.FP_RECIP, Operation.FP_LOG,
          Operation.FP_SIN, Operation.FP_COS)


def _workloads(scale: float, images: Sequence[str]):
    for image_name in images:
        image = generate(image_name, scale=scale)
        yield f"log_compress({image_name})", lambda r, img=image: log_compress(r, img)
        yield f"texture_rotation({image_name})", (
            lambda r, img=image: texture_rotation(r, img)
        )
    samples = max(128, int(2048 * scale))
    yield "sine_synthesis", lambda r: sine_synthesis(r, samples=samples)


def run(
    scale: float = 0.15,
    images: Sequence[str] = ("Muppet1", "fractal"),
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="ext-future-ops",
        title="Extension: memoing sqrt/log/trig units (32/4 tables)",
        headers=["workload"]
        + [op.mnemonic for op in _UNITS]
        + ["best SE"],
        notes="(SE at the unit's period latency; '-' = unit unused)",
    )
    per_workload = {}
    for name, body in _workloads(scale, images):
        recorder = OperationRecorder()
        body(recorder)
        bank = MemoTableBank.paper_baseline(operations=_UNITS)
        report = ShadeSimulator(bank).run(recorder.trace)
        ratios = {}
        best_se = 1.0
        for op in _UNITS:
            stats = report.unit_stats.get(op)
            if stats is None or (stats.table.lookups == 0 and stats.trivial == 0):
                ratios[op] = None
                continue
            ratios[op] = stats.hit_ratio
            best_se = max(
                best_se, speedup_enhanced(DEFAULT_LATENCIES[op], stats.hit_ratio)
            )
        per_workload[name] = {
            "ratios": {op.mnemonic: v for op, v in ratios.items()},
            "best_se": best_se,
        }
        result.rows.append(
            [name]
            + [ratio_cell(ratios[op]) for op in _UNITS]
            + [f"{best_se:.2f}"]
        )
    result.extras["per_workload"] = per_workload
    return result
