"""Extension experiment: memoing under a hazard-aware pipeline.

The paper's cycle counts deliberately exclude pipelining; its prose
argues the real machine benefits further, because a non-pipelined
divider injects structural hazards and long-latency results stall
dependents.  This experiment quantifies that: per application, the
speedup from fmul+fdiv MEMO-TABLES under the in-order hazard model at
issue widths 1 and 2, with the stall breakdown.
"""

from __future__ import annotations

from typing import Sequence

from ..arch.latency import SLOW_DESIGN, ProcessorModel
from ..core.bank import MemoTableBank
from ..core.operations import Operation
from ..simulator.hazard import HazardModel
from ..workloads.khoros import SPEEDUP_APPS
from .base import ExperimentResult
from .common import DEFAULT_IMAGE_SET, record_mm_trace

__all__ = ["run"]

_MEMOIZED = (Operation.FP_MUL, Operation.FP_DIV)


def _run_pair(machine: ProcessorModel, trace, issue_width: int):
    baseline = HazardModel(machine, issue_width=issue_width).run(trace)
    bank = MemoTableBank.paper_baseline(
        operations=_MEMOIZED, latencies=machine.latencies()
    )
    memo = HazardModel(machine, bank=bank, issue_width=issue_width).run(trace)
    speedup = (
        baseline.total_cycles / memo.total_cycles if memo.total_cycles else 1.0
    )
    return baseline, memo, speedup


def run(
    scale: float = 0.12,
    images: Sequence[str] = DEFAULT_IMAGE_SET[:3],
    apps: Sequence[str] = SPEEDUP_APPS,
    machine: ProcessorModel = SLOW_DESIGN,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="ext-hazard",
        title=(
            "Extension: memoing under a hazard-aware pipeline "
            f"({machine.name}, fmul+fdiv memoized)"
        ),
        headers=[
            "app",
            "speedup.1w", "speedup.2w",
            "raw stalls cut", "structural stalls cut",
        ],
        notes="(stall columns: fraction of baseline stall cycles removed, 1-wide)",
    )
    per_app = {}
    for app in apps:
        speedups_1w = []
        speedups_2w = []
        raw_cut = []
        structural_cut = []
        for image in images:
            trace = record_mm_trace(app, image, scale=scale)
            baseline, memo, speedup_1w = _run_pair(machine, trace, 1)
            _, _, speedup_2w = _run_pair(machine, trace, 2)
            speedups_1w.append(speedup_1w)
            speedups_2w.append(speedup_2w)
            if baseline.raw_stall_cycles:
                raw_cut.append(
                    1 - memo.raw_stall_cycles / baseline.raw_stall_cycles
                )
            if baseline.structural_stall_cycles:
                structural_cut.append(
                    1
                    - memo.structural_stall_cycles
                    / baseline.structural_stall_cycles
                )
        mean = lambda xs: sum(xs) / len(xs) if xs else 0.0  # noqa: E731
        per_app[app] = {
            "speedup_1w": mean(speedups_1w),
            "speedup_2w": mean(speedups_2w),
            "raw_stall_cut": mean(raw_cut),
            "structural_stall_cut": mean(structural_cut),
        }
        result.rows.append(
            [
                app,
                f"{per_app[app]['speedup_1w']:.2f}",
                f"{per_app[app]['speedup_2w']:.2f}",
                f"{per_app[app]['raw_stall_cut']:.0%}",
                f"{per_app[app]['structural_stall_cut']:.0%}",
            ]
        )
    averages = {
        key: sum(v[key] for v in per_app.values()) / len(per_app)
        for key in ("speedup_1w", "speedup_2w")
    }
    result.rows.append(
        ["average", f"{averages['speedup_1w']:.2f}",
         f"{averages['speedup_2w']:.2f}", "", ""]
    )
    result.extras["per_app"] = per_app
    result.extras["averages"] = averages
    return result
