"""Figure 4: hit ratio as a function of MEMO-TABLE associativity.

32-entry tables from direct-mapped to 8-way, averaged (with min/max)
over the five sample MM applications.  The paper's observation: a set
size of 2 already avoids the alternating-conflict pathologies of a
direct-mapped table, and beyond 4 ways nothing improves.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.config import MemoTableConfig
from ..core.operations import Operation
from ..workloads.khoros import SAMPLE_APPS
from .base import ExperimentResult, ratio_cell
from .common import (
    DEFAULT_IMAGE_SET,
    hit_ratio_or_none,
    record_mm_trace,
    replay,
)
from .figure3 import _sweep_stat

__all__ = ["run", "PAPER_ASSOCIATIVITIES"]

PAPER_ASSOCIATIVITIES = (1, 2, 4, 8)


def run(
    scale: float = 0.15,
    images: Sequence[str] = ("Muppet1", "chroms", "fractal"),
    apps: Sequence[str] = SAMPLE_APPS,
    entries: int = 32,
    associativities: Sequence[int] = PAPER_ASSOCIATIVITIES,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="figure4",
        title=f"Figure 4: Hit ratio vs associativity ({entries}-entry LUT)",
        headers=[
            "ways",
            "fmul.avg", "fmul.min", "fmul.max",
            "fdiv.avg", "fdiv.min", "fdiv.max",
        ],
        notes=f"(five sample apps: {', '.join(apps)})",
    )
    traces = [
        record_mm_trace(app, image, scale=scale)
        for app in apps
        for image in images
    ]
    series: Dict[int, dict] = {}
    for ways in associativities:
        config = MemoTableConfig(entries=entries, associativity=ways)
        fmul_values: List[Optional[float]] = []
        fdiv_values: List[Optional[float]] = []
        for trace in traces:
            report = replay(trace, config)
            fmul_values.append(hit_ratio_or_none(report, Operation.FP_MUL))
            fdiv_values.append(hit_ratio_or_none(report, Operation.FP_DIV))
        fmul_stat = _sweep_stat(fmul_values)
        fdiv_stat = _sweep_stat(fdiv_values)
        series[ways] = {"fmul": fmul_stat, "fdiv": fdiv_stat}
        result.rows.append(
            [ways]
            + [ratio_cell(v) for v in fmul_stat]
            + [ratio_cell(v) for v in fdiv_stat]
        )
    result.extras["series"] = series
    return result
