"""Table 11: application speedup when fp division is memoized.

Two divider design points -- 13 cycles (faster than any Table 1
processor) and 39 cycles (the Pentium Pro) -- over the nine MM
applications that use an fdiv MEMO-TABLE.
"""

from __future__ import annotations

from typing import Sequence

from ..arch.latency import FAST_DESIGN, SLOW_DESIGN
from ..core.operations import Operation
from ..workloads.khoros import SPEEDUP_APPS
from .base import ExperimentResult
from .common import DEFAULT_IMAGE_SET
from .speedup import speedup_table

__all__ = ["run"]


def run(
    scale: float = 0.15,
    images = DEFAULT_IMAGE_SET,
    apps: Sequence[str] = SPEEDUP_APPS,
) -> ExperimentResult:
    return speedup_table(
        "table11",
        "Table 11: Speedup with fp division memoized (13 / 39 cycle dividers)",
        memoized=(Operation.FP_DIV,),
        machines=(FAST_DESIGN, SLOW_DESIGN),
        apps=apps,
        scale=scale,
        images=images,
    )
