"""Table 6: hit ratios for the SPEC CFP95 benchmarks.

Same layout as Table 5, over the SPEC CFP95 surrogate suite.
"""

from __future__ import annotations

from ..workloads.speccfp import speccfp_names
from .base import ExperimentResult
from .common import record_speccfp_trace
from .table5 import _suite_result

__all__ = ["run"]


def run(scale: float = 1.0) -> ExperimentResult:
    return _suite_result(
        "table6",
        "Table 6: Hit ratios for the SPEC CFP95 benchmarks (32/4 vs infinite)",
        speccfp_names(),
        record_speccfp_trace,
        scale,
    )
