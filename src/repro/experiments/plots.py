"""Terminal renderings of the figure experiments.

Maps an :class:`ExperimentResult` to a Unicode chart (via
:mod:`repro.analysis.plot`); the CLI shows these under ``--plot``.
Tables render as plain text already, so only the figures are handled --
anything else returns ``None``.
"""

from __future__ import annotations

import math
from typing import Optional

from ..analysis.plot import line_plot, scatter_plot
from .base import ExperimentResult

__all__ = ["render_plot"]


def _figure3_plot(result: ExperimentResult) -> str:
    series_data = result.extras["series"]
    sizes = sorted(series_data)
    xs = [math.log2(size) for size in sizes]
    fmul = [series_data[size]["fmul"][0] for size in sizes]
    fdiv = [series_data[size]["fdiv"][0] for size in sizes]
    return line_plot(
        xs,
        [("fmul", fmul), ("fdiv", fdiv)],
        title="Figure 3: hit ratio vs log2(table entries)",
        x_label="log2(entries)",
    )


def _figure4_plot(result: ExperimentResult) -> str:
    series_data = result.extras["series"]
    ways = sorted(series_data)
    fmul = [series_data[w]["fmul"][0] for w in ways]
    fdiv = [series_data[w]["fdiv"][0] for w in ways]
    return line_plot(
        [float(w) for w in ways],
        [("fmul", fmul), ("fdiv", fdiv)],
        title="Figure 4: hit ratio vs associativity (32 entries)",
        x_label="ways",
    )


def _figure2_plot(result: ExperimentResult) -> str:
    charts = []
    for panel in (("fdiv", "8x8"), ("fmul", "8x8")):
        key = f"{panel[0]}/{panel[1]}"
        fit = result.extras["panels"][key]
        points = list(zip(fit["x"], fit["y"]))
        charts.append(
            scatter_plot(
                points,
                title=(
                    f"Figure 2: {panel[0]} hit ratio vs {panel[1]} entropy "
                    f"(slope {fit['percent_per_bit']:+.1f}%/bit)"
                ),
                fit=(fit["slope"], fit["intercept"]),
            )
        )
    return "\n\n".join(charts)


_RENDERERS = {
    "figure2": _figure2_plot,
    "figure3": _figure3_plot,
    "figure4": _figure4_plot,
}


def render_plot(result: ExperimentResult) -> Optional[str]:
    """Terminal chart for a figure experiment, or None for tables."""
    renderer = _RENDERERS.get(result.experiment)
    if renderer is None:
        return None
    return renderer(result)
