"""The paper's published numbers, as data.

Transcribed from the tables of Citron, Feitelson & Rudolph (ASPLOS
1998) so comparisons against a reproduction run are programmatic:
``repro table7 --compare`` prints paper-vs-measured columns, and the
shape checks codified here are what EXPERIMENTS.md's verdicts assert.

Order of per-app tuples follows the experiment drivers:
``(imul.32, fmul.32, fdiv.32, imul.inf, fmul.inf, fdiv.inf)``;
``None`` marks the paper's '-' cells.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .base import ExperimentResult

__all__ = [
    "PAPER_TABLE5",
    "PAPER_TABLE6",
    "PAPER_TABLE7",
    "PAPER_TABLE10",
    "PAPER_SPEEDUP_AVERAGES",
    "PAPER_FIGURE2_PERCENT_PER_BIT",
    "compare_to_paper",
]

Ratios = Tuple[Optional[float], ...]

#: Table 5 -- Perfect benchmarks.
PAPER_TABLE5: Dict[str, Ratios] = {
    "ADM": (0.98, 0.13, 0.15, 0.99, 0.41, 0.56),
    "QCD": (0.02, 0.00, 0.00, 0.07, 0.04, 0.00),
    "MDG": (None, 0.00, 0.02, None, 0.04, 0.03),
    "TRACK": (0.98, 0.17, 0.09, 0.99, 0.46, 0.89),
    "OCEAN": (0.15, 0.03, 0.03, 0.99, 0.30, 0.99),
    "ARC2D": (0.94, 0.15, 0.23, 0.99, 0.45, 0.26),
    "FLO52": (0.86, 0.02, 0.06, 0.97, 0.11, 0.20),
    "TRFD": (0.60, 0.18, 0.85, 0.99, 0.59, 0.99),
    "SPEC77": (0.06, 0.28, 0.01, 0.97, 0.37, 0.15),
    "average": (0.57, 0.11, 0.16, 0.70, 0.31, 0.45),
}

#: Table 6 -- SPEC CFP95.
PAPER_TABLE6: Dict[str, Ratios] = {
    "tomcatv": (0.14, 0.01, 0.00, 0.99, 0.16, 0.00),
    "swim": (None, 0.16, 0.00, None, 0.93, 0.74),
    "su2cor": (0.26, None, None, 0.99, None, None),
    "hydro2d": (0.15, 0.75, 0.78, 0.98, 0.97, 0.97),
    "mgrid": (0.83, 0.00, None, 0.99, 0.01, None),
    "applu": (0.97, 0.25, 0.25, 0.99, 0.66, 0.64),
    "turb3d": (0.80, 0.16, 0.03, 0.99, 0.86, 0.99),
    "apsi": (0.95, 0.16, 0.13, 0.99, 0.39, 0.57),
    "fpppp": (0.53, 0.29, 0.15, 0.99, 0.55, 0.62),
    "wave5": (None, 0.05, 0.02, None, 0.11, 0.16),
    "average": (0.58, 0.20, 0.17, 0.99, 0.52, 0.59),
}

#: Table 7 -- Multi-Media applications.
PAPER_TABLE7: Dict[str, Ratios] = {
    "vdiff": (0.49, 0.54, None, 0.96, 0.99, None),
    "vcost": (0.99, 0.34, 0.44, 0.99, 0.81, 0.93),
    "vgauss": (None, 0.50, 0.79, None, 0.87, 0.95),
    "vspatial": (0.61, 0.62, 0.94, 0.92, 0.99, 0.99),
    "vslope": (0.34, 0.15, 0.25, 0.99, 0.60, 0.83),
    "vgef": (0.37, 0.33, None, 0.99, 0.99, None),
    "vdetilt": (None, 0.23, None, None, 0.46, None),
    "vwarp": (0.27, 0.57, 0.38, 0.99, 0.63, 0.68),
    "venhance": (None, 0.57, 0.12, None, 0.96, 0.47),
    "vrect2pol": (None, 0.42, 0.61, None, 0.97, 0.80),
    "vmpp": (None, 0.41, 0.56, None, 0.89, 0.98),
    "vbrf": (0.72, 0.01, 0.05, 0.99, 0.64, 0.88),
    "vbpf": (0.72, 0.54, 0.52, 0.99, 0.52, 0.80),
    "vsurf": (0.48, 0.25, 0.33, 0.93, 0.65, 0.83),
    "vgpwl": (None, 0.50, 0.58, None, 0.99, 0.99),
    "venhpatch": (0.99, 0.68, None, 0.99, 0.99, None),
    "vkmeans": (None, 0.39, 0.58, None, 0.99, 0.97),
    "average": (0.59, 0.39, 0.47, 0.95, 0.82, 0.85),
}

#: Table 10 -- (fmul.full, fmul.mant, fdiv.full, fdiv.mant) suite averages.
PAPER_TABLE10: Dict[str, Ratios] = {
    "Perfect": (0.11, 0.11, 0.16, 0.17),
    "Multi-Media": (0.39, 0.43, 0.47, 0.50),
}

#: Average speedups of Tables 11-13, keyed by (table, machine column).
PAPER_SPEEDUP_AVERAGES: Dict[Tuple[str, str], float] = {
    ("table11", "fast-fp"): 1.05,
    ("table11", "slow-fp"): 1.15,
    ("table12", "fast-fp"): 1.02,
    ("table12", "slow-fp"): 1.03,
    ("table13", "fast-fp"): 1.08,
    ("table13", "slow-fp"): 1.22,
}

#: Figure 2's headline slope: ~5% hit-ratio loss per bit of entropy.
PAPER_FIGURE2_PERCENT_PER_BIT = -5.0

_SUITE_TABLES = {
    "table5": PAPER_TABLE5,
    "table6": PAPER_TABLE6,
    "table7": PAPER_TABLE7,
}

_RATIO_HEADERS = (
    "imul.32", "fmul.32", "fdiv.32", "imul.inf", "fmul.inf", "fdiv.inf"
)


def _cell(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.2f}"


def _compare_suite(result: ExperimentResult, paper: Dict[str, Ratios]):
    comparison = ExperimentResult(
        experiment=f"{result.experiment}-vs-paper",
        title=f"{result.title} -- paper vs measured (32-entry columns)",
        headers=[
            "application",
            "paper.fmul", "ours.fmul", "paper.fdiv", "ours.fdiv",
        ],
    )
    measured: Dict[str, List[Optional[float]]] = dict(result.extras["ratios"])
    measured["average"] = list(result.extras["averages"])
    agreements = 0
    comparable = 0
    for app, paper_ratios in paper.items():
        ours = measured.get(app)
        if ours is None:
            continue
        row = [app]
        for column in (1, 2):  # fmul.32, fdiv.32
            row.append(_cell(paper_ratios[column]))
            row.append(_cell(ours[column]))
            if paper_ratios[column] is not None and ours[column] is not None:
                comparable += 1
                if abs(paper_ratios[column] - ours[column]) <= 0.25:
                    agreements += 1
        comparison.rows.append(row)
    comparison.extras["within_quarter"] = (
        agreements / comparable if comparable else 0.0
    )
    # Structural agreement: the dashes ('-' cells) of the paper.
    dash_matches = 0
    dash_total = 0
    for app, paper_ratios in paper.items():
        ours = measured.get(app)
        if ours is None or app == "average":
            continue
        for column in range(3):
            dash_total += 1
            if (paper_ratios[column] is None) == (ours[column] is None):
                dash_matches += 1
    comparison.extras["dash_agreement"] = (
        dash_matches / dash_total if dash_total else 1.0
    )
    comparison.notes = (
        f"(|paper - measured| <= .25 on {agreements}/{comparable} comparable "
        f"cells; '-' structure agrees on {dash_matches}/{dash_total})"
    )
    return comparison


def _compare_speedup(result: ExperimentResult):
    comparison = ExperimentResult(
        experiment=f"{result.experiment}-vs-paper",
        title=f"{result.title} -- paper vs measured average speedup",
        headers=["machine", "paper", "measured", "delta"],
    )
    for machine, values in result.extras["averages"].items():
        paper_value = PAPER_SPEEDUP_AVERAGES.get((result.experiment, machine))
        if paper_value is None:
            continue
        measured = values["speedup"]
        comparison.rows.append(
            [machine, f"{paper_value:.2f}", f"{measured:.2f}",
             f"{measured - paper_value:+.2f}"]
        )
        comparison.extras[machine] = {
            "paper": paper_value,
            "measured": measured,
        }
    return comparison


def _compare_figure2(result: ExperimentResult):
    comparison = ExperimentResult(
        experiment="figure2-vs-paper",
        title="Figure 2 -- paper vs measured slope (%/bit of entropy)",
        headers=["panel", "paper", "measured"],
    )
    for panel, fit in result.extras["panels"].items():
        comparison.rows.append(
            [panel, f"{PAPER_FIGURE2_PERCENT_PER_BIT:+.1f}%",
             f"{fit['percent_per_bit']:+.1f}%"]
        )
    comparison.extras["paper"] = PAPER_FIGURE2_PERCENT_PER_BIT
    return comparison


def compare_to_paper(result: ExperimentResult) -> Optional[ExperimentResult]:
    """Paper-vs-measured comparison for supported experiments.

    Returns ``None`` for experiments without transcribed reference data
    (Table 1 is static; Tables 8/9 and Figures 3/4 are compared by
    shape in the benchmark harness).
    """
    paper = _SUITE_TABLES.get(result.experiment)
    if paper is not None:
        return _compare_suite(result, paper)
    if result.experiment in ("table11", "table12", "table13"):
        return _compare_speedup(result)
    if result.experiment == "figure2":
        return _compare_figure2(result)
    return None
