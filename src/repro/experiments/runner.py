"""Registry and runner for all experiment drivers."""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from ..errors import ExperimentError
from .base import ExperimentResult
from . import (
    ext_dual_issue,
    ext_future_ops,
    ext_hazard,
    ext_matrix,
    ext_reuse_buffer,
    figure2,
    figure3,
    figure4,
    table1,
    table5,
    table6,
    table7,
    table8,
    table9,
    table10,
    table11,
    table12,
    table13,
)

__all__ = [
    "REGISTRY",
    "PAPER_EXPERIMENTS",
    "experiment_names",
    "run_experiment",
    "run_experiments",
]

#: Every table and figure of the paper's evaluation, by id.
PAPER_EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1.run,
    "table5": table5.run,
    "table6": table6.run,
    "table7": table7.run,
    "table8": table8.run,
    "table9": table9.run,
    "table10": table10.run,
    "table11": table11.run,
    "table12": table12.run,
    "table13": table13.run,
    "figure2": figure2.run,
    "figure3": figure3.run,
    "figure4": figure4.run,
}

#: Studies beyond the paper (its related-work and future-work hooks).
EXTENSION_EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "ext-dual-issue": ext_dual_issue.run,
    "ext-future-ops": ext_future_ops.run,
    "ext-hazard": ext_hazard.run,
    "ext-matrix": ext_matrix.run,
    "ext-reuse-buffer": ext_reuse_buffer.run,
}

REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {
    **PAPER_EXPERIMENTS,
    **EXTENSION_EXPERIMENTS,
}


def experiment_names() -> Sequence[str]:
    return tuple(REGISTRY)


def run_experiment(name: str, **kwargs) -> ExperimentResult:
    """Run one experiment by id (``table7``, ``figure3``, ...)."""
    try:
        driver = REGISTRY[name]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {name!r}; available: {', '.join(REGISTRY)}"
        ) from None
    return driver(**kwargs)


def run_experiments(names: Sequence[str], jobs: int = 1, **kwargs):
    """Run several experiments, optionally across a worker pool.

    Thin facade over :func:`repro.corpus.engine.run_experiments`: with
    ``jobs > 1`` the (experiment x application x input) trace plan is
    recorded in parallel into the corpus, then the experiments fan out
    over the same pool.  Returns an
    :class:`repro.corpus.engine.ExperimentBatch` whose ``results`` are
    ordinary (name, :class:`ExperimentResult`) pairs in request order.
    """
    for name in names:
        if name not in REGISTRY:
            raise ExperimentError(
                f"unknown experiment {name!r}; available: {', '.join(REGISTRY)}"
            )
    from ..corpus.engine import run_experiments as _run

    return _run(names, jobs=jobs, **kwargs)
