"""Table 10: mantissa-only tags vs full floating point tags.

Suite-average fp multiply and divide hit ratios (32-entry 4-way) when
the MEMO-TABLE stores the whole 64-bit operand patterns versus only the
52-bit mantissa fields.  Mantissa-only tags hit slightly more often
(operands differing only in exponent/sign match) at the cost of an
exponent adder next to the table.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core.config import MemoTableConfig, TagMode
from ..core.operations import Operation
from ..workloads.khoros import TABLE7_ORDER
from ..workloads.perfect import perfect_names
from .base import ExperimentResult, ratio_cell
from .common import (
    DEFAULT_IMAGE_SET,
    average_ratios,
    hit_ratio_or_none,
    record_mm_trace,
    record_perfect_trace,
    replay,
)

__all__ = ["run"]

_FULL = MemoTableConfig(tag_mode=TagMode.FULL)
_MANTISSA = MemoTableConfig(tag_mode=TagMode.MANTISSA)


def _suite_averages(traces) -> List[Optional[float]]:
    """(fmul.full, fmul.mant, fdiv.full, fdiv.mant) averaged over traces."""
    per_trace: list = [[] for _ in range(4)]
    for trace in traces:
        full = replay(trace, _FULL)
        mantissa = replay(trace, _MANTISSA)
        per_trace[0].append(hit_ratio_or_none(full, Operation.FP_MUL))
        per_trace[1].append(hit_ratio_or_none(mantissa, Operation.FP_MUL))
        per_trace[2].append(hit_ratio_or_none(full, Operation.FP_DIV))
        per_trace[3].append(hit_ratio_or_none(mantissa, Operation.FP_DIV))
    return [average_ratios(values) for values in per_trace]


def run(
    scale: float = 0.15,
    images: Sequence[str] = DEFAULT_IMAGE_SET[:3],
    mm_kernels: Sequence[str] = TABLE7_ORDER[:8],
) -> ExperimentResult:
    perfect_traces = [record_perfect_trace(app) for app in perfect_names()]
    mm_traces = [
        record_mm_trace(kernel, image, scale=scale)
        for kernel in mm_kernels
        for image in images
    ]
    result = ExperimentResult(
        experiment="table10",
        title="Table 10: Mantissa-only vs full-value tags (32/4 averages)",
        headers=["suite", "fmul.full", "fmul.mant", "fdiv.full", "fdiv.mant"],
    )
    values = {}
    for suite, traces in (("Perfect", perfect_traces), ("Multi-Media", mm_traces)):
        averages = _suite_averages(traces)
        values[suite] = averages
        result.rows.append([suite] + [ratio_cell(v) for v in averages])
    result.extras["averages"] = values
    return result
