"""Reuse-distance analysis for operand streams.

Explains the finite-vs-infinite MEMO-TABLE gap quantitatively: an
operand pair hits a table of capacity ``C`` (fully associative, LRU)
exactly when its *reuse distance* -- the number of distinct operand
pairs seen since its previous occurrence -- is below ``C``.  The paper
leans on Franklin & Sohi's register-instance statistics [21] to explain
the low scientific-suite ratios ("most register instances are replaced
within 30-40 instructions"); this module measures the analogous
quantities directly on traces.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence

from ..core.operations import Operation
from ..core.tags import float_full_tag, int_tag
from ..isa.trace import TraceEvent

__all__ = [
    "ReuseProfile",
    "reuse_profile",
    "hit_ratio_for_capacity",
    "RegisterInstanceStats",
    "register_instance_stats",
]

#: Reuse distances at or above this value are binned together.
INFINITE_DISTANCE = -1


@dataclass
class ReuseProfile:
    """Reuse-distance histogram of one operation class's operand pairs."""

    operation: Operation
    total: int = 0
    first_uses: int = 0  # cold occurrences (no previous use)
    histogram: Dict[int, int] = field(default_factory=dict)

    @property
    def reused(self) -> int:
        return self.total - self.first_uses

    @property
    def reuse_fraction(self) -> float:
        """Upper bound on any table's hit ratio (the 'infinite' column)."""
        if not self.total:
            return 0.0
        return self.reused / self.total

    def hits_within(self, capacity: int) -> int:
        """Occurrences whose reuse distance fits a capacity-C LRU table."""
        return sum(
            count
            for distance, count in self.histogram.items()
            if 0 <= distance < capacity
        )

    def hit_ratio(self, capacity: int) -> float:
        """Predicted hit ratio of a fully associative LRU table."""
        if not self.total:
            return 0.0
        return self.hits_within(capacity) / self.total

    def mean_distance(self) -> Optional[float]:
        """Mean reuse distance over reused occurrences."""
        if not self.reused:
            return None
        weighted = sum(d * c for d, c in self.histogram.items())
        return weighted / self.reused


def _pair_key(event: TraceEvent, operation: Operation):
    if operation is Operation.INT_MUL:
        return int_tag(event.a, event.b)
    return float_full_tag(event.a, event.b)


def reuse_profile(
    events: Iterable[TraceEvent],
    operation: Operation = Operation.FP_MUL,
    commutative: Optional[bool] = None,
) -> ReuseProfile:
    """Measure the reuse-distance histogram of one operation class.

    Distance is counted in *distinct operand pairs* (stack distance), so
    ``profile.hit_ratio(C)`` predicts a capacity-``C`` fully associative
    LRU table exactly.  ``commutative`` defaults to the operation's own
    commutativity: pairs are then canonicalized so ``(a, b)`` and
    ``(b, a)`` count as the same value.
    """
    if commutative is None:
        commutative = operation.commutative
    wanted = operation
    profile = ReuseProfile(operation=operation)
    # LRU stack as an ordered dict: most recent last.
    stack: "OrderedDict" = OrderedDict()
    for event in events:
        if event.opcode.operation is not wanted:
            continue
        key = _pair_key(event, operation)
        if commutative and key[1] < key[0]:
            key = (key[1], key[0])
        profile.total += 1
        if key in stack:
            # Distance = number of entries more recent than this key.
            distance = 0
            for other in reversed(stack):
                if other == key:
                    break
                distance += 1
            profile.histogram[distance] = profile.histogram.get(distance, 0) + 1
            stack.move_to_end(key)
        else:
            profile.first_uses += 1
            stack[key] = True
    return profile


def hit_ratio_for_capacity(
    events: Sequence[TraceEvent],
    operation: Operation,
    capacities: Sequence[int],
) -> Dict[int, float]:
    """Predicted LRU hit ratio at each capacity, from one profiling pass."""
    profile = reuse_profile(events, operation)
    return {capacity: profile.hit_ratio(capacity) for capacity in capacities}


@dataclass(frozen=True)
class RegisterInstanceStats:
    """Value-instance statistics in the style of Franklin & Sohi [21].

    An *instance* here is a distinct operand pair value; ``uses`` counts
    how often instances recur.  The paper's explanation for the poor
    Perfect/SPEC hit ratios is exactly "a large number of register
    instances are used only once and the average use is about 2".
    """

    instances: int
    single_use: int
    mean_uses: float

    @property
    def single_use_fraction(self) -> float:
        if not self.instances:
            return 0.0
        return self.single_use / self.instances


def register_instance_stats(
    events: Iterable[TraceEvent],
    operation: Operation = Operation.FP_MUL,
) -> RegisterInstanceStats:
    """Count how often each distinct operand pair is used."""
    uses: Dict[tuple, int] = {}
    for event in events:
        if event.opcode.operation is not operation:
            continue
        key = _pair_key(event, operation)
        uses[key] = uses.get(key, 0) + 1
    if not uses:
        return RegisterInstanceStats(instances=0, single_use=0, mean_uses=0.0)
    total_uses = sum(uses.values())
    single = sum(1 for count in uses.values() if count == 1)
    return RegisterInstanceStats(
        instances=len(uses),
        single_use=single,
        mean_uses=total_uses / len(uses),
    )
