"""CLI entry points for the static analyzer and the repo linter.

Dispatched from the main ``repro`` command::

    repro analyze                     # classify memo sites of every program
    repro analyze saxpy sobel_gx      # just these programs
    repro analyze --check             # + dynamic cross-validation (CI gate)
    repro analyze --json report.json

    repro analyze --concurrency       # race/atomicity analyzer (CI gate)
    repro analyze --concurrency tests/fixtures/concurrency

    repro lint                        # lint the installed repro package
    repro lint src/repro/workloads    # lint specific paths
    repro lint --json lint.json

All exit non-zero on failure (bound violation / finding), so they gate
CI directly.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .tables import format_ratio, format_table

__all__ = ["main_analyze", "main_lint"]


def _analyze_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro analyze",
        description=(
            "Static dataflow analysis over the bundled ISA programs: "
            "classify multiply/divide sites and bound MEMO-TABLE hit "
            "ratios without executing a trace."
        ),
    )
    parser.add_argument(
        "programs",
        nargs="*",
        metavar="PROGRAM",
        help="bundled program names (default: all; see `repro-trace programs`)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "execute each program on the reference harness and assert "
            "static lower <= measured <= static upper"
        ),
    )
    parser.add_argument(
        "--n",
        type=int,
        default=None,
        help="trip count for the reference harness (default 48)",
    )
    parser.add_argument(
        "--sites",
        action="store_true",
        help="print one line per static multiply/divide site",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the full report as JSON ('-' for stdout)",
    )
    group = parser.add_argument_group(
        "concurrency analysis",
        "flow-sensitive race & filesystem-atomicity checks over the "
        "service/corpus layer (positional arguments become paths)",
    )
    group.add_argument(
        "--concurrency",
        action="store_true",
        help=(
            "run the CONC race/atomicity checks instead of the memo-site "
            "classifier (default paths: repro.serve, repro.corpus, "
            "repro.obs, repro.fsutil)"
        ),
    )
    group.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="accepted-findings baseline JSON to subtract from the report",
    )
    group.add_argument(
        "--write-baseline",
        metavar="PATH",
        default=None,
        help="write the current findings out as a new baseline and exit 0",
    )
    group.add_argument(
        "--list-checks",
        action="store_true",
        help="list the CONC check ids and exit",
    )
    return parser


def _main_concurrency(args: argparse.Namespace) -> int:
    from .concurrency import CHECKS, Baseline, run

    if args.list_checks:
        for check_id, (name, description) in CHECKS.items():
            print(f"{check_id}  {name:<24} {description}")
        return 0
    paths = [Path(token) for token in args.programs] or None
    baseline = None
    if args.baseline:
        baseline = Baseline.load(Path(args.baseline))
    report = run(paths=paths, baseline=baseline)
    if args.write_baseline:
        fresh = Baseline.from_findings(report.findings)
        fresh.save(Path(args.write_baseline))
        print(
            f"wrote {args.write_baseline} "
            f"({len(report.findings)} accepted finding(s))"
        )
        return 0
    if args.json is not None:
        payload = json.dumps(report.to_dict(), indent=2)
        if args.json == "-":
            print(payload)
        else:
            Path(args.json).write_text(payload + "\n", encoding="utf-8")
            print(f"wrote {args.json}")
    print(report.render())
    if report.findings:
        print(f"{len(report.findings)} concurrency finding(s)", file=sys.stderr)
        return 1
    return 0


def main_analyze(argv: Optional[List[str]] = None) -> int:
    args = _analyze_parser().parse_args(argv)
    if args.concurrency or args.list_checks:
        return _main_concurrency(args)
    if args.baseline or args.write_baseline:
        print(
            "--baseline/--write-baseline require --concurrency",
            file=sys.stderr,
        )
        return 2

    from ..isa.programs import PROGRAMS
    from .static import REFERENCE_N, SiteClass, analyze_source, check_program

    names = args.programs or list(PROGRAMS)
    unknown = [name for name in names if name not in PROGRAMS]
    if unknown:
        print(
            f"unknown program(s): {', '.join(unknown)}; "
            f"try: {', '.join(PROGRAMS)}",
            file=sys.stderr,
        )
        return 2

    document: dict = {"programs": [], "checks": []}
    summary_rows = []
    failures = 0
    for name in names:
        analysis = analyze_source(name, PROGRAMS[name])
        document["programs"].append(analysis.to_dict())
        counts = analysis.class_counts
        summary_rows.append([
            name,
            len(analysis.sites),
            *(counts.get(cls, 0) for cls in SiteClass),
            f"{analysis.predictable_fraction:.0%}",
        ])
        if args.sites:
            print(f"{name}:")
            for site in analysis.sites:
                consts = ", ".join(
                    "?" if value is None else f"{value:g}"
                    for value in site.operand_consts
                )
                print(
                    f"  line {site.line:>3} pc {site.pc:#x} "
                    f"{site.mnemonic:<6} {site.classification.value:<13} "
                    f"({consts}) {site.note}"
                )
    class_names = [cls.value for cls in SiteClass]
    print(format_table(
        ["program", "sites", *class_names, "predictable"],
        summary_rows,
        title="static memo-opportunity classification",
    ))

    if args.check:
        print()
        check_rows = []
        for name in names:
            kwargs = {} if args.n is None else {"n": args.n}
            result = check_program(name, **kwargs)
            document["checks"].append(result.to_dict())
            check_rows.append([
                name,
                result.total_ops,
                format_ratio(result.bounds.lower),
                format_ratio(result.measured),
                format_ratio(result.bounds.upper),
                f"{result.gap:.3f}",
                "ok" if result.ok else "VIOLATION",
            ])
            if not result.ok:
                failures += 1
        n_used = args.n if args.n is not None else REFERENCE_N
        print(format_table(
            ["program", "ops", "static lower", "measured", "static upper",
             "bracket", "verdict"],
            check_rows,
            title=(
                "static bounds vs dynamic infinite-table hit ratio "
                f"(reference harness, n={n_used})"
            ),
        ))

    if args.json is not None:
        payload = json.dumps(document, indent=2)
        if args.json == "-":
            print(payload)
        else:
            Path(args.json).write_text(payload + "\n", encoding="utf-8")
            print(f"wrote {args.json}")

    if failures:
        print(
            f"\n{failures} program(s) violate their static bounds",
            file=sys.stderr,
        )
        return 1
    return 0


def _lint_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "AST linter enforcing repo invariants: seeded RNG only, no "
            "wall clock on deterministic paths, bit-pattern keying, "
            "pool-callback purity, opcode-table exhaustiveness."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files/directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--rules",
        metavar="IDS",
        default=None,
        help="comma-separated rule ids to run (e.g. REPRO001,REPRO005)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write findings as JSON ('-' for stdout)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list the available rules and exit",
    )
    return parser


def main_lint(argv: Optional[List[str]] = None) -> int:
    from .lint import ALL_RULES, default_target, lint_paths
    from .lint.rules import violations_to_json

    args = _lint_parser().parse_args(argv)
    rules = ALL_RULES()
    if args.list:
        for rule in rules:
            print(f"{rule.id}  {rule.name:<24} {rule.description}")
        return 0
    if args.rules:
        wanted = {token.strip().upper() for token in args.rules.split(",")}
        rules = [rule for rule in rules if rule.id in wanted]
        if not rules:
            print(f"no rules match {args.rules!r}", file=sys.stderr)
            return 2
    paths = (
        [Path(token) for token in args.paths]
        if args.paths
        else [default_target()]
    )
    findings = lint_paths(paths, rules)
    for finding in findings:
        print(finding.render())
    if args.json is not None:
        payload = violations_to_json(findings)
        if args.json == "-":
            print(payload)
        else:
            Path(args.json).write_text(payload + "\n", encoding="utf-8")
            print(f"wrote {args.json}")
    if findings:
        print(f"{len(findings)} violation(s)", file=sys.stderr)
        return 1
    print(f"clean: {len(rules)} rule(s) over {len(paths)} path(s)")
    return 0
