"""Custom AST lint rules for repo invariants.

Each rule declares the path scopes it guards (posix path fragments) and
walks a parsed module.  Rules are deliberately narrow: they encode
*this* repository's determinism and soundness invariants, not general
style -- ruff handles style.

=========  ==============================================================
rule       invariant
=========  ==============================================================
REPRO001   workload kernels draw randomness only from seeded generators
REPRO002   deterministic paths never read the wall clock
REPRO003   MEMO-TABLE keying/hashing never compares float literals with
           ``==``/``!=`` (bit patterns are the keys, cf. ieee754)
REPRO004   fork-pool callbacks do not mutate module-level state (worker
           processes would each mutate their own copy; results must
           flow through return values)
REPRO005   the interpreter handles every Opcode; the latency model
           prices every Operation
REPRO006   per-record MEMO-TABLE probe loops live only in
           ``repro.core.kernel`` (every other layer routes batches
           through ``probe_batch``/``run_events``)
REPRO007   no mutable default arguments anywhere in the package (a
           shared default dict/list is cross-call -- and under a fork
           pool, cross-copy -- hidden state)
REPRO008   durable JSON/state files are published atomically (tmp write
           + ``os.replace``), never ``open(path, "w")`` in place
REPRO009   only ``repro.core`` imports ``repro.core.kernel``; every
           other layer goes through the execution-backend registry
           (``repro.core.backend``)
=========  ==============================================================
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = [
    "LintViolation",
    "LintRule",
    "UnseededRandomRule",
    "WallClockRule",
    "FloatEqualityRule",
    "PoolCallbackMutationRule",
    "OpcodeExhaustivenessRule",
    "PerRecordProbeLoopRule",
    "MutableDefaultRule",
    "NonAtomicWriteRule",
    "KernelImportRule",
    "ALL_RULES",
    "default_target",
    "lint_source",
    "lint_paths",
    "violations_to_json",
]


@dataclass(frozen=True)
class LintViolation:
    """One finding: where, which rule, and why it matters."""

    rule: str
    name: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.name}] {self.message}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "name": self.name,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class LintRule:
    """Base class: id, name and path scopes plus a ``check`` hook."""

    id = "REPRO000"
    name = "base"
    description = ""
    #: Posix path fragments the rule applies to; empty = every file.
    scopes: Tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        posix = path.replace("\\", "/")
        return not self.scopes or any(scope in posix for scope in self.scopes)

    def check(self, tree: ast.Module, path: str) -> List[LintViolation]:
        raise NotImplementedError

    def violation(self, node: ast.AST, path: str, message: str) -> LintViolation:
        return LintViolation(
            rule=self.id,
            name=self.name,
            path=path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


def _dotted_name(node: ast.AST) -> Optional[str]:
    """Best-effort dotted name of an expression (``np.random.rand``)."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


# -- REPRO001: unseeded RNG ------------------------------------------------

#: Functions of the stdlib ``random`` module-level (global, unseeded) API.
_GLOBAL_RANDOM_FNS = {
    "random", "randint", "uniform", "randrange", "choice", "choices",
    "shuffle", "sample", "gauss", "normalvariate", "betavariate",
    "expovariate", "triangular", "vonmisesvariate", "seed", "getrandbits",
}


class UnseededRandomRule(LintRule):
    """Workload kernels must draw randomness from seeded generators only.

    Recorded traces are content-addressed by (suite, app, input, scale);
    an unseeded draw makes the same key map to different value streams,
    silently corrupting corpus replay equivalence.
    """

    id = "REPRO001"
    name = "unseeded-rng"
    description = "unseeded RNG in a deterministic workload kernel"
    scopes = ("repro/workloads/", "repro/images/", "repro/isa/",
              "repro/core/", "repro/corpus/")

    def check(self, tree: ast.Module, path: str) -> List[LintViolation]:
        findings: List[LintViolation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            if dotted is None:
                continue
            if dotted in ("np.random.default_rng", "numpy.random.default_rng",
                          "default_rng"):
                if not node.args and not node.keywords:
                    findings.append(self.violation(
                        node, path,
                        "default_rng() without a seed is "
                        "nondeterministic; pass an explicit seed",
                    ))
                continue
            if dotted in ("random.Random", "np.random.RandomState",
                          "numpy.random.RandomState"):
                if not node.args and not node.keywords:
                    findings.append(self.violation(
                        node, path,
                        f"{dotted}() without a seed is nondeterministic",
                    ))
                continue
            root, _, leaf = dotted.rpartition(".")
            if root in ("np.random", "numpy.random") and leaf != "default_rng":
                findings.append(self.violation(
                    node, path,
                    f"{dotted}() uses numpy's global RNG; use "
                    "np.random.default_rng(seed)",
                ))
            elif root == "random" and leaf in _GLOBAL_RANDOM_FNS:
                findings.append(self.violation(
                    node, path,
                    f"{dotted}() uses the process-global RNG; use "
                    "random.Random(seed)",
                ))
        return findings


# -- REPRO002: wall clock --------------------------------------------------

_WALL_CLOCK_CALLS = {
    "time.time": "time.perf_counter() for intervals, or drop the timestamp",
    "time.time_ns": "time.perf_counter_ns()",
    "time.ctime": "a constant label",
    "datetime.now": "a constant label",
    "datetime.utcnow": "a constant label",
    "datetime.datetime.now": "a constant label",
    "datetime.datetime.utcnow": "a constant label",
}


class WallClockRule(LintRule):
    """Deterministic paths must not read the wall clock.

    Interval timing belongs to ``time.perf_counter`` (monotonic) and
    CPU accounting to ``time.process_time``; wall-clock reads make runs
    unreproducible, break trace-identity assumptions, and (in the
    metrics layer) make durations jump when NTP steps the clock.  The
    rule covers the whole package; the sanctioned exceptions are the
    corpus store's lock-staleness/archive timestamps
    (``repro/corpus/store.py``), the serve queue's durable job records
    (``repro/serve/queue.py``), and the shared filesystem primitives
    both are built on (``repro/fsutil.py``), whose submit/lease/lock
    timestamps must survive process restarts and be comparable across
    processes -- which per-process monotonic clocks are not.  None sits
    on a simulation path.
    """

    id = "REPRO002"
    name = "wall-clock"
    description = "wall-clock read on a deterministic path"
    scopes = ("repro/",)

    #: The only modules allowed to read the wall clock.
    _EXEMPT = (
        "repro/corpus/store.py",
        "repro/serve/queue.py",
        "repro/fsutil.py",
    )

    def applies_to(self, path: str) -> bool:
        posix = path.replace("\\", "/")
        if any(exempt in posix for exempt in self._EXEMPT):
            return False
        return super().applies_to(posix)

    def check(self, tree: ast.Module, path: str) -> List[LintViolation]:
        findings: List[LintViolation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            if dotted in _WALL_CLOCK_CALLS:
                findings.append(self.violation(
                    node, path,
                    f"{dotted}() reads the wall clock; use "
                    f"{_WALL_CLOCK_CALLS[dotted]}",
                ))
        return findings


# -- REPRO003: float equality in keying paths ------------------------------

class FloatEqualityRule(LintRule):
    """MEMO-TABLE keying compares bit patterns, never float values.

    ``0.0 == -0.0`` and ``nan != nan`` make value comparison unsound as
    a tag match: two bit-distinct operand pairs must occupy two entries
    (the paper's tags are operand *bits*).  Keying/hashing modules must
    compare via ``float64_to_bits``.
    """

    id = "REPRO003"
    name = "float-eq-keying"
    description = "float literal compared with ==/!= in a keying path"
    scopes = ("repro/core/tags.py", "repro/core/indexing.py",
              "repro/core/memo_table.py", "repro/core/bank.py",
              "repro/corpus/store.py")

    def check(self, tree: ast.Module, path: str) -> List[LintViolation]:
        findings: List[LintViolation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            has_eq = any(
                isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops
            )
            if not has_eq:
                continue
            for operand in operands:
                if (
                    isinstance(operand, ast.Constant)
                    and isinstance(operand.value, float)
                ):
                    findings.append(self.violation(
                        node, path,
                        "float value equality in a keying/hashing path; "
                        "compare bit patterns (float64_to_bits) instead",
                    ))
                    break
        return findings


# -- REPRO004: pool callbacks mutating shared state ------------------------

class PoolCallbackMutationRule(LintRule):
    """Fork-pool callbacks must not mutate module-level state.

    Under ``fork`` each worker mutates its own copy-on-write page and
    the parent never sees it; under ``spawn`` the module is re-imported.
    Either way the mutation silently diverges across processes, so
    results must travel through return values (the engine merges them).
    """

    id = "REPRO004"
    name = "pool-callback-mutation"
    description = "fork-pool callback mutates module-level state"
    scopes = ("repro/corpus/", "repro/experiments/")

    _POOL_METHODS = {"map", "imap", "imap_unordered", "map_async",
                     "apply", "apply_async", "starmap"}

    def check(self, tree: ast.Module, path: str) -> List[LintViolation]:
        module_names = self._module_level_names(tree)
        callbacks = self._pool_callbacks(tree)
        if not callbacks:
            return []
        functions = {
            node.name: node
            for node in tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        findings: List[LintViolation] = []
        for name in sorted(callbacks):
            function = functions.get(name)
            if function is None:
                continue
            findings.extend(
                self._check_callback(function, module_names, path)
            )
        return findings

    @staticmethod
    def _module_level_names(tree: ast.Module) -> Set[str]:
        names: Set[str] = set()
        for node in tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name):
                    names.add(node.target.id)
        return names

    def _pool_callbacks(self, tree: ast.Module) -> Set[str]:
        """Names of functions handed to a worker pool."""
        callbacks: Set[str] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in self._POOL_METHODS
                and node.args
                and isinstance(node.args[0], ast.Name)
            ):
                callbacks.add(node.args[0].id)
            for keyword in node.keywords:
                if (
                    keyword.arg == "initializer"
                    and isinstance(keyword.value, ast.Name)
                ):
                    callbacks.add(keyword.value.id)
        return callbacks

    def _check_callback(
        self,
        function: ast.AST,
        module_names: Set[str],
        path: str,
    ) -> List[LintViolation]:
        findings: List[LintViolation] = []
        mutators = {"append", "extend", "update", "add", "insert", "pop",
                    "clear", "setdefault", "remove"}
        for node in ast.walk(function):
            if isinstance(node, ast.Global):
                findings.append(self.violation(
                    node, path,
                    f"pool callback declares `global {', '.join(node.names)}`;"
                    " return the value instead of mutating shared state",
                ))
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    base = target
                    while isinstance(base, (ast.Subscript, ast.Attribute)):
                        base = base.value
                    if (
                        isinstance(base, ast.Name)
                        and base.id in module_names
                        and base is not target
                    ):
                        findings.append(self.violation(
                            node, path,
                            f"pool callback writes through module-level "
                            f"name {base.id!r}; workers cannot share it",
                        ))
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in mutators
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in module_names
                ):
                    findings.append(self.violation(
                        node, path,
                        f"pool callback mutates module-level "
                        f"{node.func.value.id!r} via .{node.func.attr}(); "
                        "workers cannot share it",
                    ))
        return findings


# -- REPRO005: opcode/latency table exhaustiveness -------------------------

class OpcodeExhaustivenessRule(LintRule):
    """Every opcode must be executable and every operation priced.

    ``machine.py`` must reference every :class:`Opcode` member (an
    unreferenced member is an instruction class the interpreter cannot
    emit or execute); ``latency.py`` must reference every
    :class:`Operation` member (an unpriced operation silently costs the
    default latency).
    """

    id = "REPRO005"
    name = "opcode-exhaustiveness"
    description = "opcode/operation table is not exhaustive"
    scopes = ("repro/isa/machine.py", "repro/arch/latency.py")

    def __init__(
        self,
        opcode_members: Optional[Sequence[str]] = None,
        operation_members: Optional[Sequence[str]] = None,
    ) -> None:
        self._opcode_members = (
            tuple(opcode_members) if opcode_members is not None else None
        )
        self._operation_members = (
            tuple(operation_members) if operation_members is not None else None
        )

    def check(self, tree: ast.Module, path: str) -> List[LintViolation]:
        posix = path.replace("\\", "/")
        if posix.endswith("machine.py"):
            enum_name = "Opcode"
            members = self._opcode_members
            if members is None:
                members = _enum_members(
                    Path(path).parent / "opcodes.py", "Opcode"
                )
            what = "interpreter"
        else:
            enum_name = "Operation"
            members = self._operation_members
            if members is None:
                members = _enum_members(
                    Path(path).parent.parent / "core" / "operations.py",
                    "Operation",
                )
            what = "latency model"
        if not members:
            return []  # enum source unavailable: nothing to assert
        referenced = {
            node.attr
            for node in ast.walk(tree)
            if isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == enum_name
        }
        missing = [member for member in members if member not in referenced]
        if not missing:
            return []
        return [self.violation(
            tree, path,
            f"{what} never references {enum_name} member(s): "
            f"{', '.join(missing)}",
        )]


def _enum_members(path: Path, class_name: str) -> Tuple[str, ...]:
    """Parse ``class <name>(...)`` member names out of an enum module."""
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"))
    except (OSError, SyntaxError):
        return ()
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            members = []
            for statement in node.body:
                if isinstance(statement, ast.Assign):
                    for target in statement.targets:
                        if (
                            isinstance(target, ast.Name)
                            and target.id.isupper()
                        ):
                            members.append(target.id)
            return tuple(members)
    return ()


# -- REPRO006: per-record probe loops outside the kernel -------------------

class PerRecordProbeLoopRule(LintRule):
    """Per-record MEMO-TABLE probe loops belong to ``repro.core.kernel``.

    The batched kernel is the single place allowed to probe units or
    tables one record at a time; a ``for``/``while`` loop calling
    ``.execute()`` or ``.lookup()`` anywhere else re-creates the scalar
    inner loop the columnar refactor deleted, silently bypassing the
    vectorized path (and the batched-vs-scalar parity CI asserts).
    Hazard-style models that genuinely need per-event outcomes route
    through :func:`repro.core.kernel.probe_one`.
    """

    id = "REPRO006"
    name = "per-record-probe-loop"
    description = "per-record probe loop outside repro.core.kernel"
    scopes = ("repro/",)

    #: The only module allowed to carry the scalar probe loop.
    _EXEMPT = ("repro/core/kernel.py",)
    _PROBE_METHODS = ("execute", "lookup")
    _LOOPS = (
        ast.For, ast.AsyncFor, ast.While,
        ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp,
    )

    def applies_to(self, path: str) -> bool:
        posix = path.replace("\\", "/")
        if any(exempt in posix for exempt in self._EXEMPT):
            return False
        return super().applies_to(posix)

    def check(self, tree: ast.Module, path: str) -> List[LintViolation]:
        findings: List[LintViolation] = []
        seen: Set[Tuple[int, int]] = set()
        for node in ast.walk(tree):
            if not isinstance(node, self._LOOPS):
                continue
            for inner in ast.walk(node):
                if not (
                    isinstance(inner, ast.Call)
                    and isinstance(inner.func, ast.Attribute)
                    and inner.func.attr in self._PROBE_METHODS
                ):
                    continue
                where = (inner.lineno, inner.col_offset)
                if where in seen:  # nested loops walk the same call twice
                    continue
                seen.add(where)
                findings.append(self.violation(
                    inner, path,
                    f"per-record `.{inner.func.attr}()` probe inside a "
                    "loop; route the batch through repro.core.kernel "
                    "(probe_batch/run_events, or probe_one for models "
                    "that need per-event outcomes)",
                ))
        return findings


# -- REPRO007: mutable default arguments -----------------------------------

class MutableDefaultRule(LintRule):
    """No mutable default arguments anywhere in the package.

    A default ``{}``/``[]``/``set()`` is evaluated once and shared by
    every call -- hidden cross-call state that additionally diverges
    per-process under the fork pool (each worker mutates its own copy).
    Every layer of this repo passes results through return values; a
    mutable default is the one loophole the other rules cannot see.
    """

    id = "REPRO007"
    name = "mutable-default"
    description = "mutable default argument"
    scopes = ("repro/",)

    _MUTABLE_CALLS = {"list", "dict", "set", "OrderedDict", "defaultdict",
                      "Counter", "deque"}

    def check(self, tree: ast.Module, path: str) -> List[LintViolation]:
        findings: List[LintViolation] = []
        for node in ast.walk(tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults)
            defaults.extend(d for d in node.args.kw_defaults if d is not None)
            for default in defaults:
                if self._is_mutable(default):
                    label = getattr(node, "name", "<lambda>")
                    findings.append(self.violation(
                        default, path,
                        f"{label}() takes a mutable default argument; "
                        "default to None and allocate inside the body",
                    ))
        return findings

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            dotted = _dotted_name(node.func)
            leaf = dotted.rpartition(".")[2] if dotted else None
            return leaf in self._MUTABLE_CALLS
        return False


# -- REPRO008: non-atomic durable writes -----------------------------------

class NonAtomicWriteRule(LintRule):
    """Durable state files are published via tmp write + ``os.replace``.

    The corpus manifest, job records and result documents are read by
    concurrent processes; an in-place ``open(path, "w")`` exposes a
    torn file to every reader between truncate and close (the exact
    shape of the PR 4 manifest race).  Writers must stage into a
    tmp-named sibling and ``os.replace`` it into place --
    :func:`repro.fsutil.atomic_write_json` is the shared helper.

    Scoped to the durable-state layers (``repro/serve/``,
    ``repro/corpus/``); sanctioned exemptions (none today) use the same
    mechanism as REPRO002's wall-clock list.
    """

    id = "REPRO008"
    name = "non-atomic-write"
    description = "non-atomic write to a durable path"
    scopes = ("repro/serve/", "repro/corpus/")

    #: Modules sanctioned to write durable files in place (none today;
    #: the REPRO002-style escape hatch for layers that prove they are
    #: single-writer).
    _EXEMPT: Tuple[str, ...] = ()

    _WRITE_MODES = {"w", "wb", "w+", "wb+", "wt"}

    def applies_to(self, path: str) -> bool:
        posix = path.replace("\\", "/")
        if any(exempt in posix for exempt in self._EXEMPT):
            return False
        return super().applies_to(posix)

    def check(self, tree: ast.Module, path: str) -> List[LintViolation]:
        findings: List[LintViolation] = []
        for scope in ast.walk(tree):
            if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            has_replace = any(
                isinstance(node, ast.Call)
                and _dotted_name(node.func) in ("os.replace", "os.rename")
                for node in ast.walk(scope)
            )
            if has_replace:
                continue  # the function publishes atomically
            tmp_names = self._tmp_names(scope)
            for node in ast.walk(scope):
                target = self._written_path(node)
                if target is None:
                    continue
                if self._is_tmp(target, tmp_names):
                    continue  # staged write; some caller replaces it
                findings.append(self.violation(
                    node, path,
                    "in-place write to a durable path; stage into a "
                    "tmp sibling and os.replace it "
                    "(repro.fsutil.atomic_write_json)",
                ))
        return findings

    def _written_path(self, node: ast.AST) -> Optional[ast.AST]:
        """The path expression a call writes to, or None."""
        if not isinstance(node, ast.Call):
            return None
        dotted = _dotted_name(node.func)
        if dotted == "open" and node.args:
            mode = self._mode_of(node)
            if mode in self._WRITE_MODES:
                return node.args[0]
            return None
        if isinstance(node.func, ast.Attribute):
            if node.func.attr == "open":
                mode = self._mode_of(node)
                if mode in self._WRITE_MODES:
                    return node.func.value
                return None
            if node.func.attr in ("write_text", "write_bytes"):
                return node.func.value
        return None

    @staticmethod
    def _mode_of(call: ast.Call) -> Optional[str]:
        candidates = [arg for arg in call.args[1:]]
        candidates.extend(
            kw.value for kw in call.keywords if kw.arg == "mode"
        )
        for candidate in candidates:
            if isinstance(candidate, ast.Constant) and isinstance(
                candidate.value, str
            ):
                return candidate.value
        return None

    @staticmethod
    def _tmp_names(scope: ast.AST) -> Set[str]:
        """Names assigned from expressions that smell like tmp paths."""
        names: Set[str] = set()
        for node in ast.walk(scope):
            if not isinstance(node, ast.Assign):
                continue
            if "tmp" in _strings_of(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    @staticmethod
    def _is_tmp(target: ast.AST, tmp_names: Set[str]) -> bool:
        if isinstance(target, ast.Name) and target.id in tmp_names:
            return True
        return "tmp" in _strings_of(target)


def _strings_of(node: ast.AST) -> str:
    """Every string literal under ``node``, concatenated (tmp sniffing)."""
    parts: List[str] = []
    for child in ast.walk(node):
        if isinstance(child, ast.Constant) and isinstance(child.value, str):
            parts.append(child.value)
    return "\x00".join(parts)


# -- REPRO009: kernel imports outside repro.core ---------------------------

class KernelImportRule(LintRule):
    """Only ``repro.core`` may import the kernel module directly.

    Every other layer selects an execution path through the backend
    registry (:mod:`repro.core.backend`), which re-exports the kernel
    helpers front-ends legitimately need (``probe_one``,
    ``values_match``, ``replay_infinite``, the fault-injection seam).
    A direct kernel import bypasses backend selection -- the module
    would keep running the batched path no matter what ``--backend``,
    ``REPRO_BACKEND`` or a serve job spec asked for, and its runs would
    escape the per-backend metrics attribution.
    """

    id = "REPRO009"
    name = "kernel-import"
    description = "repro.core.kernel imported outside repro.core"
    scopes = ("repro/",)

    #: The kernel's own package is the one sanctioned importer.
    _EXEMPT = ("repro/core/",)

    def applies_to(self, path: str) -> bool:
        posix = path.replace("\\", "/")
        if any(exempt in posix for exempt in self._EXEMPT):
            return False
        return super().applies_to(posix)

    def check(self, tree: ast.Module, path: str) -> List[LintViolation]:
        findings: List[LintViolation] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if (
                        alias.name == "repro.core.kernel"
                        or alias.name.endswith(".core.kernel")
                    ):
                        findings.append(self._finding(node, path))
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                # `from repro.core.kernel import x` / `from ..core.kernel
                # import x` (relative spellings drop the leading dots).
                if module == "repro.core.kernel" or module.endswith(
                    "core.kernel"
                ):
                    findings.append(self._finding(node, path))
                    continue
                # `from repro.core import kernel` / `from ..core import
                # kernel` -- binding the module through its package.
                from_core = (
                    module in ("repro.core", "core")
                    or module.endswith(".core")
                )
                if from_core and any(
                    alias.name == "kernel" for alias in node.names
                ):
                    findings.append(self._finding(node, path))
        return findings

    def _finding(self, node: ast.AST, path: str) -> LintViolation:
        return self.violation(
            node, path,
            "direct repro.core.kernel import outside repro.core; go "
            "through the execution-backend registry "
            "(repro.core.backend dispatches and re-exports the "
            "sanctioned kernel helpers)",
        )


#: Factory producing one fresh instance of every rule.
def ALL_RULES() -> List[LintRule]:
    return [
        UnseededRandomRule(),
        WallClockRule(),
        FloatEqualityRule(),
        PoolCallbackMutationRule(),
        OpcodeExhaustivenessRule(),
        PerRecordProbeLoopRule(),
        MutableDefaultRule(),
        NonAtomicWriteRule(),
        KernelImportRule(),
    ]


def default_target() -> Path:
    """The installed ``repro`` package root (what CI lints)."""
    return Path(__file__).resolve().parent.parent.parent


def lint_source(
    source: str,
    path: str,
    rules: Optional[Sequence[LintRule]] = None,
) -> List[LintViolation]:
    """Lint one module given as text (the unit-test entry point)."""
    tree = ast.parse(source)
    findings: List[LintViolation] = []
    for rule in (rules if rules is not None else ALL_RULES()):
        if rule.applies_to(path):
            findings.extend(rule.check(tree, path))
    return findings


def lint_paths(
    paths: Sequence[Path],
    rules: Optional[Sequence[LintRule]] = None,
) -> List[LintViolation]:
    """Lint ``.py`` files (recursing into directories)."""
    active = list(rules) if rules is not None else ALL_RULES()
    files: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    findings: List[LintViolation] = []
    for file in files:
        try:
            source = file.read_text(encoding="utf-8")
        except OSError:
            continue
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            findings.append(LintViolation(
                rule="REPRO999",
                name="syntax-error",
                path=str(file),
                line=exc.lineno or 0,
                col=exc.offset or 0,
                message=f"cannot parse: {exc.msg}",
            ))
            continue
        posix = str(file.as_posix())
        for rule in active:
            if rule.applies_to(posix):
                findings.extend(rule.check(tree, posix))
    return findings


def violations_to_json(findings: Sequence[LintViolation]) -> str:
    return json.dumps(
        {
            "violations": [finding.to_dict() for finding in findings],
            "count": len(findings),
        },
        indent=2,
    )
