"""Repo-invariant linter: AST rules guarding determinism and soundness.

The corpus/engine subsystem silently depends on invariants no generic
linter checks: traces must be bit-reproducible (so workload kernels may
not consult unseeded RNGs or the wall clock), MEMO-TABLE keying must
compare bit patterns rather than float values, fork-pool callbacks must
not mutate parent-process globals, and the interpreter/latency tables
must stay exhaustive over the opcode set.  ``repro lint`` enforces all
of them.
"""

from .rules import (
    ALL_RULES,
    FloatEqualityRule,
    KernelImportRule,
    LintRule,
    LintViolation,
    MutableDefaultRule,
    NonAtomicWriteRule,
    OpcodeExhaustivenessRule,
    PerRecordProbeLoopRule,
    PoolCallbackMutationRule,
    UnseededRandomRule,
    WallClockRule,
    default_target,
    lint_paths,
    lint_source,
)

__all__ = [
    "ALL_RULES",
    "LintRule",
    "LintViolation",
    "UnseededRandomRule",
    "WallClockRule",
    "FloatEqualityRule",
    "PoolCallbackMutationRule",
    "OpcodeExhaustivenessRule",
    "PerRecordProbeLoopRule",
    "MutableDefaultRule",
    "NonAtomicWriteRule",
    "KernelImportRule",
    "default_target",
    "lint_paths",
    "lint_source",
]
