"""Amdahl's-law speedup model (section 3.3).

The paper computes application speedup from two quantities:

* **Fraction Enhanced (FE)** -- the fraction of baseline execution
  cycles spent in the memoized instruction class;
* **Speedup Enhanced (SE)** -- how much faster that class alone becomes,
  which for a unit of latency ``dc`` and a table hit ratio ``hr`` is::

      SE = dc / ((1 - hr) * dc + hr)

  (a hit costs one cycle, a miss still costs ``dc``).

The new execution time is ``T_old * ((1 - FE) + FE / SE)``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "speedup_enhanced",
    "amdahl_speedup",
    "new_execution_time",
    "AmdahlPoint",
]


def speedup_enhanced(latency: int, hit_ratio: float) -> float:
    """SE for one operation class: ``dc / ((1-hr)*dc + hr)``.

    ``latency`` is the multi-cycle operation's latency ``dc`` (>= 1);
    ``hit_ratio`` in [0, 1].  A zero hit ratio yields 1.0 (no change); a
    perfect hit ratio yields ``dc`` (every operation in one cycle).
    """
    if latency < 1:
        raise ValueError(f"latency must be >= 1, got {latency}")
    if not 0.0 <= hit_ratio <= 1.0:
        raise ValueError(f"hit ratio must be in [0, 1], got {hit_ratio}")
    return latency / ((1.0 - hit_ratio) * latency + hit_ratio)


def new_execution_time(t_old: float, fe: float, se: float) -> float:
    """``T_new = T_old * ((1 - FE) + FE / SE)``."""
    _check_fe_se(fe, se)
    return t_old * ((1.0 - fe) + fe / se)


def amdahl_speedup(fe: float, se: float) -> float:
    """Overall speedup ``T_old / T_new`` for fraction ``fe`` sped up by ``se``."""
    _check_fe_se(fe, se)
    return 1.0 / ((1.0 - fe) + fe / se)


def _check_fe_se(fe: float, se: float) -> None:
    if not 0.0 <= fe <= 1.0:
        raise ValueError(f"FE must be in [0, 1], got {fe}")
    if se < 1.0:
        raise ValueError(f"SE must be >= 1, got {se}")


@dataclass(frozen=True)
class AmdahlPoint:
    """One (hit ratio, latency, FE) combination and its derived numbers.

    Mirrors one cell group of Tables 11/12: given the measured hit ratio,
    the unit latency assumption and the measured FE, compute SE and the
    application speedup.
    """

    hit_ratio: float
    latency: int
    fraction_enhanced: float

    @property
    def speedup_enhanced(self) -> float:
        return speedup_enhanced(self.latency, self.hit_ratio)

    @property
    def speedup(self) -> float:
        return amdahl_speedup(self.fraction_enhanced, self.speedup_enhanced)
