"""Terminal plotting for the figure experiments.

The paper's figures are line/scatter charts; the CLI renders them as
Unicode plots so ``repro figure3 --plot`` shows the curve shape without
any plotting dependency.  Pure text in, pure text out -- easy to test.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

__all__ = ["line_plot", "scatter_plot", "sparkline"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line sketch of a series (8 vertical levels)."""
    points = [v for v in values if v is not None]
    if not points:
        return ""
    low = min(points)
    high = max(points)
    span = (high - low) or 1.0
    out = []
    for value in values:
        if value is None:
            out.append(" ")
            continue
        level = int((value - low) / span * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[level])
    return "".join(out)


def _scale(value, low, high, steps):
    if high == low:
        return 0
    return round((value - low) / (high - low) * steps)


def _axis_labels(low: float, high: float) -> Tuple[str, str]:
    return f"{low:.2f}", f"{high:.2f}"


def line_plot(
    xs: Sequence[float],
    series: Sequence[Tuple[str, Sequence[Optional[float]]]],
    width: int = 60,
    height: int = 14,
    title: str = "",
    x_label: str = "",
) -> str:
    """Multi-series line chart on a character grid.

    ``series`` is ``[(name, ys), ...]``; each series gets a marker from
    ``*+ox#``.  Missing points (None) are skipped.
    """
    if not xs or not series:
        raise ValueError("need x values and at least one series")
    markers = "*+ox#@"
    all_y = [
        y for _, ys in series for y in ys if y is not None
    ]
    if not all_y:
        raise ValueError("no data points to plot")
    y_low, y_high = min(all_y), max(all_y)
    if y_low == y_high:
        y_low -= 0.5
        y_high += 0.5
    x_low, x_high = min(xs), max(xs)

    grid: List[List[str]] = [[" "] * (width + 1) for _ in range(height + 1)]
    for index, (name, ys) in enumerate(series):
        marker = markers[index % len(markers)]
        for x, y in zip(xs, ys):
            if y is None:
                continue
            column = _scale(x, x_low, x_high, width)
            row = height - _scale(y, y_low, y_high, height)
            grid[row][column] = marker

    top_label, bottom_label = f"{y_high:.2f}", f"{y_low:.2f}"
    gutter = max(len(top_label), len(bottom_label))
    lines = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = top_label.rjust(gutter)
        elif row_index == height:
            label = bottom_label.rjust(gutter)
        else:
            label = " " * gutter
        lines.append(f"{label} |{''.join(row)}")
    x_left, x_right = _axis_labels(x_low, x_high)
    axis = " " * gutter + " +" + "-" * (width + 1)
    lines.append(axis)
    footer = (
        " " * gutter + "  " + x_left + " " * max(1, width - len(x_left) - len(x_right) + 2) + x_right
    )
    lines.append(footer)
    if x_label:
        lines.append(" " * gutter + "  " + x_label)
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}" for i, (name, _) in enumerate(series)
    )
    lines.append(" " * gutter + "  " + legend)
    return "\n".join(lines)


def scatter_plot(
    points: Sequence[Tuple[float, float]],
    width: int = 60,
    height: int = 14,
    title: str = "",
    fit: Optional[Tuple[float, float]] = None,
) -> str:
    """Scatter chart, optionally overlaying a fitted line (slope, intercept)."""
    if not points:
        raise ValueError("no points to plot")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    if fit is not None:
        slope, intercept = fit
        for x in (x_low, x_high):
            y = slope * x + intercept
            y_low = min(y_low, y)
            y_high = max(y_high, y)
    if y_low == y_high:
        y_low -= 0.5
        y_high += 0.5
    if x_low == x_high:
        x_low -= 0.5
        x_high += 0.5

    grid: List[List[str]] = [[" "] * (width + 1) for _ in range(height + 1)]
    if fit is not None:
        slope, intercept = fit
        for column in range(width + 1):
            x = x_low + (x_high - x_low) * column / width
            y = slope * x + intercept
            if y_low <= y <= y_high:
                row = height - _scale(y, y_low, y_high, height)
                grid[row][column] = "."
    for x, y in points:
        column = _scale(x, x_low, x_high, width)
        row = height - _scale(y, y_low, y_high, height)
        grid[row][column] = "*"

    top_label, bottom_label = f"{y_high:.2f}", f"{y_low:.2f}"
    gutter = max(len(top_label), len(bottom_label))
    lines = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = top_label.rjust(gutter)
        elif row_index == height:
            label = bottom_label.rjust(gutter)
        else:
            label = " " * gutter
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * gutter + " +" + "-" * (width + 1))
    x_left, x_right = _axis_labels(x_low, x_high)
    lines.append(
        " " * gutter + "  " + x_left
        + " " * max(1, width - len(x_left) - len(x_right) + 2) + x_right
    )
    return "\n".join(lines)
