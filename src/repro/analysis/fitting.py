"""Curve fitting for the entropy/hit-ratio relation (Figure 2).

The paper draws a best-fit line through the (entropy, hit ratio) scatter
using "nonlinear least squares fitting using the Marquardt-Levenberg
Algorithm" and reads off a slope of roughly -5% hit ratio per bit of
entropy.  We use SciPy's Levenberg-Marquardt implementation
(``scipy.optimize.least_squares`` with ``method='lm'``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.optimize import least_squares

__all__ = ["LineFit", "fit_line_lm", "pearson_r"]


@dataclass(frozen=True)
class LineFit:
    """A fitted line ``y = slope * x + intercept``."""

    slope: float
    intercept: float
    residual_norm: float

    def predict(self, x: float) -> float:
        return self.slope * x + self.intercept

    @property
    def percent_per_bit(self) -> float:
        """Hit-ratio change per entropy bit, in percentage points.

        The paper's headline is "for each bit of entropy a 5% decrease
        in the hit-ratio is observed", i.e. this is about -5.
        """
        return self.slope * 100.0


def fit_line_lm(xs: Sequence[float], ys: Sequence[float]) -> LineFit:
    """Levenberg-Marquardt least-squares line fit.

    A line is linear in its parameters so LM converges to the ordinary
    least-squares answer; we use LM anyway to mirror the paper's method
    (and to keep the door open for nonlinear models).
    """
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.size != y.size:
        raise ValueError(f"length mismatch: {x.size} xs vs {y.size} ys")
    if x.size < 2:
        raise ValueError("need at least two points to fit a line")

    def residuals(params: np.ndarray) -> np.ndarray:
        slope, intercept = params
        return slope * x + intercept - y

    start = np.array([0.0, float(y.mean())])
    solution = least_squares(residuals, start, method="lm")
    slope, intercept = solution.x
    return LineFit(
        slope=float(slope),
        intercept=float(intercept),
        residual_norm=float(np.linalg.norm(solution.fun)),
    )


def pearson_r(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient (for reporting fit quality)."""
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.size != y.size or x.size < 2:
        raise ValueError("need two equal-length samples of size >= 2")
    sx = x.std()
    sy = y.std()
    if sx == 0 or sy == 0:
        return 0.0
    return float(((x - x.mean()) * (y - y.mean())).mean() / (sx * sy))
