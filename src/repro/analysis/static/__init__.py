"""Static dataflow analysis over ISA programs.

The paper measures *dynamic* operand value locality by tracing real
executions; much of that locality is visible in the program text alone.
This package builds a control-flow graph over assembled
:class:`~repro.isa.machine.Program` objects, runs classic iterative
dataflow passes over it (reaching definitions, sparse constant
propagation, operand value-range analysis, local value numbering), and
composes them into a *memo-opportunity* pass that classifies every
static multiply/divide site and bounds the MEMO-TABLE hit ratio the
dynamic simulator can observe.
"""

from .cfg import BasicBlock, ControlFlowGraph, build_cfg
from .dataflow import DataflowProblem, solve
from .passes import (
    ConstantLattice,
    Interval,
    constant_propagation,
    local_value_numbers,
    reaching_definitions,
    value_ranges,
)
from .memo import (
    REFERENCE_N,
    CheckResult,
    MemoSite,
    ProgramAnalysis,
    SiteClass,
    StaticBounds,
    analyze_program,
    analyze_source,
    check_program,
    reference_machine,
)

__all__ = [
    "BasicBlock",
    "ControlFlowGraph",
    "build_cfg",
    "DataflowProblem",
    "solve",
    "ConstantLattice",
    "Interval",
    "constant_propagation",
    "local_value_numbers",
    "reaching_definitions",
    "value_ranges",
    "REFERENCE_N",
    "CheckResult",
    "MemoSite",
    "ProgramAnalysis",
    "SiteClass",
    "StaticBounds",
    "analyze_program",
    "analyze_source",
    "check_program",
    "reference_machine",
]
