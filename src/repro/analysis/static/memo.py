"""The memo-opportunity pass: static bounds on MEMO-TABLE hit ratios.

Composes the dataflow passes into a per-site classification of every
static multiply/divide/sqrt instruction:

``trivial``
    An operand is a compile-time constant the trivial detector of
    section 3.2 short-circuits (x0, x+-1, /+-1).
``constant``
    Both operands are compile-time constants: after the first dynamic
    execution the operand pair is resident, so the site misses at most
    once in an infinite MEMO-TABLE.
``redundant``
    An earlier instruction in the same basic block computes the same
    operation over the same value numbers, so every dynamic execution
    of this site finds the pair already inserted (classic CSE).
``range-bounded``
    Interval analysis bounds the operand pair space to ``K`` distinct
    values, so the site misses at most ``K`` times.
``unknown``
    No static guarantee (typically loads feeding the operand).

From those facts the pass derives *sound bounds on the hit ratio of an
infinite MEMO-TABLE*: per-site hit counts are bounded as functions of
the site's execution count, and compulsory misses (first touch of each
operation-class table, first touch of each distinct constant pair) bound
the hits from above.  Instantiating the bounds with observed per-PC
execution counts -- pure frequency data, no operand values -- yields
numeric brackets the dynamic simulator's measured hit ratio must fall
inside; :func:`check_program` asserts exactly that.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ...core.operations import Operation
from ...isa.machine import Machine, Program, assemble
from ...isa.programs import PROGRAMS
from .cfg import ControlFlowGraph, build_cfg
from .passes import (
    BOTTOM,
    TOP,
    ConstantLattice,
    Interval,
    _const_key,
    constant_propagation,
    local_value_numbers,
    reaching_definitions,
    value_ranges,
)

__all__ = [
    "SiteClass",
    "MemoSite",
    "StaticBounds",
    "CheckResult",
    "ProgramAnalysis",
    "analyze_program",
    "analyze_source",
    "check_program",
    "reference_machine",
    "REFERENCE_N",
]

#: Mnemonic -> memoizable operation class of each static site kind.
SITE_OPERATIONS = {
    "smul": Operation.INT_MUL,
    "sdiv": Operation.INT_DIV,
    "fmul": Operation.FP_MUL,
    "fdiv": Operation.FP_DIV,
    "fsqrt": Operation.FP_SQRT,
    "frecip": Operation.FP_RECIP,
    "flog": Operation.FP_LOG,
    "fsin": Operation.FP_SIN,
    "fcos": Operation.FP_COS,
}

#: Pair spaces larger than this are not worth calling bounded.
RANGE_CAP = 4096

#: Default trip count for the reference harness.
REFERENCE_N = 48


class SiteClass(enum.Enum):
    """Static classification of one multiply/divide site."""

    TRIVIAL = "trivial"
    CONSTANT = "constant"
    REDUNDANT = "redundant"
    RANGE_BOUNDED = "range-bounded"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class MemoSite:
    """One static multiply/divide instruction and what we know about it."""

    index: int  # instruction index in the program
    pc: int
    line: int
    mnemonic: str
    operation: Operation
    classification: SiteClass
    #: Compile-time operand values where known (None = unknown).
    operand_consts: Tuple[Optional[float], ...]
    #: Upper bound on distinct operand pairs the site can generate
    #: (None = unbounded).
    pair_space: Optional[int]
    #: True when an earlier same-block site computes the same expression.
    locally_redundant: bool
    loop_depth: int
    note: str = ""

    @property
    def const_pair(self) -> bool:
        return bool(self.operand_consts) and all(
            value is not None for value in self.operand_consts
        )

    def lower_hits(self, executions: int) -> int:
        """Sound lower bound on this site's hits in an infinite table."""
        if executions <= 0:
            return 0
        if self.locally_redundant:
            return executions
        if self.const_pair:
            return executions - 1
        if self.pair_space is not None:
            return max(0, executions - self.pair_space)
        return 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "pc": self.pc,
            "line": self.line,
            "mnemonic": self.mnemonic,
            "operation": self.operation.mnemonic,
            "class": self.classification.value,
            "operand_consts": list(self.operand_consts),
            "pair_space": self.pair_space,
            "locally_redundant": self.locally_redundant,
            "loop_depth": self.loop_depth,
            "note": self.note,
        }


@dataclass(frozen=True)
class StaticBounds:
    """Hit-ratio bracket from static facts + per-site execution counts."""

    lower: float
    upper: float
    total_ops: int
    lower_hits: int
    upper_hits: int

    def contains(self, measured: float, slack: float = 1e-12) -> bool:
        return self.lower - slack <= measured <= self.upper + slack


@dataclass(frozen=True)
class CheckResult:
    """Static-vs-dynamic agreement for one program."""

    program: str
    bounds: StaticBounds
    measured: float
    hits: int
    total_ops: int

    @property
    def ok(self) -> bool:
        return self.bounds.contains(self.measured)

    @property
    def gap(self) -> float:
        """Width of the static bracket (1.0 = vacuous, 0.0 = exact)."""
        return self.bounds.upper - self.bounds.lower

    def to_dict(self) -> Dict[str, object]:
        return {
            "program": self.program,
            "static_lower": self.bounds.lower,
            "static_upper": self.bounds.upper,
            "measured": self.measured,
            "hits": self.hits,
            "total_ops": self.total_ops,
            "bracket_width": self.gap,
            "ok": self.ok,
        }


@dataclass
class ProgramAnalysis:
    """Everything the memo-opportunity pass learned about one program."""

    name: str
    cfg: ControlFlowGraph
    sites: List[MemoSite] = field(default_factory=list)

    @property
    def class_counts(self) -> Dict[SiteClass, int]:
        counts = Counter(site.classification for site in self.sites)
        return {cls: counts.get(cls, 0) for cls in SiteClass}

    @property
    def predictable_fraction(self) -> float:
        """Fraction of sites whose asymptotic hit ratio is provably 1."""
        if not self.sites:
            return 0.0
        predictable = sum(
            1 for site in self.sites
            if site.locally_redundant or site.const_pair
            or site.pair_space is not None
        )
        return predictable / len(self.sites)

    def site_at(self, pc: int) -> Optional[MemoSite]:
        for site in self.sites:
            if site.pc == pc:
                return site
        return None

    def bounds(self, counts: Mapping[int, int]) -> StaticBounds:
        """Instantiate the static per-site bounds with execution counts.

        ``counts`` maps site PCs to observed execution counts (frequency
        information only -- the value-locality facts are all static).
        """
        total = sum(counts.get(site.pc, 0) for site in self.sites)
        lower_hits = sum(
            site.lower_hits(counts.get(site.pc, 0)) for site in self.sites
        )
        # Compulsory misses: per executed operation class, the first
        # probe of the (initially empty) table misses; each distinct
        # constant operand pair that executes costs its own first-touch
        # miss.
        compulsory = 0
        by_operation: Dict[Operation, List[MemoSite]] = {}
        for site in self.sites:
            if counts.get(site.pc, 0) > 0:
                by_operation.setdefault(site.operation, []).append(site)
        for operation, sites in by_operation.items():
            const_pairs = set()
            for site in sites:
                if site.const_pair:
                    pair = tuple(_const_key(v) for v in site.operand_consts)
                    if operation.commutative and len(pair) == 2:
                        pair = tuple(sorted(pair, key=repr))
                    const_pairs.add(pair)
            compulsory += max(1, len(const_pairs))
        upper_hits = max(0, total - compulsory)
        lower_hits = min(lower_hits, upper_hits)
        if total == 0:
            return StaticBounds(0.0, 1.0, 0, 0, 0)
        return StaticBounds(
            lower=lower_hits / total,
            upper=upper_hits / total,
            total_ops=total,
            lower_hits=lower_hits,
            upper_hits=upper_hits,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "program": self.name,
            "blocks": len(self.cfg.blocks),
            "sites": [site.to_dict() for site in self.sites],
            "class_counts": {
                cls.value: count for cls, count in self.class_counts.items()
            },
            "predictable_fraction": self.predictable_fraction,
        }


def _const_float(value: object) -> Optional[float]:
    if value is TOP or value is BOTTOM:
        return None
    return float(value)  # type: ignore[arg-type]


def _is_trivial(
    mnemonic: str, a: Optional[float], b: Optional[float]
) -> Tuple[bool, str]:
    """Would the section-3.2 trivial detector catch *every* execution?"""
    if mnemonic in ("smul", "fmul"):
        for value in (a, b):
            if value is not None and value in (0.0, 1.0, -1.0):
                return True, f"multiply by constant {value:g}"
    elif mnemonic in ("sdiv", "fdiv"):
        if b is not None and b in (1.0, -1.0):
            return True, f"divide by constant {b:g}"
    elif mnemonic == "fsqrt":
        if a is not None and a in (0.0, 1.0):
            return True, f"sqrt of constant {a:g}"
    elif mnemonic == "frecip":
        if a is not None and a in (1.0, -1.0):
            return True, f"reciprocal of constant {a:g}"
    return False, ""


def _pair_space(
    mnemonic: str,
    operation: Operation,
    ranges: Dict[str, Interval],
    operands: Tuple[str, ...],
    consts: Tuple[Optional[float], ...],
) -> Optional[int]:
    """Bound on distinct operand pairs, from intervals (integer ops only)."""
    if operation not in (Operation.INT_MUL, Operation.INT_DIV):
        return None
    cards: List[int] = []
    for token, const in zip(operands[:2], consts):
        if const is not None:
            cards.append(1)
            continue
        if token.startswith("%r"):
            interval = ranges.get(token[1:])
            if token[1:] == "r0":
                interval = Interval(0, 0)
            if interval is None or not interval.finite:
                return None
            cards.append(int(interval.cardinality))
        else:
            cards.append(1)  # immediate
    space = 1
    for card in cards:
        space *= card
    return space if space <= RANGE_CAP else None


def analyze_program(name: str, program: Program) -> ProgramAnalysis:
    """Run every pass over ``program`` and classify its memo sites."""
    cfg = build_cfg(program)
    constants = constant_propagation(cfg)
    ranges = value_ranges(cfg)
    numbering = local_value_numbers(cfg, constants)
    reaching_definitions(cfg)  # exercised for its own consumers/tests
    depths = cfg.loop_depths()

    analysis = ProgramAnalysis(name, cfg)
    for index, instruction in enumerate(program.instructions):
        mnemonic = instruction.mnemonic
        operation = SITE_OPERATIONS.get(mnemonic)
        if operation is None:
            continue
        state: ConstantLattice = constants[index]
        operand_tokens = (
            instruction.operands[:1]
            if operation.is_unary
            else instruction.operands[:2]
        )
        consts = tuple(
            _const_float(
                state.get(token[1:])
                if token.startswith(("%r", "%f"))
                else _parse_immediate(token)
            )
            for token in operand_tokens
        )
        a = consts[0] if consts else None
        b = consts[1] if len(consts) > 1 else None

        vns = numbering.operand_vns.get(index, ())
        key = None
        if vns and all(isinstance(v, tuple) for v in vns):
            pair = vns
            if operation.commutative and len(pair) == 2:
                pair = tuple(sorted(pair, key=repr))
            key = (mnemonic, pair)
        first = numbering.first_seen.get(key) if key is not None else None
        redundant = (
            first is not None
            and first < index
            and cfg.block_of[first] == cfg.block_of[index]
        )

        space = _pair_space(
            mnemonic, operation, ranges[index], instruction.operands, consts
        )
        trivial, trivial_note = _is_trivial(mnemonic, a, b)

        if trivial:
            classification, note = SiteClass.TRIVIAL, trivial_note
        elif all(value is not None for value in consts):
            classification = SiteClass.CONSTANT
            note = "both operands compile-time constants"
        elif redundant:
            classification = SiteClass.REDUNDANT
            note = (
                "same value pair computed earlier in the block "
                f"(instruction {first})"
            )
        elif space is not None:
            classification = SiteClass.RANGE_BOUNDED
            note = f"operand pair space bounded to {space} values"
        else:
            classification = SiteClass.UNKNOWN
            known = [v for v in consts if v is not None]
            note = (
                f"{len(known)} constant operand(s)" if known
                else "operands not statically bound"
            )

        analysis.sites.append(
            MemoSite(
                index=index,
                pc=instruction.pc,
                line=instruction.line,
                mnemonic=mnemonic,
                operation=operation,
                classification=classification,
                operand_consts=consts,
                pair_space=space,
                locally_redundant=redundant,
                loop_depth=depths.get(cfg.block_of[index], 0),
                note=note,
            )
        )
    return analysis


def _parse_immediate(token: str) -> object:
    try:
        return int(token, 0)
    except ValueError:
        try:
            return float(token)
        except ValueError:
            return BOTTOM


def analyze_source(name: str, source: str) -> ProgramAnalysis:
    """Assemble ``source`` and analyze it."""
    return analyze_program(name, assemble(source))


# -- dynamic cross-validation ----------------------------------------------

def reference_machine(name: str, n: int = REFERENCE_N) -> Machine:
    """A machine running a bundled program on the deterministic harness.

    Seeds the conventional input protocol (n at %r1, arrays of
    quantised values at 0x1000/0x2000) used by the trace CLI; the value
    stream repeats every 16 elements so operand locality exists to
    measure.  ``sobel_gx`` takes width/height instead of a flat n.
    """
    source = PROGRAMS.get(name)
    if source is None:
        from ...errors import ConfigurationError

        # A ReproError, so CLI entry points report it as a clean usage
        # failure instead of a traceback (it used to be a KeyError).
        raise ConfigurationError(
            f"unknown program {name!r}; try: {', '.join(PROGRAMS)}"
        )
    machine = Machine(assemble(source))
    values = [float((i * 7) % 16 + 1) for i in range(max(n, 1))]
    if name == "sobel_gx":
        width = max(4, min(16, n // 3))
        height = max(4, n // width)
        machine.int_regs[1] = width
        machine.int_regs[2] = height
        machine.write_doubles(
            0x1000,
            [float((i * 5) % 9) for i in range(width * height)],
        )
    else:
        machine.int_regs[1] = n
        machine.write_doubles(0x1000, values)
        machine.write_doubles(0x2000, values[::-1])
    return machine


def measure_infinite_hit_ratio(
    machine: Machine,
) -> Tuple[Dict[int, int], int, int]:
    """Replay a machine's trace through per-class infinite MEMO-TABLES.

    Returns ``(per-pc execution counts, hits, total memoizable ops)``.
    The replay itself is the kernel's (batched for column-backed traces,
    the infinite-table reference loop otherwise).
    """
    assert machine.trace is not None, "machine must keep its trace"
    from ...core.backend import replay_infinite

    return replay_infinite(machine.trace)


def check_program(
    name: str,
    n: int = REFERENCE_N,
    max_steps: int = 2_000_000,
) -> CheckResult:
    """Cross-validate static bounds against the dynamic simulator.

    Executes the program on the reference harness, measures the
    infinite-table hit ratio, and instantiates the static bounds with
    the observed per-PC execution counts.  A sound analysis satisfies
    ``lower <= measured <= upper``.
    """
    machine = reference_machine(name, n)
    machine.run(max_steps=max_steps)
    analysis = analyze_program(name, machine.program)
    counts, hits, total = measure_infinite_hit_ratio(machine)
    bounds = analysis.bounds(counts)
    measured = hits / total if total else 0.0
    return CheckResult(
        program=name,
        bounds=bounds,
        measured=measured,
        hits=hits,
        total_ops=total,
    )
