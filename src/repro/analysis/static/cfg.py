"""Control-flow graph construction over assembled ISA programs.

Works directly on :class:`~repro.isa.machine.Program`: leaders are the
entry instruction, branch targets and branch fall-throughs; a basic
block runs from a leader to the next control transfer.  ``ba`` is the
only unconditional branch, ``halt`` (and falling off the end) terminates
a path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ...isa.machine import Instruction, MachineError, Program

__all__ = ["BasicBlock", "ControlFlowGraph", "build_cfg"]

#: Branch mnemonics, split by whether fall-through is possible.
UNCONDITIONAL = frozenset({"ba"})
CONDITIONAL = frozenset({"be", "bne", "bl", "ble", "bg", "bge"})
BRANCHES = UNCONDITIONAL | CONDITIONAL


@dataclass
class BasicBlock:
    """A maximal straight-line instruction sequence."""

    index: int  # block id (dense, in program order)
    start: int  # index of first instruction in Program.instructions
    instructions: List[Instruction] = field(default_factory=list)
    successors: List[int] = field(default_factory=list)
    predecessors: List[int] = field(default_factory=list)

    @property
    def terminator(self) -> Optional[Instruction]:
        return self.instructions[-1] if self.instructions else None

    def __iter__(self) -> Iterator[Tuple[int, Instruction]]:
        """Yield ``(program_index, instruction)`` pairs."""
        for offset, instruction in enumerate(self.instructions):
            yield self.start + offset, instruction

    def __len__(self) -> int:
        return len(self.instructions)


@dataclass
class ControlFlowGraph:
    """Basic blocks plus the edges between them."""

    program: Program
    blocks: List[BasicBlock] = field(default_factory=list)
    #: instruction index -> block index, for site lookups.
    block_of: Dict[int, int] = field(default_factory=dict)

    @property
    def entry(self) -> Optional[BasicBlock]:
        return self.blocks[0] if self.blocks else None

    def reverse_postorder(self) -> List[int]:
        """Block ids in reverse postorder from the entry (good worklist
        seed for forward problems); unreachable blocks are appended in
        program order so passes still cover them."""
        if not self.blocks:
            return []
        seen = set()
        order: List[int] = []

        def visit(block_id: int) -> None:
            stack = [(block_id, iter(self.blocks[block_id].successors))]
            seen.add(block_id)
            while stack:
                current, successors = stack[-1]
                advanced = False
                for successor in successors:
                    if successor not in seen:
                        seen.add(successor)
                        stack.append(
                            (successor, iter(self.blocks[successor].successors))
                        )
                        advanced = True
                        break
                if not advanced:
                    order.append(current)
                    stack.pop()

        visit(0)
        postorder = list(reversed(order))
        for block in self.blocks:
            if block.index not in seen:
                postorder.append(block.index)
        return postorder

    def loop_depths(self) -> Dict[int, int]:
        """Approximate loop nesting depth per block.

        A retreating edge ``b -> h`` (h appears before b in reverse
        postorder and h reaches b) marks a natural loop; every block on
        a path from h to b belongs to it.  Depth is how many such loops
        contain the block.  Exact for the reducible CFGs the assembler
        produces.
        """
        rpo = self.reverse_postorder()
        position = {block_id: i for i, block_id in enumerate(rpo)}
        depths = {block.index: 0 for block in self.blocks}
        for block in self.blocks:
            for successor in block.successors:
                if position.get(successor, 0) <= position.get(block.index, 0):
                    # Natural loop of header `successor`: walk predecessors
                    # back from the latch until the header.
                    members = {successor}
                    stack = [block.index]
                    while stack:
                        node = stack.pop()
                        if node in members:
                            continue
                        members.add(node)
                        stack.extend(self.blocks[node].predecessors)
                    for member in members:
                        depths[member] += 1
        return depths


def build_cfg(program: Program) -> ControlFlowGraph:
    """Split ``program`` into basic blocks and connect the edges."""
    instructions = program.instructions
    count = len(instructions)
    if count == 0:
        return ControlFlowGraph(program)

    label_targets: Dict[str, int] = {}
    for label, pc in program.labels.items():
        label_targets[label] = (pc - instructions[0].pc) // 4

    leaders = {0}
    for index, instruction in enumerate(instructions):
        if instruction.mnemonic in BRANCHES:
            target = label_targets.get(instruction.operands[0])
            if target is None:
                raise MachineError(
                    f"line {instruction.line}: unknown label "
                    f"{instruction.operands[0]!r}"
                )
            if target < count:
                leaders.add(target)
            if index + 1 < count:
                leaders.add(index + 1)
        elif instruction.mnemonic == "halt" and index + 1 < count:
            leaders.add(index + 1)

    starts = sorted(leaders)
    cfg = ControlFlowGraph(program)
    for block_id, start in enumerate(starts):
        end = starts[block_id + 1] if block_id + 1 < len(starts) else count
        block = BasicBlock(block_id, start, list(instructions[start:end]))
        cfg.blocks.append(block)
        for index in range(start, end):
            cfg.block_of[index] = block_id

    block_at = {block.start: block.index for block in cfg.blocks}
    for block in cfg.blocks:
        terminator = block.terminator
        if terminator is None:
            continue
        mnemonic = terminator.mnemonic
        next_start = block.start + len(block)
        if mnemonic in BRANCHES:
            target = label_targets[terminator.operands[0]]
            if target < count:
                block.successors.append(block_at[target])
            if mnemonic in CONDITIONAL and next_start < count:
                fallthrough = block_at[next_start]
                if fallthrough not in block.successors:
                    block.successors.append(fallthrough)
        elif mnemonic != "halt" and next_start < count:
            block.successors.append(block_at[next_start])
    for block in cfg.blocks:
        for successor in block.successors:
            cfg.blocks[successor].predecessors.append(block.index)
    return cfg
