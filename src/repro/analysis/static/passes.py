"""Concrete dataflow passes over the SPARC-flavoured ISA.

All passes share one operand model: integer registers ``r1..r31``
(``r0`` is hardwired zero), floating point registers ``f0..f31`` and the
condition code ``cc``.  Memory is not modelled -- a load produces an
unknown value -- which keeps every pass sound for arbitrary harness
seedings of the input arrays.

Passes provided:

* :func:`reaching_definitions` -- which instruction (or the register
  file reset, index ``-1``) last wrote each operand.
* :func:`constant_propagation` -- sparse conditional-free constant
  folding over the register file (entry registers are harness inputs
  and therefore unknown).
* :func:`value_ranges` -- interval analysis over the integer registers
  with widening at loop joins.
* :func:`local_value_numbers` -- per-block value numbering with
  commutative canonicalization, for redundancy (CSE) detection.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, List, NamedTuple, Optional, Tuple, Union

from ...arch.ieee754 import float64_to_bits
from ...core.operations import ieee_div, ieee_log, ieee_recip, ieee_sqrt, int_div
from .cfg import ControlFlowGraph
from .dataflow import DataflowProblem, instruction_states, solve

__all__ = [
    "ConstantLattice",
    "Interval",
    "reaching_definitions",
    "constant_propagation",
    "value_ranges",
    "local_value_numbers",
    "INT_REGS",
    "FP_REGS",
]

INT_REGS = tuple(f"r{i}" for i in range(32))
FP_REGS = tuple(f"f{i}" for i in range(32))
ALL_REGS = INT_REGS + FP_REGS + ("cc",)

#: Mnemonic groups (mirrors the interpreter in repro.isa.machine).
_INT_BINOPS = {"add", "sub", "and", "or", "xor", "sll", "srl"}
_FP_BINOPS = {"fadd", "fsub", "fmul", "fdiv"}
_FP_UNOPS = {"fsqrt", "frecip", "flog", "fsin", "fcos"}

_UNARY_FOLD = {
    "fsqrt": ieee_sqrt,
    "frecip": ieee_recip,
    "flog": ieee_log,
    "fsin": lambda a: math.sin(a) if math.isfinite(a) else math.nan,
    "fcos": lambda a: math.cos(a) if math.isfinite(a) else math.nan,
}

#: Commutative mnemonics (canonicalized during value numbering).
_COMMUTATIVE = {"add", "and", "or", "xor", "smul", "fadd", "fmul"}


def written_register(mnemonic: str, operands: Tuple[str, ...]) -> Optional[str]:
    """Register a single instruction defines, or None."""
    if mnemonic in ("set", "fset", "ld") and len(operands) >= 2:
        return _reg_name(operands[1])
    if (
        mnemonic in _INT_BINOPS
        or mnemonic in _FP_BINOPS
        or mnemonic in ("smul", "sdiv")
    ) and len(operands) >= 3:
        return _reg_name(operands[2])
    if mnemonic in _FP_UNOPS and len(operands) >= 2:
        return _reg_name(operands[1])
    if mnemonic == "cmp":
        return "cc"
    return None


def _reg_name(token: str) -> Optional[str]:
    if token.startswith("%r") or token.startswith("%f"):
        name = token[1:]
        return None if name == "r0" else name  # r0 writes vanish
    return None


def source_registers(mnemonic: str, operands: Tuple[str, ...]) -> List[str]:
    """Registers an instruction reads (r0 reported as itself)."""
    sources: List[str] = []

    def reg(token: str) -> None:
        if token.startswith("%r") or token.startswith("%f"):
            sources.append(token[1:])

    if mnemonic == "set":
        reg(operands[0])
    elif mnemonic in _INT_BINOPS or mnemonic in ("smul", "sdiv", "cmp"):
        reg(operands[0])
        reg(operands[1])
    elif mnemonic in _FP_BINOPS:
        reg(operands[0])
        reg(operands[1])
    elif mnemonic in _FP_UNOPS:
        reg(operands[0])
    elif mnemonic == "ld":
        base = operands[0].strip("[]").split("+")[0].strip()
        reg(base)
    elif mnemonic == "st":
        reg(operands[0])
        base = operands[1].strip("[]").split("+")[0].strip()
        reg(base)
    elif mnemonic.startswith("b"):
        sources.append("cc")
    return sources


# -- reaching definitions --------------------------------------------------

#: A definition: (register, defining instruction index); -1 is the reset.
Definition = Tuple[str, int]
_DefSet = FrozenSet[Definition]


class _ReachingDefs(DataflowProblem):
    name = "reaching-definitions"

    def __init__(self, cfg: ControlFlowGraph) -> None:
        self.cfg = cfg

    def initial(self) -> _DefSet:
        return frozenset()

    def boundary(self) -> _DefSet:
        return frozenset((reg, -1) for reg in ALL_REGS)

    def join(self, left: _DefSet, right: _DefSet) -> _DefSet:
        return left | right

    def transfer(self, block_id: int, value: _DefSet) -> _DefSet:
        current = value
        for index, instruction in self.cfg.blocks[block_id]:
            current = _defs_step(current, instruction.mnemonic,
                                 instruction.operands, index)
        return current


def _defs_step(
    defs: _DefSet, mnemonic: str, operands: Tuple[str, ...], index: int
) -> _DefSet:
    target = written_register(mnemonic, operands)
    if target is None:
        return defs
    return frozenset(d for d in defs if d[0] != target) | {(target, index)}


def reaching_definitions(cfg: ControlFlowGraph) -> Dict[int, _DefSet]:
    """Definitions reaching the *input* of every instruction."""
    block_inputs = solve(cfg, _ReachingDefs(cfg))

    def step(defs: _DefSet, index: int) -> _DefSet:
        instruction = cfg.program.instructions[index]
        return _defs_step(defs, instruction.mnemonic, instruction.operands,
                          index)

    return instruction_states(cfg, block_inputs, step)


# -- constant propagation --------------------------------------------------

class _Sentinel:
    def __init__(self, label: str) -> None:
        self.label = label

    def __repr__(self) -> str:
        return self.label


#: Lattice elements: TOP (unreached), a Python int/float, or BOTTOM.
TOP = _Sentinel("TOP")
BOTTOM = _Sentinel("BOTTOM")

ConstValue = Union[_Sentinel, int, float]


def _const_key(value: ConstValue) -> object:
    """Hashable identity that is bit-exact for floats (NaN-safe)."""
    if value is TOP or value is BOTTOM:
        return value
    if isinstance(value, float):
        return ("f", float64_to_bits(value))
    return ("i", value)


class ConstantLattice:
    """Register file mapped onto the constant lattice."""

    __slots__ = ("regs",)

    def __init__(self, regs: Optional[Dict[str, ConstValue]] = None) -> None:
        self.regs: Dict[str, ConstValue] = regs if regs is not None else {}

    def get(self, reg: str) -> ConstValue:
        if reg == "r0":
            return 0
        return self.regs.get(reg, TOP)

    def set(self, reg: str, value: ConstValue) -> "ConstantLattice":
        updated = dict(self.regs)
        updated[reg] = value
        return ConstantLattice(updated)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConstantLattice):
            return NotImplemented
        keys = set(self.regs) | set(other.regs)
        return all(
            _const_key(self.get(k)) == _const_key(other.get(k)) for k in keys
        )

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __repr__(self) -> str:
        known = {
            k: v for k, v in sorted(self.regs.items())
            if v is not TOP and v is not BOTTOM
        }
        return f"ConstantLattice({known})"


def _const_join_value(left: ConstValue, right: ConstValue) -> ConstValue:
    if left is TOP:
        return right
    if right is TOP:
        return left
    if left is BOTTOM or right is BOTTOM:
        return BOTTOM
    if _const_key(left) == _const_key(right):
        return left
    return BOTTOM


class _ConstProp(DataflowProblem):
    name = "constant-propagation"

    def __init__(self, cfg: ControlFlowGraph) -> None:
        self.cfg = cfg

    def initial(self) -> ConstantLattice:
        return ConstantLattice()

    def boundary(self) -> ConstantLattice:
        # Harnesses seed input registers (and memory) before `run()`,
        # so nothing can be assumed about the entry register file.
        return ConstantLattice({reg: BOTTOM for reg in ALL_REGS})

    def join(self, left: ConstantLattice, right: ConstantLattice) -> ConstantLattice:
        keys = set(left.regs) | set(right.regs)
        return ConstantLattice({
            key: _const_join_value(left.get(key), right.get(key))
            for key in keys
        })

    def transfer(self, block_id: int, value: ConstantLattice) -> ConstantLattice:
        current = value
        for index, _ in self.cfg.blocks[block_id]:
            current = _const_step(current, self.cfg, index)
        return current


def _eval_int_operand(state: ConstantLattice, token: str) -> ConstValue:
    if token.startswith("%r"):
        return state.get(token[1:])
    try:
        return int(token, 0)
    except ValueError:
        return BOTTOM


def _eval_fp_operand(state: ConstantLattice, token: str) -> ConstValue:
    if token.startswith("%f"):
        return state.get(token[1:])
    try:
        return float(token)
    except ValueError:
        return BOTTOM


def _fold_int(mnemonic: str, a: int, b: int) -> int:
    if mnemonic == "add":
        return a + b
    if mnemonic == "sub":
        return a - b
    if mnemonic == "and":
        return a & b
    if mnemonic == "or":
        return a | b
    if mnemonic == "xor":
        return a ^ b
    if mnemonic == "sll":
        return a << (b & 63)
    if mnemonic == "srl":
        return (a % (1 << 64)) >> (b & 63)
    if mnemonic == "smul":
        return a * b
    if mnemonic == "sdiv":
        return int_div(a, b)
    raise ValueError(mnemonic)


def _fold_fp(mnemonic: str, a: float, b: float) -> float:
    if mnemonic == "fadd":
        return a + b
    if mnemonic == "fsub":
        return a - b
    if mnemonic == "fmul":
        return a * b
    if mnemonic == "fdiv":
        return ieee_div(a, b)
    raise ValueError(mnemonic)


def _const_step(
    state: ConstantLattice, cfg: ControlFlowGraph, index: int
) -> ConstantLattice:
    instruction = cfg.program.instructions[index]
    mnemonic = instruction.mnemonic
    operands = instruction.operands
    target = written_register(mnemonic, operands)
    if target is None:
        return state
    if mnemonic == "set":
        return state.set(target, _eval_int_operand(state, operands[0]))
    if mnemonic == "fset":
        try:
            return state.set(target, float(operands[0]))
        except ValueError:
            return state.set(target, BOTTOM)
    if mnemonic == "ld":
        return state.set(target, BOTTOM)  # memory is not modelled
    if mnemonic in _INT_BINOPS or mnemonic in ("smul", "sdiv"):
        a = _eval_int_operand(state, operands[0])
        b = _eval_int_operand(state, operands[1])
        if isinstance(a, int) and isinstance(b, int):
            return state.set(target, _fold_int(mnemonic, a, b))
        return state.set(target, BOTTOM)
    if mnemonic in _FP_BINOPS:
        a = _eval_fp_operand(state, operands[0])
        b = _eval_fp_operand(state, operands[1])
        if isinstance(a, float) and isinstance(b, float):
            return state.set(target, _fold_fp(mnemonic, a, b))
        return state.set(target, BOTTOM)
    if mnemonic in _FP_UNOPS:
        a = _eval_fp_operand(state, operands[0])
        if isinstance(a, float):
            return state.set(target, float(_UNARY_FOLD[mnemonic](a)))
        return state.set(target, BOTTOM)
    if mnemonic == "cmp":
        a = _eval_int_operand(state, operands[0])
        b = _eval_int_operand(state, operands[1])
        if isinstance(a, int) and isinstance(b, int):
            return state.set(target, (a > b) - (a < b))
        return state.set(target, BOTTOM)
    return state.set(target, BOTTOM)


def constant_propagation(cfg: ControlFlowGraph) -> Dict[int, ConstantLattice]:
    """Constant register state at the *input* of every instruction."""
    block_inputs = solve(cfg, _ConstProp(cfg))
    return instruction_states(
        cfg, block_inputs, lambda state, index: _const_step(state, cfg, index)
    )


# -- integer value ranges --------------------------------------------------

_NEG_INF = float("-inf")
_POS_INF = float("inf")


class Interval(NamedTuple):
    """A closed integer interval; infinities mark unbounded ends."""

    lo: float
    hi: float

    @property
    def finite(self) -> bool:
        return self.lo != _NEG_INF and self.hi != _POS_INF

    @property
    def cardinality(self) -> float:
        """Number of integers contained (inf when unbounded)."""
        if not self.finite:
            return _POS_INF
        return int(self.hi) - int(self.lo) + 1

    def __repr__(self) -> str:
        return f"[{self.lo}, {self.hi}]"


FULL = Interval(_NEG_INF, _POS_INF)


def _interval_hull(left: Interval, right: Interval) -> Interval:
    return Interval(min(left.lo, right.lo), max(left.hi, right.hi))


class _Ranges:
    """Integer register file mapped onto intervals (TOP = absent)."""

    __slots__ = ("regs",)

    def __init__(self, regs: Optional[Dict[str, Interval]] = None) -> None:
        self.regs: Dict[str, Interval] = regs if regs is not None else {}

    def get(self, reg: str) -> Optional[Interval]:
        if reg == "r0":
            return Interval(0, 0)
        return self.regs.get(reg)

    def set(self, reg: str, interval: Interval) -> "_Ranges":
        updated = dict(self.regs)
        updated[reg] = interval
        return _Ranges(updated)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _Ranges):
            return NotImplemented
        return self.regs == other.regs

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result


class _RangeAnalysis(DataflowProblem):
    name = "value-ranges"

    #: Sweeps before changing bounds are widened to infinity.
    WIDEN_AFTER = 4

    def __init__(self, cfg: ControlFlowGraph) -> None:
        self.cfg = cfg
        self._previous: Dict[int, _Ranges] = {}
        self._visits: Dict[int, int] = {}

    def initial(self) -> _Ranges:
        return _Ranges()

    def boundary(self) -> _Ranges:
        # Entry registers are harness inputs: unbounded.
        return _Ranges({reg: FULL for reg in INT_REGS if reg != "r0"})

    def join(self, left: _Ranges, right: _Ranges) -> _Ranges:
        merged: Dict[str, Interval] = dict(left.regs)
        for reg, interval in right.regs.items():
            existing = merged.get(reg)
            merged[reg] = (
                interval if existing is None
                else _interval_hull(existing, interval)
            )
        return _Ranges(merged)

    def transfer(self, block_id: int, value: _Ranges) -> _Ranges:
        current = value
        for index, _ in self.cfg.blocks[block_id]:
            current = _range_step(current, self.cfg, index)
        visits = self._visits.get(block_id, 0) + 1
        self._visits[block_id] = visits
        previous = self._previous.get(block_id)
        if previous is not None and visits > self.WIDEN_AFTER:
            current = _widen(previous, current)
        self._previous[block_id] = current
        return current


def _widen(previous: _Ranges, current: _Ranges) -> _Ranges:
    widened: Dict[str, Interval] = {}
    for reg, interval in current.regs.items():
        old = previous.regs.get(reg)
        if old is None:
            widened[reg] = interval
            continue
        lo = interval.lo if interval.lo >= old.lo else _NEG_INF
        hi = interval.hi if interval.hi <= old.hi else _POS_INF
        widened[reg] = Interval(lo, hi)
    return _Ranges(widened)


def _range_of_operand(state: _Ranges, token: str) -> Interval:
    if token.startswith("%r"):
        interval = state.get(token[1:])
        return interval if interval is not None else FULL
    try:
        value = int(token, 0)
        return Interval(value, value)
    except ValueError:
        return FULL


def _range_binop(mnemonic: str, a: Interval, b: Interval) -> Interval:
    if mnemonic == "add":
        return Interval(a.lo + b.lo, a.hi + b.hi)
    if mnemonic == "sub":
        return Interval(a.lo - b.hi, a.hi - b.lo)
    if mnemonic == "and":
        # A non-negative operand caps the result (the mask idiom).
        caps = [x.hi for x in (a, b) if x.lo >= 0]
        if caps:
            return Interval(0, min(caps))
        return FULL
    if mnemonic in ("or", "xor"):
        if a.lo >= 0 and b.lo >= 0 and a.finite and b.finite:
            bound = max(int(a.hi), int(b.hi))
            width = bound.bit_length()
            return Interval(0, (1 << width) - 1)
        return FULL
    if mnemonic in ("sll", "srl"):
        if b.lo == b.hi and b.finite and a.finite and a.lo >= 0:
            shift = int(b.lo) & 63
            if mnemonic == "sll":
                return Interval(int(a.lo) << shift, int(a.hi) << shift)
            return Interval(int(a.lo) >> shift, int(a.hi) >> shift)
        return FULL
    if mnemonic == "smul":
        if a.finite and b.finite:
            corners = [
                int(x) * int(y)
                for x in (a.lo, a.hi)
                for y in (b.lo, b.hi)
            ]
            return Interval(min(corners), max(corners))
        return FULL
    if mnemonic == "sdiv":
        if a.finite and b.finite and (b.lo > 0 or b.hi < 0):
            corners = [
                int_div(int(x), int(y))
                for x in (a.lo, a.hi)
                for y in (b.lo, b.hi)
            ]
            return Interval(min(corners), max(corners))
        return FULL
    return FULL


def _range_step(state: _Ranges, cfg: ControlFlowGraph, index: int) -> _Ranges:
    instruction = cfg.program.instructions[index]
    mnemonic = instruction.mnemonic
    operands = instruction.operands
    target = written_register(mnemonic, operands)
    if target is None or target.startswith("f") or target == "cc":
        return state
    if mnemonic == "set":
        return state.set(target, _range_of_operand(state, operands[0]))
    if mnemonic in _INT_BINOPS or mnemonic in ("smul", "sdiv"):
        a = _range_of_operand(state, operands[0])
        b = _range_of_operand(state, operands[1])
        return state.set(target, _range_binop(mnemonic, a, b))
    return state.set(target, FULL)


def value_ranges(cfg: ControlFlowGraph) -> Dict[int, Dict[str, Interval]]:
    """Integer register intervals at the *input* of every instruction."""
    block_inputs = solve(cfg, _RangeAnalysis(cfg))
    states = instruction_states(
        cfg, block_inputs, lambda state, index: _range_step(state, cfg, index)
    )
    return {index: dict(state.regs) for index, state in states.items()}


# -- local value numbering -------------------------------------------------

class ValueNumbering(NamedTuple):
    """Per-instruction value numbers for one basic block walk.

    ``operand_vns`` maps an instruction index to the value numbers of
    its source operands; ``first_seen`` maps an expression key to the
    instruction index that first computed it, so a later instruction
    with the same key is locally redundant.
    """

    operand_vns: Dict[int, Tuple[object, ...]]
    first_seen: Dict[object, int]


def local_value_numbers(
    cfg: ControlFlowGraph,
    constants: Optional[Dict[int, ConstantLattice]] = None,
) -> ValueNumbering:
    """Value-number every block; constants share numbers across blocks."""
    operand_vns: Dict[int, Tuple[object, ...]] = {}
    first_seen: Dict[object, int] = {}
    fresh = 0
    for block in cfg.blocks:
        register_vn: Dict[str, object] = {}

        def vn_of(token: str, index: int) -> object:
            nonlocal fresh
            if not (token.startswith("%r") or token.startswith("%f")):
                try:
                    return ("const", _const_key(int(token, 0)))
                except ValueError:
                    return ("const", token)
            reg = token[1:]
            if reg == "r0":
                return ("const", _const_key(0))
            if constants is not None:
                value = constants[index].get(reg)
                if value is not TOP and value is not BOTTOM:
                    return ("const", _const_key(value))
            if reg not in register_vn:
                fresh += 1
                register_vn[reg] = ("in", block.index, reg, fresh)
            return register_vn[reg]

        for index, instruction in block:
            mnemonic = instruction.mnemonic
            operands = instruction.operands
            target = written_register(mnemonic, operands)
            if mnemonic in ("set", "fset"):
                vns: Tuple[object, ...] = (vn_of(operands[0], index),)
            elif (
                mnemonic in _INT_BINOPS
                or mnemonic in _FP_BINOPS
                or mnemonic in ("smul", "sdiv", "cmp")
            ):
                vns = (
                    vn_of(operands[0], index),
                    vn_of(operands[1], index),
                )
            elif mnemonic in _FP_UNOPS:
                vns = (vn_of(operands[0], index),)
            else:
                # Loads/stores/branches: operands are not value-numbered.
                vns = tuple()
            operand_vns[index] = vns
            if target is None:
                continue
            if mnemonic == "ld":
                fresh += 1
                register_vn[target] = ("load", index, fresh)
                continue
            if vns and all(isinstance(v, tuple) for v in vns):
                pair = vns
                if mnemonic in _COMMUTATIVE and len(pair) == 2:
                    pair = tuple(sorted(pair, key=repr))
                key = (mnemonic, pair)
                if key not in first_seen:
                    first_seen[key] = index
                register_vn[target] = ("expr", key)
            else:
                fresh += 1
                register_vn[target] = ("def", index, fresh)
    return ValueNumbering(operand_vns, first_seen)
