"""A small iterative dataflow framework.

Classic worklist solver over a :class:`ControlFlowGraph`: a problem
supplies the lattice (initial value, boundary value at the entry, a join
operator) and a per-block transfer function; :func:`solve` iterates to a
fixed point.  Forward problems only -- every pass this package needs
flows with execution order.

The lattice values are opaque to the solver; problems must provide value
equality via ``==`` so the solver can detect convergence, and the join
must be monotone for termination (the solver additionally enforces an
iteration budget so a buggy transfer cannot spin forever).
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, TypeVar

from .cfg import ControlFlowGraph

__all__ = ["DataflowProblem", "solve", "instruction_states"]

L = TypeVar("L")


class DataflowProblem(Generic[L]):
    """What a concrete forward pass must supply."""

    #: Human-readable pass name (used in diagnostics).
    name = "dataflow"

    def initial(self) -> L:
        """Optimistic starting value for every block input."""
        raise NotImplementedError

    def boundary(self) -> L:
        """Value flowing into the CFG entry block."""
        raise NotImplementedError

    def join(self, left: L, right: L) -> L:
        """Combine two predecessor outputs (must be monotone)."""
        raise NotImplementedError

    def transfer(self, block_id: int, value: L) -> L:
        """Apply one block's effect to its input value."""
        raise NotImplementedError


def solve(
    cfg: ControlFlowGraph,
    problem: DataflowProblem[L],
    max_passes: int = 200,
) -> Dict[int, L]:
    """Run ``problem`` to a fixed point; returns block-input values.

    ``max_passes`` bounds full sweeps over the CFG; interval analyses
    with widening converge in a handful, exact lattices in O(depth).
    """
    if not cfg.blocks:
        return {}
    order = cfg.reverse_postorder()
    inputs: Dict[int, L] = {b.index: problem.initial() for b in cfg.blocks}
    outputs: Dict[int, L] = {}
    inputs[0] = problem.join(inputs[0], problem.boundary())

    changed = True
    sweeps = 0
    while changed:
        sweeps += 1
        if sweeps > max_passes:
            raise RuntimeError(
                f"{problem.name}: no fixed point after {max_passes} sweeps "
                "(non-monotone transfer or missing widening?)"
            )
        changed = False
        for block_id in order:
            block = cfg.blocks[block_id]
            value = inputs[block_id]
            if block.predecessors:
                value = problem.initial()
                if block_id == 0:
                    value = problem.join(value, problem.boundary())
                for predecessor in block.predecessors:
                    if predecessor in outputs:
                        value = problem.join(value, outputs[predecessor])
                inputs[block_id] = value
            out = problem.transfer(block_id, value)
            if block_id not in outputs or outputs[block_id] != out:
                outputs[block_id] = out
                changed = True
    return inputs


def instruction_states(
    cfg: ControlFlowGraph,
    block_inputs: Dict[int, L],
    step: Callable[[L, int], L],
) -> Dict[int, L]:
    """Expand block-input solutions to per-instruction input states.

    ``step(state, program_index)`` applies one instruction; the returned
    map gives the state *before* each instruction executes.
    """
    states: Dict[int, L] = {}
    for block in cfg.blocks:
        state = block_inputs[block.index]
        for index, _instruction in block:
            states[index] = state
            state = step(state, index)
    return states
