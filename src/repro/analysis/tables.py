"""Plain-text table rendering for experiment reports.

Every experiment driver prints its results in the same row/column layout
as the corresponding table of the paper; this module holds the shared
formatting (fixed-point hit ratios rendered like the paper's ``.39``,
dashes for absent operations, aligned columns).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["format_ratio", "format_table", "render_rows"]


def format_ratio(value: Optional[float], digits: int = 2) -> str:
    """Render a ratio the way the paper does: ``.39``, ``-`` when absent."""
    if value is None:
        return "-"
    if value != value:  # NaN
        return "-"
    text = f"{value:.{digits}f}"
    if text.startswith("0."):
        return text[1:]
    if text.startswith("-0."):
        return "-" + text[2:]
    return text


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned plain-text table."""
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(
            cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
            for i, cell in enumerate(cells)
        ).rstrip()

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    parts.extend(line(row) for row in materialized)
    return "\n".join(parts)


def render_rows(rows: Iterable[Sequence[object]]) -> str:
    """Render rows without headers (for quick dumps)."""
    return "\n".join("  ".join(str(c) for c in row) for row in rows)
