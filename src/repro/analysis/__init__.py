"""Analysis substrate: Amdahl model, curve fitting, reuse analysis, reports."""

from .amdahl import AmdahlPoint, amdahl_speedup, new_execution_time, speedup_enhanced
from .fitting import LineFit, fit_line_lm, pearson_r
from .reuse import (
    RegisterInstanceStats,
    ReuseProfile,
    hit_ratio_for_capacity,
    register_instance_stats,
    reuse_profile,
)
from .tables import format_ratio, format_table

__all__ = [
    "AmdahlPoint",
    "amdahl_speedup",
    "new_execution_time",
    "speedup_enhanced",
    "LineFit",
    "fit_line_lm",
    "pearson_r",
    "RegisterInstanceStats",
    "ReuseProfile",
    "hit_ratio_for_capacity",
    "register_instance_stats",
    "reuse_profile",
    "format_ratio",
    "format_table",
]
