"""Filesystem atomicity: CONC003/004/005.

Three protocols the durable layers rely on, each modelled as facts over
the statement CFG and solved with the PR 2 worklist solver
(:func:`repro.analysis.static.dataflow.solve` runs unchanged on the
Python CFG -- it is duck typed over blocks and edges).

**CONC003 (atomic-publish)** -- publish is stage-then-rename: write a
``*tmp*`` sibling, then ``os.replace`` it over the destination.  A
forward *may* analysis tracks "dirty" staged names (gen at the staging
write, kill at replace/rename/unlink); any name still dirty at the
function exit was staged but can leave the function unpublished.

**CONC004 (claim-link)** -- an ``os.link`` claim is *designed* to lose
races; a link call whose block has no enclosing handler for
``FileExistsError`` (or a parent) turns the expected collision into a
crash.

**CONC005 (lease-ownership)** -- the PR 6 bug shapes.  Mutating a lease
marker or a result document is only sound when some justifying fact
*must* hold on every path reaching the mutation:

* ``OWNERSHIP`` -- a worker/owner equality check succeeded (branch
  edges where ``record.worker != worker``-style tests are false);
* ``MUTATE_CONFIRMED`` -- a ``_mutate``-style compare-and-swap returned
  non-None (the stored record really made the transition);
* ``LINK_OWNED`` -- this very path created the lease via ``os.link``;
* ``EXPIRY_CHECKED`` -- a staleness comparison (age/ttl/deadline) was
  made, legitimizing reaper take-overs.

The facts are solved as a *must* (intersection-join) problem, so a
single unchecked path -- writing the result before the ownership check,
unlinking the marker without confirming the mutate -- loses the fact
and is flagged.  ``None`` is the lattice top for unreachable blocks.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..static.dataflow import DataflowProblem, solve
from .index import (
    FunctionInfo,
    ModuleInfo,
    callee_name,
    calls_in,
    node_names,
    own_nodes,
)
from .model import Finding
from .pycfg import PyCFG

__all__ = [
    "check_atomic_publish",
    "check_claim_link",
    "check_lease_ownership",
]

Facts = Optional[FrozenSet[str]]


class _FactProblem(DataflowProblem):
    """Generic gen-only facts over a :class:`PyCFG`.

    ``must=True`` intersects at joins (None = top, for blocks no path
    reaches); ``must=False`` unions (classic may analysis) and also
    supports per-block kills.
    """

    def __init__(
        self,
        cfg: PyCFG,
        gen: Dict[int, FrozenSet[str]],
        kill: Optional[Dict[int, FrozenSet[str]]] = None,
        must: bool = True,
    ) -> None:
        self.name = "concurrency-facts"
        self.cfg = cfg
        self.gen = gen
        self.kill = kill or {}
        self.must = must

    def initial(self) -> Facts:
        return None if self.must else frozenset()

    def boundary(self) -> Facts:
        return frozenset()

    def join(self, left: Facts, right: Facts) -> Facts:
        if self.must:
            if left is None:
                return right
            if right is None:
                return left
            return left & right
        assert left is not None and right is not None
        return left | right

    def transfer(self, block_id: int, value: Facts) -> Facts:
        if value is None:
            return None
        out = value | self.gen.get(block_id, frozenset())
        killed = self.kill.get(block_id)
        return out - killed if killed else out


def _strings_of(node: ast.AST) -> str:
    return " ".join(
        child.value.lower()
        for child in ast.walk(node)
        if isinstance(child, ast.Constant) and isinstance(child.value, str)
    )


def _assigned_from(
    function: FunctionInfo, classify
) -> Set[str]:
    """Names assigned (anywhere in the function) from a matching RHS."""
    names: Set[str] = set()
    for node in ast.walk(function.node):
        if isinstance(node, ast.Assign) and classify(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if classify(node.value) and isinstance(node.target, ast.Name):
                names.add(node.target.id)
    return names


def _is_os_call(call: ast.Call, attr: str) -> bool:
    return (
        isinstance(call.func, ast.Attribute)
        and call.func.attr == attr
        and isinstance(call.func.value, ast.Name)
        and call.func.value.id == "os"
    )


def _write_mode(call: ast.Call) -> bool:
    """True when an ``open``-style call's mode argument writes."""
    mode = None
    offset = 1 if isinstance(call.func, ast.Name) else 0
    if len(call.args) > offset:
        mode = call.args[offset]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return False
    return isinstance(mode, ast.Constant) and isinstance(
        mode.value, str
    ) and any(flag in mode.value for flag in ("w", "a", "x"))


# -- CONC003: staged tmp files must be published ---------------------------


def check_atomic_publish(modules: Sequence[ModuleInfo]) -> List[Finding]:
    findings: List[Finding] = []
    for module in modules:
        for function in module.functions:
            findings.extend(_dirty_tmps(module, function))
    return findings


def _dirty_tmps(module: ModuleInfo, function: FunctionInfo) -> List[Finding]:
    tmp_names = _assigned_from(
        function, lambda rhs: "tmp" in _strings_of(rhs)
    )
    if not tmp_names:
        return []
    gen: Dict[int, FrozenSet[str]] = {}
    kill: Dict[int, FrozenSet[str]] = {}
    first_write: Dict[str, int] = {}
    for block in function.cfg.blocks:
        generated: Set[str] = set()
        killed: Set[str] = set()
        for node in own_nodes(block):
            for call in calls_in(node):
                staged = _staged_tmp(call, tmp_names)
                if staged is not None:
                    generated.add(staged)
                    first_write.setdefault(staged, call.lineno)
                published = _published_tmp(call, tmp_names)
                if published is not None:
                    killed.add(published)
        if generated:
            gen[block.index] = frozenset(generated)
        if killed:
            kill[block.index] = frozenset(killed)
    if not gen:
        return []
    inputs = solve(
        function.cfg, _FactProblem(function.cfg, gen, kill, must=False)
    )
    dirty = inputs.get(function.cfg.exit_index) or frozenset()
    return [
        Finding(
            check="CONC003",
            path=module.rel,
            line=first_write.get(name, function.def_line),
            col=0,
            function=function.qualname,
            message=(
                f"staged file {name!r} is written but some path exits "
                "without publishing it via os.replace (readers can "
                "observe a missing/stale destination)"
            ),
        )
        for name in sorted(dirty)
    ]


def _staged_tmp(call: ast.Call, tmp_names: Set[str]) -> Optional[str]:
    """The tmp name this call writes to, if any."""
    func = call.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        name = func.value.id
        if name in tmp_names:
            if func.attr in ("write_bytes", "write_text"):
                return name
            if func.attr == "open" and _write_mode(call):
                return name
    if isinstance(func, ast.Name) and func.id == "open" and call.args:
        target = call.args[0]
        if isinstance(target, ast.Name) and target.id in tmp_names:
            if _write_mode(call):
                return target.id
    return None


def _published_tmp(call: ast.Call, tmp_names: Set[str]) -> Optional[str]:
    """The tmp name this call publishes (or abandons), if any."""
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr in ("replace", "rename")
        and isinstance(func.value, ast.Name)
    ):
        if func.value.id == "os":  # os.replace(tmp, dst)
            if call.args and isinstance(call.args[0], ast.Name):
                name = call.args[0].id
                if name in tmp_names:
                    return name
        elif func.value.id in tmp_names:  # tmp.replace(dst)
            return func.value.id
    if (
        isinstance(func, ast.Attribute)
        and func.attr == "unlink"
        and isinstance(func.value, ast.Name)
        and func.value.id in tmp_names
    ):
        return func.value.id  # staging explicitly abandoned
    return None


# -- CONC004: os.link claims must tolerate losing -------------------------

#: Handler names that absorb a link collision.
_LINK_HANDLERS = frozenset(
    {"FileExistsError", "OSError", "Exception", "BaseException", ""}
)


def check_claim_link(modules: Sequence[ModuleInfo]) -> List[Finding]:
    findings: List[Finding] = []
    for module in modules:
        for function in module.functions:
            for block in function.cfg.blocks:
                for node in own_nodes(block):
                    for call in calls_in(node):
                        if not _is_os_call(call, "link"):
                            continue
                        if block.caught & _LINK_HANDLERS:
                            continue
                        findings.append(Finding(
                            check="CONC004",
                            path=module.rel,
                            line=call.lineno,
                            col=call.col_offset,
                            function=function.qualname,
                            message=(
                                "os.link claim without a FileExistsError "
                                "handler: losing the claim race (the "
                                "designed outcome) becomes a crash"
                            ),
                        ))
    return findings


# -- CONC005: lease/result mutations need a dominating check ---------------

_OWNER_WORDS = ("worker", "owner")
_EXPIRY_WORDS = ("ttl", "deadline", "stale", "grace", "expir")


def _expiryish(name: str) -> bool:
    """A name that denotes file age / staleness.  "age" must stand on
    its own (``age``, ``mtime_age``) -- as a bare substring it would
    match ``message``/``storage``-style names."""
    if name == "age" or name.endswith("_age") or name.startswith("age_"):
        return True
    return any(word in name for word in _EXPIRY_WORDS)
_JUSTIFYING = frozenset(
    {"OWNERSHIP", "MUTATE_CONFIRMED", "LINK_OWNED", "EXPIRY_CHECKED"}
)


def check_lease_ownership(modules: Sequence[ModuleInfo]) -> List[Finding]:
    findings: List[Finding] = []
    for module in modules:
        for function in module.functions:
            findings.extend(_lease_findings(module, function))
    return findings


def _lease_findings(
    module: ModuleInfo, function: FunctionInfo
) -> List[Finding]:
    lease_vars = _assigned_from(
        function, lambda rhs: _mentions(rhs, ("lease_marker", "leased_dir"))
    )
    result_vars = _assigned_from(
        function, lambda rhs: _mentions(rhs, ("result_path", "results_dir"))
    )
    targets = _protected_ops(function, lease_vars, result_vars)
    if not targets:
        return []
    gen = _conc5_gen(function)
    inputs = solve(function.cfg, _FactProblem(function.cfg, gen, must=True))
    findings = []
    for block_index, call, what in targets:
        facts = inputs.get(block_index)
        if facts is None:
            continue  # unreachable
        facts = facts | gen.get(block_index, frozenset())
        if facts & _JUSTIFYING:
            continue
        findings.append(Finding(
            check="CONC005",
            path=module.rel,
            line=call.lineno,
            col=call.col_offset,
            function=function.qualname,
            message=(
                f"{what} without a dominating ownership, staleness or "
                "mutate-confirmation check: a stale worker can clobber "
                "state that now belongs to someone else"
            ),
        ))
    return findings


def _mentions(node: ast.AST, fragments: Tuple[str, ...]) -> bool:
    for name in node_names(node):
        lowered = name.lower()
        if any(fragment in lowered for fragment in fragments):
            return True
    return False


def _protected_ops(
    function: FunctionInfo, lease_vars: Set[str], result_vars: Set[str]
) -> List[Tuple[int, ast.Call, str]]:
    """(block, call, description) for every guarded-protocol operation."""

    def is_lease(node: ast.AST) -> bool:
        if isinstance(node, ast.Name) and node.id in lease_vars:
            return True
        return _mentions(node, ("lease_marker", "leased_dir"))

    def is_result(node: ast.AST) -> bool:
        if isinstance(node, ast.Name) and node.id in result_vars:
            return True
        return _mentions(node, ("result_path", "results_dir"))

    ops = []
    for block in function.cfg.blocks:
        for node in own_nodes(block):
            for call in calls_in(node):
                func = call.func
                if isinstance(func, ast.Attribute):
                    if func.attr in ("unlink", "touch", "utime") and is_lease(
                        func.value
                    ):
                        ops.append((
                            block.index, call,
                            f"lease marker {func.attr}()",
                        ))
                        continue
                    if func.attr in (
                        "write_text", "write_bytes", "unlink"
                    ) and is_result(func.value):
                        ops.append((
                            block.index, call,
                            f"result file {func.attr}()",
                        ))
                        continue
                name = callee_name(func)
                if name in ("touch", "utime") and any(
                    is_lease(arg) for arg in call.args
                ):
                    ops.append((block.index, call, "lease marker touch"))
                elif name in ("atomic_write_json", "dump") and any(
                    is_result(arg) for arg in call.args
                ):
                    ops.append((block.index, call, "result file write"))
    return ops


def _conc5_gen(function: FunctionInfo) -> Dict[int, FrozenSet[str]]:
    mutate_vars = _assigned_from(
        function,
        lambda rhs: isinstance(rhs, ast.Call)
        and "mutate" in (callee_name(rhs.func) or "").lower(),
    )
    gen: Dict[int, FrozenSet[str]] = {}
    for block in function.cfg.blocks:
        facts: Set[str] = set()
        if block.kind == "assume" and block.test is not None:
            facts |= _assume_facts(block.test, bool(block.polarity), mutate_vars)
        else:
            for node in own_nodes(block):
                for call in calls_in(node):
                    if _is_os_call(call, "link"):
                        facts.add("LINK_OWNED")
        if facts:
            gen[block.index] = frozenset(facts)
    return gen


def _assume_facts(
    test: ast.expr, polarity: bool, mutate_vars: Set[str]
) -> Set[str]:
    """Facts established on one branch edge.

    Boolean operators decompose only when the edge pins every operand:
    the false edge of an ``or`` (all operands false), the true edge of
    an ``and`` (all operands true).
    """
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        return _assume_facts(test.operand, not polarity, mutate_vars)
    if isinstance(test, ast.BoolOp):
        facts: Set[str] = set()
        decomposes = (isinstance(test.op, ast.Or) and not polarity) or (
            isinstance(test.op, ast.And) and polarity
        )
        if decomposes:
            for value in test.values:
                facts |= _assume_facts(value, polarity, mutate_vars)
        return facts
    if not isinstance(test, ast.Compare) or len(test.ops) != 1:
        return set()
    facts = set()
    op = test.ops[0]
    #: Does this edge assert the comparison's *equality* form?
    equality_holds = (
        polarity and isinstance(op, (ast.Eq, ast.Is, ast.In))
    ) or (
        not polarity and isinstance(op, (ast.NotEq, ast.IsNot, ast.NotIn))
    )
    names = [name.lower() for name in node_names(test)]
    if equality_holds and any(
        any(word in name for word in _OWNER_WORDS) for name in names
    ):
        facts.add("OWNERSHIP")
    if any(_expiryish(name) for name in names):
        facts.add("EXPIRY_CHECKED")
    comparator = test.comparators[0]
    is_none = isinstance(comparator, ast.Constant) and comparator.value is None
    if (
        is_none
        and isinstance(test.left, ast.Name)
        and test.left.id in mutate_vars
    ):
        #: "x is None" known False / "x is not None" known True.
        confirmed = (isinstance(op, ast.Is) and not polarity) or (
            isinstance(op, ast.IsNot) and polarity
        )
        if confirmed:
            facts.add("MUTATE_CONFIRMED")
    return facts
