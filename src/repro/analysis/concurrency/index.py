"""Module/function index shared by every concurrency check.

Loading a target file produces a :class:`ModuleInfo`: the parsed tree,
its inline suppressions, and one :class:`FunctionInfo` per function --
including methods and nested ``def``\\ s -- each with a qualified name
and a statement-level CFG (:func:`repro.analysis.concurrency.pycfg`).

Also home to the small AST conventions every pass shares: how a callee
is named, what counts as a lock acquisition in a ``with`` item, and
which expression nodes belong to a CFG block itself (as opposed to the
nested statements a compound header dominates).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from .model import Suppressions
from .pycfg import PyBlock, PyCFG, build_pycfg

__all__ = [
    "FunctionInfo",
    "ModuleInfo",
    "load_module",
    "callee_name",
    "lock_token",
    "own_nodes",
    "calls_in",
    "node_names",
]

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def callee_name(func: ast.expr) -> Optional[str]:
    """The bare name a call targets (``f(...)`` or ``x.f(...)``)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def lock_token(expr: ast.expr) -> Optional[str]:
    """The lock identity a ``with`` item acquires, or None.

    Anything whose name mentions "lock" counts: ``self._lock("gc")``
    yields the constant token ``"gc"``; a dynamic first argument yields
    a parameterized token (``self._lock(job_id)`` -> ``"<job_id>"``);
    a bare lock object (``with self._lock:``) yields its own name.
    """
    if isinstance(expr, ast.Call):
        name = callee_name(expr.func)
        if name is None or "lock" not in name.lower():
            return None
        if not expr.args:
            return name
        arg = expr.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
        if isinstance(arg, ast.Name):
            return f"<{arg.id}>"
        if isinstance(arg, ast.Attribute):
            return f"<{arg.attr}>"
        return "<dynamic>"
    if isinstance(expr, ast.Attribute) and "lock" in expr.attr.lower():
        return expr.attr
    if isinstance(expr, ast.Name) and "lock" in expr.id.lower():
        return expr.id
    return None


def own_nodes(block: PyBlock) -> List[ast.AST]:
    """The expression/statement nodes *this* block evaluates.

    A compound statement's head block owns only its header (an ``if``
    owns its test, a ``with`` its items); the nested statements have
    blocks of their own.  Assume blocks own nothing -- their test
    already belongs to the branch head.
    """
    if block.kind != "stmt" or block.stmt is None:
        return []
    stmt = block.stmt
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.target, stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        nodes: List[ast.AST] = []
        for item in stmt.items:
            nodes.append(item.context_expr)
            if item.optional_vars is not None:
                nodes.append(item.optional_vars)
        return nodes
    if isinstance(stmt, _FUNCTION_NODES + (ast.ClassDef,)):
        return []  # a nested definition runs later, under its own CFG
    return [stmt]


def calls_in(node: ast.AST) -> Iterator[ast.Call]:
    """Every call this node evaluates *now* -- lambda bodies and nested
    definitions are deferred code and excluded."""
    stack: List[ast.AST] = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.Lambda,) + _FUNCTION_NODES):
            continue
        if isinstance(current, ast.Call):
            yield current
        stack.extend(ast.iter_child_nodes(current))


def node_names(node: ast.AST) -> List[str]:
    """Every identifier an expression mentions (names and attributes)."""
    names = []
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            names.append(child.id)
        elif isinstance(child, ast.Attribute):
            names.append(child.attr)
    return names


@dataclass(eq=False)  # identity semantics: used as a graph node / dict key
class FunctionInfo:
    """One analyzed function (module-level, method, or nested)."""

    module: "ModuleInfo"
    qualname: str
    name: str
    cls: Optional[str]  # innermost enclosing class, if any
    node: ast.AST
    cfg: PyCFG
    #: True for a ``def`` nested inside another function.
    nested: bool = False

    @property
    def def_line(self) -> int:
        return getattr(self.node, "lineno", 0)

    def body_calls(self) -> Iterator[ast.Call]:
        """Calls executed by this function's own blocks."""
        for block in self.cfg.blocks:
            for node in own_nodes(block):
                yield from calls_in(node)


@dataclass(eq=False)
class ModuleInfo:
    """One target source file, parsed and indexed."""

    path: Path
    rel: str  # display path (repo-relative when possible)
    tree: ast.Module
    source: str
    suppressions: Suppressions
    functions: List[FunctionInfo] = field(default_factory=list)
    #: (class or None, bare name) -> function, for call resolution.
    by_name: Dict[Tuple[Optional[str], str], FunctionInfo] = field(
        default_factory=dict
    )

    def resolve_call(
        self, call: ast.Call, caller: FunctionInfo
    ) -> Optional[FunctionInfo]:
        """Module-local resolution: plain names bind to module-level
        functions, ``self.x``/``cls.x`` to methods of the caller's
        class.  Anything else (imports, parameters) stays unresolved."""
        func = call.func
        if isinstance(func, ast.Name):
            return self.by_name.get((None, func.id))
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
            and caller.cls is not None
        ):
            return self.by_name.get((caller.cls, func.attr))
        return None

    def function_at(self, qualname: str) -> Optional[FunctionInfo]:
        for function in self.functions:
            if function.qualname == qualname:
                return function
        return None


def load_module(path: Path, rel: Optional[str] = None) -> ModuleInfo:
    """Parse one file and build per-function CFGs."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    module = ModuleInfo(
        path=path,
        rel=rel if rel is not None else str(path),
        tree=tree,
        source=source,
        suppressions=Suppressions(source),
    )
    _collect(module, tree.body, cls=None, prefix="", nested=False)
    return module


def _collect(
    module: ModuleInfo,
    body: List[ast.stmt],
    cls: Optional[str],
    prefix: str,
    nested: bool,
) -> None:
    for stmt in body:
        if isinstance(stmt, _FUNCTION_NODES):
            qualname = f"{prefix}{stmt.name}"
            info = FunctionInfo(
                module=module,
                qualname=qualname,
                name=stmt.name,
                cls=cls,
                node=stmt,
                cfg=build_pycfg(stmt, lock_token),
                nested=nested,
            )
            module.functions.append(info)
            if not nested:
                module.by_name.setdefault((cls, stmt.name), info)
            _collect(
                module,
                stmt.body,
                cls=cls,
                prefix=f"{qualname}.<locals>.",
                nested=True,
            )
        elif isinstance(stmt, ast.ClassDef):
            _collect(
                module,
                stmt.body,
                cls=stmt.name,
                prefix=f"{prefix}{stmt.name}.",
                nested=nested,
            )
