"""repro.analysis.concurrency -- static race & atomicity analyzer.

A flow-sensitive analyzer over the repo's multi-process surface (the
``serve`` and ``corpus`` packages, ``obs``, and ``fsutil``), built on
the same worklist dataflow solver the PR 2 ISA analyzer uses -- here
over statement-level CFGs of Python functions (:mod:`.pycfg`).

Seven checks, CONC001..CONC007 (catalogue in :data:`.model.CHECKS` and
``docs/analysis.md``): inferred lock discipline and lock ordering
(:mod:`.locks`), the stage/publish, claim-link and lease-ownership
filesystem protocols (:mod:`.atomicity`), and cross-process global
state (:mod:`.procstate`).  Each is tuned to the bug classes this repo
actually shipped and fixed: the PR 4 store race and the two PR 6
stale-lease bugs are checked in as regression fixtures the test suite
asserts the analyzer still catches.

Surface: ``repro analyze --concurrency`` (a blocking CI step) and
:func:`run` for programmatic use.
"""

from .driver import ALL_CHECKS, default_targets, load_targets, run
from .index import FunctionInfo, ModuleInfo, load_module
from .model import CHECKS, Baseline, Finding, Report, Suppressions
from .pycfg import PyBlock, PyCFG, build_pycfg

__all__ = [
    "ALL_CHECKS",
    "CHECKS",
    "Baseline",
    "Finding",
    "FunctionInfo",
    "ModuleInfo",
    "PyBlock",
    "PyCFG",
    "Report",
    "Suppressions",
    "build_pycfg",
    "default_targets",
    "load_module",
    "load_targets",
    "run",
]
