"""Lock discipline: CONC001 (guarded calls) and CONC002 (lock order).

**CONC001 (lock-guarded-call)** infers, per module, which mutation
helpers the code itself treats as lock-protected, then flags the call
sites that break the inferred discipline.  A *mutation function* is one
whose own blocks call a write-effect primitive (``write_bytes``,
``unlink``, ``os.replace``, ...) or, transitively, another local
mutation function.  A call site is *guarded* when a lock is held at its
block, or when the calling function is itself provably always entered
under a lock (a greatest-fixpoint over call sites).  The discipline is
inferred conservatively: a helper is considered lock-protected only
when a strict majority -- and at least two -- of its sites are guarded,
so helpers that lock *internally* (majority of sites unguarded) and
1-vs-1 ambiguous helpers never produce noise.  This is exactly the
shape of the PR 4 store bug: ``_write_manifest`` guarded everywhere
except one forgotten site.

**CONC002 (lock-order)** extracts a token per acquisition (see
:func:`..index.lock_token`), computes each function's may-acquire set
interprocedurally, records an ordering edge ``outer -> inner`` for
every acquisition (or call that may acquire) performed while a lock is
held, and reports cycles in the resulting digraph.  A self-cycle on a
*constant* token is a self-deadlock (the repo's ``FileLock`` is not
reentrant); dynamic tokens (``"<job_id>"``) are exempt from self-cycles
because two dynamic instances may be different locks.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .index import FunctionInfo, ModuleInfo, callee_name, calls_in, own_nodes
from .model import Finding

__all__ = ["check_lock_guards", "check_lock_order", "WRITE_EFFECT"]

#: Callee bare names whose invocation mutates shared on-disk state.
WRITE_EFFECT = frozenset({
    "write", "write_text", "write_bytes", "dump",
    "replace", "rename", "unlink", "link", "rmdir",
    "utime", "touch", "atomic_write_json",
})

#: Minimum guarded sites before a helper's discipline is trusted.
_MIN_GUARDED = 2


def _call_sites(
    module: ModuleInfo,
) -> List[Tuple[FunctionInfo, int, ast.Call, FunctionInfo]]:
    """All locally-resolved call sites: (caller, block, call, target)."""
    sites = []
    for caller in module.functions:
        for block in caller.cfg.blocks:
            for node in own_nodes(block):
                for call in calls_in(node):
                    target = module.resolve_call(call, caller)
                    if target is not None:
                        sites.append((caller, block.index, call, target))
    return sites


def _mutation_functions(
    module: ModuleInfo,
    sites: Sequence[Tuple[FunctionInfo, int, ast.Call, FunctionInfo]],
) -> Set[str]:
    """Qualnames of functions that (transitively) mutate shared state."""
    mutating: Set[str] = set()
    for function in module.functions:
        for call in function.body_calls():
            name = callee_name(call.func)
            if name in WRITE_EFFECT:
                mutating.add(function.qualname)
                break
    changed = True
    while changed:
        changed = False
        for caller, _, _, target in sites:
            if (
                target.qualname in mutating
                and caller.qualname not in mutating
            ):
                mutating.add(caller.qualname)
                changed = True
    return mutating


def _under_lock(
    module: ModuleInfo,
    sites: Sequence[Tuple[FunctionInfo, int, ast.Call, FunctionInfo]],
) -> Set[str]:
    """Functions whose *every* call site runs with a lock held.

    Greatest fixpoint: start from every called function and evict any
    with a site that is neither directly guarded nor inside a function
    still assumed under-lock.  Functions never called locally (public
    entry points) are not under-lock.
    """
    sites_of: Dict[str, List[Tuple[FunctionInfo, int]]] = {}
    for caller, block_index, _, target in sites:
        sites_of.setdefault(target.qualname, []).append((caller, block_index))
    assumed = set(sites_of)
    changed = True
    while changed:
        changed = False
        for qualname, call_sites in sites_of.items():
            if qualname not in assumed:
                continue
            for caller, block_index in call_sites:
                held = caller.cfg.blocks[block_index].held
                if not held and caller.qualname not in assumed:
                    assumed.discard(qualname)
                    changed = True
                    break
    return assumed


def check_lock_guards(modules: Sequence[ModuleInfo]) -> List[Finding]:
    findings: List[Finding] = []
    for module in modules:
        sites = _call_sites(module)
        mutating = _mutation_functions(module, sites)
        under_lock = _under_lock(module, sites)

        def guarded(caller: FunctionInfo, block_index: int) -> bool:
            if caller.cfg.blocks[block_index].held:
                return True
            return caller.qualname in under_lock

        by_target: Dict[str, List[Tuple[FunctionInfo, int, ast.Call]]] = {}
        for caller, block_index, call, target in sites:
            if target.qualname in mutating:
                by_target.setdefault(target.qualname, []).append(
                    (caller, block_index, call)
                )
        for target_qualname, target_sites in by_target.items():
            unguarded = [
                site for site in target_sites if not guarded(site[0], site[1])
            ]
            guarded_count = len(target_sites) - len(unguarded)
            if guarded_count < _MIN_GUARDED or guarded_count <= len(unguarded):
                continue
            for caller, _, call in unguarded:
                findings.append(Finding(
                    check="CONC001",
                    path=module.rel,
                    line=call.lineno,
                    col=call.col_offset,
                    function=caller.qualname,
                    message=(
                        f"call to {target_qualname}() without a lock; "
                        f"{guarded_count} of {len(target_sites)} sites "
                        "hold one, so this mutation helper is "
                        "lock-protected by convention"
                    ),
                ))
    return findings


def _acquire_sets(
    module: ModuleInfo,
    sites: Sequence[Tuple[FunctionInfo, int, ast.Call, FunctionInfo]],
) -> Dict[str, Set[str]]:
    """May-acquire token sets per function, transitively closed."""
    acquires: Dict[str, Set[str]] = {}
    callees: Dict[str, Set[str]] = {}
    for function in module.functions:
        direct: Set[str] = set()
        for block in function.cfg.blocks:
            direct.update(block.acquires)
        acquires[function.qualname] = direct
        callees[function.qualname] = set()
    for caller, _, _, target in sites:
        callees[caller.qualname].add(target.qualname)
    changed = True
    while changed:
        changed = False
        for qualname, callee_names in callees.items():
            for callee in callee_names:
                extra = acquires.get(callee, set()) - acquires[qualname]
                if extra:
                    acquires[qualname].update(extra)
                    changed = True
    return acquires


def check_lock_order(modules: Sequence[ModuleInfo]) -> List[Finding]:
    findings: List[Finding] = []
    for module in modules:
        sites = _call_sites(module)
        acquires = _acquire_sets(module, sites)
        #: ordering edge (outer, inner) -> example (line, function).
        edges: Dict[Tuple[str, str], Tuple[int, str]] = {}

        def record(outer: str, inner: str, line: int, function: str) -> None:
            if outer == inner and outer.startswith("<"):
                return  # two dynamic instances may be different locks
            edges.setdefault((outer, inner), (line, function))

        for function in module.functions:
            for block in function.cfg.blocks:
                for inner in block.acquires:
                    for outer in block.held:
                        record(outer, inner, block.line, function.qualname)
                for position, inner in enumerate(block.acquires):
                    for outer in block.acquires[:position]:
                        record(outer, inner, block.line, function.qualname)
        for caller, block_index, call, target in sites:
            block = caller.cfg.blocks[block_index]
            for outer in block.held:
                for inner in acquires.get(target.qualname, set()):
                    record(outer, inner, call.lineno, caller.qualname)

        graph: Dict[str, Set[str]] = {}
        for outer, inner in edges:
            graph.setdefault(outer, set()).add(inner)

        def reaches(start: str, goal: str) -> bool:
            stack, seen = [start], set()
            while stack:
                token = stack.pop()
                if token == goal:
                    return True
                if token in seen:
                    continue
                seen.add(token)
                stack.extend(graph.get(token, ()))
            return False

        reported: Set[Tuple[str, ...]] = set()
        for (outer, inner), (line, function) in sorted(edges.items()):
            if outer == inner:
                cycle = True  # non-reentrant lock re-acquired
            else:
                cycle = reaches(inner, outer)
            key = tuple(sorted((outer, inner)))
            if not cycle or key in reported:
                continue
            reported.add(key)
            if outer == inner:
                message = (
                    f"lock {outer!r} acquired while already held "
                    "(FileLock is not reentrant: self-deadlock)"
                )
            else:
                message = (
                    f"lock {inner!r} acquired while holding {outer!r}, but "
                    "the opposite nesting also exists (deadlock cycle)"
                )
            findings.append(Finding(
                check="CONC002",
                path=module.rel,
                line=line,
                col=0,
                function=function,
                message=message,
            ))
    return findings
