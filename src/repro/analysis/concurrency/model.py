"""Findings, suppressions and baselines for the concurrency analyzer.

A :class:`Finding` is one protocol violation at one source location.
Two mechanisms keep the CI gate green while still reporting honestly:

* **inline suppressions** -- a ``# conc: ok[CONC006] reason`` comment on
  the flagged line (or on the ``def`` line of the enclosing function)
  acknowledges a finding as a sanctioned exception.  The reason text is
  mandatory culture, not mandatory syntax; the catalogue in
  ``docs/analysis.md`` documents every live suppression.
* **a baseline file** -- a JSON list of accepted findings (matched by
  check id + path suffix + function, deliberately *not* by line number
  so unrelated edits don't churn it).  New findings outside the
  baseline fail the gate; fixed findings leave stale baseline rows that
  ``--write-baseline`` prunes.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "Suppressions",
    "Baseline",
    "Report",
    "CHECKS",
]

#: Check id -> (name, one-line description).  The catalogue rendered by
#: ``repro analyze --concurrency --list-checks`` and docs/analysis.md.
CHECKS: Dict[str, Tuple[str, str]] = {
    "CONC001": (
        "lock-guarded-call",
        "a mutation helper that is elsewhere always called under a lock "
        "is called without one",
    ),
    "CONC002": (
        "lock-order",
        "two lock classes are acquired in inconsistent nesting order "
        "(deadlock cycle)",
    ),
    "CONC003": (
        "atomic-publish",
        "a durable file is written in place, or a staged tmp file is "
        "never published via os.replace",
    ),
    "CONC004": (
        "claim-link",
        "an os.link claim does not tolerate losing the race "
        "(no FileExistsError handler)",
    ),
    "CONC005": (
        "lease-ownership",
        "a lease marker or result document is mutated without a "
        "dominating ownership/staleness re-check",
    ),
    "CONC006": (
        "worker-global-mutation",
        "code reachable from a pool worker mutates module-level state "
        "(lost on fork, diverges on spawn)",
    ),
    "CONC007": (
        "worker-toggle-mirror",
        "a runtime toggle read by workers is only settable parent-side "
        "and is not mirrored through the environment",
    ),
}

_SUPPRESS_RE = re.compile(
    r"#\s*conc:\s*ok\[(?P<ids>[A-Z0-9, ]+)\]\s*(?P<reason>.*)"
)


@dataclass(frozen=True)
class Finding:
    """One protocol violation: where, which check, and why it matters."""

    check: str
    path: str
    line: int
    col: int
    function: str  # qualified name ("Class.method" / "outer.<locals>.inner")
    message: str

    @property
    def name(self) -> str:
        return CHECKS.get(self.check, ("?", ""))[0]

    def render(self) -> str:
        where = f"{self.path}:{self.line}:{self.col}"
        scope = f" in {self.function}" if self.function else ""
        return f"{where}: {self.check} [{self.name}]{scope} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "check": self.check,
            "name": self.name,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "function": self.function,
            "message": self.message,
        }

    def baseline_key(self) -> Tuple[str, str, str]:
        """Line-insensitive identity used by the baseline file."""
        return (self.check, _path_suffix(self.path), self.function)


def _path_suffix(path: str, parts: int = 3) -> str:
    """The trailing path components (stable across checkouts)."""
    pieces = Path(path).as_posix().split("/")
    return "/".join(pieces[-parts:])


class Suppressions:
    """Inline ``# conc: ok[...]`` comments of one source file."""

    def __init__(self, source: str) -> None:
        #: line number -> set of check ids acknowledged on that line.
        self.by_line: Dict[int, Set[str]] = {}
        self.reasons: Dict[int, str] = {}
        for number, text in enumerate(source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            ids = {
                token.strip()
                for token in match.group("ids").split(",")
                if token.strip()
            }
            self.by_line[number] = ids
            self.reasons[number] = match.group("reason").strip()

    def covers(self, finding: Finding, def_line: Optional[int]) -> bool:
        """True when the finding's line -- or its function's ``def``
        line -- carries a matching suppression."""
        for line in (finding.line, def_line):
            if line is None:
                continue
            if finding.check in self.by_line.get(line, set()):
                return True
        return False

    def __len__(self) -> int:
        return len(self.by_line)


class Baseline:
    """The accepted-findings file (``baseline.json``)."""

    FORMAT = 1

    def __init__(self, accepted: Optional[Sequence[Dict[str, str]]] = None) -> None:
        self.accepted: List[Dict[str, str]] = list(accepted or [])

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return cls()
        if document.get("format") != cls.FORMAT:
            return cls()
        rows = document.get("accepted", [])
        return cls([row for row in rows if isinstance(row, dict)])

    def save(self, path: Path) -> None:
        document = {
            "format": self.FORMAT,
            "accepted": sorted(
                self.accepted,
                key=lambda row: (
                    row.get("check", ""),
                    row.get("path", ""),
                    row.get("function", ""),
                ),
            ),
        }
        path.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def _keys(self) -> Set[Tuple[str, str, str]]:
        return {
            (
                row.get("check", ""),
                row.get("path", ""),
                row.get("function", ""),
            )
            for row in self.accepted
        }

    def covers(self, finding: Finding) -> bool:
        return finding.baseline_key() in self._keys()

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        rows = []
        for finding in findings:
            check, path, function = finding.baseline_key()
            rows.append({"check": check, "path": path, "function": function})
        return cls(rows)

    def __len__(self) -> int:
        return len(self.accepted)


@dataclass
class Report:
    """Everything one analyzer run produced."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    files: int = 0
    functions: int = 0

    @property
    def active(self) -> List[Finding]:
        """Findings that should fail the gate."""
        return self.findings

    def render(self) -> str:
        lines = [finding.render() for finding in self.findings]
        summary = (
            f"{len(self.findings)} finding(s) "
            f"({len(self.suppressed)} suppressed, "
            f"{len(self.baselined)} baselined) over "
            f"{self.files} file(s), {self.functions} function(s)"
        )
        lines.append(summary)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "findings": [finding.to_dict() for finding in self.findings],
            "suppressed": [finding.to_dict() for finding in self.suppressed],
            "baselined": [finding.to_dict() for finding in self.baselined],
            "files": self.files,
            "functions": self.functions,
            "checks": {
                check: {"name": name, "description": description}
                for check, (name, description) in CHECKS.items()
            },
        }
