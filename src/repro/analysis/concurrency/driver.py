"""Running the concurrency analyzer over a set of target files.

The default target set is the repo's multi-process surface: the
``serve`` and ``corpus`` packages, the ``obs`` package (its registry is
swapped inside pool workers), and ``fsutil`` (the shared lock/publish
primitives).  Anything else can be analyzed by passing explicit paths
-- the regression-fixture tests do exactly that.

:func:`run` loads the modules, runs every check, then splits raw
findings three ways: inline-suppressed (``# conc: ok[...]``),
baselined (accepted in a ``baseline.json``), and active (everything
else -- these fail the CI gate).
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .atomicity import (
    check_atomic_publish,
    check_claim_link,
    check_lease_ownership,
)
from .index import ModuleInfo, load_module
from .locks import check_lock_guards, check_lock_order
from .model import Baseline, Finding, Report
from .procstate import check_toggle_mirror, check_worker_globals

__all__ = ["ALL_CHECKS", "default_targets", "load_targets", "run"]

#: Every check, in report order.
ALL_CHECKS: Tuple[Callable[[Sequence[ModuleInfo]], List[Finding]], ...] = (
    check_lock_guards,
    check_lock_order,
    check_atomic_publish,
    check_claim_link,
    check_lease_ownership,
    check_worker_globals,
    check_toggle_mirror,
)


def default_targets() -> List[Path]:
    """The installed multi-process surface of the ``repro`` package."""
    package = Path(__file__).resolve().parent.parent.parent
    return [
        package / "serve",
        package / "corpus",
        package / "obs",
        package / "fsutil.py",
    ]


def _python_files(paths: Sequence[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    seen = set()
    unique = []
    for path in files:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


def _display_path(path: Path) -> str:
    """Repo-relative when possible (stable across checkouts)."""
    resolved = path.resolve()
    for anchor in ("src", "tests"):
        parts = resolved.parts
        if anchor in parts:
            return str(Path(*parts[parts.index(anchor):]))
    return str(path)


def load_targets(paths: Optional[Sequence[Path]] = None) -> List[ModuleInfo]:
    """Parse and index every target file (unparsable files are skipped
    -- the linter, not this analyzer, owns syntax gating)."""
    modules = []
    for path in _python_files(paths if paths else default_targets()):
        try:
            modules.append(load_module(path, rel=_display_path(path)))
        except (OSError, SyntaxError):
            continue
    return modules


def run(
    paths: Optional[Sequence[Path]] = None,
    baseline: Optional[Baseline] = None,
    checks: Optional[Sequence[str]] = None,
) -> Report:
    """Analyze ``paths`` (default: the multi-process surface).

    ``checks`` optionally restricts to a set of check ids.
    """
    modules = load_targets(paths)
    report = Report(files=len(modules))
    report.functions = sum(len(module.functions) for module in modules)
    by_rel: Dict[str, ModuleInfo] = {module.rel: module for module in modules}
    raw: List[Finding] = []
    for check in ALL_CHECKS:
        raw.extend(check(modules))
    if checks is not None:
        wanted = {check.upper() for check in checks}
        raw = [finding for finding in raw if finding.check in wanted]
    raw.sort(key=lambda f: (f.path, f.line, f.check))
    for finding in raw:
        module = by_rel.get(finding.path)
        def_line = None
        if module is not None:
            function = module.function_at(finding.function)
            if function is not None:
                def_line = function.def_line
        if module is not None and module.suppressions.covers(
            finding, def_line
        ):
            report.suppressed.append(finding)
        elif baseline is not None and baseline.covers(finding):
            report.baselined.append(finding)
        else:
            report.findings.append(finding)
    return report
