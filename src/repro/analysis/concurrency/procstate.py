"""Cross-process state: CONC006/007.

``--jobs N`` pool workers and the serve fleet's spawned processes do
not share memory with the parent.  Two bug shapes follow, both
generalizing the syntactic REPRO004 lint rule into a reachability pass:

**CONC006 (worker-global-mutation)** -- a function *reachable from a
worker entry point* that rebinds module-level state (``global X; X =
...``) mutates a copy: the write is lost to the parent under fork and
diverges entirely under spawn.  Worker roots are the functions handed
to ``Pool``/``Process`` (``initializer=``, ``target=``, and the
``map``/``imap``/``apply`` family); reachability follows bare callee
names across all analyzed modules, including functions passed around
as values.  ``threading.Thread`` targets are *not* roots -- threads
share memory, and their races are CONC001's department.  A mutator that
touches ``os.environ`` is sanctioned: state written to (or derived
from) the environment is exactly the cross-process configuration
channel this check wants people to use.

**CONC007 (worker-toggle-mirror)** -- the dual: a runtime toggle (a
module global with a ``global``-declaring setter) that worker-reachable
code *reads* is a silent no-op in the fleet unless some setter is
itself worker-reachable or mirrors the value through ``os.environ``
(the ``REPRO_METRICS`` pattern).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .index import FunctionInfo, ModuleInfo, callee_name
from .model import Finding

__all__ = ["check_worker_globals", "check_toggle_mirror", "worker_reachable"]

_POOL_METHODS = frozenset({
    "map", "imap", "imap_unordered", "map_async",
    "starmap", "starmap_async", "apply", "apply_async",
})
_SPAWN_KEYWORDS = frozenset({"initializer", "target"})


def _function_ref(node: ast.AST) -> Optional[str]:
    """The bare name of a function passed as a value, if any."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _body_nodes(function: FunctionInfo) -> List[ast.AST]:
    """The function's own AST, nested definitions excluded (they are
    separate :class:`FunctionInfo` entries)."""
    nodes: List[ast.AST] = []
    stack: List[ast.AST] = list(ast.iter_child_nodes(function.node))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        nodes.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return nodes


def _call_graph(
    modules: Sequence[ModuleInfo],
) -> Tuple[Dict[str, List[FunctionInfo]], Dict[FunctionInfo, Set[str]]]:
    """Bare-name function registry + per-function referenced names.

    Name-based linking deliberately crosses modules: a package
    ``__init__`` re-export (``obs.use_registry``) resolves to the
    defining module without tracking imports.  References include both
    calls and function values passed as arguments (callbacks).
    """
    registry: Dict[str, List[FunctionInfo]] = {}
    for module in modules:
        for function in module.functions:
            registry.setdefault(function.name, []).append(function)
    references: Dict[FunctionInfo, Set[str]] = {}
    for module in modules:
        for function in module.functions:
            names: Set[str] = set()
            for node in _body_nodes(function):
                if isinstance(node, ast.Call):
                    called = callee_name(node.func)
                    if called is not None:
                        names.add(called)
                    for arg in list(node.args) + [
                        keyword.value for keyword in node.keywords
                    ]:
                        ref = _function_ref(arg)
                        if ref is not None and ref in registry:
                            names.add(ref)
            #: A nested def is deferred code its parent may invoke.
            for sibling in module.functions:
                if sibling.nested and sibling.qualname.startswith(
                    function.qualname + ".<locals>."
                ):
                    names.add(sibling.name)
            references[function] = names
    return registry, references


def _roots(modules: Sequence[ModuleInfo]) -> Set[str]:
    """Bare names of functions handed to another *process*."""
    roots: Set[str] = set()
    for module in modules:
        for function in module.functions:
            for node in _body_nodes(function):
                if not isinstance(node, ast.Call):
                    continue
                called = callee_name(node.func) or ""
                if "Thread" in called:
                    continue  # same-process: not a worker boundary
                if called in _POOL_METHODS and node.args:
                    ref = _function_ref(node.args[0])
                    if ref is not None:
                        roots.add(ref)
                for keyword in node.keywords:
                    if keyword.arg in _SPAWN_KEYWORDS:
                        ref = _function_ref(keyword.value)
                        if ref is not None:
                            roots.add(ref)
    return roots


def worker_reachable(
    modules: Sequence[ModuleInfo],
) -> Set[FunctionInfo]:
    """Functions a pool/process worker may execute."""
    registry, references = _call_graph(modules)
    queue: List[FunctionInfo] = []
    for name in _roots(modules):
        queue.extend(registry.get(name, ()))
    reached: Set[FunctionInfo] = set(queue)
    while queue:
        function = queue.pop()
        for name in references.get(function, ()):
            for callee in registry.get(name, ()):
                if callee not in reached:
                    reached.add(callee)
                    queue.append(callee)
    return reached


def _global_writes(function: FunctionInfo) -> List[Tuple[str, int]]:
    """(name, line) for every module-global this function rebinds."""
    declared: Set[str] = set()
    for node in _body_nodes(function):
        if isinstance(node, ast.Global):
            declared.update(node.names)
    if not declared:
        return []
    writes = []
    for node in _body_nodes(function):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id in declared:
                writes.append((target.id, node.lineno))
    return writes


def _touches_environ(function: FunctionInfo) -> bool:
    for node in _body_nodes(function):
        if isinstance(node, ast.Attribute) and node.attr == "environ":
            return True
    return False


def check_worker_globals(modules: Sequence[ModuleInfo]) -> List[Finding]:
    findings: List[Finding] = []
    reached = worker_reachable(modules)
    for module in modules:
        for function in module.functions:
            if function not in reached:
                continue
            writes = _global_writes(function)
            if not writes or _touches_environ(function):
                continue
            names = sorted({name for name, _ in writes})
            line = min(line for _, line in writes)
            findings.append(Finding(
                check="CONC006",
                path=module.rel,
                line=line,
                col=0,
                function=function.qualname,
                message=(
                    f"{function.name}() is reachable from a worker "
                    f"process and rebinds module global(s) "
                    f"{', '.join(names)}: the write is invisible to "
                    "the parent (and to spawn-started siblings); "
                    "mirror through os.environ or pass the value "
                    "through the pool explicitly"
                ),
            ))
    return findings


def check_toggle_mirror(modules: Sequence[ModuleInfo]) -> List[Finding]:
    findings: List[Finding] = []
    reached = worker_reachable(modules)
    for module in modules:
        #: toggle name -> setter functions (those declaring it global).
        setters: Dict[str, List[FunctionInfo]] = {}
        for function in module.functions:
            for name, _ in _global_writes(function):
                setters.setdefault(name, []).append(function)
        for name, writers in sorted(setters.items()):
            mirrored = any(
                writer in reached or _touches_environ(writer)
                for writer in writers
            )
            if mirrored:
                continue
            reader = _worker_reader(module, name, writers, reached)
            if reader is None:
                continue
            function, line = reader
            findings.append(Finding(
                check="CONC007",
                path=module.rel,
                line=line,
                col=0,
                function=function.qualname,
                message=(
                    f"worker-reachable code reads toggle {name!r}, but "
                    f"its only setter(s) "
                    f"({', '.join(w.name for w in writers)}) run "
                    "parent-side and do not mirror the value through "
                    "os.environ: the toggle silently never applies in "
                    "the worker fleet"
                ),
            ))
    return findings


def _worker_reader(
    module: ModuleInfo,
    name: str,
    writers: Sequence[FunctionInfo],
    reached: Set[FunctionInfo],
) -> Optional[Tuple[FunctionInfo, int]]:
    """The first worker-reachable function reading module-global
    ``name`` (writers excluded), with the read's line."""
    for function in module.functions:
        if function not in reached or function in writers:
            continue
        for node in _body_nodes(function):
            if (
                isinstance(node, ast.Name)
                and node.id == name
                and isinstance(node.ctx, ast.Load)
            ):
                return function, node.lineno
    return None
