"""Service subcommands: ``repro serve|submit|jobs|result``.

::

    repro serve [--host H] [--port P] [--workers N] [--queue-dir DIR]
                [--corpus-dir DIR] [--lease-ttl S]
        Run the experiment service: HTTP front end, lease reaper and a
        supervised worker pool draining the durable job queue.

    repro submit EXPERIMENT [--scale S] [--wait] ...
    repro submit --program NAME [--n N] [--entries E] [--ways W] [--mantissa]
    repro submit --fuzz [--budget B] [--seed S] [--max-events M]
        Submit one job (idempotent: the id is the content hash of the
        spec).  ``--wait`` polls to completion and renders the result.

    repro jobs [--state S]       List jobs on the service.
    repro result ID              Fetch and render a result document.

All client commands take ``--url`` (default: the endpoint advertised in
``<queue-dir>/server.json``, else ``http://127.0.0.1:8642``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional

from .client import ServeClient, ServeError
from .queue import default_queue_dir

__all__ = ["main_serve", "main_submit", "main_jobs", "main_result"]


def _default_url(queue_dir: Optional[str]) -> str:
    from .server import endpoint_for

    root = queue_dir or str(default_queue_dir())
    endpoint = endpoint_for(root)
    if endpoint:
        return f"http://{endpoint['host']}:{endpoint['port']}"
    return "http://127.0.0.1:8642"


def _add_client_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--url", default=None,
        help="service URL (default: <queue-dir>/server.json or "
             "http://127.0.0.1:8642)",
    )
    parser.add_argument(
        "--queue-dir", default=None,
        help="queue directory used to discover the service endpoint "
             "(default: $REPRO_QUEUE_DIR or ~/.cache/repro/queue)",
    )


def _client(args) -> ServeClient:
    return ServeClient(args.url or _default_url(args.queue_dir))


def render_result_document(document: Dict[str, Any]) -> str:
    """Human rendering of a job result (any job type)."""
    kind = document.get("type")
    if kind == "experiment":
        from ..experiments.base import ExperimentResult

        data = document.get("result", {})
        result = ExperimentResult(
            experiment=data.get("experiment", "?"),
            title=data.get("title", ""),
            headers=list(data.get("headers", [])),
            rows=[list(row) for row in data.get("rows", [])],
            notes=data.get("notes", ""),
        )
        return result.render()
    if kind == "program":
        from ..analysis.tables import format_ratio, format_table

        rows = [
            [name, stats["counters"].get("operations", 0),
             format_ratio(stats["hit_ratio"]), stats["cycles_saved"]]
            for name, stats in document.get("units", {}).items()
        ]
        return format_table(
            ["unit", "operations", "hit ratio", "cycles saved"], rows,
            title=(
                f"program {document.get('program')} (n={document.get('n')}): "
                f"{document.get('instructions')} instructions"
            ),
        )
    if kind == "fuzz":
        lines = [
            f"fuzz campaign: {document.get('cases')} cases, "
            f"{document.get('events')} events, "
            f"{document.get('features')} coverage features, "
            f"{len(document.get('divergent', []))} divergent"
        ]
        for entry in document.get("divergent", []):
            lines.append(f"  DIVERGENCE in {entry.get('case')}:")
            for line in entry.get("divergences", []):
                lines.append(f"    - {line}")
        return "\n".join(lines)
    return json.dumps(document, indent=2, sort_keys=True)


# -- repro serve -----------------------------------------------------------

def main_serve(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the sharded experiment service (HTTP + workers).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8642,
        help="listen port (0 = ephemeral; advertised in server.json)",
    )
    parser.add_argument(
        "--workers", type=int, default=max(1, os.cpu_count() or 1),
        help="worker processes (default: one per core)",
    )
    parser.add_argument(
        "--queue-dir", default=None,
        help="durable queue directory (default: $REPRO_QUEUE_DIR or "
             "~/.cache/repro/queue)",
    )
    parser.add_argument(
        "--corpus-dir", default=None,
        help="sharded trace corpus for experiment jobs (workers share it)",
    )
    parser.add_argument(
        "--lease-ttl", type=float, default=30.0,
        help="seconds a claimed job may go without a heartbeat",
    )
    parser.add_argument(
        "--reap-interval", type=float, default=1.0,
        help="seconds between lease sweeps / worker supervision",
    )
    args = parser.parse_args(argv)
    from .server import ServeService

    service = ServeService(
        queue_dir=args.queue_dir or str(default_queue_dir()),
        host=args.host,
        port=args.port,
        workers=args.workers,
        corpus_dir=args.corpus_dir,
        lease_ttl=args.lease_ttl,
        reap_interval=args.reap_interval,
    )
    print(
        f"repro serve: queue={service.queue.root} workers={args.workers} "
        f"lease_ttl={args.lease_ttl:g}s", flush=True,
    )
    return service.run()


# -- repro submit ----------------------------------------------------------

def _build_spec(args) -> Dict[str, Any]:
    modes = sum(1 for flag in (args.experiment, args.program, args.fuzz) if flag)
    if modes != 1:
        raise ServeError(
            "choose exactly one of: EXPERIMENT, --program NAME, --fuzz"
        )
    spec: Dict[str, Any]
    if args.experiment:
        kwargs: Dict[str, Any] = {}
        if args.scale is not None:
            kwargs["scale"] = args.scale
        spec = {"type": "experiment", "experiment": args.experiment,
                "kwargs": kwargs}
    elif args.program:
        spec = {"type": "program", "program": args.program, "n": args.n,
                "entries": args.entries, "ways": args.ways,
                "mantissa": args.mantissa}
    else:
        spec = {"type": "fuzz", "budget": args.budget, "seed": args.seed,
                "max_events": args.max_events}
    if args.timeout is not None:
        spec["timeout"] = args.timeout
    if getattr(args, "backend", None) is not None:
        spec["backend"] = args.backend
    return spec


def main_submit(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro submit",
        description="Submit a job to a running repro serve instance.",
    )
    parser.add_argument(
        "experiment", nargs="?", default=None,
        help="experiment id (table7, figure3, ...) for an experiment job",
    )
    parser.add_argument("--scale", type=float, default=None,
                        help="experiment workload scale")
    parser.add_argument("--program", default=None,
                        help="bundled ISA program for a program job")
    parser.add_argument("--n", type=int, default=64,
                        help="program problem size")
    parser.add_argument("--entries", type=int, default=32)
    parser.add_argument("--ways", type=int, default=4)
    parser.add_argument("--mantissa", action="store_true")
    parser.add_argument("--fuzz", action="store_true",
                        help="submit a differential fuzz campaign")
    parser.add_argument("--budget", type=int, default=200)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-events", type=int, default=96)
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-job execution timeout in seconds")
    parser.add_argument("--backend", default=None,
                        help="execution backend the worker scopes around "
                             "this job (scalar | batched | fused)")
    parser.add_argument("--wait", action="store_true",
                        help="poll to completion and render the result")
    parser.add_argument("--wait-timeout", type=float, default=600.0)
    parser.add_argument("--json", action="store_true",
                        help="print raw JSON instead of rendered output")
    _add_client_args(parser)
    args = parser.parse_args(argv)
    client = _client(args)
    try:
        spec = _build_spec(args)
        submitted = client.submit(spec)
    except ServeError as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 1
    job_id = submitted["id"]
    created = "submitted" if submitted.get("created") else "already queued"
    print(f"{job_id} {created} ({submitted.get('describe')}, "
          f"state={submitted.get('state')})")
    if not args.wait:
        return 0
    try:
        record = client.wait(job_id, timeout=args.wait_timeout)
    except ServeError as exc:
        print(f"wait failed: {exc}", file=sys.stderr)
        return 1
    if record["state"] != "done":
        print(f"job {job_id} {record['state']}: {record.get('error', '')}",
              file=sys.stderr)
        return 1
    document = client.result(job_id)
    if args.json:
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(render_result_document(document))
    return 0


# -- repro jobs ------------------------------------------------------------

def main_jobs(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro jobs", description="List jobs on the service.",
    )
    parser.add_argument("--state", default=None,
                        help="filter: queued|leased|done|failed|cancelled")
    parser.add_argument("--json", action="store_true")
    _add_client_args(parser)
    args = parser.parse_args(argv)
    client = _client(args)
    try:
        rows = client.jobs(state=args.state)
    except ServeError as exc:
        print(f"jobs failed: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
        return 0
    from ..analysis.tables import format_table

    table = [
        [row["id"], row["describe"], row["state"], row["attempts"],
         row["requeues"], row["worker"] or "-"]
        for row in rows
    ]
    print(format_table(
        ["id", "job", "state", "attempts", "requeues", "worker"],
        table, title=f"{len(rows)} job(s)",
    ))
    return 0


# -- repro result ----------------------------------------------------------

def main_result(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro result", description="Fetch one job's result.",
    )
    parser.add_argument("id", help="job id (from repro submit / repro jobs)")
    parser.add_argument("--json", action="store_true")
    parser.add_argument("--wait", action="store_true",
                        help="poll until the job settles first")
    parser.add_argument("--wait-timeout", type=float, default=600.0)
    _add_client_args(parser)
    args = parser.parse_args(argv)
    client = _client(args)
    try:
        if args.wait:
            record = client.wait(args.id, timeout=args.wait_timeout)
        else:
            record = client.job(args.id)
        if record["state"] != "done":
            print(
                f"job {args.id} is {record['state']}"
                + (f": {record['error']}" if record.get("error") else ""),
                file=sys.stderr,
            )
            return 1
        document = client.result(args.id)
    except ServeError as exc:
        print(f"result failed: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(render_result_document(document))
    return 0
