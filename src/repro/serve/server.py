"""The asyncio HTTP front end and worker supervisor (``repro serve``).

Stdlib only: a hand-rolled HTTP/1.1 request loop over
``asyncio.start_server`` (the service speaks small JSON documents on a
trusted network; a web framework would be a dependency for nothing).

Routes::

    GET    /healthz           liveness + queue state counts
    GET    /metrics           Prometheus text (queue series + repro.obs)
    POST   /jobs              submit a job spec  -> {id, state, created}
    GET    /jobs[?state=S]    list job summaries
    GET    /jobs/<id>         full job record
    GET    /jobs/<id>/result  result document (409 until done)
    DELETE /jobs/<id>         cancel
    POST   /stop              graceful shutdown (smoke/test hook)

Alongside the listener the server runs:

* the **reaper** task -- periodically :meth:`JobQueue.requeue_expired`,
  so a SIGKILLed worker's jobs go back to the queue within about one
  lease TTL;
* the **supervisor** -- restarts worker processes that died, so the
  pool stays at full strength.

On bind the server writes ``<queue>/server.json`` (host, port, pid) so
clients, the smoke harness and the benchmark can discover an
ephemeral-port instance.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from .. import obs
from ..obs.export import to_prometheus
from .protocol import JobSpec, ServeProtocolError
from .queue import JobQueue
from .worker import STOP_MARKER, worker_main

__all__ = ["ServeService"]

_MAX_BODY = 1 << 20  # 1 MiB of JSON is plenty for any job spec
_REQUEST_TIMEOUT = 10.0  # seconds to read one full request


def _response(
    status: int, payload: Any, content_type: str = "application/json"
) -> bytes:
    if content_type == "application/json":
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    else:
        body = str(payload).encode("utf-8")
    reason = {200: "OK", 201: "Created", 202: "Accepted", 400: "Bad Request",
              404: "Not Found", 405: "Method Not Allowed", 409: "Conflict",
              500: "Internal Server Error"}.get(status, "OK")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n\r\n"
    )
    return head.encode("ascii") + body


class ServeService:
    """Queue + HTTP listener + reaper + supervised worker pool."""

    def __init__(
        self,
        queue_dir: str,
        host: str = "127.0.0.1",
        port: int = 8642,
        workers: int = 0,
        corpus_dir: Optional[str] = None,
        lease_ttl: float = 30.0,
        reap_interval: float = 1.0,
    ) -> None:
        self.queue = JobQueue(queue_dir, lease_ttl=lease_ttl)
        self.host = host
        self.port = port
        self.workers = max(0, int(workers))
        self.corpus_dir = corpus_dir
        self.reap_interval = reap_interval
        self._procs: List[multiprocessing.Process] = []
        self._stopping: Optional[asyncio.Event] = None  # created in serve()
        self._server: Optional[asyncio.AbstractServer] = None
        #: Requeues observed by this server instance (reaper activity).
        self.requeued = 0
        self.restarted_workers = 0

    # -- worker pool -------------------------------------------------------

    def _spawn_worker(self, index: int) -> multiprocessing.Process:
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        proc = context.Process(
            target=worker_main,
            args=(str(self.queue.root),),
            kwargs={
                "worker": f"worker-{index}-{os.getpid()}",
                "corpus_dir": self.corpus_dir,
            },
            daemon=True,
        )
        proc.start()
        return proc

    def start_workers(self) -> None:
        stop = self.queue.root / STOP_MARKER
        try:
            stop.unlink()
        except OSError:
            pass
        self._procs = [self._spawn_worker(i) for i in range(self.workers)]

    def stop_workers(self) -> None:
        (self.queue.root / STOP_MARKER).touch()
        for proc in self._procs:
            proc.join(timeout=3.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        self._procs = []

    def _supervise(self) -> None:
        """Replace dead workers (the lease reaper already rescued their
        jobs; this restores pool capacity)."""
        if (self.queue.root / STOP_MARKER).exists():
            return
        for i, proc in enumerate(self._procs):
            if not proc.is_alive():
                self.restarted_workers += 1
                self._procs[i] = self._spawn_worker(i)

    # -- HTTP --------------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            # One budget for the whole request read (line + headers +
            # body), so a client that stalls mid-request cannot pin a
            # handler task and its socket open indefinitely.
            response = await asyncio.wait_for(
                self._handle_request(reader), timeout=_REQUEST_TIMEOUT
            )
        except asyncio.TimeoutError:
            response = _response(400, {"error": "request timeout"})
        except Exception as exc:  # noqa: BLE001 -- a broken request must not kill the listener
            response = _response(500, {"error": f"{type(exc).__name__}: {exc}"})
        try:
            writer.write(response)
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            try:
                writer.close()
            except OSError:
                pass

    async def _handle_request(self, reader: asyncio.StreamReader) -> bytes:
        # Timeout is enforced by the wait_for wrapping this call in
        # _handle(); every read below shares that one budget.
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return _response(400, {"error": "malformed request line"})
        method, target = parts[0].upper(), parts[1]
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    return _response(400, {"error": "bad Content-Length"})
        if length > _MAX_BODY:
            return _response(400, {"error": "body too large"})
        body = b""
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                return _response(400, {"error": "truncated body"})
        path, _, query = target.partition("?")
        return self._route(method, path, query, body)

    def _route(self, method: str, path: str, query: str, body: bytes) -> bytes:
        segments = [s for s in path.split("/") if s]
        if path == "/healthz" and method == "GET":
            return _response(200, {
                "ok": True,
                "pid": os.getpid(),
                "workers": sum(p.is_alive() for p in self._procs),
                "counts": self.queue.counts(),
            })
        if path == "/metrics" and method == "GET":
            return _response(
                200, self._metrics_text(), content_type="text/plain; version=0.0.4"
            )
        if path == "/stop" and method == "POST":
            if self._stopping is not None:
                self._stopping.set()
            return _response(202, {"stopping": True})
        if segments[:1] == ["jobs"]:
            return self._route_jobs(method, segments[1:], query, body)
        return _response(404, {"error": f"no route for {method} {path}"})

    def _route_jobs(
        self, method: str, rest: List[str], query: str, body: bytes
    ) -> bytes:
        if not rest:
            if method == "POST":
                return self._submit(body)
            if method == "GET":
                state = None
                for pair in query.split("&"):
                    key, _, value = pair.partition("=")
                    if key == "state" and value:
                        state = value
                summaries = [r.summary() for r in self.queue.jobs(state=state)]
                return _response(200, {"jobs": summaries})
            return _response(405, {"error": "use GET or POST on /jobs"})
        job_id = rest[0]
        record = self.queue.get(job_id)
        if record is None:
            return _response(404, {"error": f"unknown job {job_id!r}"})
        if len(rest) == 1:
            if method == "GET":
                return _response(200, record.to_dict())
            if method == "DELETE":
                state = self.queue.cancel(job_id)
                return _response(200, {"id": job_id, "state": state})
            return _response(405, {"error": "use GET or DELETE on /jobs/<id>"})
        if rest[1] == "result" and method == "GET":
            if record.state != "done":
                return _response(409, {
                    "error": f"job {job_id} is {record.state}, not done",
                    "state": record.state,
                })
            result = self.queue.result(job_id)
            if result is None:
                return _response(500, {"error": "result document missing"})
            return _response(200, result)
        return _response(404, {"error": "unknown job subresource"})

    def _submit(self, body: bytes) -> bytes:
        try:
            spec = json.loads(body.decode("utf-8") or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            return _response(400, {"error": f"bad JSON body: {exc}"})
        try:
            job = JobSpec(spec)
        except ServeProtocolError as exc:
            return _response(400, {"error": str(exc)})
        record, created = self.queue.submit(job)
        return _response(201 if created else 200, {
            "id": record.id,
            "state": record.state,
            "created": created,
            "describe": job.describe(),
        })

    def _metrics_text(self) -> str:
        registry = self.queue.metrics_registry()
        registry.counter_add("serve.jobs_requeued_by_reaper", self.requeued)
        registry.counter_add("serve.workers_restarted", self.restarted_workers)
        registry.gauge_set(
            "serve.workers_alive", sum(p.is_alive() for p in self._procs)
        )
        # Fold in whatever the in-process obs registry accumulated (the
        # server itself is not on a hot path, but exporters are cheap).
        registry.merge(obs.registry().as_dict())
        return to_prometheus(registry.as_dict())

    # -- lifecycle ---------------------------------------------------------

    def _write_endpoint(self, host: str, port: int) -> None:
        document = {"host": host, "port": port, "pid": os.getpid()}
        path = self.queue.root / "server.json"
        tmp = path.with_name(".server.json.tmp")
        tmp.write_text(json.dumps(document) + "\n", encoding="utf-8")
        os.replace(tmp, path)

    async def _reap_loop(self) -> None:
        while True:
            await asyncio.sleep(self.reap_interval)
            self.requeued += len(self.queue.requeue_expired())
            self._supervise()

    async def serve(self) -> None:
        """Run until ``POST /stop`` (or cancellation)."""
        self._stopping = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        bound: Tuple[str, int] = self._server.sockets[0].getsockname()[:2]
        self._write_endpoint(bound[0], bound[1])
        self.start_workers()
        reaper = asyncio.ensure_future(self._reap_loop())
        try:
            await self._stopping.wait()
        finally:
            reaper.cancel()
            self._server.close()
            await self._server.wait_closed()
            self.stop_workers()

    def run(self) -> int:
        """Blocking entry point (what ``repro serve`` calls)."""
        try:
            asyncio.run(self.serve())
        except KeyboardInterrupt:
            self.stop_workers()
        return 0


def endpoint_for(queue_dir: str) -> Optional[Dict[str, Any]]:
    """Read ``<queue>/server.json`` (None when no server has bound)."""
    path = Path(queue_dir) / "server.json"
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
