"""The serve-smoke gate: ``python -m repro.serve.smoke``.

End-to-end check of the service path, small enough for PR-time CI:

1. start ``repro serve`` as a subprocess on an ephemeral port with a
   fresh queue directory;
2. submit three bundled-program jobs over HTTP and poll to completion;
3. assert each result is **bit-identical** to running the same spec
   directly in this process (same executors, no service in between);
4. re-submit one spec and assert idempotent deduplication;
5. fetch ``/metrics`` and assert the queue/job series are present.

Exit code 0 = every assertion held.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import List

from .client import ServeClient, ServeError
from .jobs import run_job
from .server import endpoint_for

#: The three bundled-program jobs the gate submits.
SMOKE_SPECS = (
    {"type": "program", "program": "saxpy", "n": 48},
    {"type": "program", "program": "dot_product", "n": 48},
    {"type": "program", "program": "gamma_lut", "n": 48, "mantissa": True},
)

#: Series names the /metrics exposition must carry.
METRIC_NAMES = (
    "repro_serve_queue_depth",
    "repro_serve_jobs_submitted_total",
    "repro_serve_jobs_completed_total",
    "repro_span_serve_queue_latency_seconds_total",
    "repro_span_serve_job_seconds_total",
)


def _wait_endpoint(queue_dir: str, timeout: float = 20.0) -> ServeClient:
    deadline = time.monotonic() + timeout
    while True:
        endpoint = endpoint_for(queue_dir)
        if endpoint:
            client = ServeClient(f"http://{endpoint['host']}:{endpoint['port']}")
            try:
                client.healthz()
                return client
            except ServeError:
                pass
        if time.monotonic() > deadline:
            raise SystemExit("serve-smoke: server did not come up")
        time.sleep(0.1)


def main(argv: List[str] = ()) -> int:
    failures: List[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        queue_dir = str(Path(tmp) / "queue")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--queue-dir", queue_dir, "--port", "0", "--workers", "2",
                "--lease-ttl", "10", "--reap-interval", "0.5",
            ],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        )
        try:
            client = _wait_endpoint(queue_dir)
            ids = []
            for spec in SMOKE_SPECS:
                submitted = client.submit(dict(spec))
                ids.append(submitted["id"])
                print(f"submitted {submitted['id']} ({submitted['describe']})")
            for spec, job_id in zip(SMOKE_SPECS, ids):
                record = client.wait(job_id, timeout=120.0)
                if record["state"] != "done":
                    failures.append(
                        f"{job_id} finished {record['state']}: "
                        f"{record.get('error')}"
                    )
                    continue
                served = client.result(job_id)
                direct = run_job(dict(spec))
                if served != direct:
                    failures.append(
                        f"{job_id}: served result differs from direct run\n"
                        f"  served: {json.dumps(served, sort_keys=True)[:400]}\n"
                        f"  direct: {json.dumps(direct, sort_keys=True)[:400]}"
                    )
                else:
                    print(f"{job_id}: served == direct (bit-identical)")
            duplicate = client.submit(dict(SMOKE_SPECS[0]))
            if duplicate["id"] != ids[0] or duplicate.get("created"):
                failures.append(
                    "duplicate submission was not deduplicated: "
                    f"{duplicate}"
                )
            else:
                print(f"{duplicate['id']}: duplicate submit deduplicated")
            metrics = client.metrics_text()
            for name in METRIC_NAMES:
                if name not in metrics:
                    failures.append(f"/metrics missing series {name}")
            if not any(f.startswith("/metrics") for f in failures):
                print(f"/metrics carries {len(METRIC_NAMES)} expected series")
            try:
                client.stop()
            except ServeError:
                pass
        finally:
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
            output = proc.stdout.read().decode("utf-8", "replace") if proc.stdout else ""
    if failures:
        print("\nserve-smoke FAILED:", file=sys.stderr)
        for line in failures:
            print(f"  - {line}", file=sys.stderr)
        if output:
            print("\nserver output:\n" + output, file=sys.stderr)
        return 1
    print("serve-smoke ok: 3 jobs served bit-identically, dedup + metrics verified")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main(sys.argv[1:]))
