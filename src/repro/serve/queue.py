"""Durable on-disk job queue with lease/heartbeat/requeue semantics.

The queue is a directory; every operation is crash-safe file-system
state, so worker death never loses a job and a restarted server picks
up exactly where the last one stopped::

    <root>/jobs/<id>.json      JobRecord (spec + state + bookkeeping)
    <root>/results/<id>.json   result document of a ``done`` job
    <root>/pending/<ready>-<id>   claimable marker, FIFO by ready-time
    <root>/leased/<id>         lease marker; mtime = last heartbeat
    <root>/locks/<id>.lock     per-record mutation lock
    <root>/server.json         where the HTTP front end is listening

The **claim protocol** is a single atomic rename: a worker picks the
oldest ready marker in ``pending/`` and renames it into ``leased/``;
whoever wins the rename owns the job.  No locks are held while
scanning, so any number of workers can claim concurrently.

The **lease protocol**: a claimed job must be heartbeaten (touching the
lease marker's mtime) at least every ``lease_ttl`` seconds.  The
reaper's :meth:`JobQueue.requeue_expired` renames stale markers back
into ``pending/`` and bumps the record's ``requeues`` counter; a job
that exhausts ``max_attempts`` is marked ``failed`` instead.  Because a
completing worker flips the record to ``done`` *before* removing its
marker, a crash between the two leaves a marker that the next claim or
sweep simply discards -- completion is never lost, and duplicate
execution of an already-completed job is impossible.

This module (like ``repro/corpus/store.py``, and sanctioned the same
way by the REPRO002 lint rule) reads the wall clock: lease deadlines
and queue latencies must survive process restarts and be comparable
across processes, which per-process monotonic clocks are not.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..errors import ReproError
from ..fsutil import FileLock, atomic_write_json, mtime_age, touch
from ..obs.registry import MetricsRegistry
from .protocol import (
    DEFAULT_LEASE_TTL,
    DEFAULT_MAX_ATTEMPTS,
    JobRecord,
    JobSpec,
)

__all__ = ["JobQueue", "QueueError", "default_queue_dir"]


class QueueError(ReproError):
    """A job queue operation could not be performed."""


def default_queue_dir() -> Path:
    """``$REPRO_QUEUE_DIR`` or ``~/.cache/repro/queue``."""
    env = os.environ.get("REPRO_QUEUE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "queue"


class JobQueue:
    """The durable queue (see module docstring for the on-disk layout)."""

    def __init__(
        self,
        root: Union[str, Path],
        lease_ttl: float = DEFAULT_LEASE_TTL,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        retry_backoff: float = 0.5,
    ) -> None:
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.results_dir = self.root / "results"
        self.pending_dir = self.root / "pending"
        self.leased_dir = self.root / "leased"
        self.locks_dir = self.root / "locks"
        for directory in (
            self.root, self.jobs_dir, self.results_dir,
            self.pending_dir, self.leased_dir, self.locks_dir,
        ):
            directory.mkdir(parents=True, exist_ok=True)
        self.lease_ttl = float(lease_ttl)
        self.max_attempts = int(max_attempts)
        self.retry_backoff = float(retry_backoff)

    # -- record plumbing ---------------------------------------------------

    def _record_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.json"

    def _result_path(self, job_id: str) -> Path:
        return self.results_dir / f"{job_id}.json"

    def _lease_marker(self, job_id: str) -> Path:
        return self.leased_dir / job_id

    def _pending_marker(self, job_id: str, ready: float) -> Path:
        return self.pending_dir / f"{int(ready * 1e3):017d}-{job_id}"

    def _lock(self, job_id: str) -> FileLock:
        # The corpus store's lock, re-parameterized for the queue's
        # faster cadence (short leases want short stale-break windows).
        return FileLock(
            self.locks_dir / f"{job_id}.lock",
            timeout=30.0,
            stale_after=120.0,
            error=QueueError,
        )

    def _read_record(self, job_id: str) -> Optional[JobRecord]:
        try:
            with self._record_path(job_id).open("r", encoding="utf-8") as stream:
                return JobRecord.from_dict(json.load(stream))
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError, TypeError, KeyError):
            return None  # torn record; treated as absent until rewritten

    def _write_record(self, record: JobRecord) -> None:
        atomic_write_json(self._record_path(record.id), record.to_dict())

    def _mutate(
        self, job_id: str, mutate: Callable[[JobRecord], Optional[JobRecord]]
    ) -> Optional[JobRecord]:
        """Read-modify-write one record under its lock.

        ``mutate`` returns the record to persist, or None to leave the
        stored record untouched (e.g. a transition raced and lost).
        """
        with self._lock(job_id):
            record = self._read_record(job_id)
            if record is None:
                return None
            updated = mutate(record)
            if updated is None:
                return None
            self._write_record(updated)
            return updated

    # -- submission --------------------------------------------------------

    def submit(
        self,
        spec: Union[Dict[str, Any], JobSpec],
        lease_ttl: Optional[float] = None,
        max_attempts: Optional[int] = None,
    ) -> Tuple[JobRecord, bool]:
        """Enqueue a job; returns ``(record, created)``.

        Submission is idempotent: the job id is the content hash of the
        canonical spec, so a duplicate submit returns the existing
        record (``created=False``) without touching its state -- except
        that re-submitting a ``failed`` or ``cancelled`` job revives it
        with a fresh attempt budget.
        """
        job = spec if isinstance(spec, JobSpec) else JobSpec(dict(spec))
        with self._lock(job.id):
            existing = self._read_record(job.id)
            if existing is not None:
                if existing.state not in ("failed", "cancelled"):
                    return existing, False
                # Revive: same identity, fresh execution budget.
                existing.state = "queued"
                existing.error = ""
                existing.cancel_requested = False
                existing.attempts = 0
                existing.requeues = 0
                existing.worker = ""
                existing.lease_deadline = 0.0
                existing.submitted = time.time()
                self._write_record(existing)
                self._ensure_pending_marker(existing)
                return existing, True
            now = time.time()
            record = JobRecord(
                id=job.id,
                spec=job.spec,
                submitted=now,
                lease_ttl=self.lease_ttl if lease_ttl is None else float(lease_ttl),
                max_attempts=(
                    self.max_attempts if max_attempts is None else int(max_attempts)
                ),
            )
            self._write_record(record)
            self._pending_marker(job.id, now).touch()
            return record, True

    def _ensure_pending_marker(self, record: JobRecord) -> None:
        """Create a claim marker for a queued record if none exists."""
        for name in self._list_pending():
            if name.endswith(record.id):
                return
        self._pending_marker(record.id, time.time()).touch()

    # -- claiming ----------------------------------------------------------

    def _list_pending(self) -> List[str]:
        try:
            names = sorted(os.listdir(self.pending_dir))
        except OSError:
            return []
        return [name for name in names if "-" in name]

    @staticmethod
    def _marker_parts(name: str) -> Tuple[float, str]:
        ready_ms, _, job_id = name.partition("-")
        try:
            return int(ready_ms) / 1e3, job_id
        except ValueError:
            return 0.0, job_id

    def claim(self, worker: str) -> Optional[JobRecord]:
        """Atomically lease the oldest ready job; None when idle.

        The winning ``os.link`` of the pending marker into ``leased/``
        *is* the claim (link fails if a lease marker already exists, so
        a duplicate pending marker can never steal a live lease); the
        record update that follows merely documents it.
        """
        for name in self._list_pending():
            ready, job_id = self._marker_parts(name)
            if ready > time.time():
                break  # markers sort by ready-time; the rest are later
            marker = self.pending_dir / name
            lease = self._lease_marker(job_id)
            try:
                os.link(marker, lease)
            except FileExistsError:
                # Already leased (or a stale marker the reaper owns);
                # this pending marker is a duplicate -- drop it.
                try:
                    marker.unlink()
                except OSError:
                    pass
                continue
            except OSError:
                continue  # marker raced away; try the next one
            try:
                marker.unlink()
            except OSError:
                pass  # a racer consumed it; the link above is ours
            touch(lease)  # heartbeat epoch starts at the claim
            record = self._mutate(job_id, lambda r: self._lease(r, worker))
            if record is not None and record.state == "leased":
                return record
            # Record gone or not claimable (done/cancelled/failed):
            # drop the stray lease marker and keep scanning.
            try:
                lease.unlink()
            except OSError:
                pass
        return None

    def _lease(self, record: JobRecord, worker: str) -> Optional[JobRecord]:
        if record.state == "queued" and not record.cancel_requested:
            now = time.time()
            if record.attempts == 0:
                record.queue_latency = max(0.0, now - record.submitted)
            record.state = "leased"
            record.worker = worker
            record.attempts += 1
            record.lease_deadline = now + record.lease_ttl
            return record
        if record.cancel_requested and record.state == "queued":
            record.state = "cancelled"
            record.worker = ""
            record.finished = time.time()
            return record
        return None

    def heartbeat(self, job_id: str, worker: str) -> bool:
        """Renew a lease; False means the lease was lost (job requeued,
        cancelled, or completed by someone else) and the worker should
        abandon the attempt's result."""
        record = self._read_record(job_id)
        if record is None or record.state != "leased" or record.worker != worker:
            return False
        marker = self._lease_marker(job_id)
        if not touch(marker):
            return False  # marker gone: the reaper took the lease away
        self._mutate(job_id, lambda r: self._renew(r, worker))
        return True

    @staticmethod
    def _renew(record: JobRecord, worker: str) -> Optional[JobRecord]:
        if record.state != "leased" or record.worker != worker:
            return None
        record.lease_deadline = time.time() + record.lease_ttl
        return record

    # -- completion --------------------------------------------------------

    def complete(
        self,
        job_id: str,
        worker: str,
        result: Dict[str, Any],
        wall: float = 0.0,
        cpu: float = 0.0,
    ) -> bool:
        """Persist a result and mark the job ``done``.

        The record flips to ``done`` *before* the lease marker is
        removed (see module docstring); a lost lease (marker stolen and
        record re-leased to another worker) makes this a no-op returning
        False so the stale worker's result is dropped.

        The result file is written inside the mutate callback -- after
        the ownership check, under the record lock -- so a stale worker
        never touches ``results/``: it cannot overwrite (or roll back
        and delete) a result that a re-leased worker already persisted.
        A crash between the result write and the record write leaves the
        record ``leased``; the reaper requeues it and the re-run simply
        rewrites the result.
        """
        def _finish(record: JobRecord) -> Optional[JobRecord]:
            if record.state != "leased" or record.worker != worker:
                return None
            atomic_write_json(self._result_path(job_id), result)
            record.state = "done"
            record.worker = ""
            record.lease_deadline = 0.0
            record.wall = float(wall)
            record.cpu = float(cpu)
            record.error = ""
            record.finished = time.time()
            return record

        updated = self._mutate(job_id, _finish)
        if updated is None:
            return False
        try:
            self._lease_marker(job_id).unlink()
        except OSError:
            pass
        return True

    def fail(
        self, job_id: str, worker: str, error: str, retryable: bool = True
    ) -> Optional[str]:
        """Record a failed attempt; returns the resulting state.

        A retryable failure with remaining attempts goes back to
        ``queued`` with exponential backoff (the pending marker's
        ready-time is pushed out); otherwise the job is ``failed``.
        """
        def _fail(record: JobRecord) -> Optional[JobRecord]:
            if record.state != "leased" or record.worker != worker:
                return None
            record.worker = ""
            record.lease_deadline = 0.0
            record.error = str(error)[:2000]
            if retryable and record.attempts < record.max_attempts:
                record.state = "queued"
            else:
                record.state = "failed"
                record.finished = time.time()
            return record

        updated = self._mutate(job_id, _fail)
        if updated is None:
            # Lease lost (requeued and possibly re-leased to another
            # worker): leave the marker alone -- it may be someone
            # else's live lease now.  Mirrors complete().
            return None
        try:
            self._lease_marker(job_id).unlink()
        except OSError:
            pass
        if updated.state == "queued":
            backoff = self.retry_backoff * (2 ** max(0, updated.attempts - 1))
            self._pending_marker(job_id, time.time() + backoff).touch()
        return updated.state

    def cancel(self, job_id: str) -> Optional[str]:
        """Cancel a job; returns the resulting state (None = unknown id).

        Queued jobs are cancelled immediately; leased jobs get
        ``cancel_requested`` set, which the worker honours before
        execution starts (a running experiment is monolithic and runs
        to completion -- its result is then kept).
        """
        def _cancel(record: JobRecord) -> Optional[JobRecord]:
            if record.state == "queued":
                record.state = "cancelled"
                record.cancel_requested = True
                record.finished = time.time()
                return record
            if record.state == "leased":
                record.cancel_requested = True
                return record
            return None

        updated = self._mutate(job_id, _cancel)
        if updated is None:
            record = self._read_record(job_id)
            return record.state if record else None
        if updated.state == "cancelled":
            for name in self._list_pending():
                if name.endswith(updated.id):
                    try:
                        (self.pending_dir / name).unlink()
                    except OSError:
                        pass
        return updated.state

    # -- the reaper --------------------------------------------------------

    def requeue_expired(self) -> List[str]:
        """Return expired leases to the queue (or fail them out).

        Covers both failure shapes: a dead worker (marker mtime goes
        stale) and a zombie record (``leased`` in the record but no
        marker on disk, e.g. a crash mid-completion).  Returns the ids
        acted upon.
        """
        acted: List[str] = []
        now = time.time()
        try:
            markers = list(os.listdir(self.leased_dir))
        except OSError:
            markers = []
        marker_ids = set(markers)
        for job_id in markers:
            marker = self._lease_marker(job_id)
            record = self._read_record(job_id)
            age = mtime_age(marker, now)
            if age is None:
                marker_ids.discard(job_id)
                continue  # completed/requeued concurrently
            if record is None or record.state != "leased":
                # Stale marker: a crash between claim-link and record
                # update, or between completion and marker cleanup.
                if age > self.lease_ttl:
                    try:
                        marker.unlink()
                    except OSError:
                        pass
                    marker_ids.discard(job_id)
                continue
            if age <= (record.lease_ttl or self.lease_ttl):
                continue
            if self._requeue(job_id, marker):
                acted.append(job_id)
        # Zombie sweep: leased records whose marker vanished (crash
        # between record write and marker cleanup) and queued records
        # with no claim marker (crash between record write and touch).
        pending_ids = {self._marker_parts(n)[1] for n in self._list_pending()}
        for path in self.jobs_dir.glob("*.json"):
            job_id = path.stem
            if job_id in marker_ids or job_id in pending_ids:
                continue
            record = self._read_record(job_id)
            if record is None:
                continue
            if record.state == "leased":
                if now > record.lease_deadline and self._requeue(job_id, None):
                    acted.append(job_id)
            elif record.state == "queued":
                self._pending_marker(job_id, now).touch()
        return acted

    def _requeue(self, job_id: str, marker: Optional[Path]) -> bool:
        """Take one expired lease back; marker=None for zombie records."""
        def _expire(record: JobRecord) -> Optional[JobRecord]:
            if record.state != "leased":
                return None
            record.worker = ""
            record.lease_deadline = 0.0
            record.requeues += 1
            if record.cancel_requested:
                record.state = "cancelled"
                record.finished = time.time()
            elif record.attempts >= record.max_attempts:
                record.state = "failed"
                record.error = (
                    "lease expired with no heartbeat after "
                    f"{record.attempts} attempt(s) (worker died or hung)"
                )
                record.finished = time.time()
            else:
                record.state = "queued"
            return record

        updated = self._mutate(job_id, _expire)
        if updated is None:
            return False
        if marker is not None:
            try:
                marker.unlink()
            except OSError:
                pass  # the leasing worker completed in the meantime
        if updated.state == "queued":
            self._pending_marker(job_id, time.time()).touch()
        return True

    # -- inspection --------------------------------------------------------

    def get(self, job_id: str) -> Optional[JobRecord]:
        return self._read_record(job_id)

    def result(self, job_id: str) -> Optional[Dict[str, Any]]:
        try:
            with self._result_path(job_id).open("r", encoding="utf-8") as stream:
                return json.load(stream)
        except (OSError, json.JSONDecodeError):
            return None

    def jobs(self, state: Optional[str] = None) -> List[JobRecord]:
        """All records (optionally filtered), oldest submission first."""
        records = []
        for path in sorted(self.jobs_dir.glob("*.json")):
            record = self._read_record(path.stem)
            if record is None:
                continue
            if state is None or record.state == state:
                records.append(record)
        records.sort(key=lambda r: (r.submitted, r.id))
        return records

    def counts(self) -> Dict[str, int]:
        tally: Dict[str, int] = {}
        for record in self.jobs():
            tally[record.state] = tally.get(record.state, 0) + 1
        return tally

    # -- metrics -----------------------------------------------------------

    def metrics_registry(self) -> MetricsRegistry:
        """A registry snapshot of the queue, derived from the durable
        records (monotone as long as records are retained): per-state
        gauges, lifetime counters, and queue-latency / job wall / job
        CPU timing series for the ``/metrics`` endpoint."""
        registry = MetricsRegistry()
        states = {name: 0 for name in ("queued", "leased", "done", "failed", "cancelled")}
        submitted = attempts = requeues = 0
        for record in self.jobs():
            states[record.state] = states.get(record.state, 0) + 1
            submitted += 1
            attempts += record.attempts
            requeues += record.requeues
            if record.state == "done":
                registry.record_span("serve.queue_latency", record.queue_latency, 0.0)
                registry.record_span("serve.job", record.wall, record.cpu)
        registry.counter_add("serve.jobs_submitted", submitted)
        registry.counter_add("serve.jobs_completed", states.get("done", 0))
        registry.counter_add("serve.jobs_failed", states.get("failed", 0))
        registry.counter_add("serve.jobs_cancelled", states.get("cancelled", 0))
        registry.counter_add("serve.job_attempts", attempts)
        registry.counter_add("serve.jobs_requeued", requeues)
        registry.gauge_set("serve.queue_depth", states.get("queued", 0))
        for name, value in states.items():
            registry.gauge_set(f"serve.jobs_{name}", value)
        return registry
