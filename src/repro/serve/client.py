"""HTTP client for the experiment service (stdlib ``http.client``).

Used by ``repro submit`` / ``repro jobs`` / ``repro result``, the
serve-smoke gate, the load benchmark and the tests.  One small class,
synchronous on purpose: callers poll, the server streams nothing it
cannot re-serve from durable queue state.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, List, Optional
from urllib.parse import urlparse

from ..errors import ReproError

__all__ = ["ServeClient", "ServeError"]


class ServeError(ReproError):
    """The service refused or could not be reached."""

    def __init__(self, message: str, status: int = 0) -> None:
        super().__init__(message)
        self.status = status


class ServeClient:
    """Talk to one ``repro serve`` instance (``http://host:port``)."""

    def __init__(self, url: str, timeout: float = 30.0) -> None:
        parsed = urlparse(url if "//" in url else f"http://{url}")
        if parsed.scheme not in ("http", ""):
            raise ServeError(f"unsupported scheme {parsed.scheme!r} in {url!r}")
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or 8642
        self.timeout = timeout

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        raw: bool = False,
    ) -> Any:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        try:
            connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            data = response.read()
            status = response.status
            connection.close()
        except (OSError, http.client.HTTPException) as exc:
            raise ServeError(
                f"cannot reach repro serve at {self.host}:{self.port}: {exc}"
            ) from exc
        if raw:
            if status >= 400:
                raise ServeError(data.decode("utf-8", "replace"), status=status)
            return data.decode("utf-8", "replace")
        try:
            document = json.loads(data.decode("utf-8")) if data else {}
        except json.JSONDecodeError as exc:
            raise ServeError(f"malformed response from service: {exc}") from exc
        if status >= 400:
            raise ServeError(
                str(document.get("error", f"HTTP {status}")), status=status
            )
        return document

    # -- the protocol ------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics_text(self) -> str:
        return self._request("GET", "/metrics", raw=True)

    def submit(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        """Submit a job spec; returns ``{id, state, created, describe}``."""
        return self._request("POST", "/jobs", payload=spec)

    def jobs(self, state: Optional[str] = None) -> List[Dict[str, Any]]:
        path = "/jobs" + (f"?state={state}" if state else "")
        return list(self._request("GET", path).get("jobs", []))

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("DELETE", f"/jobs/{job_id}")

    def stop(self) -> Dict[str, Any]:
        return self._request("POST", "/stop")

    # -- conveniences ------------------------------------------------------

    def wait(
        self,
        job_id: str,
        timeout: float = 300.0,
        poll: float = 0.1,
    ) -> Dict[str, Any]:
        """Poll until the job settles; returns the final record.

        Raises :class:`ServeError` on timeout.  ``done``/``failed``/
        ``cancelled`` are all "settled" -- the caller inspects
        ``state``.
        """
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record.get("state") in ("done", "failed", "cancelled"):
                return record
            if time.monotonic() > deadline:
                raise ServeError(
                    f"job {job_id} still {record.get('state')!r} "
                    f"after {timeout:.0f}s"
                )
            time.sleep(poll)

    def wait_ready(self, timeout: float = 10.0, poll: float = 0.1) -> None:
        """Block until /healthz answers (server startup)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                self.healthz()
                return
            except ServeError:
                if time.monotonic() > deadline:
                    raise
                time.sleep(poll)
