"""Job-type executors: what a worker does with a claimed spec.

Every job type routes through the *existing* batch code paths (the
experiment registry, the reference-harness simulator, the differential
fuzzer), so a result served over HTTP is bit-identical to what the same
work produces in a direct ``repro`` invocation -- the serve-smoke gate
and the worker-kill test both assert exactly that.
"""

from __future__ import annotations

import time
from typing import Any, Dict

from .protocol import ServeProtocolError, normalize_spec

__all__ = ["run_job"]

#: Result document schema identifier.
RESULT_SCHEMA = "repro.serve/v1"


def _run_experiment_job(spec: Dict[str, Any]) -> Dict[str, Any]:
    from ..experiments import run_experiment

    result = run_experiment(spec["experiment"], **spec.get("kwargs", {}))
    return {"experiment": spec["experiment"], "result": result.to_dict()}


def _run_program_job(spec: Dict[str, Any]) -> Dict[str, Any]:
    from ..analysis.static.memo import reference_machine
    from ..core.bank import MemoTableBank
    from ..core.config import MemoTableConfig, TagMode
    from ..simulator.shade import ShadeSimulator

    machine = reference_machine(spec["program"], spec["n"])
    steps = machine.run(max_steps=2_000_000)
    config = MemoTableConfig(
        entries=spec["entries"],
        associativity=spec["ways"],
        tag_mode=TagMode.MANTISSA if spec["mantissa"] else TagMode.FULL,
    )
    bank = MemoTableBank.paper_baseline(config=config)
    report = ShadeSimulator(bank).run(machine.trace)
    units = {}
    for op, stats in sorted(
        report.unit_stats.items(), key=lambda pair: pair[0].name
    ):
        if stats.operations == 0:
            continue
        units[op.name] = {
            "counters": stats.counters(),
            "hit_ratio": stats.hit_ratio,
            "cycles_saved": stats.cycles_saved,
        }
    return {
        "program": spec["program"],
        "n": spec["n"],
        "steps": steps,
        "instructions": report.instructions,
        "mismatches": report.mismatches,
        "units": units,
    }


def _run_fuzz_job(spec: Dict[str, Any]) -> Dict[str, Any]:
    from ..verify.fuzz import fuzz_run

    report = fuzz_run(
        spec["budget"],
        seed=spec["seed"],
        max_events=spec["max_events"],
        stop_after=1,
    )
    divergences = [
        {"case": result.case.describe(), "divergences": list(result.divergences)}
        for result in report.divergent
    ]
    return {
        "budget": spec["budget"],
        "seed": spec["seed"],
        "cases": report.cases,
        "events": report.events,
        "features": report.features,
        "ok": not divergences,
        "divergent": divergences,
    }


def _run_sample_job(spec: Dict[str, Any]) -> Dict[str, Any]:
    from ..analysis.static.memo import reference_machine
    from ..simulator.sampling import PhasePlan, estimate_phases

    machine = reference_machine(spec["program"], spec["n"])
    machine.run(max_steps=8_000_000)
    plan = PhasePlan(
        phases=spec["phases"],
        interval=spec["interval"],
        warmup=spec["warmup"],
        seed=spec["seed"],
        samples_per_phase=spec["samples_per_phase"],
    )
    estimate = estimate_phases(
        machine.trace, plan=plan, bound_warmup=spec["bound"]
    )
    document = estimate.as_dict()
    document["program"] = spec["program"]
    document["n"] = spec["n"]
    return document


_EXECUTORS = {
    "experiment": _run_experiment_job,
    "program": _run_program_job,
    "fuzz": _run_fuzz_job,
    "sample": _run_sample_job,
}


def run_job(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one job spec; returns the result document.

    Raises :class:`~repro.errors.ReproError` subclasses on failure --
    the worker turns those into ``failed``/retried queue states.
    """
    spec = normalize_spec(spec)
    delay = spec.get("delay", 0.0)
    if delay:
        time.sleep(delay)
    executor = _EXECUTORS.get(spec["type"])
    if executor is None:  # unreachable after normalize_spec
        raise ServeProtocolError(f"no executor for job type {spec['type']!r}")
    from ..core import backend as execution

    # A spec's optional ``backend`` field scopes the execution backend
    # around just this job (and restores the worker's selection after),
    # the same way REPRO_BACKEND scopes a whole process.
    with execution.use_backend(spec.get("backend")):
        payload = executor(spec)
    result = {"schema": RESULT_SCHEMA, "type": spec["type"], **payload}
    if "backend" in spec:
        result["backend"] = spec["backend"]
    return result
