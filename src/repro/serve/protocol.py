"""Job model and wire protocol of the experiment service.

A *job spec* is a plain JSON object describing one unit of work.  Three
job types cover every workload the repository already knows how to run:

``experiment``
    One registered experiment driver (``table7``, ``figure3``, ...)
    executed through :func:`repro.experiments.run_experiment`; the
    result document is :meth:`ExperimentResult.to_dict`.

``program``
    One bundled ISA program on the deterministic reference harness
    (:func:`repro.analysis.static.memo.reference_machine`) replayed
    through MEMO-TABLES; the result document carries the instruction
    count and per-unit memo statistics.  Cheap (milliseconds), which is
    what the load benchmark and the serve-smoke gate submit by the
    thousand.

``fuzz``
    One differential fuzz campaign (:func:`repro.verify.fuzz.fuzz_run`);
    the result document reports cases/coverage/divergences, so the
    nightly fuzz workflow can run through the service path.

``sample``
    One phase-aware sampled estimation
    (:func:`repro.simulator.sampling.estimate_phases`) of a bundled
    program's memo hit ratios: feature extraction, k-means phase
    clustering, and simulation of representative intervals only.  The
    result document is the estimate's ``as_dict()`` -- per-unit
    ratios, oracle warm-up bounds, and the achieved work reduction.

Jobs are **content-hash keyed**: :func:`job_id_for` digests the
canonicalized spec, so submitting the same spec twice yields the same
job id and the queue deduplicates it (idempotent submission).  Specs are
canonicalized by :func:`normalize_spec`, which also validates the job
type and fills defaults, so two spellings of the same work hash alike.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..errors import ReproError

__all__ = [
    "JOB_STATES",
    "JobSpec",
    "JobRecord",
    "ServeProtocolError",
    "job_id_for",
    "normalize_spec",
]

#: Every state a job record can be in.  Transitions::
#:
#:     queued -> leased -> done
#:                      -> queued     (lease expired / worker died; requeue)
#:                      -> failed     (attempts exhausted or fatal error)
#:     queued -> cancelled
#:     leased -> cancelled            (cancel honoured before execution)
JOB_STATES = ("queued", "leased", "done", "failed", "cancelled")

#: Known job types and their required/allowed parameters.
JOB_TYPES = ("experiment", "program", "fuzz", "sample")

#: Default lease duration: a worker must heartbeat within this window or
#: the reaper hands the job to someone else.
DEFAULT_LEASE_TTL = 30.0

#: Default cap on executions of one job (first attempt + requeues).
DEFAULT_MAX_ATTEMPTS = 3


class ServeProtocolError(ReproError):
    """A malformed job spec or protocol message."""


def _require_str(spec: Dict[str, Any], key: str) -> str:
    value = spec.get(key)
    if not isinstance(value, str) or not value:
        raise ServeProtocolError(f"job spec field {key!r} must be a non-empty string")
    return value


def _optional_number(
    spec: Dict[str, Any], key: str, default: Optional[float] = None
) -> Optional[float]:
    value = spec.get(key, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ServeProtocolError(f"job spec field {key!r} must be a number")
    return float(value)


def _int_field(
    spec: Dict[str, Any], key: str, default: int, floor: Optional[int] = None
) -> int:
    """An integer field with an explicit default.

    Unlike ``value or default``, a present-but-zero value is *kept* (and
    then rejected by ``floor`` where zero is meaningless) -- silently
    replacing 0 with the default would hash the spec to the default
    job's identity.
    """
    value = _optional_number(spec, key, float(default))
    number = int(default if value is None else value)
    if floor is not None and number < floor:
        raise ServeProtocolError(f"job spec field {key!r} must be >= {floor}")
    return number


def normalize_spec(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Validate a job spec and return its canonical form.

    The canonical form is what gets hashed into the job id, so defaults
    are made explicit and key order is irrelevant (hashing sorts keys).
    Unknown top-level keys are rejected: a typo must not silently create
    a *different* job.
    """
    if not isinstance(spec, dict):
        raise ServeProtocolError("job spec must be a JSON object")
    kind = _require_str(spec, "type")
    if kind not in JOB_TYPES:
        raise ServeProtocolError(
            f"unknown job type {kind!r}; expected one of: {', '.join(JOB_TYPES)}"
        )
    out: Dict[str, Any] = {"type": kind}
    allowed = {"type", "delay", "timeout", "backend"}
    delay = _optional_number(spec, "delay", 0.0) or 0.0
    if delay:
        # Pacing/testing hook: the worker sleeps this long before
        # executing (lets tests kill a worker mid-job deterministically).
        out["delay"] = delay
    timeout = _optional_number(spec, "timeout")
    if timeout is not None:
        out["timeout"] = timeout
    backend = spec.get("backend")
    if backend is not None:
        # Execution backend the worker scopes around the job (see
        # repro.core.backend); absent means the worker's default.
        if not isinstance(backend, str) or not backend:
            raise ServeProtocolError(
                "job spec field 'backend' must be a non-empty string"
            )
        from ..core import backend as execution

        if backend not in execution.names():
            raise ServeProtocolError(
                f"unknown execution backend {backend!r}; registered: "
                + ", ".join(execution.names())
            )
        out["backend"] = backend

    if kind == "experiment":
        allowed |= {"experiment", "kwargs"}
        name = _require_str(spec, "experiment")
        from ..experiments import experiment_names

        if name not in experiment_names():
            raise ServeProtocolError(
                f"unknown experiment {name!r}; available: "
                + ", ".join(experiment_names())
            )
        kwargs = spec.get("kwargs") or {}
        if not isinstance(kwargs, dict):
            raise ServeProtocolError("experiment job 'kwargs' must be an object")
        out["experiment"] = name
        out["kwargs"] = {str(k): kwargs[k] for k in sorted(kwargs)}
    elif kind == "program":
        allowed |= {"program", "n", "entries", "ways", "mantissa"}
        name = _require_str(spec, "program")
        from ..isa.programs import PROGRAMS

        if name not in PROGRAMS:
            raise ServeProtocolError(
                f"unknown program {name!r}; available: " + ", ".join(PROGRAMS)
            )
        out["program"] = name
        out["n"] = _int_field(spec, "n", 64, floor=1)
        out["entries"] = _int_field(spec, "entries", 32, floor=1)
        out["ways"] = _int_field(spec, "ways", 4, floor=1)
        out["mantissa"] = bool(spec.get("mantissa", False))
    elif kind == "fuzz":
        allowed |= {"budget", "seed", "max_events"}
        out["budget"] = _int_field(spec, "budget", 200, floor=1)
        out["seed"] = _int_field(spec, "seed", 0)
        # The fuzzer's fresh-trace generator draws at least 48 events
        # per case; smaller caps would fault mid-campaign.
        out["max_events"] = _int_field(spec, "max_events", 96, floor=48)
    else:  # sample
        allowed |= {
            "program", "n", "phases", "interval", "warmup",
            "samples_per_phase", "seed", "bound",
        }
        name = _require_str(spec, "program")
        from ..isa.programs import PROGRAMS

        if name not in PROGRAMS:
            raise ServeProtocolError(
                f"unknown program {name!r}; available: " + ", ".join(PROGRAMS)
            )
        out["program"] = name
        out["n"] = _int_field(spec, "n", 16384, floor=1)
        out["phases"] = _int_field(spec, "phases", 16, floor=1)
        out["interval"] = _int_field(spec, "interval", 250, floor=1)
        out["warmup"] = _int_field(spec, "warmup", 500, floor=0)
        out["samples_per_phase"] = _int_field(
            spec, "samples_per_phase", 4, floor=1
        )
        out["seed"] = _int_field(spec, "seed", 0)
        out["bound"] = bool(spec.get("bound", True))

    unknown = set(spec) - allowed
    if unknown:
        raise ServeProtocolError(
            f"unknown job spec field(s): {', '.join(sorted(unknown))}"
        )
    return out


def job_id_for(spec: Dict[str, Any]) -> str:
    """Content-hash id of a canonical spec (16 hex chars)."""
    material = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]


@dataclass
class JobSpec:
    """A validated spec plus its content-hash identity."""

    spec: Dict[str, Any]
    id: str = ""

    def __post_init__(self) -> None:
        self.spec = normalize_spec(self.spec)
        if not self.id:
            self.id = job_id_for(self.spec)

    def describe(self) -> str:
        kind = self.spec["type"]
        if kind == "experiment":
            return f"experiment:{self.spec['experiment']}"
        if kind == "program":
            return f"program:{self.spec['program']}(n={self.spec['n']})"
        if kind == "sample":
            return (
                f"sample:{self.spec['program']}"
                f"(n={self.spec['n']},phases={self.spec['phases']})"
            )
        return f"fuzz(budget={self.spec['budget']},seed={self.spec['seed']})"


@dataclass
class JobRecord:
    """Durable bookkeeping for one job (the ``jobs/<id>.json`` document).

    Timestamps are wall-clock epoch seconds written by the queue (the
    one service module sanctioned to read the wall clock, like the
    corpus store's lock staleness): lease deadlines must survive
    process restarts, which rules out per-process monotonic clocks.
    """

    id: str
    spec: Dict[str, Any]
    state: str = "queued"
    submitted: float = 0.0
    #: Worker currently holding the lease (empty when not leased).
    worker: str = ""
    #: Epoch seconds the current lease expires (0 when not leased).
    lease_deadline: float = 0.0
    lease_ttl: float = DEFAULT_LEASE_TTL
    #: Executions started (first claim sets it to 1).
    attempts: int = 0
    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    #: Times the job went back to ``queued`` after a lost lease.
    requeues: int = 0
    #: Seconds between submission and first claim.
    queue_latency: float = 0.0
    #: Worker-side execution timing of the completing attempt.
    wall: float = 0.0
    cpu: float = 0.0
    #: Set when a cancel arrived while the job was leased; the worker
    #: drops the job before execution if it sees the flag in time.
    cancel_requested: bool = False
    error: str = ""
    finished: float = 0.0

    def summary(self) -> Dict[str, Any]:
        """The compact row ``GET /jobs`` returns."""
        return {
            "id": self.id,
            "type": self.spec.get("type", "?"),
            "describe": JobSpec(dict(self.spec), id=self.id).describe(),
            "state": self.state,
            "attempts": self.attempts,
            "requeues": self.requeues,
            "worker": self.worker,
            "error": self.error,
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "spec": self.spec,
            "state": self.state,
            "submitted": self.submitted,
            "worker": self.worker,
            "lease_deadline": self.lease_deadline,
            "lease_ttl": self.lease_ttl,
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
            "requeues": self.requeues,
            "queue_latency": self.queue_latency,
            "wall": self.wall,
            "cpu": self.cpu,
            "cancel_requested": self.cancel_requested,
            "error": self.error,
            "finished": self.finished,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobRecord":
        fields: Tuple[str, ...] = (
            "id", "spec", "state", "submitted", "worker", "lease_deadline",
            "lease_ttl", "attempts", "max_attempts", "requeues",
            "queue_latency", "wall", "cpu", "cancel_requested", "error",
            "finished",
        )
        kwargs = {name: data[name] for name in fields if name in data}
        return cls(**kwargs)
