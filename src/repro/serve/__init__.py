"""``repro.serve`` -- the experiment service layer.

Turns the repository's batch tooling into a long-running service: a
durable on-disk job queue with lease/heartbeat/requeue semantics
(:mod:`repro.serve.queue`), a multiprocessing worker pool that drains it
through the existing experiment/simulation code paths
(:mod:`repro.serve.worker`, :mod:`repro.serve.jobs`), an asyncio HTTP
front end (:mod:`repro.serve.server`) and a small client
(:mod:`repro.serve.client`).  ``repro serve`` / ``repro submit`` /
``repro jobs`` / ``repro result`` are the CLI entry points
(:mod:`repro.serve.cli`).
"""

from .protocol import (
    JOB_STATES,
    JobRecord,
    JobSpec,
    job_id_for,
    normalize_spec,
)
from .queue import JobQueue
from .client import ServeClient, ServeError
from .jobs import run_job

__all__ = [
    "JOB_STATES",
    "JobRecord",
    "JobSpec",
    "JobQueue",
    "ServeClient",
    "ServeError",
    "job_id_for",
    "normalize_spec",
    "run_job",
]
