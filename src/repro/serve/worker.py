"""The worker: claim -> heartbeat -> execute -> complete.

A worker is one process in the service's pool.  Its loop:

1. :meth:`JobQueue.claim` the oldest ready job (sleep briefly when the
   queue is idle);
2. start a daemon heartbeat thread that renews the lease every
   ``lease_ttl / 3`` seconds -- but only until the job's optional
   ``timeout`` elapses, so a *hung* job eventually stops heartbeating,
   its lease expires, and the reaper hands it to another worker;
3. execute the spec through :func:`repro.serve.jobs.run_job`, timing it
   with monotonic clocks exactly like the experiment engine does;
4. :meth:`JobQueue.complete` (or :meth:`JobQueue.fail`, which retries
   with backoff while attempts remain).

If the heartbeat thread ever observes the lease lost (marker stolen by
the reaper after a stall, job cancelled, queue wiped), the attempt's
result is dropped on the floor: whoever owns the lease now is the one
whose result counts.  Results are deterministic, so a requeued job
re-executed elsewhere completes with bit-identical output -- the
worker-kill test asserts this end to end.

Workers are top-level-function processes (spawn-safe); the server
starts and supervises them, restarting any that die.  Workers inherit
the service's execution-backend selection through ``REPRO_BACKEND``
(see :mod:`repro.core.backend`); a spec's optional ``backend`` field
overrides it for just that job, scoped by ``use_backend`` inside
:func:`repro.serve.jobs.run_job`.
"""

from __future__ import annotations

import os
import threading
import time
import traceback
from typing import Optional

from .jobs import run_job
from .queue import JobQueue

__all__ = ["worker_main", "run_one_job"]

#: Queue-idle polling interval (seconds).
IDLE_POLL = 0.05

#: A stop-file in the queue root that makes every worker exit cleanly.
STOP_MARKER = "stop"


class _Heartbeat:
    """Daemon thread renewing one lease until stopped or timed out."""

    def __init__(
        self, queue: JobQueue, job_id: str, worker: str,
        interval: float, renew_deadline: Optional[float],
    ) -> None:
        self._queue = queue
        self._job_id = job_id
        self._worker = worker
        self._interval = max(0.05, interval)
        self._renew_deadline = renew_deadline  # perf_counter instant
        self._stop = threading.Event()
        self.lease_lost = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            if (
                self._renew_deadline is not None
                and time.perf_counter() > self._renew_deadline
            ):
                # Job exceeded its timeout: stop renewing and let the
                # lease lapse so the reaper can requeue or fail it.
                return
            if not self._queue.heartbeat(self._job_id, self._worker):
                self.lease_lost.set()
                return


def run_one_job(queue: JobQueue, worker: str) -> bool:
    """Claim and run at most one job; False when the queue was idle."""
    record = queue.claim(worker)
    if record is None:
        return False
    if record.cancel_requested:
        # Cancel arrived between submit and claim; honour it now.
        queue.fail(record.id, worker, "cancelled before execution",
                   retryable=False)
        return True
    spec = record.spec
    timeout = spec.get("timeout")
    renew_deadline = (
        time.perf_counter() + float(timeout) if timeout else None
    )
    heartbeat = _Heartbeat(
        queue, record.id, worker,
        interval=(record.lease_ttl or queue.lease_ttl) / 3.0,
        renew_deadline=renew_deadline,
    )
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    with heartbeat:
        try:
            result = run_job(spec)
        except Exception as exc:  # noqa: BLE001 -- any job error is data
            queue.fail(
                record.id, worker,
                f"{type(exc).__name__}: {exc}\n{traceback.format_exc(limit=8)}",
            )
            return True
    wall = time.perf_counter() - wall0
    cpu = time.process_time() - cpu0
    if heartbeat.lease_lost.is_set():
        return True  # someone else owns the job now; drop our result
    queue.complete(record.id, worker, result, wall=wall, cpu=cpu)
    return True


def worker_main(
    queue_root: str,
    worker: Optional[str] = None,
    corpus_dir: Optional[str] = None,
    poll: float = IDLE_POLL,
    max_jobs: Optional[int] = None,
) -> int:
    """Drain the queue until the stop marker appears.

    ``corpus_dir`` routes experiment jobs' traces through the shared
    sharded store exactly like ``--jobs`` pool workers do.  Returns the
    number of jobs executed (used by tests; the service runs forever).
    """
    queue = JobQueue(queue_root)
    name = worker or f"worker-{os.getpid()}"
    if corpus_dir:
        from ..corpus.store import TraceCorpus, set_active_corpus

        set_active_corpus(TraceCorpus(corpus_dir))
    done = 0
    stop_path = queue.root / STOP_MARKER
    while not stop_path.exists():
        if run_one_job(queue, name):
            done += 1
            if max_jobs is not None and done >= max_jobs:
                break
        else:
            time.sleep(poll)
    return done
