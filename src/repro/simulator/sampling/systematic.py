"""Systematic (SMARTS-style) trace sampling.

Full-size multimedia runs produce traces far longer than the reduced
ones used in tests; systematic sampling (in the spirit of SMARTS-style
simulation sampling) estimates MEMO-TABLE hit ratios from periodic
measurement windows.  Each window is preceded by a warm-up slice that
fills the tables but is excluded from the estimate.

Warm-up semantics -- :attr:`SamplingPlan.flush_between` selects one of
two documented behaviours:

``flush_between=False`` (the default)
    Table state *persists across the skipped gaps*: the bank rides
    through every interval, so a window's starting state reflects all
    previously simulated slices, not just its own warm-up.  For large
    tables whose content survives a gap this functional warming is a
    *better* approximation of the full run; for small tables after long
    skips it can systematically over-warm (stale entries the full run
    would have evicted are still resident).

``flush_between=True``
    The bank is flushed at every interval boundary, so each window sees
    exactly ``plan.warmup`` events of table history and nothing else.
    This is the strict SMARTS cold-start discipline: the per-window
    bias is bounded by the warm-up length alone (the phase-aware
    estimator in :mod:`repro.simulator.sampling.estimator` bounds that
    residual error against the oracle's infinite-table replay).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ...core import backend as execution
from ...core.bank import MemoTableBank
from ...core.operations import Operation
from ...core.stats import UnitStats
from ...errors import ConfigurationError
from ...isa.trace import TraceEvent

__all__ = ["SamplingPlan", "SampledEstimate", "estimate_hit_ratios"]


@dataclass(frozen=True)
class SamplingPlan:
    """Systematic sampling parameters (all in events).

    Every ``interval`` events, simulate ``warmup`` events with counting
    off, then ``window`` events with counting on; skip the rest.
    ``flush_between`` selects the warm-up semantics (see the module
    docstring): False rides the bank through the gaps, True flushes it
    at every interval boundary so a window depends only on its own
    warm-up slice.
    """

    window: int = 1000
    interval: int = 10_000
    warmup: int = 250
    flush_between: bool = False

    def __post_init__(self) -> None:
        if self.window <= 0 or self.interval <= 0 or self.warmup < 0:
            raise ConfigurationError(
                "window/interval must be positive, warmup non-negative"
            )
        if self.warmup + self.window > self.interval:
            raise ConfigurationError(
                "warmup + window must not exceed the sampling interval"
            )

    @property
    def simulated_fraction(self) -> float:
        """Fraction of the trace actually simulated."""
        return min(1.0, (self.warmup + self.window) / self.interval)


@dataclass
class SampledEstimate:
    """Outcome of a sampled run.

    ``events_measured`` counts every event inside a measurement window
    -- memoizable or not, trivial or not -- matching what
    ``events_simulated`` counts for the simulated slices.  (It used to
    sum per-unit table lookups, which silently dropped trivial-hit and
    non-memo events from the "measured" count while ``hit_ratios``
    still included trivial hits.)
    """

    plan: SamplingPlan
    events_total: int
    events_simulated: int
    events_measured: int
    hit_ratios: Dict[Operation, float]

    @property
    def speedup_factor(self) -> float:
        """How much simulation work sampling saved."""
        if not self.events_simulated:
            return 1.0
        return self.events_total / self.events_simulated


def estimate_hit_ratios(
    events: Sequence[TraceEvent],
    bank: Optional[MemoTableBank] = None,
    plan: Optional[SamplingPlan] = None,
    backend: Optional[str] = None,
) -> SampledEstimate:
    """Estimate per-unit hit ratios by simulating sampled windows.

    ``events`` must support indexing (a list or Trace); only the sampled
    slices are touched, so cost scales with ``plan.simulated_fraction``.
    ``backend`` pins the execution backend for every simulated slice
    (default: the registry's precedence chain, see
    :mod:`repro.core.backend`).
    """
    if bank is None:
        bank = MemoTableBank.paper_baseline()
    if plan is None:
        plan = SamplingPlan()
    units = bank.units
    total = len(events)
    simulated = 0
    measured_events = 0
    # Counters over measurement windows only.
    measured: Dict[Operation, UnitStats] = {}

    position = 0
    while position < total:
        if plan.flush_between and position:
            bank.flush()
        # Warm-up slice: update tables, ignore statistics.  Both slices
        # run through the selected execution backend (batched/fused for
        # column-backed traces; the scalar reference loop otherwise).
        warm_end = min(position + plan.warmup, total)
        execution.dispatch(
            events, units, start=position, stop=warm_end, backend=backend
        )
        simulated += warm_end - position

        # Measurement window: snapshot per-unit counters around it.
        window_end = min(warm_end + plan.window, total)
        before = {
            op: (unit.table.stats.lookups, unit.table.stats.hits,
                 unit.stats.trivial_hits)
            for op, unit in units.items()
        }
        execution.dispatch(
            events, units, start=warm_end, stop=window_end, backend=backend
        )
        simulated += window_end - warm_end
        measured_events += window_end - warm_end
        for op, unit in units.items():
            lookups0, hits0, trivial0 = before[op]
            delta = measured.setdefault(op, UnitStats())
            delta.table.lookups += unit.table.stats.lookups - lookups0
            delta.table.hits += unit.table.stats.hits - hits0
            delta.trivial_hits += unit.stats.trivial_hits - trivial0

        position += plan.interval

    ratios = {op: stats.hit_ratio for op, stats in measured.items()}
    return SampledEstimate(
        plan=plan,
        events_total=total,
        events_simulated=simulated,
        events_measured=measured_events,
        hit_ratios=ratios,
    )
