"""Per-interval feature vectors over columnar trace chunks.

SimPoint-style phase detection needs a compact fingerprint of what each
fixed-length interval of the trace *does*; intervals that fingerprint
alike are the same program phase and one representative can stand in
for all of them.  Three feature families, all computed directly on the
:class:`~repro.isa.columns.ColumnBatch` numpy views (no event
materialization):

opcode mix
    The normalized opcode histogram of the interval -- the classic
    basic-block-vector surrogate at the granularity this trace format
    records.

operand structure
    Byte-level entropy of the ``a``/``b`` operand columns (how much the
    operand values vary inside the interval), the distinct
    operand-pair fraction of the memoizable events, and a bucketed
    hash histogram of the ``(opcode, a, b)`` bit patterns themselves.
    These are the features that matter *for memoization*: a low
    distinct-pair fraction is exactly what makes a MEMO-TABLE hit, and
    the pair signature separates intervals that reuse *different* pair
    populations -- two regimes can agree on every aggregate statistic
    yet thrash each other's table entries.

reuse distance
    Per memoizable operation, the fraction of the interval's lookups
    whose operand pair occurred before at all, and the fraction whose
    previous occurrence lies within one interval length
    (:func:`prior_lookup_index`).  This is the fingerprint closest to
    the quantity being estimated: a sliver of the trace where one
    unit's lookups suddenly recur cannot hide inside a phase whose
    opcode mix it happens to share.

residency rate (only when a bank is supplied)
    Per unit, the fraction of the interval's lookups whose previous
    occurrence was still table-resident under the bank's real geometry
    -- an analytic set-associative LRU sweep
    (:func:`likely_resident`) using the production set mapping.  Two
    intervals can agree on every content feature above yet hit at
    different rates because of the *history* each inherits; the
    residency rate is exactly that history effect, so phases become
    homogeneous in the quantity the estimator measures.

pc-region signature
    A small bucketed histogram of the seeded pc mix reused verbatim
    from the hot-region detector
    (:func:`repro.core.speculate.pc_signature_keys`), plus the
    recorded-pc fraction.  Intervals executing different static code
    regions land in different buckets even when their opcode mixes
    agree.

Everything is deterministic: same batch, same config, same matrix.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ...core import backend as execution
from ...core.config import OperandKind
from ...core.speculate import pc_signature_keys
from ...errors import ConfigurationError
from ...isa.opcodes import OPCODE_LIST

__all__ = [
    "FeatureConfig",
    "IntervalFeatures",
    "interval_features",
    "likely_resident",
    "prior_lookup_index",
]

#: Opcode indices that feed a memo unit (operand features only look at
#: these records).
_MEMO_CODES = np.array(
    [i for i, op in enumerate(OPCODE_LIST) if op.operation is not None],
    dtype=np.uint8,
)

_PC_BUCKET_BITS = 3  # 8 pc-signature buckets
_PAIR_BUCKET_BITS = 4  # 16 operand-pair-signature buckets

# splitmix64-style mixing constants (same family the pc mixer uses).
_PAIR_MUL_A = np.uint64(0x9E3779B97F4A7C15)
_PAIR_MUL_B = np.uint64(0xBF58476D1CE4E5B9)
_PAIR_MUL_OP = np.uint64(0x94D049BB133111EB)


def _pair_signature(
    opcode: np.ndarray, a: np.ndarray, b: np.ndarray, seed: int
) -> np.ndarray:
    """Normalized hash-bucket histogram of ``(opcode, a, b)`` patterns.

    Each memoizable event's operand-pair identity is mixed down to a
    64-bit key and bucketed by its top bits; the histogram fingerprints
    *which* pairs an interval draws from, not just how varied they are.
    """
    with np.errstate(over="ignore"):
        mixed = (
            a.view(np.uint64) * _PAIR_MUL_A
            ^ b.view(np.uint64) * _PAIR_MUL_B
            ^ opcode.astype(np.uint64) * _PAIR_MUL_OP
            ^ np.uint64(seed & 0xFFFFFFFFFFFFFFFF)
        )
        mixed ^= mixed >> np.uint64(31)
        mixed *= _PAIR_MUL_B
        mixed ^= mixed >> np.uint64(29)
    buckets = (mixed >> np.uint64(64 - _PAIR_BUCKET_BITS)).astype(np.int64)
    return (
        np.bincount(buckets, minlength=1 << _PAIR_BUCKET_BITS) / len(buckets)
    )


@dataclass(frozen=True)
class FeatureConfig:
    """Feature-extraction knobs.

    ``interval`` is the fixed interval length in events (the final
    interval may be shorter); ``seed`` feeds the pc mixing so the
    signature buckets are stable but re-saltable.  ``reuse_weight``
    scales the z-scored reuse-distance columns before clustering:
    reuse is the feature family closest to the estimated quantity, and
    boosting it keeps a short high-reuse region from being absorbed by
    a large phase that merely shares its opcode mix.
    """

    interval: int = 1000
    seed: int = 0
    reuse_weight: float = 2.0

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ConfigurationError("feature interval must be positive")
        if self.reuse_weight <= 0:
            raise ConfigurationError("reuse weight must be positive")


@dataclass
class IntervalFeatures:
    """The feature matrix plus the interval boundaries it describes."""

    #: ``(n_intervals, dim)`` float64 matrix, raw (unnormalized) rows.
    matrix: np.ndarray
    #: ``[start, stop)`` event bounds of each interval, in trace order.
    bounds: List[Tuple[int, int]]
    config: FeatureConfig
    #: ``[start, stop)`` column range of the reuse-distance block.
    reuse_columns: Tuple[int, int] = (0, 0)
    #: Previous same-key lookup position per event (see
    #: :func:`prior_lookup_index`); reusable by downstream estimators.
    prev: Optional[np.ndarray] = field(default=None, repr=False)
    #: Unit index per event (``-1`` for non-lookups).
    unit_of: Optional[np.ndarray] = field(default=None, repr=False)
    #: Operations backing ``unit_of`` indices, name-sorted.
    ops: Tuple = ()
    #: Per-event residency verdicts (:func:`likely_resident`) when a
    #: bank was supplied to :func:`interval_features`, else ``None``.
    resident: Optional[np.ndarray] = field(default=None, repr=False)

    def __len__(self) -> int:
        return len(self.bounds)

    def normalized(self) -> np.ndarray:
        """Z-scored copy of the matrix (constant columns drop to 0).

        The reuse-distance columns are additionally scaled by
        ``config.reuse_weight`` (see :class:`FeatureConfig`).
        """
        mean = self.matrix.mean(axis=0)
        std = self.matrix.std(axis=0)
        safe = np.where(std > 0.0, std, 1.0)
        out = (self.matrix - mean) / safe
        lo, hi = self.reuse_columns
        if hi > lo and out.size:
            out[:, lo:hi] *= self.config.reuse_weight
        return out


def prior_lookup_index(batch, operations=None):
    """Previous same-key lookup position for every event in ``batch``.

    Returns ``(prev, unit_of, ops)``: ``prev[i]`` is the index of the
    latest earlier event presenting the same memo key to the same unit
    (``-1`` if none, and for events that perform no table lookup);
    ``unit_of[i]`` indexes into ``ops`` (``-1`` for non-lookups).  Pure
    numpy over the columnar views -- one stable lexsort, no simulation.

    Key identity follows the default table semantics: exact operand bit
    patterns (full-value tags), trivial operands skipped (EXCLUDE
    policy), and operand order canonicalized for commutative
    operations.  ``operations`` restricts the units considered (every
    memoizable operation in the opcode table by default).
    """
    views = batch.views()
    total = len(batch)
    if operations is None:
        operations = {
            opcode.operation
            for opcode in OPCODE_LIST
            if opcode.operation is not None
        }
    ops = sorted(operations, key=lambda op: op.name)
    op_index = {op: i for i, op in enumerate(ops)}
    code_to_op = np.full(len(OPCODE_LIST), -1, dtype=np.int64)
    for code, opcode in enumerate(OPCODE_LIST):
        if opcode.operation is not None and opcode.operation in op_index:
            code_to_op[code] = op_index[opcode.operation]

    unit_of = code_to_op[views.opcode]
    prev = np.full(total, -1, dtype=np.int64)
    key_a = views.a_i.copy()
    key_b = views.b_i.copy()
    lookup = unit_of >= 0
    for op, idx in op_index.items():
        mine = unit_of == idx
        if not mine.any():
            continue
        trivial = execution.trivial_mask(
            op, views.a_f[mine], views.b_f[mine]
        )
        lookup[np.nonzero(mine)[0][trivial]] = False
        if op.commutative:
            a, b = key_a[mine], key_b[mine]
            key_a[mine] = np.minimum(a, b)
            key_b[mine] = np.maximum(a, b)
    unit_of = np.where(lookup, unit_of, -1)

    positions = np.nonzero(lookup)[0]
    if len(positions):
        opx = unit_of[positions]
        ka = key_a[positions]
        kb = key_b[positions]
        order = np.lexsort((positions, kb, ka, opx))
        sorted_pos = positions[order]
        same = (
            (opx[order][1:] == opx[order][:-1])
            & (ka[order][1:] == ka[order][:-1])
            & (kb[order][1:] == kb[order][:-1])
        )
        prev[sorted_pos[1:][same]] = sorted_pos[:-1][same]
    return prev, unit_of, ops


def likely_resident(batch, prev, unit_of, ops, bank):
    """Was each lookup's previous occurrence plausibly still cached?

    An analytic hit model over the whole trace: per unit, an exact
    set-associative LRU sweep with the real table geometry of ``bank``
    -- each pair's set index comes from the production mapping
    (:func:`repro.core.backend.set_indices`), and each set keeps an
    LRU stack of ``associativity`` entries.  The previous-occurrence
    chain from :func:`prior_lookup_index` doubles as key identity: a
    stack entry is the trace position of a key's latest occurrence, so
    a lookup's prior is resident exactly when that position is still
    on its set's stack.  Capacity *and* conflict evictions are both
    modeled.

    Two consumers: the per-interval residency-rate feature (phases
    become homogeneous in the measured quantity) and the estimator's
    cold-start correction (window lookups whose resident prior predates
    the warm-up slice are counted back as hits).
    """
    views = batch.views()
    resident = np.zeros(len(prev), dtype=bool)
    for index, op in enumerate(ops):
        config = bank.units[op].table.config
        mine = np.nonzero(unit_of == index)[0]
        if not len(mine):
            continue
        if config.operand_kind is OperandKind.INT:
            a, b = views.a_i[mine], views.b_i[mine]
        else:
            a, b = views.a_f[mine], views.b_f[mine]
        set_of = np.asarray(
            execution.set_indices(config, a, b), dtype=np.int64
        ).tolist()
        ways = config.associativity
        stacks: "list[OrderedDict[int, None]]" = [
            OrderedDict() for _ in range(config.n_sets)
        ]
        for where, position in enumerate(mine.tolist()):
            stack = stacks[set_of[where]]
            prior = int(prev[position])
            if prior >= 0 and prior in stack:
                resident[position] = True
                del stack[prior]
            stack[position] = None
            if len(stack) > ways:
                stack.popitem(last=False)
    return resident


def _byte_entropy(column: np.ndarray) -> float:
    """Shannon entropy (bits, normalized to [0, 1]) of a column's bytes."""
    if not column.size:
        return 0.0
    counts = np.bincount(column.view(np.uint8), minlength=256)
    total = counts.sum()
    probs = counts[counts > 0] / total
    return float(-(probs * np.log2(probs)).sum() / 8.0)


def _interval_row(
    views,
    batch,
    start: int,
    stop: int,
    seed: int,
    prev: np.ndarray,
    unit_of: np.ndarray,
    n_units: int,
    short_distance: int,
    resident: Optional[np.ndarray],
) -> np.ndarray:
    """One interval's raw feature row (see module docstring)."""
    n = stop - start
    opcode = views.opcode[start:stop]
    mix = np.bincount(opcode, minlength=len(OPCODE_LIST)) / n

    memo_mask = np.isin(opcode, _MEMO_CODES)
    memo_idx = np.nonzero(memo_mask)[0]
    if memo_idx.size:
        a = views.a_i[start:stop][memo_idx]
        b = views.b_i[start:stop][memo_idx]
        entropy_a = _byte_entropy(a)
        entropy_b = _byte_entropy(b)
        # Distinct (opcode, a, b) triples over memoizable events: the
        # per-interval fingerprint of how much value reuse exists.
        triples = np.stack(
            (opcode[memo_idx].astype(np.int64), a, b), axis=1
        )
        distinct = len(np.unique(triples, axis=0)) / memo_idx.size
        pair_signature = _pair_signature(opcode[memo_idx], a, b, seed)
    else:
        entropy_a = entropy_b = 0.0
        distinct = 1.0
        pair_signature = np.zeros(1 << _PAIR_BUCKET_BITS, dtype=np.float64)

    width = 2 if resident is None else 3
    reuse = np.zeros(width * n_units, dtype=np.float64)
    window_prev = prev[start:stop]
    window_unit = unit_of[start:stop]
    for unit in range(n_units):
        mine = np.nonzero(window_unit == unit)[0]
        if not mine.size:
            continue
        prior = window_prev[mine]
        has_prior = prior >= 0
        short = has_prior & ((mine + start) - prior <= short_distance)
        reuse[width * unit] = has_prior.mean()
        reuse[width * unit + 1] = short.mean()
        if resident is not None:
            reuse[width * unit + 2] = resident[start:stop][mine].mean()

    keys, present = pc_signature_keys(views, start, stop, seed)
    present_count = int(present.sum())
    signature = np.zeros(1 << _PC_BUCKET_BITS, dtype=np.float64)
    if present_count:
        buckets = (keys[present] >> np.uint64(64 - _PC_BUCKET_BITS)).astype(
            np.int64
        )
        signature = (
            np.bincount(buckets, minlength=1 << _PC_BUCKET_BITS)
            / present_count
        )
    pc_fraction = present_count / n

    return np.concatenate((
        mix,
        np.array([entropy_a, entropy_b, distinct, pc_fraction]),
        pair_signature,
        reuse,
        signature,
    ))


def interval_features(
    batch,
    config: Optional[FeatureConfig] = None,
    start: int = 0,
    stop: Optional[int] = None,
    bank=None,
) -> IntervalFeatures:
    """Chop ``batch[start:stop]`` into intervals and fingerprint each.

    ``batch`` is a :class:`~repro.isa.columns.ColumnBatch` (or anything
    with a compatible ``views()``), a column-backed
    :class:`~repro.isa.trace.Trace`, or a plain event sequence
    (converted once); the final interval may be shorter
    than ``config.interval`` and its row is normalized by its own
    length, so partial tails cluster with the phase they belong to.

    ``bank`` (a :class:`~repro.core.bank.MemoTableBank`) enables the
    residency-rate feature family: lookups are restricted to the
    bank's units and each row gains one analytic LRU-residency column
    per unit (see module docstring).  The computed per-event arrays
    ride along on the returned :class:`IntervalFeatures` so estimators
    can reuse them without a second pass.
    """
    cfg = config if config is not None else FeatureConfig()
    # Accept the same trace shapes estimate_phases does: a columnar
    # view when one exists, otherwise a one-time event conversion (a
    # plain Trace used to AttributeError on .views()).
    if not hasattr(batch, "views"):
        from ...isa.columns import ColumnBatch

        coerced = execution.as_batch(batch)
        batch = (
            coerced if coerced is not None else ColumnBatch.from_events(batch)
        )
    if stop is None:
        stop = len(batch)
    if stop < start:
        raise ConfigurationError("stop must not precede start")
    views = batch.views()
    if bank is not None:
        prev, unit_of, ops = prior_lookup_index(
            batch, operations=bank.units
        )
        resident = likely_resident(batch, prev, unit_of, ops, bank)
    else:
        prev, unit_of, ops = prior_lookup_index(batch)
        resident = None
    bounds: List[Tuple[int, int]] = []
    rows: List[np.ndarray] = []
    position = start
    while position < stop:
        end = min(position + cfg.interval, stop)
        bounds.append((position, end))
        rows.append(_interval_row(
            views, batch, position, end, cfg.seed,
            prev, unit_of, len(ops), cfg.interval, resident,
        ))
        position = end
    matrix = (
        np.vstack(rows) if rows else np.empty((0, 0), dtype=np.float64)
    )
    reuse_start = len(OPCODE_LIST) + 4 + (1 << _PAIR_BUCKET_BITS)
    width = 2 if resident is None else 3
    return IntervalFeatures(
        matrix=matrix,
        bounds=bounds,
        config=cfg,
        reuse_columns=(reuse_start, reuse_start + width * len(ops)),
        prev=prev,
        unit_of=unit_of,
        ops=tuple(ops),
        resident=resident,
    )
