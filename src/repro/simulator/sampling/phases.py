"""Seeded k-means phase clustering over interval feature vectors.

A deliberately small, fully deterministic Lloyd's-algorithm k-means --
pure numpy, seeded k-means++ initialization, no wall clock, no global
RNG (REPRO001-clean).  Determinism matters more than the last drop of
clustering quality here: the phase labels feed a CI-gated accuracy
bound, so the same trace and seed must always produce the same
representatives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ...errors import ConfigurationError

__all__ = [
    "PhaseClustering",
    "cluster_phases",
    "representative_intervals",
    "sample_intervals",
]


@dataclass
class PhaseClustering:
    """K-means outcome: one phase label per interval."""

    #: Interval index -> phase id in ``[0, k)``.
    labels: np.ndarray
    #: ``(k, dim)`` cluster centroids in the (normalized) feature space.
    centroids: np.ndarray
    #: Sum of squared distances to assigned centroids.
    inertia: float
    #: Lloyd iterations actually run.
    iterations: int

    @property
    def k(self) -> int:
        return len(self.centroids)

    def weights(self) -> np.ndarray:
        """Fraction of intervals assigned to each phase."""
        counts = np.bincount(self.labels, minlength=self.k)
        return counts / max(1, len(self.labels))


def _plus_plus_init(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """Seeded k-means++ seeding (Arthur & Vassilvitskii)."""
    n = len(points)
    centers = np.empty((k, points.shape[1]), dtype=np.float64)
    first = int(rng.integers(n))
    centers[0] = points[first]
    closest = ((points - centers[0]) ** 2).sum(axis=1)
    for j in range(1, k):
        total = closest.sum()
        if total <= 0.0:
            # All residual distance is zero: every remaining point
            # duplicates a chosen center; any pick is equivalent.
            centers[j:] = centers[0]
            break
        probs = closest / total
        chosen = int(rng.choice(n, p=probs))
        centers[j] = points[chosen]
        distance = ((points - centers[j]) ** 2).sum(axis=1)
        np.minimum(closest, distance, out=closest)
    return centers


def cluster_phases(
    points: np.ndarray,
    k: int,
    seed: int = 0,
    max_iterations: int = 64,
    restarts: int = 4,
) -> PhaseClustering:
    """Cluster interval feature rows into at most ``k`` phases.

    ``points`` is the (normalized) feature matrix; ``k`` is clamped to
    the number of intervals.  Empty clusters are repaired by stealing
    the point farthest from its centroid, so the result always has
    exactly ``min(k, n)`` non-empty phases.

    ``restarts`` runs that many independent seeded k-means++ inits
    (seeds ``seed, seed + 1, ...``) and keeps the lowest-inertia
    outcome.  A single unlucky init can hand a small-but-distinct
    phase to a big neighbouring cluster; merging distinct groups costs
    inertia, so best-of-N reliably recovers it while staying fully
    deterministic for a given ``seed``.
    """
    if restarts <= 0:
        raise ConfigurationError("restarts must be positive")
    best: Optional[PhaseClustering] = None
    for attempt in range(restarts):
        outcome = _cluster_once(points, k, seed + attempt, max_iterations)
        if best is None or outcome.inertia < best.inertia:
            best = outcome
    return best


def _cluster_once(
    points: np.ndarray,
    k: int,
    seed: int,
    max_iterations: int,
) -> PhaseClustering:
    """One seeded k-means run (init + Lloyd iterations)."""
    if k <= 0:
        raise ConfigurationError("phase count k must be positive")
    if points.ndim != 2 or not len(points):
        raise ConfigurationError("need a non-empty 2-D feature matrix")
    n = len(points)
    k = min(k, n)
    points = np.asarray(points, dtype=np.float64)
    rng = np.random.default_rng(seed)
    centroids = _plus_plus_init(points, k, rng)

    labels = np.zeros(n, dtype=np.int64)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        # Squared distances to every centroid; argmin breaks ties by
        # lowest phase id (numpy guarantee), which keeps runs stable.
        distances = (
            ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        )
        new_labels = distances.argmin(axis=1)
        for phase in range(k):
            mask = new_labels == phase
            if mask.any():
                centroids[phase] = points[mask].mean(axis=0)
            else:
                # Repair an emptied cluster with the worst-fit point.
                worst = int(
                    distances[np.arange(n), new_labels].argmax()
                )
                centroids[phase] = points[worst]
                new_labels[worst] = phase
        if iterations > 1 and np.array_equal(new_labels, labels):
            labels = new_labels
            break
        labels = new_labels

    inertia = float(
        ((points - centroids[labels]) ** 2).sum()
    )
    return PhaseClustering(
        labels=labels,
        centroids=centroids,
        inertia=inertia,
        iterations=iterations,
    )


def representative_intervals(
    clustering: PhaseClustering, points: Optional[np.ndarray] = None
) -> np.ndarray:
    """One interval index per phase: the member closest to its centroid.

    With ``points`` omitted the lowest-index member is chosen (useful
    when the caller discarded the feature matrix); ties always resolve
    to the earliest interval so selection is order-stable.
    """
    reps = np.empty(clustering.k, dtype=np.int64)
    for phase in range(clustering.k):
        members = np.nonzero(clustering.labels == phase)[0]
        if points is None:
            reps[phase] = members[0]
            continue
        distances = (
            (points[members] - clustering.centroids[phase]) ** 2
        ).sum(axis=1)
        reps[phase] = members[int(distances.argmin())]
    return reps


def sample_intervals(
    clustering: PhaseClustering,
    points: Optional[np.ndarray],
    samples: int,
    seed: int = 0,
) -> "list[np.ndarray]":
    """Per phase: the representative plus seeded extra member samples.

    Each returned array leads with the phase's representative interval
    (closest to the centroid, exactly
    :func:`representative_intervals`) followed by up to ``samples - 1``
    further members drawn without replacement by a seeded generator --
    stratified sampling that captures within-phase variance the single
    centroid-nearest member would hide.  Deterministic for a given
    clustering and seed.
    """
    if samples <= 0:
        raise ConfigurationError("samples per phase must be positive")
    reps = representative_intervals(clustering, points)
    rng = np.random.default_rng(seed)
    out = []
    for phase in range(clustering.k):
        members = np.nonzero(clustering.labels == phase)[0]
        primary = reps[phase]
        rest = members[members != primary]
        extra = min(samples - 1, len(rest))
        if extra:
            chosen = rng.choice(rest, size=extra, replace=False)
            chosen.sort()
            out.append(np.concatenate(([primary], chosen)))
        else:
            out.append(np.array([primary], dtype=np.int64))
    return out
