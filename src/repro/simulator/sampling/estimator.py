"""Phase-weighted hit-ratio estimation from representative intervals.

The SimPoint recipe applied to memo simulation:

1. fingerprint every fixed-length interval of the trace
   (:mod:`.features`),
2. cluster the fingerprints into phases with seeded k-means
   (:mod:`.phases`),
3. simulate *one representative interval per phase* -- warm-up slice
   first, then the measured window -- through the execution-backend
   registry, and
4. report the cluster-weighted hit-ratio estimate together with an
   **oracle-bounded warm-up error**.

The error bound: each representative starts from a flushed bank plus
``plan.warmup`` events of functional warming, so the only events whose
hit/miss outcome can differ from the full run are those in the
measurement window whose operand pair never occurred since the warm-up
began -- with *any* pre-interval table state they could at most flip
from miss to hit.  Replaying the warm-up-plus-window slice through the
golden oracle's infinite table (:class:`repro.verify.oracle.OracleBank`
with ``infinite=True``) counts exactly those first-occurrence window
lookups, and their weighted fraction of eligible window lookups is an
upper bound on how much the estimate can undershoot the full run per
unit.  (Finite-table replacement noise is second-order and not covered
by the bound; the CI accuracy gate measures the realized end-to-end
error on every bundled program.)

The cold-start correction: those first-occurrence-in-slice window
lookups split into two populations that a single vectorized
previous-occurrence pass over the trace columns (no simulation, no
per-event Python) can tell apart.  Pairs that *never* occurred before
the slice miss in the full run too -- truncated warm-up already
simulates them faithfully.  Pairs that did occur earlier in the trace
were (replacement noise aside) resident in the full run's table, so the
truncated run's one cold miss per such pair is pure warm-up artifact;
``plan.correct_cold_start`` (default on) counts them back as hits.  The
correction models the default table semantics -- full-value tags,
trivial operands excluded from lookups, commutative operand matching
where the operation declares it -- and the oracle bound above still
brackets the corrected estimate: the correction moves the point
estimate from the "all unknown lookups miss" end of the bracket toward
the "resident pairs hit" end.

The control variate: the residency sweep behind the correction
(:func:`~repro.simulator.sampling.features.likely_resident`) is an
analytic replay of the bank's real geometry -- set mapping, ways, LRU
recency -- over the *whole* trace, so its per-unit hit prediction is
near-exact for the default table semantics.  With
``plan.control_variate`` (default on) the estimate becomes

    model(full trace) + sum over windows of
        weight * (measured(window) - model(window))

instead of a pure weighted window average.  Where the model is exact
the window residuals vanish and sampling variance with them; where the
model is biased (non-LRU replacement, exotic tag modes) the sampled
residuals correct it, because measured and model are differenced on
identical events.  The simulated windows thus audit the model instead
of carrying the whole estimate, which is what makes small sample
budgets robust.

All simulation goes through :func:`repro.core.backend.dispatch`, so the
estimator inherits every registered backend (``scalar`` | ``batched`` |
``fused`` | ``speculative``) and stays bit-identical across them -- the
parity suite asserts it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ... import obs
from ...core import backend as execution
from ...core.bank import MemoTableBank
from ...core.operations import Operation
from ...errors import ConfigurationError
from .features import FeatureConfig, interval_features
from .phases import cluster_phases, sample_intervals

__all__ = ["PhasePlan", "PhaseEstimate", "RepresentativeWindow",
           "estimate_phases"]


@dataclass(frozen=True)
class PhasePlan:
    """Phase-aware sampling parameters.

    ``phases``
        Target number of phases (k-means k; clamped to the interval
        count).
    ``interval``
        Interval length in events -- both the feature granularity and
        the measurement-window length.
    ``warmup``
        Functional-warming events simulated before each representative
        window (truncated at the start of the trace).
    ``seed``
        Seeds the k-means init and the pc-signature mixing.
    ``samples_per_phase``
        Measured windows per phase: the centroid-nearest
        representative plus seeded extra members, stratified so
        within-phase variance averages out instead of riding on one
        interval.
    ``correct_cold_start``
        Count window lookups whose operand pair occurred before the
        warm-up slice (and would therefore have been table-resident in
        the full run) as hits instead of cold misses (see module
        docstring).
    ``control_variate``
        Anchor the estimate on the analytic residency model of the
        full trace and let the simulated windows contribute only their
        measured-minus-model residuals (see module docstring).  Off,
        the estimate is the plain weighted window average.
    """

    phases: int = 4
    interval: int = 1000
    warmup: int = 250
    seed: int = 0
    samples_per_phase: int = 1
    correct_cold_start: bool = True
    control_variate: bool = True

    def __post_init__(self) -> None:
        if self.phases <= 0:
            raise ConfigurationError("phase count must be positive")
        if self.interval <= 0:
            raise ConfigurationError("interval must be positive")
        if self.warmup < 0:
            raise ConfigurationError("warmup must be non-negative")
        if self.samples_per_phase <= 0:
            raise ConfigurationError("samples per phase must be positive")


@dataclass
class RepresentativeWindow:
    """One simulated representative: which interval stands for a phase."""

    phase: int
    start: int
    stop: int
    weight: float
    #: Per-unit ``(eligible_lookups, hits)`` measured inside the window.
    measured: Dict[Operation, Tuple[int, int]] = field(default_factory=dict)
    #: Per-unit ``(eligible_lookups, infinite_misses)`` from the oracle
    #: replay of the warm-up + window slice (empty when bounding is off).
    oracle: Dict[Operation, Tuple[int, int]] = field(default_factory=dict)
    #: Per-unit count of window lookups counted back as hits by the
    #: cold-start correction (empty when the correction is off).
    cold_corrections: Dict[Operation, int] = field(default_factory=dict)
    #: Per-unit ``(eligible_lookups, hits)`` the analytic residency
    #: model predicts for this window (empty when the control variate
    #: is off).
    model: Dict[Operation, Tuple[int, int]] = field(default_factory=dict)


@dataclass
class PhaseEstimate:
    """Outcome of a phase-weighted sampled run."""

    plan: PhasePlan
    backend: str
    events_total: int
    #: Events dispatched through the execution backend (warm-up + windows).
    events_simulated: int
    #: Events inside measurement windows.
    events_measured: int
    #: Events replayed through the oracle for the warm-up bound.
    oracle_events: int
    intervals: int
    phases: int
    representatives: List[RepresentativeWindow]
    #: Cluster-weighted hit-ratio estimate per unit.
    hit_ratios: Dict[Operation, float]
    #: Upper bound on per-unit estimate undershoot from truncated warm-up.
    warmup_error_bound: Dict[Operation, float]
    #: The analytic residency model's own full-trace hit-ratio per unit
    #: (empty when the control variate is off).
    model_hit_ratios: Dict[Operation, float] = field(default_factory=dict)

    @property
    def speedup_factor(self) -> float:
        """Full-trace events over backend-simulated events."""
        if not self.events_simulated:
            return 1.0
        return self.events_total / self.events_simulated

    @property
    def work_reduction(self) -> float:
        """Full-trace events over *all* touched events (backend + oracle).

        This is the honest >10x figure the CI gate checks: the oracle
        replay is real per-event work even though it only feeds the
        error bound.
        """
        touched = self.events_simulated + self.oracle_events
        if not touched:
            return 1.0
        return self.events_total / touched

    @property
    def max_warmup_error_bound(self) -> float:
        if not self.warmup_error_bound:
            return 0.0
        return max(self.warmup_error_bound.values())

    def as_dict(self) -> Dict[str, object]:
        """JSON-able document (the serve job result / CLI --json body)."""
        return {
            "plan": {
                "phases": self.plan.phases,
                "interval": self.plan.interval,
                "warmup": self.plan.warmup,
                "seed": self.plan.seed,
                "samples_per_phase": self.plan.samples_per_phase,
                "correct_cold_start": self.plan.correct_cold_start,
                "control_variate": self.plan.control_variate,
            },
            "backend": self.backend,
            "events_total": self.events_total,
            "events_simulated": self.events_simulated,
            "events_measured": self.events_measured,
            "oracle_events": self.oracle_events,
            "intervals": self.intervals,
            "phases": self.phases,
            "speedup_factor": self.speedup_factor,
            "work_reduction": self.work_reduction,
            "representatives": [
                {
                    "phase": rep.phase,
                    "start": rep.start,
                    "stop": rep.stop,
                    "weight": rep.weight,
                }
                for rep in self.representatives
            ],
            "hit_ratios": {
                op.name: ratio for op, ratio in sorted(
                    self.hit_ratios.items(), key=lambda pair: pair[0].name
                )
            },
            "warmup_error_bound": {
                op.name: bound for op, bound in sorted(
                    self.warmup_error_bound.items(),
                    key=lambda pair: pair[0].name,
                )
            },
            "max_warmup_error_bound": self.max_warmup_error_bound,
            "model_hit_ratios": {
                op.name: ratio for op, ratio in sorted(
                    self.model_hit_ratios.items(),
                    key=lambda pair: pair[0].name,
                )
            },
        }


def _oracle_window_stats(
    batch,
    bank: MemoTableBank,
    warm_start: int,
    window_start: int,
    stop: int,
) -> Dict[Operation, Tuple[int, int]]:
    """Replay ``[warm_start, stop)`` through infinite oracle tables.

    Returns per-unit ``(eligible_window_lookups, infinite_misses)``:
    the misses are the window events whose operand pair first occurs
    inside the slice -- the only events truncated warm-up can have
    mis-simulated (see module docstring).
    """
    from ...verify.oracle import OracleBank

    sample_unit = next(iter(bank.units.values()))
    oracle = OracleBank(
        trivial_policy=sample_unit.trivial_policy,
        operations=tuple(bank.units),
        infinite=True,
    )
    marks: Dict[Operation, Tuple[int, int, int]] = {}
    for index in range(warm_start, stop):
        if index == window_start:
            marks = {
                op: (unit.table.lookups, unit.table.hits, unit.trivial_hits)
                for op, unit in oracle.units.items()
            }
        event = batch.event(index)
        operation = event.opcode.operation
        if operation is None or operation not in oracle.units:
            continue
        oracle.step(operation, event.a, event.b)
    if not marks:  # window_start == warm_start
        marks = {op: (0, 0, 0) for op in oracle.units}
    out: Dict[Operation, Tuple[int, int]] = {}
    for op, unit in oracle.units.items():
        lookups0, hits0, trivial0 = marks[op]
        lookups = unit.table.lookups - lookups0
        hits = unit.table.hits - hits0
        trivial_hits = unit.trivial_hits - trivial0
        out[op] = (lookups + trivial_hits, lookups - hits)
    return out


def estimate_phases(
    events,
    bank: Optional[MemoTableBank] = None,
    plan: Optional[PhasePlan] = None,
    backend: Optional[str] = None,
    bound_warmup: bool = True,
) -> PhaseEstimate:
    """Phase-weighted hit-ratio estimate of ``events``.

    ``events`` is anything with a columnar view (a
    :class:`~repro.isa.trace.Trace`, a
    :class:`~repro.isa.columns.ColumnBatch`) or a plain event sequence
    (converted once).  ``bank`` supplies the table geometry (fresh
    paper baseline by default); it is flushed before every
    representative so phase order cannot leak state between windows.
    ``bound_warmup=False`` skips the oracle replay (no error bound,
    less non-backend work).
    """
    if plan is None:
        plan = PhasePlan()
    if bank is None:
        bank = MemoTableBank.paper_baseline()
    batch = execution.as_batch(events)
    if batch is None:
        from ...isa.columns import ColumnBatch

        batch = ColumnBatch.from_events(events)
    total = len(batch)
    if not total:
        raise ConfigurationError("cannot estimate phases of an empty trace")

    with obs.span("sampling.estimate"):
        feature_config = FeatureConfig(
            interval=plan.interval, seed=plan.seed
        )
        features = interval_features(batch, feature_config, bank=bank)
        normalized = features.normalized()
        clustering = cluster_phases(
            normalized, plan.phases, seed=plan.seed
        )
        weights = clustering.weights()
        sampled = sample_intervals(
            clustering, normalized, plan.samples_per_phase, seed=plan.seed
        )

        impl_name = execution.resolve(backend).name
        # The per-event arrays were already computed for the
        # residency-rate feature columns; reuse them verbatim.
        prev, unit_of = features.prev, features.unit_of
        unit_ops, resident = features.ops, features.resident
        if plan.control_variate:
            # Attribute every event (lookups *and* trivial skips) to
            # its unit so the model's eligible counts line up with the
            # measured ``lookups + trivial_hits`` on identical events.
            from ...isa.opcodes import OPCODE_LIST

            op_index = {op: i for i, op in enumerate(unit_ops)}
            code_to_idx = np.full(len(OPCODE_LIST), -1, dtype=np.int64)
            for code, opcode in enumerate(OPCODE_LIST):
                operation = opcode.operation
                if operation is not None and operation in op_index:
                    code_to_idx[code] = op_index[operation]
            event_unit = code_to_idx[batch.views().opcode]
            model_totals: Dict[Operation, Tuple[int, int]] = {}
            for index, op in enumerate(unit_ops):
                lookups_t = int((unit_of == index).sum())
                resident_t = int(resident[unit_of == index].sum())
                trivial_t = int((event_unit == index).sum()) - lookups_t
                model_totals[op] = (
                    lookups_t + trivial_t, resident_t + trivial_t
                )
        simulated = 0
        measured_events = 0
        oracle_events = 0
        representatives: List[RepresentativeWindow] = []
        for phase in range(clustering.k):
            windows = sampled[phase]
            for which, interval_index in enumerate(windows):
                start, stop = features.bounds[int(interval_index)]
                warm_start = max(0, start - plan.warmup)
                bank.flush()
                if warm_start < start:
                    execution.dispatch(
                        batch, bank.units,
                        start=warm_start, stop=start, backend=backend,
                    )
                    simulated += start - warm_start
                before = {
                    op: (unit.table.stats.lookups, unit.table.stats.hits,
                         unit.stats.trivial_hits)
                    for op, unit in bank.units.items()
                }
                execution.dispatch(
                    batch, bank.units, start=start, stop=stop,
                    backend=backend,
                )
                simulated += stop - start
                measured_events += stop - start
                rep = RepresentativeWindow(
                    phase=phase,
                    start=start,
                    stop=stop,
                    weight=float(weights[phase]) / len(windows),
                )
                if plan.correct_cold_start:
                    # Window lookups whose key last occurred before the
                    # slice began: cold in the truncated run, resident
                    # in the full one (see module docstring).
                    window_prev = prev[start:stop]
                    cold = (
                        (window_prev >= 0)
                        & (window_prev < warm_start)
                        & resident[start:stop]
                    )
                    window_units = unit_of[start:stop]
                    for index, op in enumerate(unit_ops):
                        count = int((cold & (window_units == index)).sum())
                        if count:
                            rep.cold_corrections[op] = count
                if plan.control_variate:
                    window_units = unit_of[start:stop]
                    window_events = event_unit[start:stop]
                    window_resident = resident[start:stop]
                    for index, op in enumerate(unit_ops):
                        mine = window_units == index
                        lookups_w = int(mine.sum())
                        resident_w = int(window_resident[mine].sum())
                        trivial_w = (
                            int((window_events == index).sum()) - lookups_w
                        )
                        rep.model[op] = (
                            lookups_w + trivial_w, resident_w + trivial_w
                        )
                for op, unit in bank.units.items():
                    lookups0, hits0, trivial0 = before[op]
                    lookups = unit.table.stats.lookups - lookups0
                    hits = unit.table.stats.hits - hits0
                    trivial_hits = unit.stats.trivial_hits - trivial0
                    hits += rep.cold_corrections.get(op, 0)
                    rep.measured[op] = (lookups + trivial_hits,
                                        min(lookups, hits) + trivial_hits)
                if bound_warmup and which == 0:
                    # The oracle replay prices the warm-up bound on the
                    # phase's primary (centroid-nearest) window; extra
                    # stratified samples share their phase's bound.
                    rep.oracle = _oracle_window_stats(
                        batch, bank, warm_start, start, stop
                    )
                    oracle_events += stop - warm_start
                representatives.append(rep)

        hit_ratios: Dict[Operation, float] = {}
        bounds: Dict[Operation, float] = {}
        model_ratios: Dict[Operation, float] = {}
        for op in bank.units:
            num = den = 0.0
            if plan.control_variate:
                # Anchor on the analytic model's full-trace rates; the
                # windows below then contribute only their
                # measured-minus-model residual rates.
                model_eligible_t, model_hits_t = model_totals[op]
                num = model_hits_t / total
                den = model_eligible_t / total
                model_ratios[op] = (
                    model_hits_t / model_eligible_t
                    if model_eligible_t else 0.0
                )
            bound_num = bound_den = 0.0
            for rep in representatives:
                length = rep.stop - rep.start
                eligible, hits = rep.measured[op]
                if plan.control_variate:
                    model_eligible, model_hits = rep.model[op]
                    num += rep.weight * (hits - model_hits) / length
                    den += rep.weight * (eligible - model_eligible) / length
                else:
                    num += rep.weight * hits / length
                    den += rep.weight * eligible / length
                if rep.oracle:
                    oracle_eligible, cold = rep.oracle[op]
                    bound_num += rep.weight * cold / length
                    bound_den += rep.weight * oracle_eligible / length
            ratio = num / den if den > 0.0 else 0.0
            hit_ratios[op] = min(1.0, max(0.0, ratio))
            bounds[op] = bound_num / bound_den if bound_den else 0.0

    estimate = PhaseEstimate(
        plan=plan,
        backend=impl_name,
        events_total=total,
        events_simulated=simulated,
        events_measured=measured_events,
        oracle_events=oracle_events,
        intervals=len(features),
        phases=clustering.k,
        representatives=representatives,
        hit_ratios=hit_ratios,
        warmup_error_bound=bounds if bound_warmup else {},
        model_hit_ratios=model_ratios,
    )
    if obs.enabled():
        reg = obs.registry()
        reg.counter_add("sampling.runs")
        reg.counter_add("sampling.intervals", estimate.intervals)
        reg.counter_add("sampling.representatives",
                        len(estimate.representatives))
        reg.counter_add("sampling.events_simulated",
                        estimate.events_simulated)
        reg.counter_add("sampling.events_measured",
                        estimate.events_measured)
        reg.counter_add("sampling.oracle_events", estimate.oracle_events)
        reg.gauge_set("sampling.phases", float(estimate.phases))
        reg.gauge_set("sampling.speedup_factor", estimate.speedup_factor)
        reg.gauge_set("sampling.work_reduction", estimate.work_reduction)
        reg.gauge_set("sampling.max_warmup_error_bound",
                      estimate.max_warmup_error_bound)
        for op, ratio in estimate.hit_ratios.items():
            reg.gauge_set(f"sampling.hit_ratio.{op.name}", ratio)
    return estimate
