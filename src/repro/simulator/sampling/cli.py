"""``repro sample`` -- phase-aware sampled estimation from the terminal.

Runs a bundled program on the deterministic reference harness, then
estimates its per-unit MEMO-TABLE hit ratios from a handful of
phase-representative intervals (:func:`~repro.simulator.sampling.
estimate_phases`) instead of simulating the whole trace::

    repro sample --program sobel_gx --n 65536 --phases 16
    repro sample --program saxpy --backend fused --json -
    repro sample --program gamma_lut --compare-full

``--compare-full`` additionally simulates the full trace and prints the
per-unit absolute error of the sampled estimate -- the same check the
``bench-sampling`` CI gate enforces across every bundled program.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

__all__ = ["main_sample"]


def _build_parser() -> argparse.ArgumentParser:
    from ..sampling.estimator import PhasePlan

    defaults = PhasePlan()
    parser = argparse.ArgumentParser(
        prog="repro sample",
        description=(
            "Estimate per-unit memo hit ratios from phase-representative "
            "intervals instead of simulating the whole trace."
        ),
    )
    parser.add_argument(
        "--program",
        required=True,
        metavar="NAME",
        help="bundled ISA program to trace (see 'repro corpus ls' programs)",
    )
    parser.add_argument(
        "--n",
        type=int,
        default=65536,
        help="workload size handed to the program (default 65536)",
    )
    parser.add_argument(
        "--phases",
        type=int,
        default=16,
        help="target phase count for k-means (default 16)",
    )
    parser.add_argument(
        "--interval",
        type=int,
        default=250,
        help=f"interval length in events (default 250; plan default "
             f"{defaults.interval})",
    )
    parser.add_argument(
        "--warmup",
        type=int,
        default=500,
        help="functional-warming events before each window (default 500)",
    )
    parser.add_argument(
        "--samples-per-phase",
        type=int,
        default=4,
        help="measured windows per phase (default 4)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seeds clustering, window sampling, and signatures (default 0)",
    )
    parser.add_argument(
        "--backend",
        metavar="NAME",
        default=None,
        help=(
            "execution backend for the simulated windows (scalar | "
            "batched | fused | speculative; default batched)"
        ),
    )
    parser.add_argument(
        "--no-bound",
        action="store_true",
        help="skip the oracle replay (no warm-up error bound, less work)",
    )
    parser.add_argument(
        "--no-cold-start",
        action="store_true",
        help="disable the cold-start residency correction",
    )
    parser.add_argument(
        "--no-control-variate",
        action="store_true",
        help=(
            "disable the analytic-model control variate (plain weighted "
            "window average)"
        ),
    )
    parser.add_argument(
        "--compare-full",
        action="store_true",
        help="also simulate the full trace and report per-unit abs error",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the estimate document as JSON ('-' for stdout)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help=(
            "enable the metrics registry for this run and write its "
            "snapshot to PATH ('-' for stdout)"
        ),
    )
    return parser


def main_sample(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    from ... import obs
    from ...analysis.static.memo import reference_machine
    from ...core import backend as execution
    from ...core.bank import MemoTableBank
    from ...errors import ReproError
    from .estimator import PhasePlan, estimate_phases

    metrics_enabled = args.metrics_out is not None
    if metrics_enabled:
        obs.set_enabled(True)
        obs.registry().clear()
    try:
        try:
            plan = PhasePlan(
                phases=args.phases,
                interval=args.interval,
                warmup=args.warmup,
                seed=args.seed,
                samples_per_phase=args.samples_per_phase,
                correct_cold_start=not args.no_cold_start,
                control_variate=not args.no_control_variate,
            )
            machine = reference_machine(args.program, args.n)
            machine.run(max_steps=8_000_000)
            estimate = estimate_phases(
                machine.trace,
                plan=plan,
                backend=args.backend,
                bound_warmup=not args.no_bound,
            )
        except ReproError as exc:
            print(str(exc), file=sys.stderr)
            return 2

        document = estimate.as_dict()
        document["program"] = args.program
        document["n"] = args.n
        print(
            f"sample {args.program} (n={args.n}): "
            f"{estimate.events_total} events, {estimate.intervals} "
            f"intervals, {estimate.phases} phases, "
            f"{len(estimate.representatives)} windows "
            f"[backend={estimate.backend}]"
        )
        print(
            f"  simulated {estimate.events_simulated} + oracle "
            f"{estimate.oracle_events} events "
            f"-> work reduction {estimate.work_reduction:.1f}x"
        )
        full = None
        if args.compare_full:
            bank = MemoTableBank.paper_baseline()
            execution.dispatch(
                machine.trace, bank.units, backend=args.backend
            )
            full = {}
            for op, unit in bank.units.items():
                eligible = unit.stats.table.lookups + unit.stats.trivial_hits
                if eligible:
                    full[op] = unit.stats.hit_ratio
            document["full_hit_ratios"] = {
                op.name: ratio for op, ratio in sorted(
                    full.items(), key=lambda pair: pair[0].name
                )
            }
        worst = 0.0
        for op in sorted(estimate.hit_ratios, key=lambda op: op.name):
            ratio = estimate.hit_ratios[op]
            bound = estimate.warmup_error_bound.get(op)
            line = f"  {op.name:10s} est={ratio:.4f}"
            if bound is not None:
                line += f" warmup_bound={bound:.4f}"
            if full is not None and op in full:
                error = abs(ratio - full[op])
                worst = max(worst, error)
                line += f" full={full[op]:.4f} abs_err={error:.4f}"
            print(line)
        if full is not None:
            print(f"  worst abs error {worst:.4f}")

        if args.json is not None:
            payload = json.dumps(document, indent=2)
            if args.json == "-":
                print(payload)
            else:
                with open(args.json, "w", encoding="utf-8") as stream:
                    stream.write(payload + "\n")
                print(f"wrote {args.json}")
        if metrics_enabled:
            from ...obs.cli import write_snapshot

            write_snapshot(obs.registry().as_dict(), args.metrics_out)
    finally:
        if metrics_enabled:
            obs.set_enabled(None)
    return 0


if __name__ == "__main__":
    sys.exit(main_sample())
