"""``repro.simulator.sampling`` -- the sampling layer.

Two estimators over one idea: simulate a carefully chosen fraction of
the trace and report whole-trace MEMO-TABLE statistics with a bounded
error.

:mod:`.systematic`
    SMARTS-style periodic windows -- every ``interval`` events, a
    warm-up slice then a measured window (:func:`estimate_hit_ratios`).

:mod:`.features` / :mod:`.phases` / :mod:`.estimator`
    SimPoint-style phase-aware sampling -- per-interval feature
    vectors (opcode mix, operand-bit entropy, pc-region signature),
    seeded k-means phase clustering, and a weighted estimate from one
    representative interval per phase whose warm-up error is bounded
    against the oracle's infinite-table replay
    (:func:`estimate_phases`).

The old module path (``repro.simulator.sampling``) keeps working: the
systematic API is re-exported here unchanged.
"""

from .estimator import (
    PhaseEstimate,
    PhasePlan,
    RepresentativeWindow,
    estimate_phases,
)
from .features import (
    FeatureConfig,
    IntervalFeatures,
    interval_features,
    likely_resident,
    prior_lookup_index,
)
from .phases import (
    PhaseClustering,
    cluster_phases,
    representative_intervals,
    sample_intervals,
)
from .systematic import SampledEstimate, SamplingPlan, estimate_hit_ratios

__all__ = [
    "SamplingPlan",
    "SampledEstimate",
    "estimate_hit_ratios",
    "FeatureConfig",
    "IntervalFeatures",
    "interval_features",
    "likely_resident",
    "prior_lookup_index",
    "PhaseClustering",
    "cluster_phases",
    "representative_intervals",
    "sample_intervals",
    "PhasePlan",
    "PhaseEstimate",
    "RepresentativeWindow",
    "estimate_phases",
]
