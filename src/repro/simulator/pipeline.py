"""Cycle accounting for whole applications (section 3.3).

The paper's speedup indicator is "total cycle count executed by all
instructions", deliberately ignoring multiple issue and pipelining so
the measurement isolates the superfluous cycles the MEMO-TABLE removes.
This model therefore charges each dynamic instruction its latency:

* plain integer/branch/nop instructions: 1 cycle;
* FP add-class instructions: the machine's ``fp_add`` latency;
* loads/stores: the two-level cache hierarchy's access latency;
* memoizable operations: the full unit latency on the baseline machine,
  and the memoized unit's actual cycles (1 on a hit) on the enhanced
  machine -- both accumulated in a single pass, since a miss costs the
  enhanced machine exactly the baseline latency.

The accounting itself is performed by whichever execution backend the
registry (:mod:`repro.core.backend`) selects; this module keeps the
machine-model wiring and the report shape.  ``backend=`` pins a
backend by name, ``scalar=True`` is the legacy alias for the
reference backend -- all backends produce bit-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from .. import obs
from ..arch.latency import ProcessorModel
from ..core import backend as execution
from ..core.bank import MemoTableBank
from ..core.operations import Operation
from ..isa.opcodes import Opcode
from ..isa.trace import TraceEvent
from .cache import MemoryHierarchy, default_hierarchy

__all__ = ["CycleReport", "CycleModel"]


@dataclass
class CycleReport:
    """Cycle totals for one application run on one machine model."""

    machine: str = ""
    instructions: int = 0
    base_cycles: int = 0
    memo_cycles: int = 0
    cycles_by_opcode: Dict[Opcode, int] = field(default_factory=dict)
    counts_by_opcode: Dict[Opcode, int] = field(default_factory=dict)
    hit_ratios: Dict[Operation, float] = field(default_factory=dict)
    #: Region-speculation accounting (see
    #: :class:`repro.core.speculate.SpeculationStats`); only present
    #: when the run used the ``speculative`` backend.
    speculation: Optional[Dict[str, float]] = None

    @property
    def speedup(self) -> float:
        """Directly measured speedup: baseline cycles / memoized cycles."""
        if not self.memo_cycles:
            return 1.0
        return self.base_cycles / self.memo_cycles

    def fraction_enhanced(self, *opcodes: Opcode) -> float:
        """FE of Amdahl's law: cycles of the given classes / total cycles."""
        if not self.base_cycles:
            return 0.0
        return sum(self.cycles_by_opcode.get(op, 0) for op in opcodes) / (
            self.base_cycles
        )

    @property
    def cpi_base(self) -> float:
        return self.base_cycles / self.instructions if self.instructions else 0.0

    @property
    def cpi_memo(self) -> float:
        return self.memo_cycles / self.instructions if self.instructions else 0.0


class CycleModel:
    """Single-issue in-order cycle accounting over a trace."""

    def __init__(
        self,
        machine: ProcessorModel,
        bank: Optional[MemoTableBank] = None,
        hierarchy: Optional[MemoryHierarchy] = None,
        fp_add_latency: int = 3,
        scalar: bool = False,
        backend: Optional[str] = None,
    ) -> None:
        """``bank`` of None means the baseline machine (no MEMO-TABLES);
        cycle totals are then identical for base and memo columns.
        ``backend`` pins a registered execution backend by name;
        ``scalar`` is the legacy alias for ``backend="scalar"``."""
        self.machine = machine
        self.bank = bank
        self.hierarchy = hierarchy if hierarchy is not None else default_hierarchy()
        self.fp_add_latency = fp_add_latency
        self.backend = "scalar" if scalar and backend is None else backend
        if bank is not None:
            # The machine model owns the latencies; retune the bank's units.
            for op, unit in bank.units.items():
                unit.latency = machine.latency(op)

    def run(self, events: Iterable[TraceEvent]) -> CycleReport:
        """Charge every event; returns totals for base and memoized machines."""
        bank = self.bank
        instrumented = obs.enabled()
        if instrumented:
            before = (
                obs.unit_counter_snapshot(bank.units)
                if bank is not None
                else {}
            )
            with obs.span("cycle.run"):
                result = execution.dispatch(
                    events,
                    bank.units if bank is not None else None,
                    machine=self.machine,
                    hierarchy=self.hierarchy,
                    fp_add_latency=self.fp_add_latency,
                    backend=self.backend,
                )
            if bank is not None:
                obs.emit_unit_counters("cycle", bank.units, before)
            reg = obs.registry()
            reg.add_counters(
                "cycle",
                {
                    "instructions": result.instructions,
                    "base_cycles": result.base_cycles,
                    "memo_cycles": result.memo_cycles,
                },
            )
        else:
            result = execution.dispatch(
                events,
                bank.units if bank is not None else None,
                machine=self.machine,
                hierarchy=self.hierarchy,
                fp_add_latency=self.fp_add_latency,
                backend=self.backend,
            )
        speculation = getattr(result, "speculation", None)
        report = CycleReport(
            machine=self.machine.name,
            instructions=result.instructions,
            base_cycles=result.base_cycles,
            memo_cycles=result.memo_cycles,
            cycles_by_opcode=result.cycles_by_opcode,
            counts_by_opcode=result.counts,
            speculation=(
                speculation.as_dict() if speculation is not None else None
            ),
        )
        if bank is not None:
            report.hit_ratios = {
                op: unit.hit_ratio for op, unit in bank.units.items()
            }
        return report
