"""Cycle accounting for whole applications (section 3.3).

The paper's speedup indicator is "total cycle count executed by all
instructions", deliberately ignoring multiple issue and pipelining so
the measurement isolates the superfluous cycles the MEMO-TABLE removes.
This model therefore charges each dynamic instruction its latency:

* plain integer/branch/nop instructions: 1 cycle;
* FP add-class instructions: the machine's ``fp_add`` latency;
* loads/stores: the two-level cache hierarchy's access latency;
* memoizable operations: the full unit latency on the baseline machine,
  and the memoized unit's actual cycles (1 on a hit) on the enhanced
  machine -- both accumulated in a single pass, since a miss costs the
  enhanced machine exactly the baseline latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from ..arch.latency import ProcessorModel
from ..core.bank import MemoTableBank
from ..core.operations import Operation
from ..isa.opcodes import Opcode
from ..isa.trace import TraceEvent
from .cache import MemoryHierarchy, default_hierarchy

__all__ = ["CycleReport", "CycleModel"]


@dataclass
class CycleReport:
    """Cycle totals for one application run on one machine model."""

    machine: str = ""
    instructions: int = 0
    base_cycles: int = 0
    memo_cycles: int = 0
    cycles_by_opcode: Dict[Opcode, int] = field(default_factory=dict)
    counts_by_opcode: Dict[Opcode, int] = field(default_factory=dict)
    hit_ratios: Dict[Operation, float] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        """Directly measured speedup: baseline cycles / memoized cycles."""
        if not self.memo_cycles:
            return 1.0
        return self.base_cycles / self.memo_cycles

    def fraction_enhanced(self, *opcodes: Opcode) -> float:
        """FE of Amdahl's law: cycles of the given classes / total cycles."""
        if not self.base_cycles:
            return 0.0
        return sum(self.cycles_by_opcode.get(op, 0) for op in opcodes) / (
            self.base_cycles
        )

    @property
    def cpi_base(self) -> float:
        return self.base_cycles / self.instructions if self.instructions else 0.0

    @property
    def cpi_memo(self) -> float:
        return self.memo_cycles / self.instructions if self.instructions else 0.0


class CycleModel:
    """Single-issue in-order cycle accounting over a trace."""

    def __init__(
        self,
        machine: ProcessorModel,
        bank: Optional[MemoTableBank] = None,
        hierarchy: Optional[MemoryHierarchy] = None,
        fp_add_latency: int = 3,
    ) -> None:
        """``bank`` of None means the baseline machine (no MEMO-TABLES);
        cycle totals are then identical for base and memo columns."""
        self.machine = machine
        self.bank = bank
        self.hierarchy = hierarchy if hierarchy is not None else default_hierarchy()
        self.fp_add_latency = fp_add_latency
        if bank is not None:
            # The machine model owns the latencies; retune the bank's units.
            for op, unit in bank.units.items():
                unit.latency = machine.latency(op)

    def _plain_latency(self, event: TraceEvent) -> int:
        opcode = event.opcode
        if opcode.is_memory:
            address = event.address if event.address is not None else 0
            return self.hierarchy.access(address)
        if opcode is Opcode.FADD:
            return self.fp_add_latency
        return 1  # IALU, BRANCH, NOP

    def run(self, events: Iterable[TraceEvent]) -> CycleReport:
        """Charge every event; returns totals for base and memoized machines."""
        report = CycleReport(machine=self.machine.name)
        cycles_by_opcode: Dict[Opcode, int] = {}
        counts_by_opcode: Dict[Opcode, int] = {}
        base_total = 0
        memo_total = 0
        bank = self.bank
        for event in events:
            report.instructions += 1
            opcode = event.opcode
            counts_by_opcode[opcode] = counts_by_opcode.get(opcode, 0) + 1
            operation = opcode.operation  # cached on the enum member
            if operation is not None:
                if bank is not None and bank.supports(operation):
                    outcome = bank.units[operation].execute(event.a, event.b)
                    base = outcome.base_cycles
                    memo = outcome.cycles
                else:
                    base = memo = self.machine.latency(operation)
            else:
                base = memo = self._plain_latency(event)
            base_total += base
            memo_total += memo
            cycles_by_opcode[opcode] = cycles_by_opcode.get(opcode, 0) + base
        report.base_cycles = base_total
        report.memo_cycles = memo_total
        report.cycles_by_opcode = cycles_by_opcode
        report.counts_by_opcode = counts_by_opcode
        if bank is not None:
            report.hit_ratios = {
                op: unit.hit_ratio for op, unit in bank.units.items()
            }
        return report
