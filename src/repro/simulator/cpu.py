"""Whole-machine facade: trace in, hit ratios + Amdahl numbers out.

This is the highest-level simulation entry point: given a trace and a
machine model it produces everything a speedup table row needs (hit
ratio, Fraction Enhanced, Speedup Enhanced, overall speedup), using the
same per-instruction cycle accounting as the paper (section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

from ..analysis.amdahl import amdahl_speedup, speedup_enhanced
from ..arch.latency import ProcessorModel
from ..core.bank import MemoTableBank
from ..core.config import MemoTableConfig
from ..core.operations import Operation
from ..isa.opcodes import operation_to_opcode
from ..isa.trace import TraceEvent
from .cache import MemoryHierarchy
from .pipeline import CycleModel, CycleReport

__all__ = ["SpeedupRow", "MemoizedCPU"]


@dataclass(frozen=True)
class SpeedupRow:
    """One row of a speedup table (Tables 11-13)."""

    app: str
    machine: str
    hit_ratio: float
    fraction_enhanced: float
    speedup_enhanced: float
    speedup: float
    measured_speedup: float  # direct base/memo cycle ratio, for cross-check


class MemoizedCPU:
    """A machine model with MEMO-TABLES on chosen operation classes."""

    def __init__(
        self,
        machine: ProcessorModel,
        memoized: Sequence[Operation] = (Operation.FP_MUL, Operation.FP_DIV),
        config: Optional[MemoTableConfig] = None,
        hierarchy: Optional[MemoryHierarchy] = None,
        scalar: bool = False,
        backend: Optional[str] = None,
    ) -> None:
        self.machine = machine
        self.memoized = tuple(memoized)
        self.bank = MemoTableBank.paper_baseline(
            config=config,
            operations=self.memoized,
            latencies=machine.latencies(),
        )
        self.model = CycleModel(
            machine,
            bank=self.bank,
            hierarchy=hierarchy,
            scalar=scalar,
            backend=backend,
        )

    def run(self, events: Iterable[TraceEvent]) -> CycleReport:
        """Run one application trace through the cycle model."""
        return self.model.run(events)

    def speedup_row(
        self,
        app: str,
        events: Iterable[TraceEvent],
        overhead_factor: float = 0.0,
    ) -> Tuple[SpeedupRow, CycleReport]:
        """Produce one Amdahl table row for ``app``.

        FE is the fraction of baseline cycles spent in the memoized
        operation classes; SE is derived from the blended hit ratio and
        latency over those classes; the reported speedup is Amdahl's
        combination, with the directly measured cycle ratio alongside.

        ``overhead_factor`` models the program around the traced kernel
        (startup, argument parsing, image file I/O -- the paper traces
        whole Khoros binaries, not inner loops) as that multiple of the
        kernel's baseline cycles, identical on both machines.  It
        dilutes FE without touching hit ratios or SE.
        """
        report = self.run(events)
        overhead = int(report.base_cycles * overhead_factor)
        opcodes = tuple(operation_to_opcode(op) for op in self.memoized)
        if report.base_cycles + overhead:
            fe = sum(
                report.cycles_by_opcode.get(op, 0) for op in opcodes
            ) / (report.base_cycles + overhead)
        else:
            fe = 0.0

        # Blend the per-class hit ratios and latencies into one SE by
        # weighting with each class's baseline cycles (exactly what the
        # combined Table 13 does implicitly).
        class_cycles = {
            op: report.cycles_by_opcode.get(operation_to_opcode(op), 0)
            for op in self.memoized
        }
        total_class = sum(class_cycles.values())
        if total_class:
            enhanced_cycles = 0.0
            for op in self.memoized:
                hr = report.hit_ratios.get(op, 0.0)
                latency = self.machine.latency(op)
                count = class_cycles[op] / latency if latency else 0.0
                enhanced_cycles += count * ((1 - hr) * latency + hr)
            se = total_class / enhanced_cycles if enhanced_cycles else 1.0
        else:
            se = 1.0

        hit = _blended_hit_ratio(report, self.memoized)
        measured = (report.base_cycles + overhead) / max(
            report.memo_cycles + overhead, 1
        )
        row = SpeedupRow(
            app=app,
            machine=self.machine.name,
            hit_ratio=hit,
            fraction_enhanced=fe,
            speedup_enhanced=se,
            speedup=amdahl_speedup(fe, se),
            measured_speedup=measured,
        )
        return row, report


def _blended_hit_ratio(report: CycleReport, memoized: Sequence[Operation]) -> float:
    """Operation-count-weighted hit ratio over the memoized classes."""
    total = 0
    hits = 0.0
    for op in memoized:
        count = report.counts_by_opcode.get(operation_to_opcode(op), 0)
        total += count
        hits += count * report.hit_ratios.get(op, 0.0)
    return hits / total if total else 0.0
