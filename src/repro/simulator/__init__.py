"""Trace-driven simulators: memo-table statistics and cycle accounting."""

from .cache import Cache, MemoryHierarchy, default_hierarchy
from .cpu import MemoizedCPU, SpeedupRow
from .hazard import HazardModel, HazardReport, hazard_speedup
from .pipeline import CycleModel, CycleReport
from .shade import ShadeSimulator, SimulationReport

__all__ = [
    "Cache",
    "MemoryHierarchy",
    "default_hierarchy",
    "MemoizedCPU",
    "SpeedupRow",
    "HazardModel",
    "HazardReport",
    "hazard_speedup",
    "CycleModel",
    "CycleReport",
    "ShadeSimulator",
    "SimulationReport",
]
