"""Hazard-aware pipeline model (sections 2.2-2.3 dynamics).

The paper's headline cycle counts deliberately ignore pipelining (see
:mod:`repro.simulator.pipeline`), but its *architecture* discussion is
about hazards: a non-pipelined divider "throws a wrench" into the
pipeline with structural and data hazards, MEMO-TABLE hits cut the
latency dependent instructions wait on, and a table port can stand in
for a duplicated unit to raise the issue rate.

This model executes a dependency-annotated trace (the recorder attaches
``dst``/``srcs`` value ids) on an in-order machine with:

* configurable issue width (1 = scalar, 2+ = superscalar);
* RAW hazards: an instruction issues only when its source values are
  ready;
* structural hazards: iterative units (divide, sqrt, reciprocal,
  log/sin/cos) are busy until they complete; multipliers and adders are
  pipelined with single-cycle initiation;
* loads/stores through the two-level cache hierarchy;
* optionally, a MEMO-TABLE bank -- hits complete in one cycle and
  *release the iterative unit immediately* (the unit "is aborted and
  signals it is free", section 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from ..arch.latency import ProcessorModel
from ..core import backend as execution
from ..core.bank import MemoTableBank
from ..core.operations import Operation
from ..isa.opcodes import Opcode
from ..isa.trace import TraceEvent
from .cache import MemoryHierarchy, default_hierarchy

__all__ = ["HazardReport", "HazardModel", "NON_PIPELINED"]

#: Operations whose units are iterative (not pipelined): a new operation
#: cannot start until the previous one leaves the unit.  Matches the
#: paper's Table 1 discussion ("none of these processors pipeline their
#: division units").
NON_PIPELINED = frozenset(
    {
        Operation.FP_DIV,
        Operation.INT_DIV,
        Operation.FP_SQRT,
        Operation.FP_RECIP,
        Operation.FP_LOG,
        Operation.FP_SIN,
        Operation.FP_COS,
    }
)


@dataclass
class HazardReport:
    """Timing outcome of one hazard-aware run."""

    machine: str = ""
    issue_width: int = 1
    instructions: int = 0
    total_cycles: int = 0
    raw_stall_cycles: int = 0
    structural_stall_cycles: int = 0
    issue_slots_used: int = 0
    hit_ratios: Dict[Operation, float] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """Instructions per cycle actually achieved."""
        if not self.total_cycles:
            return 0.0
        return self.instructions / self.total_cycles

    @property
    def stall_fraction(self) -> float:
        """Fraction of issue delay attributable to hazards."""
        if not self.total_cycles:
            return 0.0
        return (
            self.raw_stall_cycles + self.structural_stall_cycles
        ) / self.total_cycles


class HazardModel:
    """In-order, multi-issue, hazard-tracking trace executor."""

    def __init__(
        self,
        machine: ProcessorModel,
        bank: Optional[MemoTableBank] = None,
        hierarchy: Optional[MemoryHierarchy] = None,
        issue_width: int = 1,
        fp_add_latency: int = 3,
    ) -> None:
        if issue_width < 1:
            raise ValueError(f"issue width must be >= 1, got {issue_width}")
        self.machine = machine
        self.bank = bank
        self.hierarchy = hierarchy if hierarchy is not None else default_hierarchy()
        self.issue_width = issue_width
        self.fp_add_latency = fp_add_latency
        if bank is not None:
            for op, unit in bank.units.items():
                unit.latency = machine.latency(op)

    def _latency(self, event: TraceEvent) -> int:
        """Latency of one event on this machine (no memoization)."""
        opcode = event.opcode
        operation = opcode.operation
        if operation is not None:
            return self.machine.latency(operation)
        if opcode.is_memory:
            return self.hierarchy.access(event.address or 0)
        if opcode is Opcode.FADD:
            return self.fp_add_latency
        return 1

    def run(self, events: Iterable[TraceEvent]) -> HazardReport:
        report = HazardReport(
            machine=self.machine.name, issue_width=self.issue_width
        )
        ready: Dict[int, int] = {}          # value id -> cycle available
        unit_free: Dict[Operation, int] = {}  # iterative unit -> free cycle
        bank = self.bank
        cycle = 0            # cycle of the previous issue (in-order floor)
        slots_left = self.issue_width
        last_completion = 0

        for event in events:
            report.instructions += 1
            operation = event.opcode.operation

            # Resolve the execution latency (memoized or not) first; the
            # lookup happens in parallel with issue, so a hit is known
            # when the operation would enter the unit.  Stall resolution
            # needs each event's outcome before the next issues, so this
            # model probes one event at a time (execution.probe_one), not in
            # opcode batches.
            hit = False
            if operation is not None and bank is not None and bank.supports(
                operation
            ):
                outcome = execution.probe_one(
                    bank.units[operation], event.a, event.b
                )
                latency = outcome.cycles
                hit = outcome.hit
            else:
                latency = self._latency(event)

            # In-order issue: no earlier than the previous instruction.
            earliest = cycle
            if slots_left == 0:
                earliest = cycle + 1

            # RAW hazard: wait for source values.
            operand_ready = 0
            for src in event.srcs:
                when = ready.get(src, 0)
                if when > operand_ready:
                    operand_ready = when
            raw_wait = max(0, operand_ready - earliest)

            # Structural hazard: iterative unit still busy.  A memo hit
            # bypasses the unit entirely (the unit is aborted/free).
            structural_wait = 0
            uses_iterative = (
                operation in NON_PIPELINED and not hit
            )
            if uses_iterative:
                free_at = unit_free.get(operation, 0)
                structural_wait = max(0, free_at - (earliest + raw_wait))

            issue_at = earliest + raw_wait + structural_wait
            if issue_at > cycle:
                slots_left = self.issue_width
            slots_left -= 1
            cycle = issue_at

            completion = issue_at + latency
            if event.dst is not None:
                ready[event.dst] = completion
            if uses_iterative:
                unit_free[operation] = completion
            if completion > last_completion:
                last_completion = completion

            report.raw_stall_cycles += raw_wait
            report.structural_stall_cycles += structural_wait
            report.issue_slots_used += 1

        report.total_cycles = last_completion
        if bank is not None:
            report.hit_ratios = {
                op: unit.hit_ratio for op, unit in bank.units.items()
            }
        return report


def hazard_speedup(
    machine: ProcessorModel,
    events,
    memoized=(Operation.FP_MUL, Operation.FP_DIV),
    issue_width: int = 1,
) -> Dict[str, float]:
    """Convenience: run a trace with and without MEMO-TABLES.

    Returns baseline/memoized cycle counts and their ratio under the
    hazard-aware model.  ``events`` must be re-iterable (a list/Trace).
    """
    baseline = HazardModel(machine, issue_width=issue_width).run(events)
    bank = MemoTableBank.paper_baseline(
        operations=memoized, latencies=machine.latencies()
    )
    memo = HazardModel(machine, bank=bank, issue_width=issue_width).run(events)
    return {
        "baseline_cycles": baseline.total_cycles,
        "memo_cycles": memo.total_cycles,
        "speedup": (
            baseline.total_cycles / memo.total_cycles
            if memo.total_cycles
            else 1.0
        ),
        "baseline_ipc": baseline.ipc,
        "memo_ipc": memo.ipc,
    }
