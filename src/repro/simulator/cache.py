"""Two-level cache hierarchy for the cycle-count simulator.

Section 3.3: "the simulator was enhanced to incorporate a memory
hierarchy of two caches" so that application cycle counts (the
denominator of Fraction Enhanced) include realistic memory stalls.

The model is a classic write-allocate set-associative cache pair
(LRU by default, FIFO selectable per level -- DEW-style streaming
access patterns distinguish the two); addresses come from the workload
recorders.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import ConfigurationError

__all__ = ["Cache", "MemoryHierarchy", "default_hierarchy"]


#: Replacement disciplines a cache level understands.
REPLACEMENTS = ("lru", "fifo")


class Cache:
    """One level of set-associative cache (LRU or FIFO replacement)."""

    def __init__(
        self,
        name: str,
        size_bytes: int,
        line_bytes: int = 32,
        associativity: int = 1,
        hit_latency: int = 1,
        replacement: str = "lru",
    ) -> None:
        if size_bytes <= 0 or size_bytes % (line_bytes * associativity):
            raise ConfigurationError(
                f"{name}: size {size_bytes} not divisible into "
                f"{associativity}-way sets of {line_bytes}-byte lines"
            )
        if line_bytes & (line_bytes - 1):
            raise ConfigurationError(f"{name}: line size must be a power of two")
        if replacement not in REPLACEMENTS:
            raise ConfigurationError(
                f"{name}: unknown replacement {replacement!r} "
                f"(one of {', '.join(REPLACEMENTS)})"
            )
        self.name = name
        self.replacement = replacement
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.associativity = associativity
        self.hit_latency = hit_latency
        self.n_sets = size_bytes // (line_bytes * associativity)
        if self.n_sets & (self.n_sets - 1):
            raise ConfigurationError(f"{name}: set count must be a power of two")
        self._offset_bits = line_bytes.bit_length() - 1
        # Each set is an ordered list of line tags: recency order under
        # LRU (front = MRU), insertion order under FIFO (front =
        # newest); either way ``pop()`` takes the victim.
        self._sets: List[List[int]] = [[] for _ in range(self.n_sets)]
        self.accesses = 0
        self.hits = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def _locate(self, address: int) -> "tuple[int, int]":
        line = address >> self._offset_bits
        return line % self.n_sets, line // self.n_sets

    def access(self, address: int) -> bool:
        """Reference ``address``; returns True on a hit.  Misses allocate."""
        self.accesses += 1
        set_index, tag = self._locate(address)
        ways = self._sets[set_index]
        if tag in ways:
            if self.replacement == "lru":
                # FIFO leaves the order alone: a hit must not extend a
                # resident line's lifetime.
                ways.remove(tag)
                ways.insert(0, tag)
            self.hits += 1
            return True
        ways.insert(0, tag)
        if len(ways) > self.associativity:
            ways.pop()
        return False

    def flush(self) -> None:
        self._sets = [[] for _ in range(self.n_sets)]


class MemoryHierarchy:
    """L1 + L2 + main memory; returns access latency in cycles."""

    def __init__(
        self,
        l1: Optional[Cache] = None,
        l2: Optional[Cache] = None,
        memory_latency: int = 30,
    ) -> None:
        self.l1 = l1 if l1 is not None else Cache("L1", 8 * 1024, 32, 1, 1)
        self.l2 = l2 if l2 is not None else Cache("L2", 128 * 1024, 32, 4, 6)
        self.memory_latency = memory_latency

    def access(self, address: int) -> int:
        """Latency (cycles) of one load/store to ``address``."""
        if self.l1.access(address):
            return self.l1.hit_latency
        if self.l2.access(address):
            return self.l2.hit_latency
        return self.memory_latency

    def stats(self) -> Dict[str, float]:
        return {
            "l1_accesses": self.l1.accesses,
            "l1_hit_ratio": self.l1.hit_ratio,
            "l2_accesses": self.l2.accesses,
            "l2_hit_ratio": self.l2.hit_ratio,
        }

    def flush(self) -> None:
        self.l1.flush()
        self.l2.flush()


def default_hierarchy() -> MemoryHierarchy:
    """The hierarchy used by the paper-reproduction experiments.

    8KB direct-mapped L1 with 32-byte lines (the example geometry of
    section 2.4), 128KB 4-way L2, 30-cycle memory.
    """
    return MemoryHierarchy()
