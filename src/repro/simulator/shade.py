"""Trace-driven memo-table statistics collection (the Shade substitute).

The paper used Shade to break on multiply/divide instructions, capture
register operands, and feed software MEMO-TABLES.  Here the equivalent
pass consumes :class:`~repro.isa.trace.TraceEvent` streams: memoizable
events are dispatched to a :class:`~repro.core.bank.MemoTableBank`, and
every event contributes to the instruction frequency breakdown.

This front-end is a thin consumer of the execution-backend registry
(:mod:`repro.core.backend`): ``backend="fused"`` (or ``repro
--backend fused`` / ``REPRO_BACKEND``) picks a registered kernel by
name, ``scalar=True`` is the legacy alias for the reference backend,
and with neither the process-wide selection applies.  Every backend
produces bit-identical statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from .. import obs
from ..core import backend as execution
from ..core.bank import MemoTableBank
from ..core.operations import Operation
from ..core.stats import UnitStats
from ..isa.opcodes import Opcode
from ..isa.trace import TraceEvent

__all__ = ["SimulationReport", "ShadeSimulator"]


@dataclass
class SimulationReport:
    """What one simulated run produced."""

    instructions: int = 0
    breakdown: Dict[Opcode, int] = field(default_factory=dict)
    unit_stats: Dict[Operation, UnitStats] = field(default_factory=dict)
    mismatches: int = 0  # memo result differed from traced result (validation)
    #: Region-speculation accounting (commit/abort/guard counters and
    #: rates, see :class:`repro.core.speculate.SpeculationStats`); only
    #: present when the run used the ``speculative`` backend.
    speculation: Optional[Dict[str, float]] = None

    def hit_ratio(self, op: Operation) -> float:
        """MEMO-TABLE hit ratio for one operation class."""
        stats = self.unit_stats.get(op)
        return stats.hit_ratio if stats is not None else 0.0

    def operation_count(self, op: Operation) -> int:
        stats = self.unit_stats.get(op)
        return stats.operations if stats is not None else 0

    def frequency(self, opcode: Opcode) -> float:
        """Dynamic frequency of one opcode class."""
        if not self.instructions:
            return 0.0
        return self.breakdown.get(opcode, 0) / self.instructions


class ShadeSimulator:
    """Instruction-level trace processor feeding MEMO-TABLES."""

    def __init__(
        self,
        bank: Optional[MemoTableBank] = None,
        validate: bool = False,
        scalar: bool = False,
        backend: Optional[str] = None,
    ) -> None:
        """``validate`` cross-checks memoized results against the traced
        results (exact for full-value tags; mantissa-mode hits may differ
        by rounding of the exponent fix-up and are checked loosely).
        ``backend`` pins a registered execution backend by name;
        ``scalar`` is the legacy alias for ``backend="scalar"``."""
        self.bank = bank if bank is not None else MemoTableBank.paper_baseline()
        self.validate = validate
        self.backend = "scalar" if scalar and backend is None else backend

    def run(self, events: Iterable[TraceEvent]) -> SimulationReport:
        """Consume a trace; returns statistics.  Tables persist across runs."""
        if obs.enabled():
            before = obs.unit_counter_snapshot(self.bank.units)
            with obs.span("shade.run"):
                report = execution.dispatch(
                    events,
                    self.bank.units,
                    validate=self.validate,
                    backend=self.backend,
                )
            obs.emit_unit_counters("sim", self.bank.units, before)
        else:
            report = execution.dispatch(
                events,
                self.bank.units,
                validate=self.validate,
                backend=self.backend,
            )
        speculation = getattr(report, "speculation", None)
        return SimulationReport(
            instructions=report.instructions,
            breakdown=report.counts,
            unit_stats={op: unit.stats for op, unit in self.bank.units.items()},
            mismatches=report.mismatches,
            speculation=(
                speculation.as_dict() if speculation is not None else None
            ),
        )


#: Retained name: the validation comparison now lives in the kernel
#: (re-exported through the backend facade).
_values_match = execution.values_match
