"""Trace-driven memo-table statistics collection (the Shade substitute).

The paper used Shade to break on multiply/divide instructions, capture
register operands, and feed software MEMO-TABLES.  Here the equivalent
loop consumes :class:`~repro.isa.trace.TraceEvent` streams: memoizable
events are dispatched to a :class:`~repro.core.bank.MemoTableBank`, and
every event contributes to the instruction frequency breakdown.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from ..core.bank import MemoTableBank
from ..core.operations import Operation
from ..core.stats import UnitStats
from ..isa.opcodes import Opcode
from ..isa.trace import TraceEvent

__all__ = ["SimulationReport", "ShadeSimulator"]


@dataclass
class SimulationReport:
    """What one simulated run produced."""

    instructions: int = 0
    breakdown: Dict[Opcode, int] = field(default_factory=dict)
    unit_stats: Dict[Operation, UnitStats] = field(default_factory=dict)
    mismatches: int = 0  # memo result differed from traced result (validation)

    def hit_ratio(self, op: Operation) -> float:
        """MEMO-TABLE hit ratio for one operation class."""
        stats = self.unit_stats.get(op)
        return stats.hit_ratio if stats is not None else 0.0

    def operation_count(self, op: Operation) -> int:
        stats = self.unit_stats.get(op)
        return stats.operations if stats is not None else 0

    def frequency(self, opcode: Opcode) -> float:
        """Dynamic frequency of one opcode class."""
        if not self.instructions:
            return 0.0
        return self.breakdown.get(opcode, 0) / self.instructions


class ShadeSimulator:
    """Instruction-level trace processor feeding MEMO-TABLES."""

    def __init__(self, bank: Optional[MemoTableBank] = None, validate: bool = False) -> None:
        """``validate`` cross-checks memoized results against the traced
        results (exact for full-value tags; mantissa-mode hits may differ
        by rounding of the exponent fix-up and are checked loosely)."""
        self.bank = bank if bank is not None else MemoTableBank.paper_baseline()
        self.validate = validate

    def run(self, events: Iterable[TraceEvent]) -> SimulationReport:
        """Consume a trace; returns statistics.  Tables persist across runs."""
        breakdown: Counter = Counter()
        instructions = 0
        mismatches = 0
        units = self.bank.units
        validate = self.validate
        for event in events:
            instructions += 1
            opcode = event.opcode
            breakdown[opcode] += 1
            operation = opcode.operation  # cached on the enum member
            if operation is None:
                continue
            unit = units.get(operation)
            if unit is None:
                continue
            outcome = unit.execute(event.a, event.b)
            if validate and not _values_match(outcome.value, event.result):
                mismatches += 1
        return SimulationReport(
            instructions=instructions,
            breakdown=dict(breakdown),
            unit_stats={op: unit.stats for op, unit in self.bank.units.items()},
            mismatches=mismatches,
        )


def _values_match(computed, traced, rel: float = 1e-12) -> bool:
    if computed == traced:
        return True
    try:
        if computed != computed and traced != traced:  # both NaN
            return True
        return abs(computed - traced) <= rel * max(abs(computed), abs(traced))
    except (TypeError, OverflowError):
        return False
