"""Workload suites and the instrumentation that traces them."""

from .jpegmini import jpeg_roundtrip, quant_table
from .perfect import PERFECT_APPS, perfect_names, run_perfect
from .recorder import OperationRecorder, TrackedArray
from .speccfp import SPECCFP_APPS, run_speccfp, speccfp_names
from .transcendental import TRANSCENDENTAL_KERNELS, run_transcendental

__all__ = [
    "jpeg_roundtrip",
    "quant_table",
    "PERFECT_APPS",
    "perfect_names",
    "run_perfect",
    "OperationRecorder",
    "TrackedArray",
    "SPECCFP_APPS",
    "run_speccfp",
    "speccfp_names",
    "TRANSCENDENTAL_KERNELS",
    "run_transcendental",
]
