"""vgef -- edge detection.

Table 4: "Edge detection."  A float-weighted gradient operator pair
(Prewitt-style) with integer addressing arithmetic; magnitude is the sum
of absolute responses.  No division appears (Table 7: vgef fdiv '-').
"""

from __future__ import annotations

import numpy as np

from ..recorder import OperationRecorder
from ._lib import convolve_at, track_image

_PX = ((-1 / 3, 0.0, 1 / 3), (-1 / 3, 0.0, 1 / 3), (-1 / 3, 0.0, 1 / 3))
_PY = ((-1 / 3, -1 / 3, -1 / 3), (0.0, 0.0, 0.0), (1 / 3, 1 / 3, 1 / 3))


def run(recorder: OperationRecorder, image: np.ndarray) -> np.ndarray:
    pixels = track_image(recorder, image)
    height, width = pixels.shape
    out = recorder.new_array((height, width))
    for i in recorder.loop(range(1, height - 1)):
        recorder.imul(i, width)
        for j in recorder.loop(range(1, width - 1)):
            recorder.imul(j, 8)  # byte offset of the window row
            gx = convolve_at(recorder, pixels, i, j, _PX)
            gy = convolve_at(recorder, pixels, i, j, _PY)
            out[i, j] = recorder.fadd(abs(gx), abs(gy))
    return out.array
