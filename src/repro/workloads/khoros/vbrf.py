"""vbrf -- band-reject filtering in the frequency domain.

Table 4: "Band-reject filtering in the frequency domain."  Each 4x4
block goes through a separable DCT, coefficients inside the rejected
radial band are attenuated by ``c / (1 + distance)`` (one fdiv each),
and the block is transformed back.  The basis multiplications dominate:
a fixed 16-value cosine table against quantised pixels.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..recorder import OperationRecorder
from ._lib import track_image, windows

_BLOCK = 4


def _dct_basis(n: int) -> List[List[float]]:
    basis = []
    for u in range(n):
        scale = math.sqrt(1.0 / n) if u == 0 else math.sqrt(2.0 / n)
        # Round the basis like a fixed-point implementation would: the
        # coefficient ROM stores limited-precision constants.
        basis.append(
            [round(scale * math.cos((2 * i + 1) * u * math.pi / (2 * n)), 4)
             for i in range(n)]
        )
    return basis


_BASIS = _dct_basis(_BLOCK)


def _transform_rows(recorder, block, basis):
    n = len(block)
    out = [[0.0] * n for _ in range(n)]
    for i in range(n):
        for u in range(n):
            acc = 0.0
            for j in range(n):
                acc = recorder.fadd(acc, recorder.fmul(block[i][j], basis[u][j]))
            out[i][u] = acc
    return out


def _transform_cols(recorder, block, basis):
    n = len(block)
    out = [[0.0] * n for _ in range(n)]
    for j in range(n):
        for u in range(n):
            acc = 0.0
            for i in range(n):
                acc = recorder.fadd(acc, recorder.fmul(block[i][j], basis[u][i]))
            out[u][j] = acc
    return out


def _quantize(coeffs):
    """JPEG-style coefficient quantization (to integer steps).

    Real frequency-domain pipelines quantize transform coefficients;
    it is also what makes the attenuation divisions memoizable -- the
    dividend universe collapses to a few hundred integers.
    """
    n = len(coeffs)
    for u in range(n):
        for v in range(n):
            coeffs[u][v] = float(round(coeffs[u][v]))
    return coeffs


def _attenuate(recorder, coeffs, low: float, high: float):
    """Divide band coefficients by 1 + their distance into the band."""
    n = len(coeffs)
    for u in range(n):
        for v in range(n):
            radius = float(u * u + v * v)
            if low <= radius <= high:
                depth = 1.0 + min(radius - low, high - radius)
                coeffs[u][v] = recorder.fdiv(coeffs[u][v], depth)
    return coeffs


_INVERSE = [[_BASIS[i][j] for i in range(_BLOCK)] for j in range(_BLOCK)]


def run(
    recorder: OperationRecorder,
    image: np.ndarray,
    band_low: float = 2.0,
    band_high: float = 10.0,
) -> np.ndarray:
    pixels = track_image(recorder, image)
    height, width = pixels.shape
    out = recorder.new_array((height, width))
    for top, left, th, tw in recorder.loop(
        list(windows((height, width), _BLOCK))
    ):
        if th < _BLOCK or tw < _BLOCK:
            continue
        recorder.imul(top, width)
        block = [
            [pixels[top + i, left + j] for j in range(_BLOCK)]
            for i in range(_BLOCK)
        ]
        coeffs = _transform_cols(recorder, _transform_rows(recorder, block, _BASIS), _BASIS)
        coeffs = _quantize(coeffs)
        coeffs = _attenuate(recorder, coeffs, band_low, band_high)
        spatial = _transform_cols(
            recorder, _transform_rows(recorder, coeffs, _INVERSE), _INVERSE
        )
        for i in range(_BLOCK):
            for j in range(_BLOCK):
                out[top + i, left + j] = spatial[i][j]
    return out.array
