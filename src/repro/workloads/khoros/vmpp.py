"""vmpp -- 2-D information from COMPLEX images.

Table 4: "2-D information from COMPLEX images."  The image's even/odd
rows are taken as real/imaginary planes; per complex sample the kernel
extracts power, magnitude and normalised phase -- multiply-heavy with a
division per sample.
"""

from __future__ import annotations

import numpy as np

from ..recorder import OperationRecorder
from ._lib import atan2_approx, newton_sqrt, track_image


def run(recorder: OperationRecorder, image: np.ndarray) -> np.ndarray:
    pixels = track_image(recorder, image)
    height, width = pixels.shape
    pairs = height // 2
    out = recorder.new_array((pairs, width, 3))
    for k in recorder.loop(range(pairs)):
        for j in recorder.loop(range(width)):
            real = pixels[2 * k, j]
            imag = pixels[2 * k + 1, j]
            power = recorder.fadd(
                recorder.fmul(real, real), recorder.fmul(imag, imag)
            )
            magnitude = newton_sqrt(recorder, power, iterations=2)
            phase = atan2_approx(recorder, imag, real)
            out[k, j, 0] = power
            out[k, j, 1] = magnitude
            out[k, j, 2] = recorder.fdiv(phase, 2.0 * np.pi)
    return out.array
