"""vbpf -- band-pass filtering in the frequency domain.

Table 4: "Band-pass filtering in the frequency domain."  Same blocked
DCT pipeline as :mod:`vbrf`, but coefficients *outside* the passband are
attenuated, so many more coefficients take the fdiv path -- which is why
vbpf's fdiv column is populated much more heavily than vbrf's in
Table 7 (.52 vs .05).
"""

from __future__ import annotations

import numpy as np

from ..recorder import OperationRecorder
from ._lib import track_image, windows
from .vbrf import (
    _BASIS,
    _BLOCK,
    _INVERSE,
    _quantize,
    _transform_cols,
    _transform_rows,
)


def _attenuate_outside(recorder, coeffs, low: float, high: float):
    n = len(coeffs)
    for u in range(n):
        for v in range(n):
            radius = float(u * u + v * v)
            if radius < low or radius > high:
                depth = 1.0 + (low - radius if radius < low else radius - high)
                coeffs[u][v] = recorder.fdiv(coeffs[u][v], depth)
    return coeffs


def run(
    recorder: OperationRecorder,
    image: np.ndarray,
    band_low: float = 2.0,
    band_high: float = 8.0,
) -> np.ndarray:
    pixels = track_image(recorder, image)
    height, width = pixels.shape
    out = recorder.new_array((height, width))
    for top, left, th, tw in recorder.loop(
        list(windows((height, width), _BLOCK))
    ):
        if th < _BLOCK or tw < _BLOCK:
            continue
        recorder.imul(top, width)
        block = [
            [pixels[top + i, left + j] for j in range(_BLOCK)]
            for i in range(_BLOCK)
        ]
        coeffs = _transform_cols(
            recorder, _transform_rows(recorder, block, _BASIS), _BASIS
        )
        coeffs = _quantize(coeffs)
        coeffs = _attenuate_outside(recorder, coeffs, band_low, band_high)
        spatial = _transform_cols(
            recorder, _transform_rows(recorder, coeffs, _INVERSE), _INVERSE
        )
        for i in range(_BLOCK):
            for j in range(_BLOCK):
                out[top + i, left + j] = spatial[i][j]
    return out.array
