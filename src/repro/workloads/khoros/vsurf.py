"""vsurf -- surface parameters (normal and angle).

Table 4: "Surface parameters (normal and angle)."  Treats the image as a
height field: the surface normal is ``(-dz_x, -dz_y, 1)`` normalised
(divide-based square root + three component divisions), and the angle is
the dot product with a fixed light direction.
"""

from __future__ import annotations

import numpy as np

from ..recorder import OperationRecorder
from ._lib import newton_sqrt, track_image

_LIGHT = (0.3, 0.5, 0.8124)  # unit light direction


def run(recorder: OperationRecorder, image: np.ndarray) -> np.ndarray:
    pixels = track_image(recorder, image)
    height, width = pixels.shape
    out = recorder.new_array((height, width, 4))
    for i in recorder.loop(range(height - 1)):
        for j in recorder.loop(range(width - 1)):
            recorder.imul(i, width)  # row base, reused along the row
            here = pixels[i, j]
            dzx = recorder.fsub(pixels[i, j + 1], here)
            dzy = recorder.fsub(pixels[i + 1, j], here)
            norm_sq = recorder.fadd(
                recorder.fadd(
                    recorder.fmul(dzx, dzx), recorder.fmul(dzy, dzy)
                ),
                1.0,
            )
            norm = newton_sqrt(recorder, norm_sq, iterations=2)
            nx = recorder.fdiv(-dzx, norm)
            ny = recorder.fdiv(-dzy, norm)
            nz = recorder.fdiv(1.0, norm)
            angle = recorder.fadd(
                recorder.fadd(
                    recorder.fmul(nx, _LIGHT[0]), recorder.fmul(ny, _LIGHT[1])
                ),
                recorder.fmul(nz, _LIGHT[2]),
            )
            out[i, j, 0] = nx
            out[i, j, 1] = ny
            out[i, j, 2] = nz
            out[i, j, 3] = angle
    return out.array
