"""vgpwl -- two-dimensional piecewise linear image.

Table 4: "Two dimensional piecewise linear image."  Approximates each
row by linear segments: a slope division per segment (quantised
endpoint deltas over a fixed length) and an interpolation multiply per
pixel.
"""

from __future__ import annotations

import numpy as np

from ..recorder import OperationRecorder
from ._lib import track_image


def run(
    recorder: OperationRecorder,
    image: np.ndarray,
    segment: int = 8,
) -> np.ndarray:
    pixels = track_image(recorder, image)
    height, width = pixels.shape
    out = recorder.new_array((height, width))
    for i in recorder.loop(range(height)):
        for start in recorder.loop(range(0, width - 1, segment)):
            end = min(start + segment, width - 1)
            length = float(end - start)
            first = pixels[i, start]
            last = pixels[i, end]
            slope = recorder.fdiv(recorder.fsub(last, first), length)
            for j in recorder.loop(range(start, end)):
                offset = recorder.fmul(slope, float(j - start))
                out[i, j] = recorder.fadd(first, offset)
        out[i, width - 1] = pixels[i, width - 1]
    return out.array
