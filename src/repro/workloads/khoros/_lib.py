"""Shared building blocks for the Khoros-style kernels.

Everything here is written against an :class:`OperationRecorder` so that
each floating point multiply/divide the kernels perform is a traced
instruction.  Transcendentals (exp, atan) are expanded into the
multiply/add/divide sequences a 1990s math library would execute, which
both keeps the trace honest and exposes additional memoizable work.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from ...errors import WorkloadError
from ..recorder import OperationRecorder, TrackedArray

__all__ = [
    "first_band",
    "as_float_image",
    "windows",
    "poly_exp",
    "atan_approx",
    "atan2_approx",
    "newton_sqrt",
    "convolve_at",
    "track_image",
]


def first_band(image: np.ndarray) -> np.ndarray:
    """Collapse an (H, W, bands) image to its first band."""
    arr = np.asarray(image)
    if arr.ndim == 3:
        return arr[:, :, 0]
    if arr.ndim != 2:
        raise WorkloadError(f"expected an image, got shape {arr.shape}")
    return arr


def as_float_image(image: np.ndarray) -> np.ndarray:
    """First band, as float64 (pixel values stay exactly representable)."""
    return first_band(image).astype(np.float64)


def track_image(recorder: OperationRecorder, image: np.ndarray) -> TrackedArray:
    """Track the (float) first band of ``image`` for load/store recording."""
    return recorder.track(as_float_image(image))


def windows(
    shape: Tuple[int, int], size: int, step: int = 0
) -> Iterator[Tuple[int, int, int, int]]:
    """Yield (top, left, height, width) tiles covering ``shape``.

    ``step`` of zero means non-overlapping tiles of ``size``.
    """
    if size <= 0:
        raise WorkloadError(f"window size must be positive, got {size}")
    step = step or size
    height, width = shape
    for top in range(0, height, step):
        for left in range(0, width, step):
            yield top, left, min(size, height - top), min(size, width - left)


#: Reciprocal factorials for the exp() Horner expansion.
_EXP_COEFFS = (1.0, 1.0, 1 / 2.0, 1 / 6.0, 1 / 24.0, 1 / 120.0, 1 / 720.0)


def poly_exp(r: OperationRecorder, x: float) -> float:
    """exp(x) by range reduction + a 6th-order Horner polynomial.

    ``exp(x) = exp(x/8)^8``: the Taylor polynomial is excellent on the
    reduced range, and the three repeated squarings cost fmuls -- the
    same multiply/add shape a 1990s libm exp() executes.
    """
    reduced = r.fmul(x, 0.125)
    acc = _EXP_COEFFS[-1]
    for coeff in reversed(_EXP_COEFFS[:-1]):
        acc = r.fadd(r.fmul(acc, reduced), coeff)
    for _ in range(3):
        acc = r.fmul(acc, acc)
    return acc


def atan_approx(r: OperationRecorder, t: float) -> float:
    """atan(t) for |t| <= 1 by the classic 3-term polynomial."""
    t2 = r.fmul(t, t)
    # atan(t) ~= t * (0.9724 - 0.1919 * t^2)  (max error ~5e-3 on [-1,1])
    return r.fmul(t, r.fsub(0.9724, r.fmul(0.1919, t2)))


def atan2_approx(r: OperationRecorder, y: float, x: float) -> float:
    """Quadrant-correct atan2 built on one fdiv + atan_approx."""
    if x == 0.0 and y == 0.0:
        return 0.0
    if abs(x) >= abs(y):
        base = atan_approx(r, r.fdiv(y, x) if x != 0 else 0.0)
        if x >= 0:
            return base
        return base + (np.pi if y >= 0 else -np.pi)
    base = atan_approx(r, r.fdiv(x, y))
    return (np.pi / 2 if y > 0 else -np.pi / 2) - base


def newton_sqrt(r: OperationRecorder, a: float, iterations: int = 3) -> float:
    """sqrt(a) by Newton-Raphson with explicit fdiv steps.

    ``x <- (x + a/x) / 2`` -- this is the divide-heavy way 1990s code
    computed square roots on machines without an fsqrt unit, and it is
    what makes ``vsqrt`` a *division* benchmark in Table 11.  The seed
    halves the exponent (an exponent-field shift in hardware, so it
    costs no traced arithmetic) and three iterations converge to ~1e-5.
    """
    if a < 0:
        return float("nan")
    if a == 0:
        return 0.0
    x = math.ldexp(1.0, math.frexp(a)[1] // 2)
    for _ in range(iterations):
        x = r.fmul(0.5, r.fadd(x, r.fdiv(a, x)))
    return x


def convolve_at(
    r: OperationRecorder,
    pixels: TrackedArray,
    i: int,
    j: int,
    weights: Sequence[Sequence[float]],
) -> float:
    """Weighted neighbourhood sum centred at (i, j), clamped at borders."""
    height, width = pixels.shape
    radius = len(weights) // 2
    acc = 0.0
    for di, row in enumerate(weights):
        for dj, weight in enumerate(row):
            if weight == 0.0:
                continue
            y = min(max(i + di - radius, 0), height - 1)
            x = min(max(j + dj - radius, 0), width - 1)
            acc = r.fadd(acc, r.fmul(pixels[y, x], weight))
    return acc
