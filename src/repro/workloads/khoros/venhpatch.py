"""venhpatch -- stretches contrast based on a local histogram.

Table 4: "Stretches contrast based on a local histogram."  Per tile, the
min/max are found and each pixel is stretched with integer arithmetic
(``(p - min) * 255 / (max - min)`` where the multiply is an imul and the
division is an integer divide, which the studied MEMO-TABLE system does
not instrument -- Table 7 shows no fdiv for venhpatch).  The stretched
value is then blended with the original, costing an FP multiply.
"""

from __future__ import annotations

import numpy as np

from ..recorder import OperationRecorder
from ._lib import as_float_image, track_image, windows


def run(
    recorder: OperationRecorder,
    image: np.ndarray,
    tile: int = 8,
    blend: float = 0.5,
) -> np.ndarray:
    pixels = track_image(recorder, image)
    ints = recorder.track(as_float_image(image).astype(np.int64))
    height, width = pixels.shape
    out = recorder.new_array((height, width))
    for top, left, th, tw in recorder.loop(list(windows((height, width), tile))):
        lo = hi = int(ints[top, left])
        for i in recorder.loop(range(top, top + th)):
            for j in recorder.loop(range(left, left + tw)):
                value = int(ints[i, j])
                recorder.branch(2)  # the two comparisons
                if value < lo:
                    lo = value
                if value > hi:
                    hi = value
        spread = max(hi - lo, 1)
        for i in recorder.loop(range(top, top + th)):
            for j in recorder.loop(range(left, left + tw)):
                scaled = recorder.imul(int(ints[i, j]) - lo, 255)
                # Integer divide (SPARC sdiv): traced, but the studied
                # MEMO-TABLE system has no table next to it, so
                # venhpatch's fdiv column stays '-' (as in Table 7).
                stretched = recorder.idiv(scaled, spread)
                mixed = recorder.fadd(float(stretched), pixels[i, j])
                out[i, j] = recorder.fmul(mixed, blend)
    return out.array
