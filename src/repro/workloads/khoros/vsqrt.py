"""vsqrt -- square root of each pixel.

Table 4: "Square root of each pixel."  Implemented the way 1990s image
code did on machines without a hardware square root: Newton-Raphson with
an explicit division per iteration.  That makes vsqrt a *division*
workload (it appears in the fdiv speedup Table 11 with hit ratio .54).
"""

from __future__ import annotations

import numpy as np

from ..recorder import OperationRecorder
from ._lib import newton_sqrt, track_image


def run(
    recorder: OperationRecorder, image: np.ndarray, iterations: int = 3
) -> np.ndarray:
    pixels = track_image(recorder, image)
    height, width = pixels.shape
    out = recorder.new_array((height, width))
    for i in recorder.loop(range(height)):
        for j in recorder.loop(range(width)):
            out[i, j] = newton_sqrt(recorder, pixels[i, j], iterations=iterations)
    return out.array
