"""vrect2pol -- conversion of rectangular to polar data.

Table 4: "Conversion of rectangular to polar data."  Adjacent pixel
pairs are treated as (x, y) samples; magnitude is a divide-based square
root of ``x^2 + y^2`` and the angle costs one fdiv plus a polynomial
atan.  FP multiply and divide only (Table 7: no imul column entry).
"""

from __future__ import annotations

import numpy as np

from ..recorder import OperationRecorder
from ._lib import atan2_approx, newton_sqrt, track_image


def run(recorder: OperationRecorder, image: np.ndarray) -> np.ndarray:
    pixels = track_image(recorder, image)
    height, width = pixels.shape
    out = recorder.new_array((height, width // 2, 2))
    for i in recorder.loop(range(height)):
        for j in recorder.loop(range(0, width - 1, 2)):
            x = pixels[i, j]
            y = pixels[i, j + 1]
            squared = recorder.fadd(recorder.fmul(x, x), recorder.fmul(y, y))
            out[i, j // 2, 0] = newton_sqrt(recorder, squared, iterations=2)
            out[i, j // 2, 1] = atan2_approx(recorder, y, x)
    return out.array
