"""vwarp -- polynomial geometric transformation (warp).

Table 4: "Polynomial geometric transformation (warp)."  Each output
pixel maps through a bilinear polynomial ``u = c0 + c1*j + c2*i +
c3*i*j`` (and similarly ``v``), then samples the source with bilinear
interpolation; the fractional weights bring both multiplies and the
normalising division.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..recorder import OperationRecorder
from ._lib import track_image

#: Mild shear + scale, in pixel units (c0, c_j, c_i, c_ij).
_DEFAULT_U = (1.5, 0.95, 0.02, 0.0002)
_DEFAULT_V = (0.5, 0.03, 0.97, -0.0001)


def _poly(recorder: OperationRecorder, c: Sequence[float], i: float, j: float) -> float:
    acc = recorder.fadd(c[0], recorder.fmul(c[1], j))
    acc = recorder.fadd(acc, recorder.fmul(c[2], i))
    return recorder.fadd(acc, recorder.fmul(c[3], recorder.fmul(i, j)))


def run(
    recorder: OperationRecorder,
    image: np.ndarray,
    u_coeffs: Sequence[float] = _DEFAULT_U,
    v_coeffs: Sequence[float] = _DEFAULT_V,
) -> np.ndarray:
    pixels = track_image(recorder, image)
    height, width = pixels.shape
    out = recorder.new_array((height, width))
    denominator = 16.0  # fixed-point weight scale used by the sampler
    for i in recorder.loop(range(height)):
        recorder.imul(i, width)
        fi = float(i)
        for j in recorder.loop(range(width)):
            u = _poly(recorder, u_coeffs, fi, float(j))
            v = _poly(recorder, v_coeffs, fi, float(j))
            x0 = min(max(int(u), 0), width - 2)
            y0 = min(max(int(v), 0), height - 2)
            # Quantized fractional weights (1/16 steps, like fixed-point
            # warp hardware) keep the interpolation operands low-entropy.
            fx = float(min(max(int((u - x0) * 16), 0), 15))
            fy = float(min(max(int((v - y0) * 16), 0), 15))
            w11 = recorder.fmul(fx, fy)
            top = recorder.fadd(
                recorder.fmul(pixels[y0, x0], 256.0 - 16 * fx - 16 * fy + w11),
                recorder.fmul(pixels[y0, x0 + 1], recorder.fmul(fx, 16.0 - fy)),
            )
            bottom = recorder.fadd(
                recorder.fmul(pixels[y0 + 1, x0], recorder.fmul(fy, 16.0 - fx)),
                recorder.fmul(pixels[y0 + 1, x0 + 1], w11),
            )
            out[i, j] = recorder.fdiv(
                recorder.fadd(top, bottom), denominator * denominator
            )
    return out.array
