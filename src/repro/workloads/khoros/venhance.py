"""venhance -- local transformation based on mean and variance.

Table 4: "Local transformation (mean & variance)."  Wallis-style
enhancement: each tile's contrast is adjusted towards a target, with a
gain dividing by the local spread; per-pixel work is FP multiplication.
"""

from __future__ import annotations

import numpy as np

from ..recorder import OperationRecorder
from ._lib import newton_sqrt, track_image, windows


def run(
    recorder: OperationRecorder,
    image: np.ndarray,
    tile: int = 8,
    target_std: float = 50.0,
    max_gain: float = 4.0,
) -> np.ndarray:
    pixels = track_image(recorder, image)
    height, width = pixels.shape
    out = recorder.new_array((height, width))
    for top, left, th, tw in recorder.loop(list(windows((height, width), tile))):
        count = float(th * tw)
        total = 0.0
        for i in recorder.loop(range(top, top + th)):
            for j in recorder.loop(range(left, left + tw)):
                total = recorder.fadd(total, pixels[i, j])
        mean = recorder.fdiv(total, count)
        sum_sq = 0.0
        for i in recorder.loop(range(top, top + th)):
            for j in recorder.loop(range(left, left + tw)):
                deviation = recorder.fsub(pixels[i, j], mean)
                sum_sq = recorder.fadd(sum_sq, recorder.fmul(deviation, deviation))
        variance = recorder.fdiv(sum_sq, count)
        # Integer variance estimate (real Wallis filters work in fixed
        # point): tiles with equal variance share the whole sqrt/gain
        # division sequence.
        variance_estimate = float(round(variance))
        spread = newton_sqrt(
            recorder, recorder.fadd(variance_estimate, 1.0), iterations=2
        )
        gain = min(recorder.fdiv(target_std, spread), max_gain)
        for i in recorder.loop(range(top, top + th)):
            for j in recorder.loop(range(left, left + tw)):
                deviation = recorder.fsub(pixels[i, j], mean)
                out[i, j] = recorder.fadd(mean, recorder.fmul(gain, deviation))
    return out.array
