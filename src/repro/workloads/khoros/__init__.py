"""The Multi-Media workload suite (Table 4 of the paper).

Eighteen Khoros-style image processing / DSP kernels, each implemented
from its one-line description and instrumented through an
:class:`~repro.workloads.recorder.OperationRecorder`.  The registry
records which paper tables each kernel appears in:

* ``TABLE7_ORDER`` -- the seventeen hit-ratio rows of Table 7;
* ``SPEEDUP_APPS`` -- the nine applications of Tables 11-13;
* ``SAMPLE_APPS`` -- the five sweep samples of Figures 3 and 4;
* ``TABLE9_APPS`` -- the eight trivial-policy rows of Table 9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

from ...errors import WorkloadError
from ..recorder import OperationRecorder
from . import (
    vbpf,
    vbrf,
    vcost,
    vdetilt,
    vdiff,
    venhance,
    venhpatch,
    vgauss,
    vgef,
    vgpwl,
    vkmeans,
    vmpp,
    vrect2pol,
    vslope,
    vspatial,
    vsqrt,
    vsurf,
    vwarp,
)

__all__ = [
    "KernelInfo",
    "KERNELS",
    "TABLE7_ORDER",
    "SPEEDUP_APPS",
    "SAMPLE_APPS",
    "TABLE9_APPS",
    "get_kernel",
    "kernel_names",
    "run_kernel",
]


@dataclass(frozen=True)
class KernelInfo:
    """Registry entry for one MM kernel."""

    name: str
    description: str
    run: Callable[..., np.ndarray]
    uses_imul: bool
    uses_fdiv: bool


def _info(name, module, description, imul, fdiv):
    return KernelInfo(name, description, module.run, imul, fdiv)


#: All kernels, keyed by name (imul/fdiv flags mirror Table 7's dashes).
KERNELS: Dict[str, KernelInfo] = {
    info.name: info
    for info in (
        _info("vdiff", vdiff, "Differentiation using two NxN weighted ops (Sobel)", True, False),
        _info("vcost", vcost, "Surface arc length from a given pixel", True, True),
        _info("vgauss", vgauss, "Generates Gaussian distributions", False, True),
        _info("vspatial", vspatial, "Statistical spatial feature extraction", True, True),
        _info("vslope", vslope, "Slope and aspect images from elevation data", True, True),
        _info("vgef", vgef, "Edge detection", True, False),
        _info("vdetilt", vdetilt, "Best-fit plane subtracted from the image", False, False),
        _info("vwarp", vwarp, "Polynomial geometric transformation (warp)", True, True),
        _info("venhance", venhance, "Local transformation (mean & variance)", False, True),
        _info("vrect2pol", vrect2pol, "Conversion of rectangular to polar data", False, True),
        _info("vmpp", vmpp, "2-D information from COMPLEX images", False, True),
        _info("vbrf", vbrf, "Band-reject filtering in the frequency domain", True, True),
        _info("vbpf", vbpf, "Band-pass filtering in the frequency domain", True, True),
        _info("vsurf", vsurf, "Surface parameters (normal and angle)", True, True),
        _info("vgpwl", vgpwl, "Two dimensional piecewise linear image", False, True),
        _info("venhpatch", venhpatch, "Stretches contrast based on a local histogram", True, False),
        _info("vkmeans", vkmeans, "Kmeans clustering algorithm", False, True),
        _info("vsqrt", vsqrt, "Square root of each pixel", False, True),
    )
}

#: Row order of Table 7 (vsqrt is not a Table 7 row).
TABLE7_ORDER: Tuple[str, ...] = (
    "vdiff",
    "vcost",
    "vgauss",
    "vspatial",
    "vslope",
    "vgef",
    "vdetilt",
    "vwarp",
    "venhance",
    "vrect2pol",
    "vmpp",
    "vbrf",
    "vbpf",
    "vsurf",
    "vgpwl",
    "venhpatch",
    "vkmeans",
)

#: The nine applications of the speedup analysis (Tables 11-13).
SPEEDUP_APPS: Tuple[str, ...] = (
    "venhance",
    "vbrf",
    "vsqrt",
    "vslope",
    "vbpf",
    "vkmeans",
    "vspatial",
    "vgauss",
    "vgpwl",
)

#: The five sample applications of the size/associativity sweeps.
SAMPLE_APPS: Tuple[str, ...] = ("vcost", "venhance", "vgpwl", "vspatial", "vsurf")

#: The eight rows of the trivial-operation policy study (Table 9).
TABLE9_APPS: Tuple[str, ...] = (
    "vdiff",
    "vcost",
    "vgauss",
    "vspatial",
    "vslope",
    "vgef",
    "vdetilt",
    "venhance",
)


def kernel_names() -> Tuple[str, ...]:
    """All kernel names, Table 7 order first, then vsqrt."""
    return TABLE7_ORDER + ("vsqrt",)


def get_kernel(name: str) -> KernelInfo:
    try:
        return KERNELS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown MM kernel {name!r}; available: {', '.join(kernel_names())}"
        ) from None


def run_kernel(
    name: str, recorder: OperationRecorder, image: np.ndarray, **params
) -> np.ndarray:
    """Execute one kernel by name, recording into ``recorder``."""
    return get_kernel(name).run(recorder, image, **params)
