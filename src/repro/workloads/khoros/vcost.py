"""vcost -- surface arc length from a given pixel.

Table 4: "Surface arc length from a given pixel."  Treats the image as a
height field; for every pixel, the local arc-length element is
``sqrt(1 + dz_x^2 + dz_y^2)`` (computed with divide-based Newton square
roots, as period code did) and the cost is that element normalised by
the Chebyshev distance to the seed pixel.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..recorder import OperationRecorder
from ._lib import newton_sqrt, track_image


def run(
    recorder: OperationRecorder,
    image: np.ndarray,
    seed_pixel: Optional[Tuple[int, int]] = None,
) -> np.ndarray:
    pixels = track_image(recorder, image)
    height, width = pixels.shape
    if seed_pixel is None:
        seed_pixel = (height // 2, width // 2)
    si, sj = seed_pixel
    out = recorder.new_array((height, width))
    for i in recorder.loop(range(1, height)):
        for j in recorder.loop(range(1, width)):
            recorder.imul(i, width)  # per-pixel row-address multiply
            here = pixels[i, j]
            dzx = recorder.fsub(here, pixels[i, j - 1])
            dzy = recorder.fsub(here, pixels[i - 1, j])
            squared = recorder.fadd(
                recorder.fadd(recorder.fmul(dzx, dzx), recorder.fmul(dzy, dzy)),
                1.0,
            )
            arc = newton_sqrt(recorder, squared, iterations=2)
            distance = float(max(abs(i - si), abs(j - sj), 1))
            out[i, j] = recorder.fdiv(arc, distance)
    return out.array
