"""vdiff -- differentiation using two NxN weighted operators (Sobel).

Table 4: "Differentiation using two NxN weighted ops."  The classic
Sobel pair: an integer-weighted horizontal gradient and a float-weighted
vertical gradient, combined into an edge magnitude.  Exercises the
integer multiplier (weights and addressing) and the FP multiplier; no
division (Table 7 shows '-' for vdiff fdiv).
"""

from __future__ import annotations

import numpy as np

from ..recorder import OperationRecorder
from ._lib import as_float_image, track_image

#: Integer horizontal Sobel weights.
_GX = ((-1, 0, 1), (-2, 0, 2), (-1, 0, 1))
#: Float vertical Sobel weights.
_GY = ((-0.125, -0.25, -0.125), (0.0, 0.0, 0.0), (0.125, 0.25, 0.125))


def run(recorder: OperationRecorder, image: np.ndarray) -> np.ndarray:
    pixels = track_image(recorder, image)
    ints = recorder.track(as_float_image(image).astype(np.int64))
    height, width = pixels.shape
    out = recorder.new_array((height, width))
    for i in recorder.loop(range(1, height - 1)):
        row_base = recorder.imul(i, width)  # address arithmetic
        for j in recorder.loop(range(1, width - 1)):
            gx = 0
            for di in range(3):
                for dj in range(3):
                    weight = _GX[di][dj]
                    if weight == 0:
                        continue
                    gx += recorder.imul(int(ints[i + di - 1, j + dj - 1]), weight)
            gy = 0.0
            for di in range(3):
                for dj in range(3):
                    weight = _GY[di][dj]
                    if weight == 0.0:
                        continue
                    gy = recorder.fadd(
                        gy, recorder.fmul(pixels[i + di - 1, j + dj - 1], weight)
                    )
            magnitude = recorder.fadd(abs(float(gx)), abs(gy))
            out[i, j] = recorder.fmul(magnitude, 0.125)
    del row_base
    return out.array
