"""vgauss -- generates Gaussian distributions.

Table 4: "Generates Gaussian distributions."  Maps each pixel through a
Gaussian response ``exp(-(p - mean)^2 / (2 sigma^2))``.  The squared
deviation is divided by a constant, so on a quantised image the division
operand pairs repeat heavily -- this kernel is one of the paper's best
fdiv memoization cases (hit ratio .79 at 32 entries).
"""

from __future__ import annotations

import numpy as np

from ..recorder import OperationRecorder
from ._lib import poly_exp, track_image


def run(
    recorder: OperationRecorder,
    image: np.ndarray,
    mean: float = 128.0,
    sigma: float = 48.0,
) -> np.ndarray:
    pixels = track_image(recorder, image)
    height, width = pixels.shape
    out = recorder.new_array((height, width))
    two_sigma_sq = 2.0 * sigma * sigma
    for i in recorder.loop(range(height)):
        for j in recorder.loop(range(width)):
            deviation = recorder.fsub(pixels[i, j], mean)
            squared = recorder.fmul(deviation, deviation)
            argument = recorder.fdiv(squared, two_sigma_sq)
            response = poly_exp(recorder, -argument)
            out[i, j] = recorder.fmul(response, 255.0)
    return out.array
