"""vslope -- slope and aspect images from elevation data.

Table 4: "Slope and aspect images from elevation data."  Central
differences give the gradient; slope is its magnitude (divide-based
square root) and aspect its direction (one fdiv + polynomial atan).
"""

from __future__ import annotations

import numpy as np

from ..recorder import OperationRecorder
from ._lib import atan2_approx, newton_sqrt, track_image


def run(
    recorder: OperationRecorder, image: np.ndarray, spacing: float = 2.0
) -> np.ndarray:
    pixels = track_image(recorder, image)
    height, width = pixels.shape
    out = recorder.new_array((height, width, 2))
    for i in recorder.loop(range(1, height - 1)):
        for j in recorder.loop(range(1, width - 1)):
            # Address arithmetic: the row multiply repeats along the
            # row, the column byte-offset multiply almost never does.
            recorder.imul(i, width)
            recorder.imul(j, 8)
            gx = recorder.fdiv(
                recorder.fsub(pixels[i, j + 1], pixels[i, j - 1]), spacing
            )
            gy = recorder.fdiv(
                recorder.fsub(pixels[i + 1, j], pixels[i - 1, j]), spacing
            )
            squared = recorder.fadd(
                recorder.fmul(gx, gx), recorder.fmul(gy, gy)
            )
            out[i, j, 0] = newton_sqrt(recorder, squared, iterations=2)
            out[i, j, 1] = atan2_approx(recorder, gy, gx)
    return out.array
