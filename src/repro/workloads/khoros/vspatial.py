"""vspatial -- statistical spatial feature extraction.

Table 4: "Statistical spatial feature extraction."  For every 8x8 tile,
computes the mean, the variance, and occupancy statistics of the local
histogram (the fraction of pixels under each quartile threshold).  The
occupancy divisions draw from a tiny operand universe -- integer counts
in 0..64 over the constant tile size -- which is why vspatial is the
paper's best fdiv memoization case (hit ratio .94 at 32 entries).
"""

from __future__ import annotations

import numpy as np

from ..recorder import OperationRecorder
from ._lib import track_image, windows

#: Histogram thresholds (quartiles of the byte range).
_THRESHOLDS = (64.0, 128.0, 192.0)


def run(
    recorder: OperationRecorder, image: np.ndarray, tile: int = 8
) -> np.ndarray:
    pixels = track_image(recorder, image)
    height, width = pixels.shape
    tiles = list(windows((height, width), tile))
    out = recorder.new_array((len(tiles), 2 + len(_THRESHOLDS)))
    for index, (top, left, th, tw) in enumerate(recorder.loop(tiles)):
        count = float(th * tw)
        recorder.imul(top, width)  # tile base address
        total = 0.0
        occupancy = [0] * len(_THRESHOLDS)
        for i in recorder.loop(range(top, top + th)):
            recorder.imul(i, width)
            for j in recorder.loop(range(left, left + tw)):
                value = pixels[i, j]
                total = recorder.fadd(total, value)
                for t, threshold in enumerate(_THRESHOLDS):
                    recorder.branch()
                    if value < threshold:
                        occupancy[t] += 1
        mean = recorder.fdiv(total, count)
        sum_sq = 0.0
        for i in recorder.loop(range(top, top + th)):
            for j in recorder.loop(range(left, left + tw)):
                deviation = recorder.fsub(pixels[i, j], mean)
                sum_sq = recorder.fadd(
                    sum_sq, recorder.fmul(deviation, deviation)
                )
        out[index, 0] = mean
        out[index, 1] = recorder.fdiv(sum_sq, count)
        # Histogram occupancy fractions: integer counts over a constant
        # tile size, a tiny operand universe with huge reuse.
        for t in range(len(_THRESHOLDS)):
            out[index, 2 + t] = recorder.fdiv(float(occupancy[t]), count)
    return out.array
