"""vkmeans -- k-means clustering algorithm.

Table 4: "Kmeans clustering algorithm."  Clusters pixel intensities with
a few Lloyd iterations.  Per pixel, the squared distance to each
centroid is a multiplication and its normalisation a division by the
grey range; centroid updates cost one division each.
"""

from __future__ import annotations

import numpy as np

from ..recorder import OperationRecorder
from ._lib import track_image


def run(
    recorder: OperationRecorder,
    image: np.ndarray,
    k: int = 4,
    iterations: int = 3,
) -> np.ndarray:
    pixels = track_image(recorder, image)
    height, width = pixels.shape
    flat = pixels.array
    lo, hi = float(flat.min()), float(flat.max())
    centroids = [lo + (hi - lo) * (c + 0.5) / k for c in range(k)]
    labels = recorder.new_array((height, width), dtype=np.int64, fill=0)
    grey_range = max(hi - lo, 1.0)

    for _ in recorder.loop(range(iterations)):
        sums = [0.0] * k
        counts = [0] * k
        for i in recorder.loop(range(height)):
            for j in recorder.loop(range(width)):
                p = pixels[i, j]
                best = 0
                best_distance = float("inf")
                for c in recorder.loop(range(k)):
                    deviation = recorder.fsub(p, centroids[c])
                    squared = recorder.fmul(deviation, deviation)
                    normalised = recorder.fdiv(squared, grey_range)
                    if normalised < best_distance:
                        best_distance = normalised
                        best = c
                labels[i, j] = best
                sums[best] += p
                counts[best] += 1
        for c in recorder.loop(range(k)):
            if counts[c]:
                centroids[c] = recorder.fdiv(sums[c], float(counts[c]))
    return labels.array
