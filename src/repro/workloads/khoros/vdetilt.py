"""vdetilt -- best-fit plane subtracted from the image.

Table 4: "Best-fit plane subtracted from the image."  A closed-form
least-squares plane fit over pixel coordinates (multiply-heavy moment
accumulation) followed by per-pixel evaluation of ``a*i + b*j + c``.
Pure FP multiplication work (Table 7: vdetilt shows fmul only).
"""

from __future__ import annotations

import numpy as np

from ..recorder import OperationRecorder
from ._lib import track_image


def run(recorder: OperationRecorder, image: np.ndarray) -> np.ndarray:
    pixels = track_image(recorder, image)
    height, width = pixels.shape

    # Moment accumulation: sums of i*p and j*p (the coordinate sums have
    # closed forms and would be precomputed constants in real code).
    sum_p = 0.0
    sum_ip = 0.0
    sum_jp = 0.0
    for i in recorder.loop(range(height)):
        fi = float(i)
        for j in recorder.loop(range(width)):
            p = pixels[i, j]
            sum_p = recorder.fadd(sum_p, p)
            sum_ip = recorder.fadd(sum_ip, recorder.fmul(fi, p))
            sum_jp = recorder.fadd(sum_jp, recorder.fmul(float(j), p))

    n = float(height * width)
    mean_i = (height - 1) / 2.0
    mean_j = (width - 1) / 2.0
    var_i = sum((i - mean_i) ** 2 for i in range(height)) * width
    var_j = sum((j - mean_j) ** 2 for j in range(width)) * height
    # Multiply by the precomputed reciprocal: vdetilt issues no fdiv
    # (Table 7 shows '-'), matching a compiler that strength-reduces the
    # constant division.
    mean_p = recorder.fmul(sum_p, 1.0 / n)
    slope_i = (sum_ip - n * mean_i * mean_p) / var_i if var_i else 0.0
    slope_j = (sum_jp - n * mean_j * mean_p) / var_j if var_j else 0.0

    out = recorder.new_array((height, width))
    for i in recorder.loop(range(height)):
        tilt_i = recorder.fmul(slope_i, i - mean_i)
        for j in recorder.loop(range(width)):
            tilt_j = recorder.fmul(slope_j, j - mean_j)
            plane = recorder.fadd(recorder.fadd(tilt_i, tilt_j), mean_p)
            out[i, j] = recorder.fsub(pixels[i, j], plane)
    return out.array
