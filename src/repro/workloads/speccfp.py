"""Surrogates for the SPEC CFP95 applications (Table 3).

Same construction as :mod:`repro.workloads.perfect`: one small numeric
kernel per application, of the domain the suite description names, with
data quantisation/continuity chosen as the domain dictates.  Together
they reproduce the Table 6 regime: generally poor 32-entry hit ratios
(register values are used once or twice and replaced within tens of
instructions, per Franklin & Sohi) with large *total* reuse, plus the
suite's one outlier -- hydro2d -- whose coarsely quantised state gives
high hit ratios even at 32 entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

from ..errors import WorkloadError
from .recorder import OperationRecorder

__all__ = ["SPECCFP_APPS", "speccfp_names", "run_speccfp"]


def _field(recorder, shape, seed, levels=0, span=100.0):
    rng = np.random.default_rng(seed)
    data = rng.random(shape)
    if levels:
        data = np.floor(data * levels) / levels
    return recorder.track(data * span)


def tomcatv(recorder: OperationRecorder, scale: float = 1.0, seed: int = 11) -> None:
    """tomcatv: vectorized mesh generation -- continuous coordinate relaxation."""
    side = max(10, int(24 * scale))
    xs = _field(recorder, (side, side), seed)
    ys = _field(recorder, (side, side), seed + 1)
    for _ in recorder.loop(range(3)):
        for i in recorder.loop(range(1, side - 1)):
            if i % 4 == 0:
                recorder.imul(i, side)
            for j in recorder.loop(range(1, side - 1)):
                dx = recorder.fsub(xs[i, j + 1], xs[i, j - 1])
                dy = recorder.fsub(ys[i + 1, j], ys[i - 1, j])
                jacobian = recorder.fmul(dx, dy)
                xs[i, j] = recorder.fadd(xs[i, j], recorder.fmul(jacobian, 1e-4))
                if (i * j) % 37 == 0:
                    recorder.fdiv(dx, recorder.fadd(dy, 2.0))


def swim(recorder: OperationRecorder, scale: float = 1.0, seed: int = 12) -> None:
    """swim: shallow water equations -- repeated sweeps, static coefficients.

    The Coriolis/depth coefficient arrays never change, so re-sweeping
    them gives enormous total multiply reuse (.93 infinite) that a
    32-entry table mostly misses (.16).
    """
    side = max(12, int(26 * scale))
    depth = _field(recorder, (side, side), seed, levels=24)
    coriolis = _field(recorder, (side, side), seed + 1, levels=24, span=1.0)
    height = _field(recorder, (side, side), seed + 2)
    for _ in recorder.loop(range(4)):
        for i in recorder.loop(range(1, side - 1)):
            for j in recorder.loop(range(1, side - 1)):
                wave = recorder.fmul(depth[i, j], coriolis[i, j])
                height[i, j] = recorder.fadd(
                    height[i, j], recorder.fmul(wave, 1e-3)
                )
                if (i + j) % 16 == 0:
                    recorder.fdiv(depth[i, j], recorder.fadd(coriolis[i, j], 1.0))


def su2cor(recorder: OperationRecorder, scale: float = 1.0, seed: int = 13) -> None:
    """su2cor: Monte-Carlo -- integer lattice index products only.

    Table 6 shows no fp rows for su2cor in our reduction; the surrogate
    is integer-multiply-bound lattice coordinate arithmetic.
    """
    side = max(8, int(20 * scale))
    state = (seed * 48271) & 0x7FFFFFFF
    total = 0
    for sweep in recorder.loop(range(3)):
        for i in recorder.loop(range(side)):
            for j in recorder.loop(range(side)):
                state = (recorder.imul(state, 16807) + 11) & 0x7FFFFFFF
                site = recorder.imul(i % 8, j % 8 + 2)  # small index universe
                total += site + (state & 3)
                recorder.ialu(2)
    del total


def hydro2d(recorder: OperationRecorder, scale: float = 1.0, seed: int = 14) -> None:
    """hydro2d: Navier-Stokes -- coarsely quantised hydrodynamic state.

    The suite's outlier: state stays on a coarse value lattice, so even
    the 32-entry table hits heavily (Table 6: fmul .75, fdiv .78).
    """
    side = max(10, int(22 * scale))
    # Very coarse quantisation of spatially smooth fields: hydrodynamic
    # state varies slowly across cells, so neighbouring cells share
    # lattice values and the 32-entry table hits (the Table 6 outlier).
    from ..images.synthetic import smooth_field

    velocity = recorder.track(
        np.floor(smooth_field((side, side), max(side // 5, 2), seed) * 12.0)
    )
    pressure = recorder.track(
        np.floor(smooth_field((side, side), max(side // 5, 2), seed + 1) * 8.0)
        + 1.0
    )
    for _ in recorder.loop(range(4)):
        for i in recorder.loop(range(1, side - 1)):
            for j in recorder.loop(range(1, side - 1)):
                flux = recorder.fmul(velocity[i, j], pressure[i, j])
                gradient = recorder.fdiv(flux, pressure[i - 1, j])
                recorder.fmul(gradient, 0.5)


def mgrid(recorder: OperationRecorder, scale: float = 1.0, seed: int = 15) -> None:
    """mgrid: 3-D potential field -- multigrid restriction/prolongation."""
    side = max(8, int(18 * scale))
    fine = _field(recorder, (side, side), seed)
    coarse = recorder.new_array((side // 2, side // 2))
    for _ in recorder.loop(range(3)):
        for i in recorder.loop(range(side // 2)):
            recorder.imul(i, side)
            recorder.imul(i, 2)
            for j in recorder.loop(range(side // 2)):
                acc = 0.0
                for di in range(2):
                    for dj in range(2):
                        acc = recorder.fadd(
                            acc,
                            recorder.fmul(fine[2 * i + di, 2 * j + dj], 0.25),
                        )
                coarse[i, j] = acc
        for i in recorder.loop(range(1, side - 1)):
            recorder.imul(i, side)
            for j in recorder.loop(range(1, side - 1)):
                fine[i, j] = recorder.fadd(
                    fine[i, j],
                    recorder.fmul(coarse[i // 2, j // 2], 1e-3),
                )


def applu(recorder: OperationRecorder, scale: float = 1.0, seed: int = 16) -> None:
    """applu: partial differential equations -- SSOR with quantised jacobians."""
    side = max(10, int(22 * scale))
    state = _field(recorder, (side, side), seed, levels=40)
    jacobian = _field(recorder, (side, side), seed + 1, levels=20, span=4.0)
    for _ in recorder.loop(range(3)):
        for i in recorder.loop(range(1, side - 1)):
            recorder.imul(i, side)
            for j in recorder.loop(range(1, side - 1)):
                residual = recorder.fmul(state[i, j], jacobian[i, j])
                update = recorder.fdiv(
                    residual, recorder.fadd(jacobian[i, j], 2.0)
                )
                state[i, j] = recorder.fadd(state[i, j], recorder.fmul(update, 1e-3))


def turb3d(recorder: OperationRecorder, scale: float = 1.0, seed: int = 17) -> None:
    """turb3d: turbulence modelling -- spectral convolution, large reuse set."""
    modes = max(10, int(24 * scale))
    rng = np.random.default_rng(seed)
    spectrum = recorder.track(np.floor(rng.random((modes, modes)) * 96.0))
    for _ in recorder.loop(range(3)):
        for a in recorder.loop(range(1, modes - 1)):
            recorder.imul(a, modes)
            for b in recorder.loop(range(1, modes - 1)):
                energy = recorder.fmul(spectrum[a, b], spectrum[b, a])
                recorder.fdiv(energy, float(a * a + b * b))
                recorder.fmul(energy, 5e-7)  # subgrid dissipation term


def apsi(recorder: OperationRecorder, scale: float = 1.0, seed: int = 18) -> None:
    """apsi: weather prediction -- vertical column physics, mixed locality."""
    columns = max(12, int(30 * scale))
    layers = 12
    temp = _field(recorder, (columns, layers), seed, levels=64)
    humidity = _field(recorder, (columns, layers), seed + 1, levels=32, span=1.0)
    forcing = recorder.new_array((columns,))
    for c in recorder.loop(range(columns)):
        recorder.imul(c, layers)
        for l in recorder.loop(range(1, layers)):
            # Diagnostics over the quantised state (the state itself is
            # not perturbed, so lattice values recur across columns).
            lapse = recorder.fsub(temp[c, l], temp[c, l - 1])
            flux = recorder.fmul(lapse, humidity[c, l])
            recorder.fdiv(flux, recorder.fadd(temp[c, l], 273.0))
            forcing[c] = recorder.fadd(forcing[c], flux)


def fpppp(recorder: OperationRecorder, scale: float = 1.0, seed: int = 19) -> None:
    """fpppp: Gaussian quantum chemistry -- small exponent universe integrals."""
    shells = max(6, int(12 * scale))
    exponents = [0.5, 1.0, 1.5, 2.5, 4.0, 6.0]
    rng = np.random.default_rng(seed)
    density = recorder.track(np.floor(rng.random((shells, shells)) * 50.0))
    for a in recorder.loop(range(shells)):
        recorder.imul(a, shells)
        for b in recorder.loop(range(shells)):
            for ea in exponents:
                for eb in exponents:
                    overlap = recorder.fmul(ea, eb)
                    screened = recorder.fdiv(overlap, ea + eb)
                    weighted = recorder.fmul(screened, density[a, b])
                    # Contraction against the density matrix: operand
                    # pairs vary with both shells, little small-table
                    # reuse (fpppp's Table 6 fdiv is only .15).
                    recorder.fdiv(weighted, density[b, a] + 1.0)


def wave5(recorder: OperationRecorder, scale: float = 1.0, seed: int = 20) -> None:
    """wave5: Maxwell's equations -- particle-in-cell with continuous phase."""
    particles = max(30, int(120 * scale))
    rng = np.random.default_rng(seed)
    phase = recorder.track(rng.random(particles) * 6.28318)
    fieldstrength = recorder.track(rng.random(particles) * 5.0)
    for _ in recorder.loop(range(3)):
        for p in recorder.loop(range(particles)):
            kick = recorder.fmul(fieldstrength[p], phase[p])
            recorder.fdiv(kick, recorder.fadd(phase[p], 1.0))
            phase[p] = recorder.fadd(phase[p], recorder.fmul(kick, 1e-3))


@dataclass(frozen=True)
class _App:
    name: str
    description: str
    run: Callable[..., None]
    has_imul: bool = True
    has_fp: bool = True


#: Table 3 applications, paper order.
SPECCFP_APPS: Dict[str, _App] = {
    app.name: app
    for app in (
        _App("tomcatv", "Vectorized mesh generation", tomcatv),
        _App("swim", "Shallow water equations", swim, has_imul=False),
        _App("su2cor", "Monte-Carlo method", su2cor, has_fp=False),
        _App("hydro2d", "Navier Stokes equations", hydro2d, has_imul=False),
        _App("mgrid", "3d potential field", mgrid),
        _App("applu", "Partial differential equations", applu),
        _App("turb3d", "Turbulence modeling", turb3d),
        _App("apsi", "Weather prediction", apsi),
        _App("fpppp", "Gaussian series of quantum chemistry", fpppp),
        _App("wave5", "Maxwell's equation", wave5, has_imul=False),
    )
}


def speccfp_names() -> Tuple[str, ...]:
    return tuple(SPECCFP_APPS)


def run_speccfp(name: str, recorder: OperationRecorder, scale: float = 1.0) -> None:
    """Run one SPEC CFP95 surrogate by name."""
    try:
        app = SPECCFP_APPS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown SPEC CFP95 app {name!r}; available: {', '.join(SPECCFP_APPS)}"
        ) from None
    app.run(recorder, scale=scale)
