"""A miniature JPEG-style compression pipeline, instrumented.

The canonical mid-90s multimedia workload: 8x8 block DCT, quality-scaled
quantization, zigzag run-length accounting, dequantization and inverse
DCT.  Every stage maps onto a memoizable unit:

* the DCT/IDCT multiply quantised pixels by a 64-value cosine ROM
  (fmul);
* quantization divides coefficients by a small set of quantizer steps
  (fdiv -- highly memoizable, the divisor universe is the quant table);
* dequantization multiplies the integer codes back (fmul on a tiny
  operand universe).

This is both a workload for the simulators and a end-to-end correctness
check: the reconstruction must approach the input as quality -> 100.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from ..errors import WorkloadError
from .recorder import OperationRecorder

__all__ = ["jpeg_roundtrip", "BLOCK", "quant_table"]

BLOCK = 8

#: Luminance quantization table (ISO/IEC 10918-1 Annex K).
_BASE_QUANT = (
    (16, 11, 10, 16, 24, 40, 51, 61),
    (12, 12, 14, 19, 26, 58, 60, 55),
    (14, 13, 16, 24, 40, 57, 69, 56),
    (14, 17, 22, 29, 51, 87, 80, 62),
    (18, 22, 37, 56, 68, 109, 103, 77),
    (24, 35, 55, 64, 81, 104, 113, 92),
    (49, 64, 78, 87, 103, 121, 120, 101),
    (72, 92, 95, 98, 112, 100, 103, 99),
)


def quant_table(quality: int) -> List[List[float]]:
    """JPEG quality scaling of the Annex K table (quality 1..100)."""
    if not 1 <= quality <= 100:
        raise WorkloadError(f"quality must be in 1..100, got {quality}")
    if quality < 50:
        scale = 5000 / quality
    else:
        scale = 200 - 2 * quality
    table = []
    for row in _BASE_QUANT:
        table.append(
            [max(1.0, math.floor((q * scale + 50) / 100)) for q in row]
        )
    return table


def _dct_basis() -> List[List[float]]:
    basis = []
    for u in range(BLOCK):
        scale = math.sqrt(1.0 / BLOCK) if u == 0 else math.sqrt(2.0 / BLOCK)
        basis.append(
            [
                round(scale * math.cos((2 * i + 1) * u * math.pi / (2 * BLOCK)), 5)
                for i in range(BLOCK)
            ]
        )
    return basis


_BASIS = _dct_basis()
_INVERSE = [[_BASIS[i][j] for i in range(BLOCK)] for j in range(BLOCK)]

#: Zigzag scan order of an 8x8 block.
_ZIGZAG: Tuple[Tuple[int, int], ...] = tuple(
    sorted(
        ((u, v) for u in range(BLOCK) for v in range(BLOCK)),
        key=lambda uv: (
            uv[0] + uv[1],
            uv[1] if (uv[0] + uv[1]) % 2 else uv[0],
        ),
    )
)


def _transform(recorder, block, basis):
    """Separable 2-D transform (rows then columns)."""
    half = [[0.0] * BLOCK for _ in range(BLOCK)]
    for i in range(BLOCK):
        for u in range(BLOCK):
            acc = 0.0
            for j in range(BLOCK):
                acc = recorder.fadd(acc, recorder.fmul(block[i][j], basis[u][j]))
            half[i][u] = acc
    out = [[0.0] * BLOCK for _ in range(BLOCK)]
    for j in range(BLOCK):
        for u in range(BLOCK):
            acc = 0.0
            for i in range(BLOCK):
                acc = recorder.fadd(acc, recorder.fmul(half[i][j], basis[u][i]))
            out[u][j] = acc
    return out


def jpeg_roundtrip(
    recorder: OperationRecorder,
    image: np.ndarray,
    quality: int = 50,
) -> Tuple[np.ndarray, int]:
    """Compress and reconstruct ``image``; returns (reconstruction, nonzeros).

    ``nonzeros`` counts post-quantization nonzero coefficients over the
    zigzag scan -- the compressed-size proxy (what an entropy coder
    would actually encode).
    """
    data = np.asarray(image, dtype=np.float64)
    if data.ndim != 2:
        raise WorkloadError("jpeg_roundtrip expects a 2-D image")
    height = (data.shape[0] // BLOCK) * BLOCK
    width = (data.shape[1] // BLOCK) * BLOCK
    if height == 0 or width == 0:
        raise WorkloadError(
            f"image too small for {BLOCK}x{BLOCK} blocks: {data.shape}"
        )
    pixels = recorder.track(data[:height, :width] - 128.0)  # level shift
    out = recorder.new_array((height, width))
    quant = quant_table(quality)
    nonzeros = 0

    for top in recorder.loop(range(0, height, BLOCK)):
        for left in recorder.loop(range(0, width, BLOCK)):
            recorder.imul(top, width)  # block base address
            block = [
                [pixels[top + i, left + j] for j in range(BLOCK)]
                for i in range(BLOCK)
            ]
            coeffs = _transform(recorder, block, _BASIS)

            # Quantize: divide by the quality-scaled step, round to int.
            codes = [[0.0] * BLOCK for _ in range(BLOCK)]
            for u, v in _ZIGZAG:
                code = round(recorder.fdiv(coeffs[u][v], quant[u][v]))
                codes[u][v] = float(code)
                recorder.branch()  # the run-length test
                if code != 0:
                    nonzeros += 1

            # Dequantize: integer codes times the same steps.
            for u in range(BLOCK):
                for v in range(BLOCK):
                    codes[u][v] = recorder.fmul(codes[u][v], quant[u][v])

            spatial = _transform(recorder, codes, _INVERSE)
            for i in range(BLOCK):
                for j in range(BLOCK):
                    out[top + i, left + j] = recorder.fadd(
                        spatial[i][j], 128.0
                    )
    return out.array, nonzeros
