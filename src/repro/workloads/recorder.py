"""Instrumented execution: turning Python kernels into instruction traces.

The paper instruments real binaries with Shade; here, workload kernels
are ordinary Python functions written against an
:class:`OperationRecorder`, which

* performs each arithmetic operation (so the kernel really computes its
  output) while appending the matching :class:`TraceEvent`;
* tracks array accesses through :class:`TrackedArray` so loads/stores
  carry realistic addresses for the cache hierarchy;
* counts loop overhead (branch + index arithmetic) via :meth:`loop`.

The recorded stream is exactly what the simulators consume, so the
operand values reaching the MEMO-TABLES are the values the computation
actually produced -- value locality is emergent, not synthesized.
"""

from __future__ import annotations

import math
import sys
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..core.operations import ieee_div, ieee_log, ieee_sqrt, int_div
from ..errors import WorkloadError
from ..isa.opcodes import Opcode
from ..isa.trace import Trace, TraceEvent

__all__ = ["OperationRecorder", "TrackedArray", "TracedValue", "TracedInt", "vid_of"]

Consumer = Callable[[TraceEvent], None]


class TracedValue(float):
    """A float carrying the virtual value-id of the event that made it.

    Kernels handle these as ordinary floats (any further plain-Python
    arithmetic returns a bare float, dropping the id -- which is correct:
    untraced operations are not pipeline producers).  The recorder reads
    the id back to attach dataflow edges to subsequent events.
    """

    def __new__(cls, value: float, vid: int):
        self = super().__new__(cls, value)
        self.vid = vid
        return self


class TracedInt(int):
    """Integer twin of :class:`TracedValue` (for imul results)."""

    def __new__(cls, value: int, vid: int):
        self = super().__new__(cls, value)
        self.vid = vid
        return self


def vid_of(value) -> Optional[int]:
    """Virtual value-id of ``value``, or None for untracked constants."""
    return getattr(value, "vid", None)


def _srcs(*operands) -> tuple:
    """Dataflow edges: the ids of traced operands (constants drop out)."""
    return tuple(v.vid for v in operands if hasattr(v, "vid"))

#: Tracked arrays are laid out in a flat synthetic address space,
#: page-aligned so distinct arrays never share cache lines.
_ARRAY_ALIGNMENT = 4096


class TrackedArray:
    """A numpy array whose element accesses are recorded as loads/stores.

    Only scalar (integer-tuple) indexing is supported -- kernels are
    written as explicit per-pixel loops, which is what a compiled
    scalar binary would execute.
    """

    def __init__(
        self, recorder: "OperationRecorder", array: np.ndarray, base: int
    ) -> None:
        self._recorder = recorder
        self.array = array
        self.base = base
        self.itemsize = array.itemsize
        # Element strides, precomputed: address math runs per access.
        self._strides = tuple(s // array.itemsize for s in array.strides)

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.array.shape

    def _address(self, index) -> int:
        if isinstance(index, tuple):
            flat = 0
            for i, stride in zip(index, self._strides):
                flat += i * stride
        else:
            flat = index * self._strides[0]
        return self.base + flat * self.itemsize

    def __getitem__(self, index):
        recorder = self._recorder
        vid = recorder._new_vid()
        recorder.emit(
            TraceEvent(Opcode.LOAD, address=self._address(index), dst=vid)
        )
        value = self.array[index]
        if isinstance(value, np.generic):
            value = value.item()
        if isinstance(value, float):
            return TracedValue(value, vid)
        if isinstance(value, int):
            return TracedInt(value, vid)
        return value

    def __setitem__(self, index, value) -> None:
        self._recorder.emit(
            TraceEvent(
                Opcode.STORE, address=self._address(index), srcs=_srcs(value)
            )
        )
        self.array[index] = value

    def peek(self, index):
        """Read without recording (for assertions and debugging)."""
        value = self.array[index]
        return value.item() if isinstance(value, np.generic) else value


class OperationRecorder:
    """Collects the dynamic instruction stream of an instrumented kernel."""

    def __init__(
        self,
        keep_trace: bool = True,
        consumers: Sequence[Consumer] = (),
        record_sites: bool = False,
    ) -> None:
        """``keep_trace`` materializes events in :attr:`trace`;
        ``consumers`` receive every event as it happens (streaming mode,
        for runs too large to hold in memory); ``record_sites`` stamps
        each arithmetic event with a synthetic PC identifying its static
        call site (needed by PC-indexed schemes like the Reuse Buffer)."""
        self.trace: Optional[Trace] = Trace() if keep_trace else None
        self._consumers: List[Consumer] = list(consumers)
        self._next_base = _ARRAY_ALIGNMENT
        self._next_vid = 0
        self.record_sites = record_sites
        self._sites: Dict[tuple, int] = {}
        self.events_recorded = 0

    def _new_vid(self) -> int:
        """Allocate a fresh virtual value id (dataflow node)."""
        self._next_vid += 1
        return self._next_vid

    def _site_pc(self) -> Optional[int]:
        """Synthetic PC of the kernel statement that called the recorder.

        Derived from the caller's code object and bytecode offset, two
        frames up (kernel -> public method -> helper), so one source
        statement is one static instruction -- unrolled source therefore
        occupies multiple PCs, exactly the distinction the paper draws
        against the Reuse Buffer.
        """
        if not self.record_sites:
            return None
        frame = sys._getframe(3)
        key = (id(frame.f_code), frame.f_lasti)
        pc = self._sites.get(key)
        if pc is None:
            # 4-byte "instructions", like a RISC text segment.
            pc = 0x10000 + 4 * len(self._sites)
            self._sites[key] = pc
        return pc

    # -- plumbing ---------------------------------------------------------

    def add_consumer(self, consumer: Consumer) -> None:
        self._consumers.append(consumer)

    def add_batch_consumer(self, sink, batch_events: Optional[int] = None):
        """Stream the recording to ``sink`` as columnar batches.

        ``sink`` receives :class:`~repro.isa.columns.ColumnBatch` blocks
        of up to ``batch_events`` events -- the struct-of-arrays form the
        simulator kernel and the v3 trace format consume directly, so a
        streaming pipeline never materializes per-event tuples beyond
        the current block.  Returns the builder; call
        :meth:`flush_batches` (or the builder's ``flush``) after the
        kernel finishes to emit the final partial block.
        """
        from ..isa.columns import ColumnBatchBuilder, DEFAULT_BATCH_EVENTS

        builder = ColumnBatchBuilder(
            sink,
            batch_events=(
                batch_events if batch_events is not None
                else DEFAULT_BATCH_EVENTS
            ),
        )
        self._consumers.append(builder)
        return builder

    def flush_batches(self) -> None:
        """Flush every batch consumer's pending partial block."""
        for consumer in self._consumers:
            flush = getattr(consumer, "flush", None)
            if callable(flush):
                flush()

    def emit(self, event: TraceEvent) -> None:
        self.events_recorded += 1
        if self.trace is not None:
            self.trace.append(event)
        for consumer in self._consumers:
            consumer(event)

    # -- memory -----------------------------------------------------------

    def track(self, array: np.ndarray) -> TrackedArray:
        """Place ``array`` in the synthetic address space and wrap it."""
        arr = np.asarray(array)
        base = self._next_base
        span = arr.size * arr.itemsize
        self._next_base = (
            (base + span + _ARRAY_ALIGNMENT - 1) // _ARRAY_ALIGNMENT
        ) * _ARRAY_ALIGNMENT
        return TrackedArray(self, arr, base)

    def new_array(self, shape, dtype=np.float64, fill=0.0) -> TrackedArray:
        """Allocate and track a fresh output array."""
        return self.track(np.full(shape, fill, dtype=dtype))

    # -- arithmetic (records and computes) ----------------------------------
    #
    # Every method computes the true result, emits an event carrying the
    # plain operand values plus dataflow edges, and returns the result
    # wrapped with its value id so later events can name it as a source.

    def _binary(self, opcode: Opcode, raw_a, raw_b, value_a, value_b, result):
        """Emit a two-operand event; ``raw_*`` keep the dataflow ids."""
        vid = self._new_vid()
        self.emit(
            TraceEvent(
                opcode, value_a, value_b, result,
                dst=vid, srcs=_srcs(raw_a, raw_b), pc=self._site_pc(),
            )
        )
        return vid

    def _unary(self, opcode: Opcode, raw_a, value_a, result):
        vid = self._new_vid()
        self.emit(
            TraceEvent(
                opcode, value_a, 0.0, result,
                dst=vid, srcs=_srcs(raw_a), pc=self._site_pc(),
            )
        )
        return vid

    def imul(self, a: int, b: int) -> int:
        result = int(a) * int(b)
        vid = self._binary(Opcode.IMUL, a, b, int(a), int(b), result)
        return TracedInt(result, vid)

    def idiv(self, a: int, b: int) -> int:
        result = int_div(int(a), int(b))
        vid = self._binary(Opcode.IDIV, a, b, int(a), int(b), result)
        return TracedInt(result, vid)

    def fmul(self, a: float, b: float) -> float:
        result = float(a) * float(b)
        vid = self._binary(Opcode.FMUL, a, b, float(a), float(b), result)
        return TracedValue(result, vid)

    def fdiv(self, a: float, b: float) -> float:
        result = ieee_div(float(a), float(b))
        vid = self._binary(Opcode.FDIV, a, b, float(a), float(b), result)
        return TracedValue(result, vid)

    def fsqrt(self, a: float) -> float:
        result = ieee_sqrt(float(a))
        vid = self._unary(Opcode.FSQRT, a, float(a), result)
        return TracedValue(result, vid)

    def frecip(self, a: float) -> float:
        result = ieee_div(1.0, float(a))
        vid = self._unary(Opcode.FRECIP, a, float(a), result)
        return TracedValue(result, vid)

    def flog(self, a: float) -> float:
        result = ieee_log(float(a))
        vid = self._unary(Opcode.FLOG, a, float(a), result)
        return TracedValue(result, vid)

    def fsin(self, a: float) -> float:
        result = math.sin(float(a))
        vid = self._unary(Opcode.FSIN, a, float(a), result)
        return TracedValue(result, vid)

    def fcos(self, a: float) -> float:
        result = math.cos(float(a))
        vid = self._unary(Opcode.FCOS, a, float(a), result)
        return TracedValue(result, vid)

    def fadd(self, a: float, b: float) -> float:
        result = float(a) + float(b)
        vid = self._binary(Opcode.FADD, a, b, float(a), float(b), result)
        return TracedValue(result, vid)

    def fsub(self, a: float, b: float) -> float:
        result = float(a) - float(b)
        vid = self._binary(Opcode.FADD, a, b, float(a), float(b), result)
        return TracedValue(result, vid)

    # -- overhead instructions ----------------------------------------------

    def ialu(self, count: int = 1) -> None:
        """Record integer ALU work (address arithmetic, comparisons...)."""
        for _ in range(count):
            self.emit(TraceEvent(Opcode.IALU))

    def branch(self, count: int = 1) -> None:
        for _ in range(count):
            self.emit(TraceEvent(Opcode.BRANCH))

    def loop(self, iterable: Iterable) -> Iterator:
        """Iterate while charging per-iteration loop overhead.

        Each iteration of a compiled scalar loop costs index increments,
        a bounds compare and a conditional branch; ``loop`` records that
        mix (two IALU + one BRANCH), so traces carry a realistic
        instruction breakdown even though the kernel bodies are Python.
        """
        ialu = TraceEvent(Opcode.IALU)
        branch = TraceEvent(Opcode.BRANCH)
        for item in iterable:
            self.emit(ialu)
            self.emit(ialu)
            self.emit(branch)
            yield item

    # -- summary ------------------------------------------------------------

    def breakdown(self) -> dict:
        """Opcode frequency breakdown (requires keep_trace=True)."""
        if self.trace is None:
            raise WorkloadError("breakdown requires keep_trace=True")
        return self.trace.breakdown()
