"""DSP workloads for the paper's future-work operations (section 4).

"Future work will be to extend the MEMO-TABLE technique to sqrt, log,
trigonometric and other mathematical functions."  These kernels exercise
hardware log/sin/cos units on multimedia-style data so that extension
can be evaluated with the same machinery as the headline experiments.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from .recorder import OperationRecorder

__all__ = [
    "log_compress",
    "sine_synthesis",
    "texture_rotation",
    "TRANSCENDENTAL_KERNELS",
    "run_transcendental",
]


def log_compress(recorder: OperationRecorder, image: np.ndarray) -> np.ndarray:
    """Logarithmic dynamic-range compression: ``out = c * log(1 + p)``.

    The classic display transform for spectra and radar imagery.  Byte
    pixels give at most 256 distinct log arguments -- a tiny operand
    universe, ideal for a log-unit MEMO-TABLE.
    """
    pixels = recorder.track(np.asarray(image, dtype=np.float64))
    if pixels.array.ndim != 2:
        raise WorkloadError("log_compress expects a 2-D image")
    height, width = pixels.shape
    out = recorder.new_array((height, width))
    scale = 255.0 / np.log(256.0)
    for i in recorder.loop(range(height)):
        for j in recorder.loop(range(width)):
            compressed = recorder.flog(recorder.fadd(pixels[i, j], 1.0))
            out[i, j] = recorder.fmul(compressed, scale)
    return out.array


def sine_synthesis(
    recorder: OperationRecorder,
    samples: int = 512,
    partials: int = 4,
    phase_steps: int = 64,
) -> np.ndarray:
    """Additive audio synthesis on a quantised phase accumulator.

    Fixed-point synthesizers step the phase on a ``phase_steps`` lattice,
    so every ``sin`` argument is one of a small set of angles -- the
    1990s justification for sine ROMs, re-expressed as memoing.
    """
    if samples <= 0 or partials <= 0 or phase_steps <= 0:
        raise WorkloadError("samples, partials and phase_steps must be positive")
    out = recorder.new_array((samples,))
    two_pi = 2.0 * np.pi
    for n in recorder.loop(range(samples)):
        value = 0.0
        for k in recorder.loop(range(1, partials + 1)):
            step = (n * k) % phase_steps
            angle = two_pi * step / phase_steps
            tone = recorder.fsin(angle)
            value = recorder.fadd(value, recorder.fmul(tone, 1.0 / (k + 1)))
        out[n] = value
    return out.array


def texture_rotation(
    recorder: OperationRecorder,
    image: np.ndarray,
    angle_levels: int = 32,
) -> np.ndarray:
    """Per-pixel rotation field: sin/cos of pixel-derived angles.

    Each pixel's value selects one of ``angle_levels`` rotation angles
    (a gradient-direction map quantised the way real texture analysis
    quantises orientations); both sin and cos units see the same small
    operand universe.
    """
    pixels = recorder.track(np.asarray(image, dtype=np.float64))
    height, width = pixels.shape
    out = recorder.new_array((height, width, 2))
    two_pi = 2.0 * np.pi
    for i in recorder.loop(range(height)):
        for j in recorder.loop(range(width)):
            level = int(pixels[i, j]) % angle_levels
            angle = two_pi * level / angle_levels
            out[i, j, 0] = recorder.fcos(angle)
            out[i, j, 1] = recorder.fsin(angle)
    return out.array


TRANSCENDENTAL_KERNELS = {
    "log_compress": log_compress,
    "sine_synthesis": sine_synthesis,
    "texture_rotation": texture_rotation,
}


def run_transcendental(name: str, recorder: OperationRecorder, *args, **kwargs):
    """Run a future-work kernel by name."""
    try:
        kernel = TRANSCENDENTAL_KERNELS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown kernel {name!r}; available: "
            f"{', '.join(TRANSCENDENTAL_KERNELS)}"
        ) from None
    return kernel(recorder, *args, **kwargs)
