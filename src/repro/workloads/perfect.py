"""Surrogates for the Perfect Benchmark applications (Table 2).

Each function implements a small numeric kernel of the same class as the
application it stands in for (air-pollution advection, lattice gauge
updates, molecular dynamics, ...), instrumented through an
:class:`OperationRecorder`.  What the memoing study measures is *value
locality*, and that is governed by whether operand values are quantised
(sensor data, combinatorial indices) or continuous (evolving FP state);
each surrogate makes the choice its domain dictates, which is what
reproduces the low 32-entry / higher infinite-table hit ratios of
Table 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

from ..errors import WorkloadError
from .recorder import OperationRecorder

__all__ = ["PERFECT_APPS", "perfect_names", "run_perfect"]


def _grid(recorder, shape, seed, levels=0):
    """A tracked 2-D field; ``levels`` > 0 quantises it (low entropy)."""
    rng = np.random.default_rng(seed)
    data = rng.random(shape)
    if levels:
        data = np.floor(data * levels) / levels
    return recorder.track(data * 100.0)


def adm(recorder: OperationRecorder, scale: float = 1.0, seed: int = 1) -> None:
    """ADM: air pollution, fluid dynamics -- 2-D advection-diffusion.

    Pollutant concentrations start quantised (emission inventories are
    tabulated) but diffuse into continuous values, so early-sweep reuse
    decays -- small-table fp ratios are low while total reuse is larger.
    """
    side = max(8, int(24 * scale))
    field = _grid(recorder, (side, side), seed, levels=64)
    diffusivity = 0.125
    wind = 0.25
    for _ in recorder.loop(range(4)):
        for i in recorder.loop(range(1, side - 1)):
            recorder.imul(i, side)
            for j in recorder.loop(range(1, side - 1)):
                recorder.imul(i, side)  # second operand address
                here = field[i, j]
                lap = recorder.fadd(
                    recorder.fadd(field[i - 1, j], field[i + 1, j]),
                    recorder.fadd(field[i, j - 1], field[i, j + 1]),
                )
                lap = recorder.fsub(lap, recorder.fmul(4.0, here))
                advect = recorder.fmul(
                    wind, recorder.fsub(field[i, j - 1], here)
                )
                delta = recorder.fadd(recorder.fmul(diffusivity, lap), advect)
                concentration = recorder.fadd(here, delta)
                # Deposition ratio: concentration over local capacity.
                recorder.fdiv(concentration, recorder.fadd(here, 50.0))
                field[i, j] = concentration


def qcd(recorder: OperationRecorder, scale: float = 1.0, seed: int = 2) -> None:
    """QCD: lattice gauge -- Monte-Carlo link updates with fresh randoms.

    Every multiplication involves a freshly drawn random number, so
    operand pairs essentially never repeat: hit ratios near zero even
    for the infinite table (Table 5 shows .00-.07).
    """
    side = max(4, int(10 * scale))
    state = (seed * 2654435761 + 1) & 0x7FFFFFFF
    links = _grid(recorder, (side, side), seed)
    for i in recorder.loop(range(side)):
        for j in recorder.loop(range(side)):
            for _ in recorder.loop(range(4)):
                # LCG: constant multiplier against an always-new state.
                state = (recorder.imul(state, 1103515245) + 12345) & 0x7FFFFFFF
                random_value = state / 2147483648.0
                staple = recorder.fmul(links[i, j], random_value)
                links[i, j] = recorder.fadd(
                    recorder.fmul(staple, 0.9731), random_value
                )


def mdg(recorder: OperationRecorder, scale: float = 1.0, seed: int = 3) -> None:
    """MDG: liquid water simulation -- pairwise molecular forces.

    Continuous positions evolve every step; squared distances and their
    reciprocals never repeat (Table 5: fp ratios .00-.04, no imul).
    """
    count = max(6, int(16 * scale))
    rng = np.random.default_rng(seed)
    positions = recorder.track(rng.random((count, 3)) * 10.0)
    velocities = recorder.track(np.zeros((count, 3)))
    for _ in recorder.loop(range(3)):
        for a in recorder.loop(range(count)):
            for b in recorder.loop(range(a + 1, count)):
                r_sq = 0.0
                for axis in range(3):
                    delta = recorder.fsub(positions[a, axis], positions[b, axis])
                    r_sq = recorder.fadd(r_sq, recorder.fmul(delta, delta))
                inv = recorder.fdiv(1.0, recorder.fadd(r_sq, 0.1))
                force = recorder.fmul(inv, inv)
                for axis in range(3):
                    velocities[a, axis] = recorder.fadd(
                        velocities[a, axis], recorder.fmul(force, 0.001)
                    )
        for a in recorder.loop(range(count)):
            for axis in range(3):
                positions[a, axis] = recorder.fadd(
                    positions[a, axis], velocities[a, axis]
                )


def track(recorder: OperationRecorder, scale: float = 1.0, seed: int = 4) -> None:
    """TRACK: missile tracking -- FIR filtering of quantised ADC samples.

    8-bit sensor samples against constant filter taps repeat massively
    in total, but the pair working set exceeds a 32-entry table; the
    per-sample address multiply hits almost always (Table 5: imul .98).
    """
    length = max(64, int(400 * scale))
    rng = np.random.default_rng(seed)
    samples = recorder.track(np.floor(rng.random(length) * 256.0))
    taps = (0.125, 0.375, 0.375, 0.125, -0.0625)
    gains = recorder.track(np.floor(rng.random(length) * 16.0) + 1.0)
    output = recorder.new_array(length)
    for repeat in recorder.loop(range(3)):
        for n in recorder.loop(range(len(taps), length)):
            recorder.imul(repeat + 1, length)  # frame base address
            acc = 0.0
            for k, tap in enumerate(taps):
                acc = recorder.fadd(acc, recorder.fmul(samples[n - k], tap))
            output[n] = recorder.fdiv(acc, gains[n])


def ocean(recorder: OperationRecorder, scale: float = 1.0, seed: int = 5) -> None:
    """OCEAN: 2-D fluid dynamics -- column-major sweeps over a large grid.

    Column-major traversal defeats the small table's address-multiply
    locality (imul .15 at 32 entries) while repeated identical sweeps
    make almost everything reusable in principle (.99 infinite).
    """
    side = max(12, int(28 * scale))
    stream = _grid(recorder, (side, side), seed)
    depth = _grid(recorder, (side, side), seed + 1, levels=16)
    for _ in recorder.loop(range(3)):
        for j in recorder.loop(range(1, side - 1)):  # column major
            for i in recorder.loop(range(1, side - 1)):
                recorder.imul(i, side)
                velocity = recorder.fmul(
                    recorder.fsub(stream[i, j + 1], stream[i, j - 1]), 0.5
                )
                recorder.fdiv(velocity, depth[i, j])  # transport diagnostic
                recorder.fmul(velocity, depth[i, j])


def arc2d(recorder: OperationRecorder, scale: float = 1.0, seed: int = 6) -> None:
    """ARC2D: supersonic reentry -- implicit 2-D fluid sweeps.

    Quantised metric terms give modest fp multiply reuse; the pressure
    ratio divisions have a working set just beyond the small table.
    """
    side = max(10, int(24 * scale))
    density = _grid(recorder, (side, side), seed, levels=48)
    metric = _grid(recorder, (side, side), seed + 1, levels=12)
    for _ in recorder.loop(range(3)):
        for i in recorder.loop(range(1, side - 1)):
            recorder.imul(i, side)
            for j in recorder.loop(range(1, side - 1)):
                recorder.imul(i, side)
                flux = recorder.fmul(density[i, j], metric[i, j])
                pressure = recorder.fadd(flux, density[i - 1, j])
                recorder.fdiv(pressure, metric[i, j])
                density[i, j] = recorder.fadd(
                    density[i, j], recorder.fmul(flux, 0.001)
                )


def flo52(recorder: OperationRecorder, scale: float = 1.0, seed: int = 7) -> None:
    """FLO52: transonic flow -- Runge-Kutta smoothing on an evolving field."""
    side = max(10, int(24 * scale))
    field = _grid(recorder, (side, side), seed)
    for step in recorder.loop(range(4)):
        coeff = 0.25 * (step + 1)
        for i in recorder.loop(range(1, side - 1)):
            recorder.imul(i, side)
            for j in recorder.loop(range(1, side - 1)):
                recorder.imul(i, side)
                smooth = recorder.fmul(
                    coeff,
                    recorder.fsub(field[i, j + 1], field[i, j - 1]),
                )
                field[i, j] = recorder.fadd(field[i, j], smooth)
                if (i + j) % 8 == 0:
                    recorder.fdiv(field[i, j], recorder.fadd(smooth, 3.0))


def trfd(recorder: OperationRecorder, scale: float = 1.0, seed: int = 8) -> None:
    """TRFD: two-electron transform integrals -- combinatorial index math.

    The integral kernel divides by small-integer index expressions, a
    tiny value universe that fits a 32-entry table (Table 5: fdiv .85).
    """
    n = max(6, int(14 * scale))
    coeffs = _grid(recorder, (n, n), seed, levels=32)
    for p in recorder.loop(range(1, n)):
        recorder.imul(p, n)
        for q in recorder.loop(range(1, p + 1)):
            recorder.imul(p, q)  # pair index (p*q has many repeats)
            # The 4-index transform revisits each (p, q) pair once per
            # third index, so its index-ratio divisions recur heavily --
            # the paper's TRFD is the one scientific code whose fdiv
            # stream fits a 32-entry table (.85).
            for r in recorder.loop(range(1, 5)):
                weight = recorder.fdiv(float(p), float(q))
                recorder.fmul(coeffs[p, q], weight)
                recorder.fdiv(float(p * q), float(p + q))
                recorder.fmul(coeffs[p % n, r], coeffs[q % n, r])


def spec77(recorder: OperationRecorder, scale: float = 1.0, seed: int = 9) -> None:
    """SPEC77: spectral weather -- harmonic synthesis with a wavetable.

    Fourier coefficients multiply a small table of quantised basis
    values: moderate multiply reuse, almost no division reuse.
    """
    modes = max(8, int(20 * scale))
    points = max(16, int(48 * scale))
    rng = np.random.default_rng(seed)
    spectrum = recorder.track(rng.random(modes))
    basis = recorder.track(
        np.round(np.cos(np.outer(np.arange(16), np.arange(modes))), 3)
    )
    field = recorder.new_array(points)
    for x in recorder.loop(range(points)):
        acc = 0.0
        for m in recorder.loop(range(modes)):
            recorder.imul(x, modes)
            acc = recorder.fadd(
                acc, recorder.fmul(spectrum[m], basis[x % 16, m])
            )
        field[x] = recorder.fdiv(acc, float(1 + x))


@dataclass(frozen=True)
class _App:
    name: str
    description: str
    run: Callable[..., None]
    has_imul: bool = True


#: Table 2 applications, paper order.
PERFECT_APPS: Dict[str, _App] = {
    app.name: app
    for app in (
        _App("ADM", "Air Pollution, fluid dynamics", adm),
        _App("QCD", "Lattice gauge, quantum chromodynamics", qcd),
        _App("MDG", "Liquid water simulation, molecular dynamics", mdg, has_imul=False),
        _App("TRACK", "Missile tracking, signal processing", track),
        _App("OCEAN", "Ocean simulation, 2-D fluid dynamics", ocean),
        _App("ARC2D", "Supersonic reentry, 2-D fluid dynamics", arc2d),
        _App("FLO52", "Transonic flow, 2-D fluid dynamics", flo52),
        _App("TRFD", "2-electron transform integrals, molecular dynamics", trfd),
        _App("SPEC77", "Weather simulation, fluid dynamics", spec77),
    )
}


def perfect_names() -> Tuple[str, ...]:
    return tuple(PERFECT_APPS)


def run_perfect(name: str, recorder: OperationRecorder, scale: float = 1.0) -> None:
    """Run one Perfect surrogate by name."""
    try:
        app = PERFECT_APPS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown Perfect app {name!r}; available: {', '.join(PERFECT_APPS)}"
        ) from None
    app.run(recorder, scale=scale)
