"""Bit-level IEEE-754 helpers.

The MEMO-TABLE of the paper operates on the *bit patterns* of operands:

* the set index for floating point operands is formed by XOR-ing the *n*
  most significant bits of the two mantissas (paper section 3.1);
* the "mantissa-only" tag variant (Table 10) compares just the 52-bit
  mantissa fields.

This module provides the bit manipulation substrate for both float64 and
float32, independent of the host's float formatting.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass

__all__ = [
    "FLOAT64_MANTISSA_BITS",
    "FLOAT64_EXPONENT_BITS",
    "FLOAT32_MANTISSA_BITS",
    "FLOAT32_EXPONENT_BITS",
    "Float64Parts",
    "Float32Parts",
    "float64_to_bits",
    "bits_to_float64",
    "float32_to_bits",
    "bits_to_float32",
    "decompose64",
    "decompose32",
    "compose64",
    "compose32",
    "mantissa64",
    "mantissa32",
    "mantissa_msbs64",
    "exponent64",
    "sign64",
    "is_finite_bits64",
]

FLOAT64_MANTISSA_BITS = 52
FLOAT64_EXPONENT_BITS = 11
FLOAT32_MANTISSA_BITS = 23
FLOAT32_EXPONENT_BITS = 8

_EXP64_MASK = (1 << FLOAT64_EXPONENT_BITS) - 1
_MANT64_MASK = (1 << FLOAT64_MANTISSA_BITS) - 1
_EXP32_MASK = (1 << FLOAT32_EXPONENT_BITS) - 1
_MANT32_MASK = (1 << FLOAT32_MANTISSA_BITS) - 1


@dataclass(frozen=True)
class Float64Parts:
    """Raw IEEE-754 double precision fields (unbiased decoding left to callers)."""

    sign: int
    exponent: int  # biased, 11 bits
    mantissa: int  # 52 bits, without the implicit leading one


@dataclass(frozen=True)
class Float32Parts:
    """Raw IEEE-754 single precision fields."""

    sign: int
    exponent: int  # biased, 8 bits
    mantissa: int  # 23 bits


def float64_to_bits(value: float) -> int:
    """Return the 64-bit pattern of ``value`` as an unsigned integer."""
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def bits_to_float64(bits: int) -> float:
    """Return the float whose 64-bit pattern is ``bits``."""
    return struct.unpack("<d", struct.pack("<Q", bits & 0xFFFFFFFFFFFFFFFF))[0]


def float32_to_bits(value: float) -> int:
    """Return the 32-bit pattern of ``value`` (rounded to single precision)."""
    return struct.unpack("<I", struct.pack("<f", value))[0]


def bits_to_float32(bits: int) -> float:
    """Return the float whose 32-bit single precision pattern is ``bits``."""
    return struct.unpack("<f", struct.pack("<I", bits & 0xFFFFFFFF))[0]


def decompose64(value: float) -> Float64Parts:
    """Split ``value`` into raw (sign, biased exponent, mantissa) fields."""
    bits = float64_to_bits(value)
    return Float64Parts(
        sign=bits >> 63,
        exponent=(bits >> FLOAT64_MANTISSA_BITS) & _EXP64_MASK,
        mantissa=bits & _MANT64_MASK,
    )


def decompose32(value: float) -> Float32Parts:
    """Split ``value`` into raw single-precision fields."""
    bits = float32_to_bits(value)
    return Float32Parts(
        sign=bits >> 31,
        exponent=(bits >> FLOAT32_MANTISSA_BITS) & _EXP32_MASK,
        mantissa=bits & _MANT32_MASK,
    )


def compose64(parts: Float64Parts) -> float:
    """Rebuild a float from raw double-precision fields."""
    bits = (
        ((parts.sign & 1) << 63)
        | ((parts.exponent & _EXP64_MASK) << FLOAT64_MANTISSA_BITS)
        | (parts.mantissa & _MANT64_MASK)
    )
    return bits_to_float64(bits)


def compose32(parts: Float32Parts) -> float:
    """Rebuild a float from raw single-precision fields."""
    bits = (
        ((parts.sign & 1) << 31)
        | ((parts.exponent & _EXP32_MASK) << FLOAT32_MANTISSA_BITS)
        | (parts.mantissa & _MANT32_MASK)
    )
    return bits_to_float32(bits)


def mantissa64(value: float) -> int:
    """Return the raw 52-bit mantissa field of ``value``."""
    return float64_to_bits(value) & _MANT64_MASK


def mantissa32(value: float) -> int:
    """Return the raw 23-bit mantissa field of ``value``."""
    return float32_to_bits(value) & _MANT32_MASK


def mantissa_msbs64(value: float, n: int) -> int:
    """Return the ``n`` most significant bits of the 52-bit mantissa field.

    This is the quantity the paper XORs across the two operands to index
    the floating point MEMO-TABLE.  ``n`` of zero returns zero.
    """
    if n < 0:
        raise ValueError(f"bit count must be non-negative, got {n}")
    if n == 0:
        return 0
    if n >= FLOAT64_MANTISSA_BITS:
        return mantissa64(value)
    return mantissa64(value) >> (FLOAT64_MANTISSA_BITS - n)


def exponent64(value: float) -> int:
    """Return the raw (biased) 11-bit exponent field of ``value``."""
    return (float64_to_bits(value) >> FLOAT64_MANTISSA_BITS) & _EXP64_MASK


def sign64(value: float) -> int:
    """Return the sign bit of ``value`` (1 for negative, including -0.0)."""
    return float64_to_bits(value) >> 63


def is_finite_bits64(bits: int) -> bool:
    """True when the 64-bit pattern encodes a finite number (not inf/NaN)."""
    return ((bits >> FLOAT64_MANTISSA_BITS) & _EXP64_MASK) != _EXP64_MASK


def ulp_distance64(a: float, b: float) -> int:
    """Distance between two finite floats in units-in-the-last-place.

    Useful for tests that assert a memoized pipeline produced the exact
    same result as direct computation.
    """
    if not (math.isfinite(a) and math.isfinite(b)):
        raise ValueError("ulp distance is defined for finite values only")

    def ordered(x: float) -> int:
        bits = float64_to_bits(x)
        if bits >> 63:
            return -(bits & 0x7FFFFFFFFFFFFFFF)
        return bits & 0x7FFFFFFFFFFFFFFF

    return abs(ordered(a) - ordered(b))
