"""Processor latency models (Table 1 of the paper).

Table 1 lists floating point multiplication and division latencies for
six mid-1990s microprocessors; the speedup analysis (Tables 11-13) uses
two synthetic design points derived from them (3/13 "fast" and 5/39
"slow").  All of those live here, plus a generic :class:`ProcessorModel`
users can instantiate for their own machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

from ..core.operations import Operation

__all__ = [
    "ProcessorModel",
    "TABLE1_PROCESSORS",
    "FAST_DESIGN",
    "SLOW_DESIGN",
    "paper_design_points",
]


@dataclass(frozen=True)
class ProcessorModel:
    """Instruction latencies of one machine, in cycles.

    Only the latencies the memoing analysis needs are required; anything
    missing falls back to ``default_latency``.
    """

    name: str
    fp_mul: int
    fp_div: int
    int_mul: int = 5
    int_div: int = 20
    fp_sqrt: int = 20
    fp_transcendental: int = 40  # log/sin/cos (software or CORDIC)
    default_latency: int = 1
    notes: str = ""

    def latency(self, op: Operation) -> int:
        """Latency of ``op`` on this machine."""
        table = {
            Operation.FP_MUL: self.fp_mul,
            Operation.FP_DIV: self.fp_div,
            Operation.INT_MUL: self.int_mul,
            Operation.INT_DIV: self.int_div,
            Operation.FP_SQRT: self.fp_sqrt,
            Operation.FP_RECIP: self.fp_div,
            Operation.FP_LOG: self.fp_transcendental,
            Operation.FP_SIN: self.fp_transcendental,
            Operation.FP_COS: self.fp_transcendental,
        }
        return table.get(op, self.default_latency)

    def latencies(self) -> Dict[Operation, int]:
        """Latency map for all memoizable operations."""
        return {op: self.latency(op) for op in Operation}


#: Table 1 verbatim: FP multiplication and division latencies.
TABLE1_PROCESSORS: Tuple[ProcessorModel, ...] = (
    ProcessorModel("Pentium Pro", fp_mul=3, fp_div=39),
    ProcessorModel("Alpha 21164", fp_mul=4, fp_div=31),
    ProcessorModel("MIPS R10000", fp_mul=2, fp_div=40),
    ProcessorModel("PPC 604e", fp_mul=5, fp_div=31),
    ProcessorModel("UltraSparc-II", fp_mul=3, fp_div=22),
    ProcessorModel("PA 8000", fp_mul=5, fp_div=31),
)

#: The two design points of the speedup tables: a machine with very fast
#: FP units (3-cycle multiply, 13-cycle divide) and a slower one (5/39).
FAST_DESIGN = ProcessorModel(
    "fast-fp", fp_mul=3, fp_div=13, notes="Tables 11-13, fast column"
)
SLOW_DESIGN = ProcessorModel(
    "slow-fp", fp_mul=5, fp_div=39, notes="Tables 11-13, slow column"
)


def paper_design_points() -> Tuple[ProcessorModel, ProcessorModel]:
    """The (fast, slow) pair used by every speedup table."""
    return FAST_DESIGN, SLOW_DESIGN


def by_name(name: str) -> ProcessorModel:
    """Look up a Table 1 processor (or design point) by name."""
    for model in TABLE1_PROCESSORS + (FAST_DESIGN, SLOW_DESIGN):
        if model.name.lower() == name.lower():
            return model
    raise KeyError(f"unknown processor model: {name!r}")
