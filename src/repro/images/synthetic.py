"""Synthetic stand-ins for the paper's input images (Table 8).

The original Khoros inputs (mandrill, lenna, fractal, medical scans...)
are not distributed with the paper, so each is replaced by a procedural
image engineered to sit at the same point on the axis the evaluation
actually uses: first-order entropy (full image and small windows).

The key generator is :func:`smooth_field` + :func:`equalize_to_levels`:
a spatially correlated random field, rank-equalized onto ``K`` grey
levels, has global entropy ~= log2(K) while small windows see only a few
levels -- the "low local entropy" property (section 3.2) that makes
multi-media data memoizable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..errors import WorkloadError

__all__ = [
    "CatalogImage",
    "IMAGE_CATALOG",
    "generate",
    "catalog_names",
    "smooth_field",
    "equalize_to_levels",
]


# -- building blocks --------------------------------------------------------


def smooth_field(
    shape: Tuple[int, int],
    correlation: int,
    seed: int,
) -> np.ndarray:
    """White noise low-pass filtered to a correlation length, in [0, 1].

    Implemented as repeated separable box blurs via cumulative sums, so
    it needs no SciPy and stays O(pixels).
    """
    if correlation < 1:
        raise WorkloadError(f"correlation must be >= 1, got {correlation}")
    rng = np.random.default_rng(seed)
    field = rng.random(shape)
    radius = max(1, correlation // 2)
    for _ in range(3):  # three box passes approximate a Gaussian
        field = _box_blur(field, radius)
    low, high = field.min(), field.max()
    if high > low:
        field = (field - low) / (high - low)
    return field


def _box_blur(field: np.ndarray, radius: int) -> np.ndarray:
    for axis in (0, 1):
        field = _box_blur_axis(field, radius, axis)
    return field


def _box_blur_axis(field: np.ndarray, radius: int, axis: int) -> np.ndarray:
    padded = np.concatenate(
        [
            np.repeat(field.take([0], axis=axis), radius, axis=axis),
            field,
            np.repeat(field.take([-1], axis=axis), radius, axis=axis),
        ],
        axis=axis,
    )
    summed = np.cumsum(padded, axis=axis)
    width = 2 * radius + 1
    lead = summed.take(range(width - 1, padded.shape[axis]), axis=axis)
    lag = np.concatenate(
        [
            np.zeros_like(summed.take([0], axis=axis)),
            summed.take(range(0, padded.shape[axis] - width), axis=axis),
        ],
        axis=axis,
    )
    return (lead - lag) / width


def equalize_to_levels(field: np.ndarray, levels: int) -> np.ndarray:
    """Rank-equalize a float field onto ``levels`` (approximately uniform).

    A uniform histogram over ``levels`` values has entropy log2(levels),
    so this is the entropy dial for synthetic images.
    """
    if levels < 1:
        raise WorkloadError(f"levels must be >= 1, got {levels}")
    flat = field.ravel()
    order = np.argsort(flat, kind="stable")
    ranks = np.empty_like(order)
    ranks[order] = np.arange(flat.size)
    quantized = (ranks * levels) // max(flat.size, 1)
    return quantized.reshape(field.shape).astype(np.int64)


def _scale_levels(quantized: np.ndarray, levels: int) -> np.ndarray:
    """Spread ``levels`` quantization codes over the 0..255 byte range."""
    if levels <= 1:
        return np.zeros_like(quantized, dtype=np.uint8)
    spread = (quantized * 255) // (levels - 1)
    return np.clip(spread, 0, 255).astype(np.uint8)


# -- per-image generators ----------------------------------------------------
#
# ``corr`` parameters are fractions of the smaller image dimension, so a
# scaled-down image keeps the same entropy profile; ``levels`` sets the
# full-image entropy to ~log2(levels) via rank equalization.


def _corr(shape, fraction: float) -> int:
    return max(1, int(min(shape) * fraction))


def _textured(shape, seed, levels, corr_frac):
    """High-entropy natural texture (mandrill/nature class)."""
    field = smooth_field(shape, _corr(shape, corr_frac), seed)
    return _scale_levels(equalize_to_levels(field, levels), levels)


def _portrait(shape, seed, levels, corr_frac):
    """Smooth subject on smooth background (Muppet/guya class)."""
    field = smooth_field(shape, _corr(shape, corr_frac), seed)
    rows = np.linspace(-1.0, 1.0, shape[0])[:, None]
    cols = np.linspace(-1.0, 1.0, shape[1])[None, :]
    vignette = np.exp(-(rows**2 + cols**2))
    return _scale_levels(equalize_to_levels(field * vignette, levels), levels)


def _starfield(shape, seed):
    """Dark sky plus point sources (star class)."""
    rng = np.random.default_rng(seed)
    sky = smooth_field(shape, max(min(shape) // 12, 2), seed)
    image = (sky * 110).astype(np.int64)
    n_stars = max(8, shape[0] * shape[1] // 120)
    ys = rng.integers(0, shape[0], n_stars)
    xs = rng.integers(0, shape[1], n_stars)
    image[ys, xs] = rng.integers(140, 256, n_stars)
    return np.clip(image, 0, 255).astype(np.uint8)


def _label_map(shape, seed, labels, ratio=0.72):
    """Segmentation label image (lablabel class, INTEGER pixels).

    Label areas follow a geometric series (``ratio`` between consecutive
    labels), like a real labelled scene dominated by background; the
    entropy falls well below log2(labels).
    """
    field = smooth_field(shape, max(min(shape) // 3, 1), seed)
    ranks = equalize_to_levels(field, field.size)  # uniform in [0, size)
    fractions = ratio ** np.arange(labels)
    cumulative = np.cumsum(fractions / fractions.sum())
    out = np.zeros(shape, dtype=np.int64)
    normalized = ranks / max(field.size - 1, 1)
    for i, edge in enumerate(cumulative[:-1]):
        out[normalized > edge] = i + 1
    return out


def _fractal(shape, seed, max_iter=14):
    """Escape-time fractal iteration counts (fractal class, very low entropy)."""
    height, width = shape
    # Window chosen so most points escape quickly: histogram is dominated
    # by small counts, like the paper's 1.42-bit fractal image.
    ys = np.linspace(-2.6, 2.6, height)[:, None]
    xs = np.linspace(-3.4, 2.0, width)[None, :]
    c = xs + 1j * ys
    z = np.zeros_like(c)
    counts = np.zeros(shape, dtype=np.int64)
    alive = np.ones(shape, dtype=bool)
    for i in range(max_iter):
        z[alive] = z[alive] * z[alive] + c[alive]
        escaped = alive & (np.abs(z) > 2.0)
        counts[escaped] = i + 1
        alive &= ~escaped
    counts[alive] = max_iter
    return counts * (255 // max_iter)


def _float_scan(shape, seed):
    """Smooth float32 field (medical head/spine class, FLOAT pixels)."""
    field = smooth_field(shape, 10, seed)
    ridges = smooth_field(shape, 4, seed + 3)
    return (field * 900.0 + ridges * 100.0).astype(np.float32)


def _rgb(shape, seed, levels, corr_frac):
    """Three-band colour image (lenna.rgb / mandril.rgb / lizard.rgb class)."""
    bands = [
        _textured(shape, seed + band * 101, levels, corr_frac)
        for band in range(3)
    ]
    return np.stack(bands, axis=-1)


# -- the catalogue -----------------------------------------------------------


@dataclass(frozen=True)
class CatalogImage:
    """One Table 8 input image: geometry, pixel type and a generator."""

    name: str
    height: int
    width: int
    pixel_type: str  # BYTE | INTEGER | FLOAT
    bands: int
    paper_entropy: Optional[float]  # full-image entropy from Table 8
    builder: Callable[[Tuple[int, int]], np.ndarray]

    def generate(self, scale: float = 1.0) -> np.ndarray:
        """Build the image, optionally scaled down for fast experiments."""
        if scale <= 0:
            raise WorkloadError(f"scale must be positive, got {scale}")
        shape = (max(8, int(self.height * scale)), max(8, int(self.width * scale)))
        return self.builder(shape)


def _catalog() -> Tuple[CatalogImage, ...]:
    def entry(name, h, w, ptype, bands, entropy, builder):
        return CatalogImage(name, h, w, ptype, bands, entropy, builder)

    return (
        entry("mandrill", 256, 256, "BYTE", 1, 7.34,
              lambda s: _textured(s, seed=11, levels=162, corr_frac=0.07)),
        entry("nature", 256, 256, "BYTE", 1, 7.38,
              lambda s: _textured(s, seed=23, levels=167, corr_frac=0.11)),
        entry("Muppet1", 240, 256, "BYTE", 1, 7.04,
              lambda s: _portrait(s, seed=31, levels=131, corr_frac=0.22)),
        entry("guya", 128, 128, "BYTE", 1, 6.99,
              lambda s: _portrait(s, seed=47, levels=127, corr_frac=0.25)),
        entry("star", 158, 158, "BYTE", 1, 5.93,
              lambda s: _starfield(s, seed=59)),
        entry("chroms", 64, 64, "BYTE", 1, 4.82,
              lambda s: _textured(s, seed=61, levels=28, corr_frac=0.09)),
        entry("airport1", 256, 256, "BYTE", 1, 4.47,
              lambda s: _textured(s, seed=71, levels=22, corr_frac=0.16)),
        entry("lablabel", 243, 486, "INTEGER", 1, 3.37,
              lambda s: _label_map(s, seed=83, labels=24)),
        entry("fractal", 450, 409, "BYTE", 1, 1.42,
              lambda s: _fractal(s, seed=0)),
        entry("head", 228, 256, "FLOAT", 1, None,
              lambda s: _float_scan(s, seed=97)),
        entry("spine", 228, 256, "FLOAT", 1, None,
              lambda s: _float_scan(s, seed=103)),
        entry("lenna.rgb", 480, 512, "BYTE", 3, 7.75,
              lambda s: _rgb(s, seed=113, levels=215, corr_frac=0.05)),
        entry("mandril.rgb", 480, 512, "BYTE", 3, 7.75,
              lambda s: _rgb(s, seed=127, levels=215, corr_frac=0.08)),
        entry("lizard.rgb", 512, 768, "BYTE", 3, 7.60,
              lambda s: _rgb(s, seed=137, levels=194, corr_frac=0.10)),
    )


#: The fourteen Table 8 images, in paper order.
IMAGE_CATALOG: Tuple[CatalogImage, ...] = _catalog()

_BY_NAME: Dict[str, CatalogImage] = {img.name: img for img in IMAGE_CATALOG}


def catalog_names() -> Tuple[str, ...]:
    """Names of all catalogue images, in Table 8 order."""
    return tuple(img.name for img in IMAGE_CATALOG)


def generate(name: str, scale: float = 1.0) -> np.ndarray:
    """Generate a catalogue image by Table 8 name."""
    try:
        image = _BY_NAME[name]
    except KeyError:
        raise WorkloadError(
            f"unknown image {name!r}; available: {', '.join(catalog_names())}"
        ) from None
    return image.generate(scale)
