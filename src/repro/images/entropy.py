"""Image entropy (section 3.2).

The paper relates MEMO-TABLE hit ratios to the first-order entropy of
the input image::

    E = - sum_k  p_k * log2(p_k)

where ``p_k`` is the histogram probability of pixel value ``k``.  It
reports entropy over the whole image and over 16x16 and 8x8 windows
(Table 8); window entropies are much lower because few distinct values
appear in a small area -- exactly the locality the MEMO-TABLE exploits.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..errors import WorkloadError

__all__ = ["histogram_entropy", "windowed_entropy", "PAPER_WINDOW_SIZES"]

#: The window sizes Table 8 reports alongside full-image entropy.
PAPER_WINDOW_SIZES = (16, 8)


def _as_2d(image: np.ndarray) -> np.ndarray:
    arr = np.asarray(image)
    if arr.ndim == 3:
        # Multi-band images: entropy of the value stream across bands.
        return arr.reshape(arr.shape[0], -1)
    if arr.ndim != 2:
        raise WorkloadError(f"expected a 2-D or 3-D image, got shape {arr.shape}")
    return arr


def histogram_entropy(image: np.ndarray) -> float:
    """First-order entropy in bits of the pixel-value histogram.

    Works for any integer-valued image (BYTE or INTEGER in the paper's
    terms); each distinct value is one histogram bin, matching the
    paper's ``L`` possible pixel values.
    """
    arr = _as_2d(image)
    values, counts = np.unique(arr, return_counts=True)
    if values.size == 0:
        return 0.0
    probabilities = counts / counts.sum()
    return float(-(probabilities * np.log2(probabilities)).sum())


def windowed_entropy(image: np.ndarray, window: int) -> float:
    """Mean entropy of non-overlapping ``window x window`` tiles.

    Partial tiles at the right/bottom edges are included (the paper does
    not say how edges were treated; including them changes the average
    by well under the reporting precision).
    """
    if window <= 0:
        raise WorkloadError(f"window must be positive, got {window}")
    arr = _as_2d(image)
    height, width = arr.shape[:2]
    entropies = []
    for top in range(0, height, window):
        for left in range(0, width, window):
            tile = arr[top : top + window, left : left + window]
            entropies.append(histogram_entropy(tile))
    if not entropies:
        return 0.0
    return float(np.mean(entropies))


def entropy_profile(
    image: np.ndarray, windows: Sequence[int] = PAPER_WINDOW_SIZES
) -> dict:
    """Full + windowed entropies, keyed like Table 8 columns."""
    profile = {"full": histogram_entropy(image)}
    for window in windows:
        profile[f"{window}x{window}"] = windowed_entropy(image, window)
    return profile


def uniform_entropy(levels: int) -> float:
    """Entropy of a perfectly uniform ``levels``-value histogram.

    The paper's worked example: 256 evenly distributed grey levels give
    exactly 8 bits.
    """
    if levels <= 0:
        raise WorkloadError(f"levels must be positive, got {levels}")
    return float(np.log2(levels))
