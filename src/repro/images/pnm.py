"""Minimal PGM/PPM image I/O.

Lets examples dump the synthetic images (and kernel outputs) in a format
any viewer opens, and lets users feed their own grey/colour images into
the workloads without a heavyweight imaging dependency.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from ..errors import WorkloadError

__all__ = ["write_pnm", "read_pnm"]

PathLike = Union[str, Path]


def write_pnm(image: np.ndarray, path: PathLike) -> None:
    """Write a 2-D array as binary PGM (P5) or an (H, W, 3) array as PPM (P6).

    Values are clipped to 0..255 and stored as one byte per sample.
    """
    arr = np.asarray(image)
    data = np.clip(arr, 0, 255).astype(np.uint8)
    path = Path(path)
    if data.ndim == 2:
        magic, height, width = b"P5", data.shape[0], data.shape[1]
    elif data.ndim == 3 and data.shape[2] == 3:
        magic, height, width = b"P6", data.shape[0], data.shape[1]
    else:
        raise WorkloadError(
            f"PNM supports (H, W) or (H, W, 3) arrays, got shape {arr.shape}"
        )
    with path.open("wb") as stream:
        stream.write(magic + b"\n")
        stream.write(f"{width} {height}\n255\n".encode("ascii"))
        stream.write(data.tobytes())


def read_pnm(path: PathLike) -> np.ndarray:
    """Read a binary PGM (P5) or PPM (P6) file written by :func:`write_pnm`."""
    raw = Path(path).read_bytes()
    tokens = []
    position = 0
    # Header: magic, width, height, maxval -- whitespace separated, with
    # '#' comments allowed.
    while len(tokens) < 4:
        while position < len(raw) and raw[position : position + 1].isspace():
            position += 1
        if position < len(raw) and raw[position : position + 1] == b"#":
            while position < len(raw) and raw[position : position + 1] != b"\n":
                position += 1
            continue
        start = position
        while position < len(raw) and not raw[position : position + 1].isspace():
            position += 1
        tokens.append(raw[start:position])
    position += 1  # single whitespace after maxval
    magic = tokens[0]
    width, height, maxval = (int(t) for t in tokens[1:4])
    if maxval > 255:
        raise WorkloadError(f"only 8-bit PNM supported, maxval={maxval}")
    body = np.frombuffer(raw, dtype=np.uint8, offset=position)
    if magic == b"P5":
        expected = width * height
        if body.size < expected:
            raise WorkloadError("truncated PGM body")
        return body[:expected].reshape(height, width).copy()
    if magic == b"P6":
        expected = width * height * 3
        if body.size < expected:
            raise WorkloadError("truncated PPM body")
        return body[:expected].reshape(height, width, 3).copy()
    raise WorkloadError(f"unsupported PNM magic {magic!r}")
