"""Image substrate: synthetic Table 8 inputs, entropy, PNM I/O."""

from .entropy import (
    PAPER_WINDOW_SIZES,
    entropy_profile,
    histogram_entropy,
    uniform_entropy,
    windowed_entropy,
)
from .pnm import read_pnm, write_pnm
from .synthetic import (
    IMAGE_CATALOG,
    CatalogImage,
    catalog_names,
    equalize_to_levels,
    generate,
    smooth_field,
)

__all__ = [
    "PAPER_WINDOW_SIZES",
    "entropy_profile",
    "histogram_entropy",
    "uniform_entropy",
    "windowed_entropy",
    "read_pnm",
    "write_pnm",
    "IMAGE_CATALOG",
    "CatalogImage",
    "catalog_names",
    "equalize_to_levels",
    "generate",
    "smooth_field",
]
