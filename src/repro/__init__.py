"""repro -- reproduction of "Accelerating Multi-Media Processing by
Implementing Memoing in Multiplication and Division Units" (Citron,
Feitelson & Rudolph, ASPLOS 1998).

Quickstart::

    from repro import MemoizedUnit, Operation

    fdiv = MemoizedUnit(Operation.FP_DIV, latency=13)
    first = fdiv.execute(355.0, 113.0)   # miss: 13 cycles
    again = fdiv.execute(355.0, 113.0)   # hit:  1 cycle
    assert again.value == first.value and again.cycles == 1

See :mod:`repro.experiments` for the drivers that regenerate every table
and figure of the paper's evaluation.
"""

from .core import (
    DEFAULT_LATENCIES,
    PAPER_BASELINE,
    Execution,
    InfiniteMemoTable,
    LookupResult,
    MemoStats,
    MemoTable,
    MemoTableBank,
    MemoTableConfig,
    MemoizedUnit,
    Operation,
    OperandKind,
    PlainUnit,
    ReplacementKind,
    TagMode,
    TrivialPolicy,
    UnitStats,
    compute,
)
from .errors import (
    ConfigurationError,
    ExperimentError,
    ReproError,
    TraceFormatError,
    WorkloadError,
)
from .isa import Opcode, Trace, TraceEvent
from .simulator import (
    Cache,
    CycleModel,
    MemoizedCPU,
    MemoryHierarchy,
    ShadeSimulator,
    SimulationReport,
)
from .workloads import OperationRecorder

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_LATENCIES",
    "PAPER_BASELINE",
    "Execution",
    "InfiniteMemoTable",
    "LookupResult",
    "MemoStats",
    "MemoTable",
    "MemoTableBank",
    "MemoTableConfig",
    "MemoizedUnit",
    "Operation",
    "OperandKind",
    "PlainUnit",
    "ReplacementKind",
    "TagMode",
    "TrivialPolicy",
    "UnitStats",
    "compute",
    "ConfigurationError",
    "ExperimentError",
    "ReproError",
    "TraceFormatError",
    "WorkloadError",
    "Opcode",
    "Trace",
    "TraceEvent",
    "Cache",
    "CycleModel",
    "MemoizedCPU",
    "MemoryHierarchy",
    "ShadeSimulator",
    "SimulationReport",
    "OperationRecorder",
    "__version__",
]
