"""A Sodani & Sohi Reuse Buffer, for comparison (section 1.1).

Dynamic Instruction Reuse [18] keys its table by the *instruction
address*: a fetched instruction hits when its PC matches an entry and
the stored operands match the current operands.  The paper contrasts
its MEMO-TABLE against this on two points:

1. the RB holds every instruction class, so cheap single-cycle
   instructions can bump multi-cycle ones out;
2. PC-keying makes unrolled copies of the same computation distinct --
   the value-keyed MEMO-TABLE hits across them.

This model implements the RB faithfully enough to demonstrate both
effects on recorded traces (which carry synthetic PCs when the recorder
is built with ``record_sites=True``).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from ..errors import ConfigurationError
from ..isa.opcodes import Opcode
from ..isa.trace import TraceEvent
from .stats import MemoStats

__all__ = ["ReuseBuffer", "ReuseBufferReport", "run_reuse_buffer"]

#: Instruction classes inserted into the RB.  Sodani & Sohi insert all
#: executed instructions (except stores); loads/branches are modelled as
#: occupying entries without being reuse candidates here.
_RB_CLASSES = frozenset(
    {
        Opcode.IMUL,
        Opcode.FMUL,
        Opcode.FDIV,
        Opcode.FSQRT,
        Opcode.FRECIP,
        Opcode.FLOG,
        Opcode.FSIN,
        Opcode.FCOS,
        Opcode.FADD,
        Opcode.IALU,
        Opcode.LOAD,
    }
)


class _RBEntry:
    __slots__ = ("pc", "a", "b", "result", "last_used")

    def __init__(self, pc, a, b, result, now):
        self.pc = pc
        self.a = a
        self.b = b
        self.result = result
        self.last_used = now


class ReuseBuffer:
    """PC-indexed, operand-verified reuse table (scheme S_v)."""

    def __init__(self, entries: int = 1024, associativity: int = 4) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ConfigurationError(
                f"entries must be a positive power of two, got {entries}"
            )
        if entries % associativity:
            raise ConfigurationError(
                f"associativity {associativity} does not divide {entries}"
            )
        self.entries = entries
        self.associativity = associativity
        self.n_sets = entries // associativity
        self._sets: List[List[_RBEntry]] = [[] for _ in range(self.n_sets)]
        self._clock = 0
        self.stats = MemoStats()

    def _set_for(self, pc: int) -> List[_RBEntry]:
        # Word-aligned PCs: drop the low 2 bits before indexing.
        return self._sets[(pc >> 2) % self.n_sets]

    def access(self, pc: int, a, b, result) -> bool:
        """Present one dynamic instruction; returns True on a reuse hit.

        On a miss the (pc, operands, result) tuple is inserted, evicting
        the set's LRU entry if needed -- which is how single-cycle
        instructions bump multi-cycle ones in a unified buffer.
        """
        self._clock += 1
        self.stats.lookups += 1
        ways = self._set_for(pc)
        for entry in ways:
            if entry.pc == pc and entry.a == a and entry.b == b:
                entry.last_used = self._clock
                self.stats.hits += 1
                return True
        self.stats.insertions += 1
        entry = _RBEntry(pc, a, b, result, self._clock)
        if len(ways) < self.associativity:
            ways.append(entry)
            return False
        victim = min(range(len(ways)), key=lambda i: ways[i].last_used)
        ways[victim] = entry
        self.stats.evictions += 1
        return False

    def __len__(self) -> int:
        return sum(len(ways) for ways in self._sets)


class ReuseBufferReport:
    """Per-class hit counts of one RB run."""

    def __init__(self) -> None:
        self.lookups: dict = {}
        self.hits: dict = {}
        self.skipped_no_pc = 0

    def record(self, opcode: Opcode, hit: bool) -> None:
        self.lookups[opcode] = self.lookups.get(opcode, 0) + 1
        if hit:
            self.hits[opcode] = self.hits.get(opcode, 0) + 1

    def hit_ratio(self, opcode: Opcode) -> float:
        looked = self.lookups.get(opcode, 0)
        if not looked:
            return 0.0
        return self.hits.get(opcode, 0) / looked


def run_reuse_buffer(
    events: Iterable[TraceEvent],
    buffer: Optional[ReuseBuffer] = None,
    classes: frozenset = _RB_CLASSES,
) -> Tuple[ReuseBuffer, ReuseBufferReport]:
    """Feed a PC-stamped trace through a Reuse Buffer.

    Events without a PC (traces recorded with ``record_sites=False``, or
    classes the recorder doesn't stamp, like loop overhead) are counted
    in ``report.skipped_no_pc`` -- for a faithful comparison record the
    workload with sites enabled.
    """
    if buffer is None:
        buffer = ReuseBuffer()
    report = ReuseBufferReport()
    for event in events:
        if event.opcode not in classes:
            continue
        if event.pc is None:
            report.skipped_no_pc += 1
            continue
        hit = buffer.access(event.pc, event.a, event.b, event.result)
        report.record(event.opcode, hit)
    return buffer, report
