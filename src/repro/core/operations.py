"""Operation semantics for memoized computation units.

Defines the operation classes the paper memoizes (integer multiply,
floating point multiply and divide) plus the long-latency functions its
future-work section targets (sqrt, reciprocal), with IEEE-754-faithful
software semantics so the simulated units never diverge from what the
hardware unit would produce.
"""

from __future__ import annotations

import enum
import math
from typing import Callable

from .config import OperandKind

__all__ = ["Operation", "compute", "ieee_div", "ieee_sqrt"]


class Operation(enum.Enum):
    """A memoizable operation class.

    Each member carries its mnemonic, operand kind (which selects the
    index hash), commutativity (which enables the double-order compare of
    section 2.2) and arity (sqrt and reciprocal are unary; the table tags
    them as ``(a, 0.0)`` pairs).
    """

    INT_MUL = ("imul", OperandKind.INT, True, 2)
    INT_DIV = ("idiv", OperandKind.INT, False, 2)
    FP_MUL = ("fmul", OperandKind.FLOAT, True, 2)
    FP_DIV = ("fdiv", OperandKind.FLOAT, False, 2)
    FP_SQRT = ("fsqrt", OperandKind.FLOAT, False, 1)
    FP_RECIP = ("frecip", OperandKind.FLOAT, False, 1)
    # The paper's future-work targets (section 4): "extend the
    # MEMO-TABLE technique to sqrt, log, trigonometric and other
    # mathematical functions".
    FP_LOG = ("flog", OperandKind.FLOAT, False, 1)
    FP_SIN = ("fsin", OperandKind.FLOAT, False, 1)
    FP_COS = ("fcos", OperandKind.FLOAT, False, 1)

    def __init__(
        self, mnemonic: str, kind: OperandKind, commutative: bool, arity: int
    ) -> None:
        self.mnemonic = mnemonic
        self.operand_kind = kind
        self.commutative = commutative
        self.arity = arity

    @property
    def is_unary(self) -> bool:
        return self.arity == 1

    @classmethod
    def from_mnemonic(cls, mnemonic: str) -> "Operation":
        for member in cls:
            if member.mnemonic == mnemonic:
                return member
        raise ValueError(f"unknown operation mnemonic: {mnemonic!r}")


def ieee_div(a: float, b: float) -> float:
    """IEEE-754 division: produces inf/NaN instead of raising.

    Python's ``/`` raises :class:`ZeroDivisionError` on a zero divisor;
    a hardware FP divider signals the exception but still delivers the
    IEEE default result, which is what traces contain.
    """
    if b != 0:
        return a / b
    if a == 0 or math.isnan(a) or math.isnan(b):
        return math.nan
    return math.copysign(math.inf, a) * math.copysign(1.0, b)


def ieee_sqrt(a: float) -> float:
    """IEEE-754 square root: NaN for negative inputs instead of raising."""
    if a < 0:
        return math.nan
    return math.sqrt(a)


def ieee_recip(a: float) -> float:
    """IEEE-754 reciprocal (the paper cites reciprocal caches [15])."""
    return ieee_div(1.0, a)


def ieee_log(a: float) -> float:
    """Natural log with IEEE default results (-inf at 0, NaN below)."""
    if a > 0:
        return math.log(a)
    if a == 0:
        return -math.inf
    return math.nan


def int_div(a: int, b: int) -> int:
    """SPARC-style signed integer division (truncating toward zero).

    Division by zero returns 0 here (the real instruction traps; traces
    never contain the trapping case because the producing program would
    have died).
    """
    if b == 0:
        return 0
    quotient = abs(int(a)) // abs(int(b))
    return -quotient if (a < 0) != (b < 0) else quotient


_COMPUTE: dict = {
    Operation.INT_MUL: lambda a, b: int(a) * int(b),
    Operation.INT_DIV: lambda a, b: int_div(a, b),
    Operation.FP_MUL: lambda a, b: float(a) * float(b),
    Operation.FP_DIV: lambda a, b: ieee_div(float(a), float(b)),
    Operation.FP_SQRT: lambda a, b: ieee_sqrt(float(a)),
    Operation.FP_RECIP: lambda a, b: ieee_recip(float(a)),
    Operation.FP_LOG: lambda a, b: ieee_log(float(a)),
    Operation.FP_SIN: lambda a, b: math.sin(float(a)),
    Operation.FP_COS: lambda a, b: math.cos(float(a)),
}


def compute(op: Operation, a: float, b: float = 0.0) -> float:
    """Execute ``op`` on the operands with hardware-faithful semantics."""
    return _COMPUTE[op](a, b)


def compute_function(op: Operation) -> Callable[[float, float], float]:
    """Return the binary compute callable for ``op``."""
    return _COMPUTE[op]
