"""Shared multi-ported MEMO-TABLES (section 2.3).

When a processor duplicates a computation unit, a table per unit lets
the same calculation be performed -- and stored -- twice.  The paper's
fix is one larger multi-ported table shared by the duplicated units, and
it further suggests replacing a second divider outright with an
interface to the shared table.  This module models both:

* :class:`SharedMemoTable` -- a port-arbitrated wrapper around one table
  serving several units, counting port conflicts per cycle;
* :class:`TableOnlyUnit` -- a "unit" that is nothing but a table port:
  hits complete in a cycle, misses stall until the real unit is free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .memo_table import BaseMemoTable, LookupResult
from .operations import Operation, compute
from .stats import UnitStats

__all__ = ["SharedMemoTable", "TableOnlyUnit", "DualIssueModel"]


class SharedMemoTable:
    """A multi-ported front to a single MEMO-TABLE.

    ``ports`` lookups are serviced per cycle; extra lookups in the same
    cycle are counted as conflicts and charged one stall cycle each.
    Callers mark cycle boundaries with :meth:`begin_cycle`.
    """

    def __init__(self, table: BaseMemoTable, ports: int = 2) -> None:
        if ports < 1:
            raise ValueError(f"ports must be >= 1, got {ports}")
        self.table = table
        self.ports = ports
        self.port_conflicts = 0
        self._used_this_cycle = 0

    def begin_cycle(self) -> None:
        """Start a new machine cycle: all ports become free."""
        self._used_this_cycle = 0

    def lookup(self, a: float, b: float) -> LookupResult:
        self._used_this_cycle += 1
        if self._used_this_cycle > self.ports:
            self.port_conflicts += 1
        return self.table.lookup(a, b)

    def insert(self, a: float, b: float, value: float) -> None:
        self.table.insert(a, b, value)

    @property
    def stats(self):
        return self.table.stats


@dataclass
class _IssueOutcome:
    value: float
    cycles: int
    hit: bool


class TableOnlyUnit:
    """A table port standing in for a duplicated functional unit.

    On a hit the operation completes in ``hit_latency``; on a miss it
    waits ``stall`` cycles for the real unit and then takes its full
    latency (section 2.3's "stalled until the divider is free").
    """

    def __init__(
        self,
        operation: Operation,
        shared: SharedMemoTable,
        latency: int,
        hit_latency: int = 1,
    ) -> None:
        self.operation = operation
        self.shared = shared
        self.latency = latency
        self.hit_latency = hit_latency
        self.stats = UnitStats()

    def issue(self, a: float, b: float, stall: int) -> _IssueOutcome:
        self.stats.operations += 1
        found = self.shared.lookup(a, b)
        if found.hit:
            self.stats.cycles_memo += self.hit_latency
            self.stats.cycles_base += self.latency
            return _IssueOutcome(found.value, self.hit_latency, True)
        value = compute(self.operation, a, b)
        self.shared.insert(a, b, value)
        cycles = stall + self.latency
        self.stats.cycles_memo += cycles
        self.stats.cycles_base += self.latency
        return _IssueOutcome(value, cycles, False)


class DualIssueModel:
    """Two same-class operations issued per cycle (section 2.3 scenario).

    The first goes to the real unit (with the shared table alongside);
    the second goes to a :class:`TableOnlyUnit`.  The model reports how
    often the second issue slot was serviced by the table alone, i.e.
    how much issue bandwidth a table buys instead of a second divider.
    """

    def __init__(
        self,
        operation: Operation,
        table: BaseMemoTable,
        latency: int,
        ports: int = 2,
    ) -> None:
        self.operation = operation
        self.shared = SharedMemoTable(table, ports=ports)
        self.latency = latency
        self.table_unit = TableOnlyUnit(operation, self.shared, latency)
        self.pairs_issued = 0
        self.second_slot_hits = 0
        self.total_cycles = 0
        self.baseline_cycles = 0

    def issue_pair(
        self, a1: float, b1: float, a2: float, b2: float
    ) -> List[float]:
        """Issue two operations in the same cycle; returns their results."""
        self.pairs_issued += 1
        self.shared.begin_cycle()

        # First op: real unit + table in tandem.
        first = self.shared.lookup(a1, b1)
        if first.hit:
            value1 = first.value
            first_cycles = 1
        else:
            value1 = compute(self.operation, a1, b1)
            self.shared.insert(a1, b1, value1)
            first_cycles = self.latency

        # Second op: table-only port; a miss waits for the real unit.
        stall = first_cycles if not first.hit else 0
        outcome = self.table_unit.issue(a2, b2, stall=stall)
        if outcome.hit:
            self.second_slot_hits += 1

        self.total_cycles += max(first_cycles, outcome.cycles)
        # Baseline single-unit machine serializes the pair.
        self.baseline_cycles += 2 * self.latency
        return [value1, outcome.value]

    @property
    def second_slot_hit_ratio(self) -> float:
        if not self.pairs_issued:
            return 0.0
        return self.second_slot_hits / self.pairs_issued

    @property
    def speedup(self) -> float:
        if not self.total_cycles:
            return 1.0
        return self.baseline_cycles / self.total_cycles
