"""Hit/miss statistics for MEMO-TABLES and memoized units.

The paper's two success indicators are the *hit ratio* (fraction of
multi-cycle operations avoided) and the derived *speedup*; every counter
needed to reproduce its tables lives here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["MemoStats", "UnitStats"]


@dataclass
class MemoStats:
    """Raw counters for a single MEMO-TABLE."""

    lookups: int = 0
    hits: int = 0
    insertions: int = 0
    evictions: int = 0
    commutative_hits: int = 0  # hits found only under reversed operand order

    @property
    def misses(self) -> int:
        return self.lookups - self.hits

    @property
    def hit_ratio(self) -> float:
        """Hits over lookups; 0.0 for an untouched table."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def merge(self, other: "MemoStats") -> None:
        """Accumulate ``other``'s counters into this object."""
        self.lookups += other.lookups
        self.hits += other.hits
        self.insertions += other.insertions
        self.evictions += other.evictions
        self.commutative_hits += other.commutative_hits

    def reset(self) -> None:
        self.lookups = 0
        self.hits = 0
        self.insertions = 0
        self.evictions = 0
        self.commutative_hits = 0

    def as_dict(self) -> Dict[str, float]:
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "commutative_hits": self.commutative_hits,
            "hit_ratio": self.hit_ratio,
        }


@dataclass
class UnitStats:
    """Counters for a memoized computation unit (table + trivial detector).

    ``operations`` counts every operation presented to the unit,
    including trivial ones; ``trivial`` counts operations the trivial
    detector intercepted (or that bypassed the table under the EXCLUDE
    policy).  ``table`` holds the underlying MEMO-TABLE counters.
    ``cycles_base`` / ``cycles_memo`` accumulate execution cycles without
    and with the table, so speedups can be read off directly.
    """

    operations: int = 0
    trivial: int = 0
    trivial_hits: int = 0  # trivial ops counted as hits (INTEGRATED policy)
    cycles_base: int = 0
    cycles_memo: int = 0
    table: MemoStats = field(default_factory=MemoStats)

    @property
    def non_trivial(self) -> int:
        return self.operations - self.trivial

    @property
    def trivial_fraction(self) -> float:
        """The "trv %" column of Table 9."""
        if not self.operations:
            return 0.0
        return self.trivial / self.operations

    @property
    def hit_ratio(self) -> float:
        """Hit ratio over everything that was eligible for the table.

        Under EXCLUDE this equals the table hit ratio (trivial operations
        are invisible); under INTEGRATED trivial operations count as
        hits; under CACHE_ALL trivial operations flow through the table
        so again this equals the table's own ratio.
        """
        eligible = self.table.lookups + self.trivial_hits
        if not eligible:
            return 0.0
        return (self.table.hits + self.trivial_hits) / eligible

    @property
    def cycles_saved(self) -> int:
        return self.cycles_base - self.cycles_memo

    def merge(self, other: "UnitStats") -> None:
        self.operations += other.operations
        self.trivial += other.trivial
        self.trivial_hits += other.trivial_hits
        self.cycles_base += other.cycles_base
        self.cycles_memo += other.cycles_memo
        self.table.merge(other.table)

    def reset(self) -> None:
        self.operations = 0
        self.trivial = 0
        self.trivial_hits = 0
        self.cycles_base = 0
        self.cycles_memo = 0
        self.table.reset()

    def as_dict(self) -> Dict[str, float]:
        out: Dict[str, float] = {
            "operations": self.operations,
            "trivial": self.trivial,
            "trivial_hits": self.trivial_hits,
            "trivial_fraction": self.trivial_fraction,
            "hit_ratio": self.hit_ratio,
            "cycles_base": self.cycles_base,
            "cycles_memo": self.cycles_memo,
            "cycles_saved": self.cycles_saved,
        }
        out.update({f"table_{k}": v for k, v in self.table.as_dict().items()})
        return out
