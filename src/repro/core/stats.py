"""Hit/miss statistics for MEMO-TABLES and memoized units.

The paper's two success indicators are the *hit ratio* (fraction of
multi-cycle operations avoided) and the derived *speedup*; every counter
needed to reproduce its tables lives here.

``merge``, ``reset``, ``counters`` and ``as_dict`` are driven by
``dataclasses.fields`` rather than hand-written field lists: a counter
added to either dataclass is automatically merged, reset, exported and
streamed into the metrics registry -- it can never again be silently
dropped the way hand-maintained method bodies drift.  These objects
remain the authoritative per-table/per-unit views; the observability
layer (:mod:`repro.obs`) consumes them as snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict

__all__ = ["MemoStats", "UnitStats"]


def _merge_fields(target, other) -> None:
    """Accumulate every dataclass field of ``other`` into ``target``.

    Integer counters add; nested stats dataclasses merge recursively.
    """
    for spec in fields(target):
        mine = getattr(target, spec.name)
        theirs = getattr(other, spec.name)
        if hasattr(mine, "merge"):
            mine.merge(theirs)
        else:
            setattr(target, spec.name, mine + theirs)


def _reset_fields(target) -> None:
    """Zero every dataclass field of ``target`` (recursively)."""
    for spec in fields(target):
        value = getattr(target, spec.name)
        if hasattr(value, "reset"):
            value.reset()
        else:
            setattr(target, spec.name, type(value)())


def _counter_fields(target, prefix: str = "") -> Dict[str, int]:
    """Flat ``{name: value}`` of every counter field (recursively)."""
    out: Dict[str, int] = {}
    for spec in fields(target):
        value = getattr(target, spec.name)
        if hasattr(value, "counters"):
            out.update(value.counters(prefix=f"{prefix}{spec.name}_"))
        else:
            out[f"{prefix}{spec.name}"] = value
    return out


@dataclass
class MemoStats:
    """Raw counters for a single MEMO-TABLE."""

    lookups: int = 0
    hits: int = 0
    insertions: int = 0
    evictions: int = 0
    commutative_hits: int = 0  # hits found only under reversed operand order

    @property
    def misses(self) -> int:
        return self.lookups - self.hits

    @property
    def hit_ratio(self) -> float:
        """Hits over lookups; 0.0 for an untouched table."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def merge(self, other: "MemoStats") -> None:
        """Accumulate ``other``'s counters into this object."""
        _merge_fields(self, other)

    def reset(self) -> None:
        _reset_fields(self)

    def counters(self, prefix: str = "") -> Dict[str, int]:
        """Every raw counter field, flat (the metrics-registry feed)."""
        return _counter_fields(self, prefix)

    def as_dict(self) -> Dict[str, float]:
        out: Dict[str, float] = dict(self.counters())
        out["misses"] = self.misses
        out["hit_ratio"] = self.hit_ratio
        return out


@dataclass
class UnitStats:
    """Counters for a memoized computation unit (table + trivial detector).

    ``operations`` counts every operation presented to the unit,
    including trivial ones; ``trivial`` counts operations the trivial
    detector intercepted (or that bypassed the table under the EXCLUDE
    policy).  ``table`` holds the underlying MEMO-TABLE counters.
    ``cycles_base`` / ``cycles_memo`` accumulate execution cycles without
    and with the table, so speedups can be read off directly.
    """

    operations: int = 0
    trivial: int = 0
    trivial_hits: int = 0  # trivial ops counted as hits (INTEGRATED policy)
    cycles_base: int = 0
    cycles_memo: int = 0
    table: MemoStats = field(default_factory=MemoStats)

    @property
    def non_trivial(self) -> int:
        return self.operations - self.trivial

    @property
    def trivial_fraction(self) -> float:
        """The "trv %" column of Table 9."""
        if not self.operations:
            return 0.0
        return self.trivial / self.operations

    @property
    def hit_ratio(self) -> float:
        """Hit ratio over everything that was eligible for the table.

        Under EXCLUDE this equals the table hit ratio (trivial operations
        are invisible); under INTEGRATED trivial operations count as
        hits; under CACHE_ALL trivial operations flow through the table
        so again this equals the table's own ratio.
        """
        eligible = self.table.lookups + self.trivial_hits
        if not eligible:
            return 0.0
        return (self.table.hits + self.trivial_hits) / eligible

    @property
    def cycles_saved(self) -> int:
        return self.cycles_base - self.cycles_memo

    def merge(self, other: "UnitStats") -> None:
        _merge_fields(self, other)

    def reset(self) -> None:
        _reset_fields(self)

    def counters(self, prefix: str = "") -> Dict[str, int]:
        """Every raw counter field, flat, with nested table counters
        prefixed ``table_`` (the metrics-registry feed)."""
        return _counter_fields(self, prefix)

    def as_dict(self) -> Dict[str, float]:
        out: Dict[str, float] = {
            key: value
            for key, value in self.counters().items()
            if not key.startswith("table_")
        }
        out["trivial_fraction"] = self.trivial_fraction
        out["hit_ratio"] = self.hit_ratio
        out["cycles_saved"] = self.cycles_saved
        out.update({f"table_{k}": v for k, v in self.table.as_dict().items()})
        return out
