"""Core MEMO-TABLE machinery: the paper's primary contribution.

Public surface:

* :class:`MemoTableConfig` and the policy enums -- table geometry;
* :class:`MemoTable` / :class:`InfiniteMemoTable` -- the lookup tables;
* :class:`Operation` / :class:`MemoizedUnit` / :class:`PlainUnit` --
  computation units with tables in tandem;
* :class:`MemoTableBank` -- the imul/fmul/fdiv system of section 3.1;
* :class:`SharedMemoTable` / :class:`DualIssueModel` -- section 2.3's
  multi-ported sharing.
"""

from .bank import MemoTableBank, PAPER_OPERATIONS
from .config import (
    PAPER_BASELINE,
    MemoTableConfig,
    OperandKind,
    ReplacementKind,
    TagMode,
    TrivialPolicy,
)
from .memo_table import BaseMemoTable, InfiniteMemoTable, LookupResult, MemoTable
from .multiported import DualIssueModel, SharedMemoTable, TableOnlyUnit
from .operations import Operation, compute, ieee_div, ieee_sqrt
from .reuse_buffer import ReuseBuffer, run_reuse_buffer
from .replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    make_policy,
)
from .stats import MemoStats, UnitStats
from .trivial import is_trivial_div, is_trivial_mul, is_trivial_sqrt
from .unit import DEFAULT_LATENCIES, Execution, MemoizedUnit, PlainUnit

__all__ = [
    "MemoTableBank",
    "PAPER_OPERATIONS",
    "PAPER_BASELINE",
    "MemoTableConfig",
    "OperandKind",
    "ReplacementKind",
    "TagMode",
    "TrivialPolicy",
    "BaseMemoTable",
    "InfiniteMemoTable",
    "LookupResult",
    "MemoTable",
    "DualIssueModel",
    "SharedMemoTable",
    "TableOnlyUnit",
    "Operation",
    "compute",
    "ReuseBuffer",
    "run_reuse_buffer",
    "ieee_div",
    "ieee_sqrt",
    "FIFOPolicy",
    "LRUPolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "make_policy",
    "MemoStats",
    "UnitStats",
    "DEFAULT_LATENCIES",
    "Execution",
    "MemoizedUnit",
    "PlainUnit",
    "is_trivial_div",
    "is_trivial_mul",
    "is_trivial_sqrt",
]
