"""Victim-selection (replacement) policies for set-associative MEMO-TABLES.

The paper describes the table as "cache-like ... with the most recently
used values present" (section 2.1), i.e. LRU.  FIFO and random policies
are provided for the ablation benchmarks, since a hardware implementation
might prefer their cheaper bookkeeping.
"""

from __future__ import annotations

import abc
import random
from typing import List, Sequence

from .config import ReplacementKind

__all__ = [
    "ReplacementPolicy",
    "LRUPolicy",
    "FIFOPolicy",
    "RandomPolicy",
    "make_policy",
]


class ReplacementPolicy(abc.ABC):
    """Strategy object selecting which way of a full set to evict."""

    @abc.abstractmethod
    def victim(self, last_used: Sequence[int], inserted: Sequence[int]) -> int:
        """Return the way index to evict.

        ``last_used[i]`` and ``inserted[i]`` are monotonically increasing
        timestamps for way ``i``; both sequences are non-empty and equal
        length.
        """


class LRUPolicy(ReplacementPolicy):
    """Evict the least recently used way."""

    def victim(self, last_used: Sequence[int], inserted: Sequence[int]) -> int:
        return min(range(len(last_used)), key=last_used.__getitem__)


class FIFOPolicy(ReplacementPolicy):
    """Evict the oldest-inserted way, regardless of use."""

    def victim(self, last_used: Sequence[int], inserted: Sequence[int]) -> int:
        return min(range(len(inserted)), key=inserted.__getitem__)


class RandomPolicy(ReplacementPolicy):
    """Evict a uniformly random way (seeded, so runs are reproducible)."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def victim(self, last_used: Sequence[int], inserted: Sequence[int]) -> int:
        return self._rng.randrange(len(last_used))


def make_policy(kind: ReplacementKind, seed: int = 0) -> ReplacementPolicy:
    """Instantiate the policy named by ``kind``."""
    if kind is ReplacementKind.LRU:
        return LRUPolicy()
    if kind is ReplacementKind.FIFO:
        return FIFOPolicy()
    if kind is ReplacementKind.RANDOM:
        return RandomPolicy(seed)
    raise ValueError(f"unknown replacement kind: {kind!r}")
