"""Tag construction for MEMO-TABLE entries.

A MEMO-TABLE tag is the (possibly reduced) bit pattern of the *pair* of
operands; the stored value is the unary result.  Unlike a conventional
cache the tag is wider than the data (section 2.1): two double precision
operands make a 128-bit tag guarding a 64-bit result.

Two float tag modes exist (Table 10):

* ``FULL`` -- the complete 64-bit patterns of both operands;
* ``MANTISSA`` -- only the 52-bit mantissa fields.  Operands whose
  mantissas match but whose exponents differ then *hit*; the hardware
  would recompute the result exponent with a small adder.  This module
  also provides that exponent fix-up so mantissa-mode tables still return
  numerically correct results in simulation.
"""

from __future__ import annotations

from typing import Callable, Tuple

from ..arch.ieee754 import decompose64, exponent64, float64_to_bits
from .config import MemoTableConfig, OperandKind, TagMode

__all__ = [
    "int_tag",
    "float_full_tag",
    "float_mantissa_tag",
    "tag_function",
    "mantissa_mode_key",
]

Tag = Tuple[int, int]


def int_tag(a: int, b: int) -> Tag:
    """Tag for an integer operand pair: the full operand values."""
    return (int(a), int(b))


def float_full_tag(a: float, b: float) -> Tag:
    """Tag for a float pair in FULL mode: both 64-bit patterns.

    Using bit patterns (not float equality) means ``-0.0`` and ``0.0``
    are distinct tags and NaN payloads compare consistently, exactly as a
    hardware comparator over register bits would behave.
    """
    return (float64_to_bits(a), float64_to_bits(b))


def float_mantissa_tag(a: float, b: float) -> Tag:
    """Tag for a float pair in MANTISSA mode: 52-bit mantissa fields only."""
    pa = decompose64(a)
    pb = decompose64(b)
    return (pa.mantissa, pb.mantissa)


def tag_function(config: MemoTableConfig) -> Callable[[object, object], Tag]:
    """Return the tag constructor matching ``config``."""
    if config.operand_kind is OperandKind.INT:
        return lambda a, b: int_tag(int(a), int(b))
    if config.tag_mode is TagMode.FULL:
        return lambda a, b: float_full_tag(float(a), float(b))
    return lambda a, b: float_mantissa_tag(float(a), float(b))


def mantissa_mode_key(a: float, b: float) -> Tag:
    """Alias of :func:`float_mantissa_tag` used by analysis code."""
    return float_mantissa_tag(a, b)


def exponent_delta(stored_a: float, stored_b: float, a: float, b: float) -> int:
    """Biased-exponent delta between a stored operand pair and a new pair.

    In MANTISSA mode, a hit on operands whose exponents differ from the
    stored pair requires adjusting the stored result's exponent.  For
    multiplication the result exponent shifts by the sum of the operand
    exponent deltas; for division by their difference.  Callers supply
    the appropriate combination; this helper returns per-operand deltas.
    """
    return (exponent64(a) - exponent64(stored_a)) + (
        exponent64(b) - exponent64(stored_b)
    )
