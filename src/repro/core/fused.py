"""The LUT-fused probe backend: dedup operand pairs, probe integers.

The batched kernel (:mod:`repro.core.kernel`) already vectorizes tag
and set-index computation, but its inner loop still compares Python
tag *tuples* against entry attributes and allocates an
:class:`~repro.core.memo_table._Entry` per miss.  This backend applies
the pLUTo move (PAPERS.md: "treat the table as a precomputed lookup
structure") one level up:

1. ``np.unique`` over the packed ``(tag_a, tag_b)`` pairs of a
   partition maps every event to a dense **pair id** -- one integer
   per distinct operand pair -- and the per-pair facts (set index,
   commutative twin, representative operands, computed value) are
   precomputed or cached once per id, not once per event.
2. The table's ways are mirrored into parallel integer lists
   (pair id, last-used clock, inserted clock) seeded from the live
   :class:`~repro.core.memo_table.MemoTable`, so the probe loop is
   C-speed ``list.index`` over small int lists -- tag compare, hit
   recency, LRU victim selection (``used.index(min(used))``) all fuse
   into integer operations with **zero** entry allocation while the
   loop runs.
3. One materialization pass writes the surviving ways back as real
   ``_Entry`` objects and advances ``table._clock``, leaving the table
   bit-identical -- tags, values, operands, recency, insertion clocks
   -- to what the scalar protocol would have produced.

Bit-exactness argument: FULL tags are the exact operand bit patterns,
so events sharing a pair id are indistinguishable to the table and to
the (deterministic) compute function; replaying clock/recency/victim
semantics per event over pair ids therefore reproduces the scalar
table state and statistics exactly.  The parity suite and the
four-way differential fuzzer (``repro verify fuzz``) enforce this.

Configurations the dense-id trick does not model (validation runs,
mantissa tags, CACHE_ALL/INTEGRATED trivial policies, shared or
infinite tables, non-LRU replacement, mixed-type partitions) delegate
to :func:`repro.core.kernel.probe_batch`, which is correct by
construction -- same degrade contract the batched tier uses.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .. import obs
from . import kernel
from .backend import ExecutionBackend, KernelConfig, KernelResult
from .config import OperandKind, TagMode, TrivialPolicy
from .memo_table import MemoTable, _Entry
from .operations import compute_function
from .replacement import LRUPolicy

__all__ = ["FusedBackend", "fused_probe"]

_MANT_MASK = (1 << 52) - 1

#: Distinct sentinel: a computed value may legitimately be None-adjacent
#: falsy (0, 0.0), so cache slots need an impossible marker.
_UNSET = object()


class FusedBackend(ExecutionBackend):
    """Register-name ``fused``: the unique-pair dense-LUT kernel."""

    name = "fused"
    description = "LUT-fused kernel (np.unique pair dedup + integer probe loop)"

    def availability(self) -> Optional[str]:
        # numpy is a hard dependency of the package, so this backend is
        # always runnable; the hook documents where a compiled backend
        # would report a missing toolchain.
        return None

    def probe_batch(self, batch, units, config: KernelConfig) -> KernelResult:
        columns = kernel.as_batch(batch)
        if columns is None:
            from .backend import get

            return get("batched").probe_batch(batch, units, config)
        stop = len(columns) if config.stop is None else config.stop
        return kernel._run_batch(
            columns,
            units,
            config.machine,
            config.hierarchy,
            config.fp_add_latency,
            config.validate,
            config.start,
            stop,
            probe=fused_probe,
        )


def fused_probe(
    unit,
    a_values,
    b_values,
    results=None,
    validate: bool = False,
    _np_a=None,
    _np_b=None,
    _idx=None,
) -> Tuple[int, int, int]:
    """Drop-in replacement for :func:`repro.core.kernel.probe_batch`
    (same signature, same ``(base, memo, mismatches)`` contract)."""
    n = len(a_values)
    if not n:
        return 0, 0, 0
    table = unit.table
    if (
        validate
        or unit.trivial_policy is not TrivialPolicy.EXCLUDE
        or type(table) is not MemoTable
        or table.config.tag_mode is not TagMode.FULL
        or type(table._policy) is not LRUPolicy
    ):
        return kernel.probe_batch(
            unit, a_values, b_values,
            results=results, validate=validate, _np_a=_np_a, _np_b=_np_b,
        )
    int_kind = table.config.operand_kind is OperandKind.INT
    if _np_a is None:
        _np_a, _np_b = kernel._coerce_operands(a_values, b_values, int_kind)
    if _np_a is None or int_kind != (_np_a.dtype.kind == "i"):
        return kernel.probe_batch(
            unit, a_values, b_values, results=results, validate=validate,
        )
    if not obs.enabled():
        return _probe_fused(unit, table, a_values, b_values, _np_a, _np_b)
    return kernel.instrument_partition(
        unit,
        lambda: _probe_fused(unit, table, a_values, b_values, _np_a, _np_b),
    )


def _pair_ids(np_a, np_b, int_kind: bool):
    """Dense ids over distinct operand-bit pairs.

    Returns ``(key_a, key_b, first, inv, u)``: per-id tag-half arrays
    (bit patterns, identical to the batched kernel's tags), the first
    event index carrying each id, the per-event id array, and the id
    count.  Each operand column is deduplicated separately and the
    pair id is built from the two (small) column ids -- three
    primitive-int sorts, markedly faster than one lexicographic sort
    of packed 128-bit keys."""
    if int_kind:
        keys_a, keys_b = np_a, np_b
    else:
        keys_a = np_a.view(np.uint64)
        keys_b = np_b.view(np.uint64)
    vals_a, inv_a = np.unique(keys_a, return_inverse=True)
    vals_b, inv_b = np.unique(keys_b, return_inverse=True)
    nb = len(vals_b)
    combo = inv_a.ravel().astype(np.int64, copy=False) * nb + inv_b.ravel()
    uniq, first_np, inv_np = np.unique(
        combo, return_index=True, return_inverse=True
    )
    return (
        vals_a[uniq // nb],
        vals_b[uniq % nb],
        first_np,
        inv_np.ravel(),
        len(uniq),
    )


def _probe_fused(unit, table, a_values, b_values, np_a, np_b):
    """The fused inner loop (EXCLUDE policy, FULL tags, stock LRU
    MemoTable); mirrors ``kernel._probe_fast`` counter for counter."""
    operation = unit.operation
    config = table.config
    trivial_arr = kernel._trivial_mask(operation, np_a, np_b)
    n = len(a_values)
    n_trivial = int(trivial_arr.sum())
    int_kind = config.operand_kind is OperandKind.INT

    key_a, key_b, first_np, inv_np, u = _pair_ids(np_a, np_b, int_kind)
    first = first_np.tolist()
    tags_a = key_a.tolist()
    tags_b = key_b.tolist()

    # Per-id set index, by the same formula the scalar table uses.
    mask = config.n_sets - 1
    if int_kind:
        set_np = np.bitwise_and(np.bitwise_xor(key_a, key_b), mask)
    else:
        shift = np.uint64(52 - mask.bit_length())
        mant_a = np.bitwise_and(key_a, np.uint64(_MANT_MASK))
        mant_b = np.bitwise_and(key_b, np.uint64(_MANT_MASK))
        set_np = np.bitwise_and(
            np.bitwise_xor(mant_a >> shift, mant_b >> shift),
            np.uint64(mask),
        )
    set_lut = set_np.tolist()

    pair_uid = {}
    for k in range(u):
        pair_uid[(tags_a[k], tags_b[k])] = k

    # Mirror the live table into flat parallel slot arrays (slot =
    # set * associativity + way) plus one uid -> slot dict, so a probe
    # is a single hash lookup and a hit a single list store.  Entries
    # whose tag is not in this batch still get an id (past ``u``) so
    # exact and commutative probes can hit them; their _Entry objects
    # ride along untouched unless evicted.
    sets_ = table._sets
    n_sets = config.n_sets
    assoc = config.associativity
    size = n_sets * assoc
    uid_flat = [-1] * size
    used_flat = [0] * size
    ins_flat = [0] * size
    ent_flat: List[Optional[_Entry]] = [None] * size
    fill = [0] * n_sets
    where: dict = {}
    next_uid = u
    for s in range(n_sets):
        ways = sets_[s]
        if not ways:
            continue
        fill[s] = len(ways)
        base = s * assoc
        for w, entry in enumerate(ways):
            uid = pair_uid.get(entry.tag)
            if uid is None:
                uid = next_uid
                next_uid += 1
                pair_uid[entry.tag] = uid
            pos = base + w
            uid_flat[pos] = uid
            used_flat[pos] = entry.last_used
            ins_flat[pos] = entry.inserted
            ent_flat[pos] = entry
            where[uid] = pos

    # Commutative twin lookup must come after the mirror pass: a
    # swapped-order tag may only exist as a pre-existing entry.  The
    # set-index formula is symmetric, so a twin always lives in the
    # probing id's own set and ``where`` stays globally consistent.
    commutative = config.commutative
    if commutative:
        swap_lut = [
            pair_uid.get((tags_b[k], tags_a[k]), -1) for k in range(u)
        ]
    else:
        swap_lut = [-1] * u

    a_list = a_values if isinstance(a_values, list) else list(a_values)
    b_list = b_values if isinstance(b_values, list) else list(b_values)
    compute_op = compute_function(operation)
    value_lut: List[object] = [_UNSET] * u

    # Trivial events only count cycles; the probe loop walks the pair
    # ids of the non-trivial positions directly (the event index is
    # not needed -- every per-id fact is precomputed).
    if n_trivial:
        kept = inv_np[~trivial_arr].tolist()
    else:
        kept = inv_np.tolist()

    clock = table._clock
    lookups = hits = commutative_hits = insertions = evictions = 0
    where_get = where.get
    for k in kept:
        clock += 1
        lookups += 1
        pos = where_get(k)
        if pos is None:
            sk = swap_lut[k]
            if sk >= 0:
                pos = where_get(sk)
                if pos is not None:
                    commutative_hits += 1
        if pos is not None:
            used_flat[pos] = clock
            hits += 1
            continue
        value = value_lut[k]
        if value is _UNSET:
            j = first[k]
            value = compute_op(a_list[j], b_list[j])
            value_lut[k] = value
        clock += 1
        insertions += 1
        s = set_lut[k]
        base = s * assoc
        f = fill[s]
        if f < assoc:
            pos = base + f
            fill[s] = f + 1
        else:
            end = base + assoc
            pos = used_flat.index(min(used_flat[base:end]), base, end)
            del where[uid_flat[pos]]
            evictions += 1
        uid_flat[pos] = k
        used_flat[pos] = clock
        ins_flat[pos] = clock
        ent_flat[pos] = None
        where[k] = pos
    table._clock = clock

    # Materialize: fresh inserts (slot entry is None) become real
    # entries -- always a batch id, so tag/operands/value come from the
    # id caches -- and surviving entries get their recency written
    # back.  Slot order is insertion order, matching the scalar table's
    # way order exactly.
    if lookups:
        for s in range(n_sets):
            f = fill[s]
            if not f:
                continue
            base = s * assoc
            new_ways: List[_Entry] = []
            for pos in range(base, base + f):
                entry = ent_flat[pos]
                if entry is None:
                    k = uid_flat[pos]
                    j = first[k]
                    entry = _Entry(
                        (tags_a[k], tags_b[k]),
                        value_lut[k],
                        (a_list[j], b_list[j]),
                        used_flat[pos],
                    )
                    entry.inserted = ins_flat[pos]
                else:
                    entry.last_used = used_flat[pos]
                new_ways.append(entry)
            sets_[s] = new_ways

    trivial_cycles = min(unit.trivial_latency, unit.latency)
    trivial_total = n_trivial * trivial_cycles
    latency = unit.latency
    base = trivial_total + lookups * latency
    memo = (
        trivial_total + hits * unit.hit_latency + (lookups - hits) * latency
    )

    table_stats = table.stats
    table_stats.lookups += lookups
    table_stats.hits += hits
    table_stats.commutative_hits += commutative_hits
    table_stats.insertions += insertions
    table_stats.evictions += evictions
    unit_stats = unit.stats
    unit_stats.operations += n
    unit_stats.trivial += n_trivial
    unit_stats.cycles_base += base
    unit_stats.cycles_memo += memo
    return base, memo, 0
