"""Hot-trace speculation: region plans with guarded bulk commits.

The paper's insight -- multiply/divide results recur, so cache them --
extends from single operations to whole *traces*: hot loops present the
same pc sequence, the same operand pairs and therefore the same memo
outcomes over and over.  This module is the trace-JIT move (the
lesson12 harness of SNIPPETS.md: record a hot linear trace, inject a
guarded fast path, commit or abort):

1. :func:`detect_regions` finds hot regions in a
   :class:`~repro.isa.columns.ColumnBatch` by rolling-hash windows over
   the pc column: every length-``window`` pc window is hashed (a
   seeded polynomial hash mod 2**64, fully vectorized, no wall clock),
   windows whose hash recurs at least ``threshold`` times are *hot*,
   maximal hot spans are chopped into period-aligned regions, and
   regions are grouped by hashed pc content into *signatures* (a
   signature collision costs an abort, never correctness).  Events
   without a recorded pc are salted with position-unique values so no
   window containing one can ever look hot.
2. The speculative probe (installed into
   :func:`repro.core.kernel._run_batch` exactly like the fused probe)
   builds, per (signature, operation), a **region plan** on the first
   occurrence: the dense operand-pair-id sequence of the region, its
   trivial mask, and per-distinct-pair probe counts and final recency
   ordinals.  Every later occurrence is one *guarded* probe: the guard
   demands the occurrence's operand-tag (pair-id) sequence match the
   plan bit for bit and the table generation (geometry) be unchanged;
   if additionally every planned pair is resident, the whole region
   **commits** in O(distinct pairs) -- bulk recency/clock/counter
   updates, no per-event loop.  Any guard failure or non-resident pair
   **aborts** the region to the general fused loop over the same live
   table mirror, which is a bit-exact state handoff by construction
   (the abort path *is* the general path).
3. :class:`SpeculativeBackend` registers all of this as the
   ``speculative`` execution backend (full precedence/env/serve
   plumbing of :mod:`repro.core.backend`), attaches a
   :class:`SpeculationStats` record to the returned report
   (lesson12-style dynamic-instruction and commit-rate accounting) and
   mirrors commit/abort/guard-failure counters plus per-region spans
   into :mod:`repro.obs` when metrics are on.

Bit-exactness argument: a commit happens only when the occurrence's
pair-id sequence equals the trained plan's (ids are dense over operand
bit patterns, so this *is* an operand-tag match) and every planned pair
is resident.  Hits never insert, so the occurrence performs exactly
``kept`` lookups that all hit; the table clock advances once per
lookup; each entry's final recency equals the clock at its last probe
-- all of which the bulk update replays exactly, including commutative
twin resolution (a pair resident only in swapped order counts every
probe as a commutative hit, as the scalar protocol does).  Everything
else -- training, aborts, gap segments between regions, ineligible
configurations -- runs the general fused loop.  The five-way
differential fuzzer (``repro verify fuzz``) and the backend parity
suite enforce the claim.

Tuning knobs (all also readable from the environment so worker pools
inherit them): see :class:`SpeculationConfig`.  Detection and plans are
per-dispatch -- no region state is cached across calls or pool workers.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import obs
from . import kernel
from .backend import ExecutionBackend, KernelConfig, KernelResult
from .config import OperandKind, TagMode, TrivialPolicy
from .fused import fused_probe
from .memo_table import MemoTable, _Entry
from .operations import compute_function
from .replacement import LRUPolicy

__all__ = [
    "SPECULATE_FAULTS",
    "Region",
    "SpeculationConfig",
    "SpeculationStats",
    "SpeculativeBackend",
    "detect_regions",
    "pc_signature_keys",
]

_F_PC = 4
_MANT_MASK = (1 << 52) - 1
_U64 = (1 << 64) - 1

#: Planted speculation bugs for the mutation smoke (``repro verify
#: smoke``); armed through the same single latch as the kernel faults
#: (:func:`repro.core.backend.set_active_fault`), never in production.
SPECULATE_FAULTS = (
    "speculate_guard_false_pass",
    "speculate_abort_drops_stats",
)

#: Rolling-hash multiplier (odd, so it is invertible mod 2**64).
_HASH_M = 0xB5AD4ECEDA1CE2A9
_HASH_M_INV = pow(_HASH_M, -1, 1 << 64)


# -- configuration -----------------------------------------------------------

#: Environment prefix for the tuning knobs (``REPRO_SPECULATE_WINDOW``,
#: ``_THRESHOLD``, ``_MIN_REGION``, ``_MAX_REGION``, ``_OCCURRENCES``,
#: ``_SEED``).
ENV_PREFIX = "REPRO_SPECULATE_"


@dataclass(frozen=True)
class SpeculationConfig:
    """Detector tuning knobs (deterministic: no wall clock, seeded hash).

    ``window``
        pc-window length the rolling hash slides over.
    ``threshold``
        a window hash must recur at least this many times to be hot.
    ``min_region`` / ``max_region``
        bounds on the record length of one region; hot spans are
        chopped into period-aligned chunks no longer than
        ``max_region``.
    ``target_occurrences``
        chop so a hot span yields roughly this many occurrences of the
        same signature (more occurrences amortize training; longer
        regions amortize the per-occurrence guard).
    ``seed``
        mixed into the pc hash -- same seed, same regions, always.
    """

    window: int = 4
    threshold: int = 3
    min_region: int = 2
    max_region: int = 4096
    target_occurrences: int = 8
    seed: int = 0

    @classmethod
    def from_env(cls) -> "SpeculationConfig":
        def _get(name: str, default: int) -> int:
            raw = os.environ.get(ENV_PREFIX + name, "").strip()
            if not raw:
                return default
            try:
                return int(raw)
            except ValueError:
                return default

        return cls(
            window=max(1, _get("WINDOW", cls.window)),
            threshold=max(1, _get("THRESHOLD", cls.threshold)),
            min_region=max(1, _get("MIN_REGION", cls.min_region)),
            max_region=max(1, _get("MAX_REGION", cls.max_region)),
            target_occurrences=max(1, _get("OCCURRENCES", cls.target_occurrences)),
            seed=_get("SEED", cls.seed),
        )


@dataclass(frozen=True)
class Region:
    """One detected hot-region occurrence: records ``[start, end)`` of
    the batch, grouped with identical-pc occurrences by ``sig``."""

    start: int
    end: int
    sig: int


@dataclass
class SpeculationStats:
    """Lesson12-style speculation accounting for one dispatch.

    ``commits``/``aborts``/``guard_failures``/``trained`` count region
    *legs* -- one (region occurrence, memo unit) pair each.  A leg
    commits when its guarded bulk probe applied, aborts when the guard
    failed (counted in ``guard_failures`` too) or a planned pair was
    not resident, and trains when it built the signature's plan.
    ``committed_events`` is the number of dynamic instructions retired
    through commits; against ``dynamic_instructions`` (the whole
    dispatch) it gives the speculative coverage.
    """

    regions: int = 0
    signatures: int = 0
    trained: int = 0
    commits: int = 0
    aborts: int = 0
    guard_failures: int = 0
    committed_events: int = 0
    dynamic_instructions: int = 0

    @property
    def commit_rate(self) -> float:
        """Committed fraction of guarded (post-training) region legs."""
        total = self.commits + self.aborts
        return self.commits / total if total else 0.0

    @property
    def speculative_fraction(self) -> float:
        """Dynamic instructions retired speculatively / all retired."""
        if not self.dynamic_instructions:
            return 0.0
        return self.committed_events / self.dynamic_instructions

    def as_dict(self) -> Dict[str, float]:
        return {
            "regions": self.regions,
            "signatures": self.signatures,
            "trained": self.trained,
            "commits": self.commits,
            "aborts": self.aborts,
            "guard_failures": self.guard_failures,
            "committed_events": self.committed_events,
            "dynamic_instructions": self.dynamic_instructions,
            "commit_rate": self.commit_rate,
            "speculative_fraction": self.speculative_fraction,
        }


# -- hot-region detection ----------------------------------------------------


def _mixed_pcs(views, start: int, stop: int, seed: int):
    """Per-record 64-bit keys: mixed pcs, position-unique salts where
    no pc was recorded (so those windows can never recur)."""
    pcs = views.pc[start:stop].view(np.uint64)
    present = np.bitwise_and(views.flags[start:stop], _F_PC) != 0
    x = (pcs + np.uint64((2 * seed + 1) & _U64)) * np.uint64(0x9E3779B97F4A7C15)
    x ^= x >> np.uint64(29)
    x *= np.uint64(0xBF58476D1CE4E5B9)
    x ^= x >> np.uint64(32)
    absent = np.nonzero(~present)[0]
    if absent.size:
        x[absent] = (
            np.uint64(0xD6E8FEB86659FD93)
            + absent.view(np.uint64) * np.uint64(0x9E3779B97F4A7C15)
        )
    return x, present


def pc_signature_keys(views, start: int, stop: int, seed: int = 0):
    """Public face of the detector's pc mixing: ``(keys, present)``.

    ``keys`` is one seeded 64-bit mix per record of ``views[start:stop]``
    (position-unique salts where no pc was recorded), ``present`` the
    recorded-pc mask.  The phase-aware sampling layer reuses this
    hashing for its per-interval pc-region signatures so feature
    extraction and hot-region detection agree on what "the same static
    code" means.
    """
    return _mixed_pcs(views, start, stop, seed)


def _window_hashes(x, window: int):
    """Vectorized polynomial rolling hash mod 2**64 of every
    length-``window`` slice of ``x`` (exact uint64 wraparound).

    Small windows -- the common case -- take the direct Horner form
    (``window - 1`` fused multiply-add passes); wide windows amortize
    through the prefix-sum form, whose per-position weights use the
    modular inverse of the odd multiplier."""
    n = len(x)
    nw = n - window + 1
    if window <= 8:
        h = x[window - 1 : n].copy()
        m = 1
        for j in range(window - 2, -1, -1):
            m = (m * _HASH_M) & _U64
            h += x[j : j + nw] * np.uint64(m)
        return h
    inv_pow = np.empty(n, dtype=np.uint64)
    inv_pow[0] = 1
    pos_pow = np.empty(n, dtype=np.uint64)
    pos_pow[0] = 1
    if n > 1:
        np.cumprod(
            np.full(n - 1, _HASH_M_INV, dtype=np.uint64), out=inv_pow[1:]
        )
        np.cumprod(np.full(n - 1, _HASH_M, dtype=np.uint64), out=pos_pow[1:])
    sums = np.concatenate(
        (np.zeros(1, dtype=np.uint64), np.cumsum(x * inv_pow, dtype=np.uint64))
    )
    return (sums[window:] - sums[:nw]) * pos_pow[window - 1:]


def detect_regions(
    batch,
    config: Optional[SpeculationConfig] = None,
    start: int = 0,
    stop: Optional[int] = None,
) -> List[Region]:
    """Hot-region occurrences of ``batch[start:stop]``, in trace order.

    A pure function of the pc/flags columns and the config -- same
    inputs, same regions (the determinism the property suite pins).
    Returned regions are non-overlapping, sorted, at least
    ``min_region`` records long, and never cover a record without a
    recorded pc.
    """
    cfg = config if config is not None else SpeculationConfig()
    views = batch.views()
    if stop is None:
        stop = len(batch)
    n = stop - start
    window = cfg.window
    # A window must recur, so anything shorter than window+1 records
    # (or the region floor) can never produce a region.
    if n < max(window + 1, cfg.min_region):
        return []
    x, present = _mixed_pcs(views, start, stop, cfg.seed)
    if not present.any():
        return []
    hashes = _window_hashes(x, window)
    # Hot windows: hash values recurring >= threshold times.  A sorted
    # copy + run lengths + binary-search membership beats np.unique
    # here (no argsort, no inverse reconstruction).
    sorted_h = np.sort(hashes)
    boundary = np.empty(len(sorted_h), dtype=bool)
    boundary[0] = True
    np.not_equal(sorted_h[1:], sorted_h[:-1], out=boundary[1:])
    starts = np.nonzero(boundary)[0]
    counts = np.diff(np.append(starts, len(sorted_h)))
    hot_vals = sorted_h[starts[counts >= cfg.threshold]]
    if not hot_vals.size:
        return []
    slot = np.searchsorted(hot_vals, hashes)
    slot[slot == hot_vals.size] = 0
    hot = hot_vals[slot] == hashes
    hot_idx = np.nonzero(hot)[0]
    if not hot_idx.size:
        return []
    # Maximal runs of consecutive hot window starts.
    cut = np.nonzero(np.diff(hot_idx) > 1)[0]
    run_starts = np.concatenate((hot_idx[:1], hot_idx[cut + 1]))
    run_ends = np.concatenate((hot_idx[cut], hot_idx[-1:]))

    regions: List[Region] = []
    sig_of: Dict[tuple, int] = {}
    prev_end = 0
    for s, e in zip(run_starts.tolist(), run_ends.tolist()):
        span_start = max(s, prev_end)  # runs < window apart may touch
        span_end = e + window
        if span_end - span_start < max(cfg.min_region, window):
            continue
        # The span's period: distance to the first recurrence of its
        # leading window hash (a loop's body length); aperiodic spans
        # count as one period.
        repeat = np.nonzero(hashes[s + 1 : e + 1] == hashes[s])[0]
        period = int(repeat[0]) + 1 if repeat.size else span_end - span_start
        reps = (span_end - span_start) // period
        if reps < 1:
            continue
        # Chop into period-aligned chunks: long enough to amortize the
        # per-occurrence guard (never shorter than a window, so the
        # signature windows below stay inside the region), short enough
        # to recur ~target times.
        floor_len = max(cfg.min_region, window)
        k = max(1, reps // cfg.target_occurrences)
        cap = max(1, cfg.max_region // period)
        if k > cap:
            k = cap
        length = period * k
        if length < floor_len:
            need = -(-floor_len // period)  # ceil
            if need > reps or need > cap:
                continue
            length = period * need
        q = span_start
        while q + length <= span_end:
            # Signature: leading + trailing window hash + length (both
            # windows lie inside the region because length >= window).
            # A collision merges two different-content signatures,
            # which only costs guard aborts, never correctness -- the
            # guard compares the actual operand-id sequence.
            key = (
                int(hashes[q]),
                int(hashes[q + length - window]),
                length,
            )
            sig = sig_of.setdefault(key, len(sig_of))
            regions.append(Region(start + q, start + q + length, sig))
            q += length
        prev_end = q
    return regions


# -- region plans ------------------------------------------------------------


class _RegionPlan:
    """Per-(signature, operation) specialization, trained on the first
    occurrence: the guard's operand-bit sequence plus
    per-distinct-pair bulk facts."""

    __slots__ = (
        "m", "keys_a", "keys_b", "kept_n", "d_pairs", "d_counts", "d_last",
    )

    def __init__(
        self, keys_a, keys_b, keep_arr, n_trivial: int, lo: int, hi: int
    ) -> None:
        self.m = hi - lo
        self.keys_a = keys_a[lo:hi].copy()
        self.keys_b = keys_b[lo:hi].copy()
        ta = self.keys_a.tolist()
        tb = self.keys_b.tolist()
        if n_trivial:
            keep = keep_arr[lo:hi].tolist()
            pairs = [
                (ta[i], tb[i]) for i in range(len(ta)) if keep[i]
            ]
        else:
            pairs = list(zip(ta, tb))
        self.kept_n = len(pairs)
        order: Dict[tuple, List[int]] = {}
        for ordinal, pair in enumerate(pairs):
            rec = order.get(pair)
            if rec is None:
                order[pair] = [1, ordinal]
            else:
                rec[0] += 1
                rec[1] = ordinal
        self.d_pairs = list(order.keys())
        self.d_counts = [rec[0] for rec in order.values()]
        self.d_last = [rec[1] for rec in order.values()]


# -- the speculative probe ---------------------------------------------------


def _make_probe(regions: Tuple[Region, ...], stats: SpeculationStats):
    """A drop-in :func:`repro.core.kernel.probe_batch` replacement that
    speculates over ``regions``; plans live for this dispatch only."""
    plans: Dict[Tuple[int, object], _RegionPlan] = {}

    def speculative_probe(
        unit,
        a_values,
        b_values,
        results=None,
        validate: bool = False,
        _np_a=None,
        _np_b=None,
        _idx=None,
    ) -> Tuple[int, int, int]:
        n = len(a_values)
        if not n:
            return 0, 0, 0
        table = unit.table
        if (
            _idx is None
            or validate
            or unit.trivial_policy is not TrivialPolicy.EXCLUDE
            or type(table) is not MemoTable
            or table.config.tag_mode is not TagMode.FULL
            or type(table._policy) is not LRUPolicy
        ):
            # Same degrade contract as the fused backend: anything the
            # dense-id trick does not model takes the general tier.
            return fused_probe(
                unit, a_values, b_values,
                results=results, validate=validate, _np_a=_np_a, _np_b=_np_b,
            )
        int_kind = table.config.operand_kind is OperandKind.INT
        if _np_a is None:
            _np_a, _np_b = kernel._coerce_operands(a_values, b_values, int_kind)
        if _np_a is None or int_kind != (_np_a.dtype.kind == "i"):
            return kernel.probe_batch(
                unit, a_values, b_values, results=results, validate=validate,
            )
        if not obs.enabled():
            return _probe_speculative(
                unit, table, a_values, b_values, _np_a, _np_b,
                _idx, regions, plans, stats, False,
            )
        return kernel.instrument_partition(
            unit,
            lambda: _probe_speculative(
                unit, table, a_values, b_values, _np_a, _np_b,
                _idx, regions, plans, stats, True,
            ),
        )

    return speculative_probe


def _probe_speculative(
    unit, table, a_values, b_values, np_a, np_b,
    idx, regions, plans, stats, obs_on,
):
    """The region-aware inner kernel.

    Bit-for-bit the same protocol as :func:`repro.core.fused._probe_fused`
    outside regions; inside, trained signatures execute as one guarded
    bulk probe.  Unlike fused there is NO dense-id precompute: the guard
    compares raw operand-bit columns (vectorized), and only the slow
    spans -- gaps, training, aborts -- intern pairs through a dict.  On
    high-commit traces that skips the sort-based pair dedup entirely,
    which is where the speedup over fused comes from.
    """
    operation = unit.operation
    config = table.config
    fault = kernel._active_fault
    guard_always_passes = fault == "speculate_guard_false_pass"
    drop_abort_stats = fault == "speculate_abort_drops_stats"

    trivial_arr = kernel._trivial_mask(operation, np_a, np_b)
    n = len(a_values)
    n_trivial = int(trivial_arr.sum())
    int_kind = config.operand_kind is OperandKind.INT

    # Raw operand bit columns: the tag halves the scalar table stores.
    if int_kind:
        keys_a, keys_b = np_a, np_b
    else:
        keys_a = np_a.view(np.uint64)
        keys_b = np_b.view(np.uint64)
    keep_arr = ~trivial_arr

    # Per-pair set index (same formula as the scalar table and fused),
    # computed on demand for the pairs the slow path actually inserts.
    mask = config.n_sets - 1
    if int_kind:
        def set_of(ta: int, tb: int) -> int:
            return (ta ^ tb) & mask
    else:
        shift = 52 - mask.bit_length()

        def set_of(ta: int, tb: int) -> int:
            return (
                ((ta & _MANT_MASK) >> shift) ^ ((tb & _MANT_MASK) >> shift)
            ) & mask

    # Mirror the live table into flat slot arrays (see fused.py),
    # keyed directly by entry tags (operand-bit pairs).
    sets_ = table._sets
    n_sets = config.n_sets
    assoc = config.associativity
    size = n_sets * assoc
    pair_flat: List[Optional[tuple]] = [None] * size
    used_flat = [0] * size
    ins_flat = [0] * size
    ent_flat: List[Optional[_Entry]] = [None] * size
    fill = [0] * n_sets
    where: dict = {}
    for s in range(n_sets):
        ways = sets_[s]
        if not ways:
            continue
        fill[s] = len(ways)
        base = s * assoc
        for w, entry in enumerate(ways):
            pos = base + w
            pair_flat[pos] = entry.tag
            used_flat[pos] = entry.last_used
            ins_flat[pos] = entry.inserted
            ent_flat[pos] = entry
            where[entry.tag] = pos

    commutative = config.commutative
    a_list = a_values if isinstance(a_values, list) else list(a_values)
    b_list = b_values if isinstance(b_values, list) else list(b_values)
    compute_op = compute_function(operation)
    #: pair -> (memoized value, first event index that carried it).
    value_of: Dict[tuple, tuple] = {}

    # Partition-local bounds of every region occurrence.
    r_lo = np.searchsorted(idx, [r.start for r in regions]).tolist()
    r_hi = np.searchsorted(idx, [r.end for r in regions]).tolist()

    clock = table._clock
    lookups = hits = commutative_hits = insertions = evictions = 0
    where_get = where.get
    value_get = value_of.get

    def run_span(lo: int, hi: int) -> None:
        """The general fused loop over events [lo, hi) -- gaps,
        training and the abort path all run through here.  Tags are
        materialized per span, so committed regions never pay for it."""
        if hi <= lo:
            return
        nonlocal clock, lookups, hits, commutative_hits
        nonlocal insertions, evictions
        _clock = clock
        _lookups, _hits = lookups, hits
        _comm, _ins, _evi = commutative_hits, insertions, evictions
        ta_s = keys_a[lo:hi].tolist()
        tb_s = keys_b[lo:hi].tolist()
        keep_s = keep_arr[lo:hi].tolist() if n_trivial else None
        for i in range(hi - lo):
            if keep_s is not None and not keep_s[i]:
                continue
            ta = ta_s[i]
            tb = tb_s[i]
            pair = (ta, tb)
            _clock += 1
            _lookups += 1
            pos = where_get(pair)
            if pos is None and commutative:
                pos = where_get((tb, ta))
                if pos is not None:
                    _comm += 1
            if pos is not None:
                used_flat[pos] = _clock
                _hits += 1
                continue
            rec = value_get(pair)
            if rec is None:
                j = lo + i
                rec = (compute_op(a_list[j], b_list[j]), j)
                value_of[pair] = rec
            _clock += 1
            _ins += 1
            s = set_of(ta, tb)
            base = s * assoc
            f = fill[s]
            if f < assoc:
                pos = base + f
                fill[s] = f + 1
            else:
                end = base + assoc
                pos = used_flat.index(min(used_flat[base:end]), base, end)
                del where[pair_flat[pos]]
                _evi += 1
            pair_flat[pos] = pair
            used_flat[pos] = _clock
            ins_flat[pos] = _clock
            ent_flat[pos] = None
            where[pair] = pos
        clock = _clock
        lookups, hits = _lookups, _hits
        commutative_hits, insertions, evictions = _comm, _ins, _evi

    def run_abort(lo: int, hi: int) -> None:
        """Abort handoff: re-execute through the general loop.  The
        planted ``speculate_abort_drops_stats`` fault loses the
        occurrence's in-flight counters (table state still mutates)."""
        if not drop_abort_stats:
            run_span(lo, hi)
            return
        nonlocal lookups, hits, commutative_hits, insertions, evictions
        snap = (lookups, hits, commutative_hits, insertions, evictions)
        run_span(lo, hi)
        lookups, hits, commutative_hits, insertions, evictions = snap

    ev_cursor = 0
    for r_i, region in enumerate(regions):
        lo = r_lo[r_i]
        hi = r_hi[r_i]
        if hi <= lo:
            continue
        if lo > ev_cursor:
            run_span(ev_cursor, lo)
        if obs_on:
            wall0 = time.perf_counter()
            cpu0 = time.process_time()
        m = hi - lo
        plan_key = (region.sig, operation)
        plan = plans.get(plan_key)
        if plan is None:
            run_span(lo, hi)
            plans[plan_key] = _RegionPlan(
                keys_a, keys_b, keep_arr, n_trivial, lo, hi
            )
            stats.trained += 1
        else:
            # Guard 1: table generation (geometry cannot change inside a
            # dispatch, but the contract is checked, not assumed).
            # Guard 2: the operand-tag sequence matches the plan bit
            # for bit (raw operand bit columns against the trained copy).
            guard_ok = (
                m == plan.m
                and bool(np.array_equal(keys_a[lo:hi], plan.keys_a))
                and bool(np.array_equal(keys_b[lo:hi], plan.keys_b))
            )
            if guard_always_passes:  # planted fault
                guard_ok = True
            if not guard_ok:
                stats.guard_failures += 1
                stats.aborts += 1
                run_abort(lo, hi)
            else:
                # Residency: every planned pair must be present (exactly
                # or as its commutative twin); otherwise abort.
                d_pairs = plan.d_pairs
                d_counts = plan.d_counts
                d_last = plan.d_last
                pos_last: Dict[int, int] = {}
                comm = 0
                resident = True
                for t in range(len(d_pairs)):
                    pair = d_pairs[t]
                    pos = where_get(pair)
                    if pos is None:
                        if commutative:
                            pos = where_get((pair[1], pair[0]))
                        if pos is None:
                            resident = False
                            break
                        comm += d_counts[t]
                    last = d_last[t]
                    prev = pos_last.get(pos)
                    if prev is None or last > prev:
                        pos_last[pos] = last
                if not resident:
                    stats.aborts += 1
                    run_abort(lo, hi)
                else:
                    # Commit: the whole region as one fused probe.
                    for pos, last in pos_last.items():
                        used_flat[pos] = clock + last + 1
                    kept_n = plan.kept_n
                    clock += kept_n
                    lookups += kept_n
                    hits += kept_n
                    commutative_hits += comm
                    stats.commits += 1
                    stats.committed_events += m
        if obs_on:
            obs.registry().record_span(
                f"speculate.region.{region.sig}",
                time.perf_counter() - wall0,
                time.process_time() - cpu0,
            )
        ev_cursor = hi
    if ev_cursor < n:
        run_span(ev_cursor, n)
    table._clock = clock

    # Materialize surviving slots back into real entries (see fused.py).
    if lookups or insertions:
        for s in range(n_sets):
            f = fill[s]
            if not f:
                continue
            base = s * assoc
            new_ways: List[_Entry] = []
            for pos in range(base, base + f):
                entry = ent_flat[pos]
                if entry is None:
                    pair = pair_flat[pos]
                    value, j = value_of[pair]
                    entry = _Entry(
                        pair,
                        value,
                        (a_list[j], b_list[j]),
                        used_flat[pos],
                    )
                    entry.inserted = ins_flat[pos]
                else:
                    entry.last_used = used_flat[pos]
                new_ways.append(entry)
            sets_[s] = new_ways

    trivial_cycles = min(unit.trivial_latency, unit.latency)
    trivial_total = n_trivial * trivial_cycles
    latency = unit.latency
    base = trivial_total + lookups * latency
    memo = (
        trivial_total + hits * unit.hit_latency + (lookups - hits) * latency
    )

    table_stats = table.stats
    table_stats.lookups += lookups
    table_stats.hits += hits
    table_stats.commutative_hits += commutative_hits
    table_stats.insertions += insertions
    table_stats.evictions += evictions
    unit_stats = unit.stats
    unit_stats.operations += n
    unit_stats.trivial += n_trivial
    unit_stats.cycles_base += base
    unit_stats.cycles_memo += memo
    return base, memo, 0


# -- the backend -------------------------------------------------------------


def _emit_stats(stats: SpeculationStats) -> None:
    """Stream one dispatch's speculation accounting into the metrics
    registry (zero-delta counters are skipped by the registry)."""
    reg = obs.registry()
    reg.add_counters(
        "speculate",
        {
            "regions": stats.regions,
            "trained": stats.trained,
            "commits": stats.commits,
            "aborts": stats.aborts,
            "guard_failures": stats.guard_failures,
            "committed_events": stats.committed_events,
        },
    )
    reg.gauge_set("speculate.commit_rate", stats.commit_rate)
    reg.gauge_set(
        "speculate.speculative_fraction", stats.speculative_fraction
    )


class SpeculativeBackend(ExecutionBackend):
    """Register-name ``speculative``: hot-trace region speculation."""

    name = "speculative"
    description = (
        "hot-trace speculation (pc-region plans, guarded bulk commits, "
        "fused fallback)"
    )

    def availability(self) -> Optional[str]:
        return None

    def probe_batch(self, batch, units, config: KernelConfig) -> KernelResult:
        columns = kernel.as_batch(batch)
        if columns is None:
            from .backend import get

            return get("batched").probe_batch(batch, units, config)
        stop = len(columns) if config.stop is None else config.stop
        spec_cfg = SpeculationConfig.from_env()
        regions = detect_regions(columns, spec_cfg, config.start, stop)
        stats = SpeculationStats(
            regions=len(regions),
            signatures=len({r.sig for r in regions}),
        )
        if regions and not config.validate:
            probe = _make_probe(tuple(regions), stats)
        else:
            # Nothing hot (or a validation run): the fused tier is the
            # documented degrade, exactly as fused degrades to batched.
            probe = fused_probe
        report = kernel._run_batch(
            columns,
            units,
            config.machine,
            config.hierarchy,
            config.fp_add_latency,
            config.validate,
            config.start,
            stop,
            probe=probe,
        )
        stats.dynamic_instructions = report.instructions
        report.speculation = stats
        if obs.enabled():
            _emit_stats(stats)
        return report
