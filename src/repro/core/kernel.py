"""The batched memo-probe kernel: one inner loop for every simulator.

Every paper experiment boils down to "replay an operand stream through a
MEMO-TABLE and count" (sections 2-4).  Historically that probe sequence
was re-implemented as a per-record Python loop in each front-end
(``simulator/shade.py``, ``simulator/cpu.py``, ``simulator/pipeline.py``
and the corpus replay path); this module is the single shared
implementation, in two forms:

* :func:`run_events` / :func:`probe_batch` -- the **batched** path.  A
  columnar :class:`~repro.isa.columns.ColumnBatch` is partitioned by
  opcode with numpy, index/tag columns and trivial-operand masks are
  precomputed per partition, and a tight loop probes the table directly
  (replicating :class:`~repro.core.memo_table.MemoTable` semantics --
  clock, LRU recency, replacement, every counter -- exactly).
* :func:`run_events_scalar` -- the retained **scalar reference** path:
  the classic event-at-a-time loop over ``unit.execute``.  CI asserts
  the two produce bit-identical :class:`~repro.core.stats.MemoStats` on
  every bundled program.

Which form runs is decided by the execution-backend registry
(:mod:`repro.core.backend`): both paths are registered there (as
``scalar`` and ``batched``, next to the LUT-fused ``fused`` kernel of
:mod:`repro.core.fused`), and ``repro <experiment> --backend NAME`` or
the ``REPRO_BACKEND`` environment variable picks one at runtime
(``--scalar``/``REPRO_SCALAR`` remain as deprecated aliases).

Batching by opcode is sound because each operation class owns a private
MEMO-TABLE: per-table outcomes depend only on that operation's
subsequence, which partitioning preserves in order.  The one stateful
resource shared *across* opcodes -- the cache hierarchy -- is walked in
original interleaved order.

This is deliberately the only module allowed to contain a per-record
probe loop; ``repro lint`` rule REPRO006 flags new ones anywhere else.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..isa.columns import ColumnBatch
from ..isa.opcodes import OPCODE_INDEX, OPCODE_LIST, Opcode
from .config import OperandKind, TagMode, TrivialPolicy
from .memo_table import InfiniteMemoTable, MemoTable, _Entry
from .operations import Operation, compute_function
from .replacement import LRUPolicy

__all__ = [
    "KERNEL_FAULTS",
    "KernelReport",
    "run_events",
    "run_events_scalar",
    "probe_batch",
    "probe_one",
    "table_probe_batch",
    "replay_infinite",
    "as_batch",
    "scalar_mode",
    "set_scalar_mode",
    "values_match",
]

# Flag bits mirrored from repro.isa.columns (kept numeric to avoid
# importing private names in the hot path).
_F_INT = 1
_F_ADDRESS = 2
_F_PC = 4
_F_DST = 8
_F_WIDE = 16

_MANT_MASK = (1 << 52) - 1


# -- fault injection seam (mutation smoke) ----------------------------------
#
# ``repro verify smoke`` proves the differential harness can catch real
# kernel regressions: each named fault below perturbs the batched fast
# path the way a plausible bug would, and the harness must flag the
# divergence within its default budget.  The seam is a single module
# global read once per batch; it is only ever set (briefly) by
# ``repro.verify.faults.inject`` and is never active in production runs.

KERNEL_FAULTS = (
    "lru_victim_off_by_one",
    "dropped_trivial_mask",
    "wrong_set_index_mask",
    "stale_tag_on_abort",
)

_active_fault: Optional[str] = None


def scalar_mode() -> bool:
    """True when the selected execution backend is ``scalar``.

    Compatibility shim over :func:`repro.core.backend.selected_name`
    (which also honours the legacy ``REPRO_SCALAR`` toggle)."""
    from . import backend

    return backend.scalar_mode()


def set_scalar_mode(enabled: bool) -> None:
    """Deprecated alias for :func:`repro.core.backend.set_backend`:
    force the ``scalar`` backend (True) or restore the default
    ``batched`` backend (False); either way the choice is mirrored
    into ``REPRO_BACKEND`` so worker pools inherit it."""
    from . import backend

    backend.set_scalar_mode(enabled)


def as_batch(events) -> Optional[ColumnBatch]:
    """The columnar view of ``events`` if one is available.

    :class:`~repro.isa.trace.Trace` converts (and caches) on demand;
    a :class:`ColumnBatch` is returned as-is; plain event sequences
    return None (callers fall back to the scalar path)."""
    if isinstance(events, ColumnBatch):
        return events
    columns = getattr(events, "columns", None)
    if callable(columns):
        return columns()
    return None


def values_match(computed, traced, rel: float = 1e-12) -> bool:
    """Validation comparison: exact, both-NaN, or within ``rel``."""
    if computed == traced:
        return True
    try:
        if computed != computed and traced != traced:  # both NaN
            return True
        return abs(computed - traced) <= rel * max(abs(computed), abs(traced))
    except (TypeError, OverflowError):
        return False


@dataclass
class KernelReport:
    """What one kernel pass over a trace (or slice) produced.

    Front-ends adapt this into their own report types: ``counts`` is
    both the Shade frequency breakdown and the cycle model's per-opcode
    instruction counts; cycle fields are zero when no machine model was
    supplied (pure statistics collection)."""

    instructions: int = 0
    counts: Dict[Opcode, int] = field(default_factory=dict)
    mismatches: int = 0
    base_cycles: int = 0
    memo_cycles: int = 0
    cycles_by_opcode: Dict[Opcode, int] = field(default_factory=dict)
    #: Region-speculation accounting, attached by the ``speculative``
    #: backend (a :class:`repro.core.speculate.SpeculationStats`); None
    #: from every other probe path.
    speculation: Optional[object] = None


# -- single-event adapters --------------------------------------------------


def probe_one(unit, a, b=0.0):
    """Scalar probe of one unit (= ``unit.execute``).

    Exists so models that need per-event outcomes (the hazard-aware
    pipeline resolves stalls event by event) still route their probes
    through the kernel module."""
    return unit.execute(a, b)


def table_probe_batch(
    table,
    a_values: Sequence,
    b_values: Sequence,
    compute: Callable,
) -> Tuple[List, List[bool]]:
    """Batched :meth:`~repro.core.memo_table.BaseMemoTable.access`.

    Probes every operand pair in order, computing and inserting on each
    miss; returns ``(values, hits)`` lists.  Statistics accumulate on
    the table exactly as the scalar protocol would."""
    values = []
    hits = []
    access = table.access
    for a, b in zip(a_values, b_values):
        value, hit = access(a, b, compute)
        values.append(value)
        hits.append(hit)
    return values, hits


# -- the probe kernel -------------------------------------------------------


def _trivial_mask(operation: Operation, a, b):
    """Vectorized trivial-operand detector (matches repro.core.trivial:
    value comparisons, so -0.0 is zero and NaN is never trivial)."""
    if operation is Operation.FP_MUL or operation is Operation.INT_MUL:
        return (a == 0) | (b == 0) | (a == 1) | (b == 1) | (a == -1) | (b == -1)
    if operation is Operation.FP_DIV or operation is Operation.INT_DIV:
        return (b == 1) | (b == -1) | ((a == 0) & (b != 0))
    if operation is Operation.FP_SQRT:
        return (a == 0) | (a == 1)
    if operation is Operation.FP_RECIP:
        return (a == 1) | (a == -1)
    if operation is Operation.FP_LOG:
        return a == 1
    if operation is Operation.FP_SIN or operation is Operation.FP_COS:
        return a == 0
    return np.zeros(len(a), dtype=bool)  # pragma: no cover - exhaustive


def _set_indices(config, np_a, np_b, mask: Optional[int] = None):
    """Vectorized table set index for each operand pair.

    The single source of truth for the set-mapping formula: the probe
    fast path and any analysis layer that models table placement both
    call this, so they can never drift apart.  INT operands xor their
    values; FLOAT operands xor the top bits of their mantissas (the
    exponent is deliberately excluded -- see the table design notes).
    ``mask`` overrides ``config.n_sets - 1`` (the fault-injection seam
    narrows it to model a set-indexing bug).
    """
    if mask is None:
        mask = config.n_sets - 1
    if config.operand_kind is OperandKind.INT:
        return np.bitwise_and(np.bitwise_xor(np_a, np_b), mask)
    shift = np.uint64(52 - mask.bit_length())
    mant_a = np.bitwise_and(np_a.view(np.uint64), np.uint64(_MANT_MASK))
    mant_b = np.bitwise_and(np_b.view(np.uint64), np.uint64(_MANT_MASK))
    return np.bitwise_and(
        np.bitwise_xor(mant_a >> shift, mant_b >> shift),
        np.uint64(mask),
    )


def probe_batch(
    unit,
    a_values: Sequence,
    b_values: Sequence,
    results: Optional[Sequence] = None,
    validate: bool = False,
    _np_a=None,
    _np_b=None,
    _idx=None,
) -> Tuple[int, int, int]:
    """Present a same-operation operand batch to one memoized unit.

    Returns ``(base_cycles, memo_cycles, mismatches)``.  All unit and
    table statistics land exactly where ``unit.execute`` would put them.
    The vectorized fast path engages for the common configuration
    (EXCLUDE trivial policy, full-value tags, stock table types,
    type-homogeneous operands); anything else -- validation runs,
    mantissa tags, CACHE_ALL/INTEGRATED policies, custom tables, mixed
    int/float partitions -- takes the generic tier, which loops
    ``unit.execute`` and is therefore correct by construction.

    With metrics enabled (:func:`repro.obs.enabled`), each partition is
    additionally timed as a ``kernel.partition.<OP>`` span and its
    probe/insert/evict counter deltas stream into the registry --
    one snapshot per *batch*, never per event, and nothing at all when
    the switch is off.
    """
    if not obs.enabled():
        return _probe_batch(
            unit, a_values, b_values, results, validate, _np_a, _np_b
        )
    return instrument_partition(
        unit,
        lambda: _probe_batch(
            unit, a_values, b_values, results, validate, _np_a, _np_b
        ),
    )


def instrument_partition(unit, thunk):
    """Time ``thunk()`` as a ``kernel.partition.<OP>`` span and stream
    the unit's counter deltas into the metrics registry.  Shared by
    every backend's partition probe (callers check
    :func:`repro.obs.enabled` first)."""
    stats = unit.stats
    before = stats.counters()
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    out = thunk()
    reg = obs.registry()
    name = unit.operation.name
    reg.record_span(
        f"kernel.partition.{name}",
        time.perf_counter() - wall0,
        time.process_time() - cpu0,
    )
    reg.add_counters(
        f"kernel.{name}",
        {key: value - before.get(key, 0)
         for key, value in stats.counters().items()},
    )
    return out


def _probe_batch(
    unit,
    a_values: Sequence,
    b_values: Sequence,
    results: Optional[Sequence] = None,
    validate: bool = False,
    _np_a=None,
    _np_b=None,
    _idx=None,
) -> Tuple[int, int, int]:
    """The uninstrumented :func:`probe_batch` body (tier dispatch)."""
    n = len(a_values)
    if not n:
        return 0, 0, 0
    table = unit.table
    table_type = type(table)
    if (
        not validate
        and unit.trivial_policy is TrivialPolicy.EXCLUDE
        and (table_type is MemoTable or table_type is InfiniteMemoTable)
        and table.config.tag_mode is TagMode.FULL
    ):
        int_kind = table.config.operand_kind is OperandKind.INT
        if _np_a is None:
            _np_a, _np_b = _coerce_operands(a_values, b_values, int_kind)
        if _np_a is not None and int_kind == (_np_a.dtype.kind == "i"):
            return _probe_fast(unit, table, a_values, b_values, _np_a, _np_b)
    execute = unit.execute
    base = memo = mismatches = 0
    if validate and results is not None:
        for a, b, traced in zip(a_values, b_values, results):
            outcome = execute(a, b)
            base += outcome.base_cycles
            memo += outcome.cycles
            if not values_match(outcome.value, traced):
                mismatches += 1
    else:
        for a, b in zip(a_values, b_values):
            outcome = execute(a, b)
            base += outcome.base_cycles
            memo += outcome.cycles
    return base, memo, mismatches


def _coerce_operands(a_values, b_values, int_kind):
    """numpy operand arrays when the batch is type-homogeneous and in
    range, else ``(None, None)`` (the generic tier handles the rest).
    Exact type checks: bools must not alias ints, and int-typed floats
    must not be silently truncated."""
    want = int if int_kind else float
    if not (
        all(type(v) is want for v in a_values)
        and all(type(v) is want for v in b_values)
    ):
        return None, None
    dtype = np.int64 if int_kind else np.float64
    try:
        return (
            np.asarray(a_values, dtype=dtype),
            np.asarray(b_values, dtype=dtype),
        )
    except (OverflowError, ValueError):
        return None, None


def _probe_fast(unit, table, a_values, b_values, np_a, np_b):
    """The vectorized inner loop (EXCLUDE policy, full tags).

    Replicates the scalar semantics counter for counter: the table clock
    advances once per lookup and once per insert, hit recency and
    replacement decisions are identical, and a miss inserts a fresh
    entry (the exact tag was just probed absent, and reversed
    commutative hits never reach insert)."""
    operation = unit.operation
    config = table.config
    fault = _active_fault
    trivial_arr = _trivial_mask(operation, np_a, np_b)
    if fault == "dropped_trivial_mask":
        trivial_arr = np.zeros(len(np_a), dtype=bool)
    n_trivial = int(trivial_arr.sum())
    int_kind = config.operand_kind is OperandKind.INT
    if int_kind:
        tags_a, tags_b = np_a.tolist(), np_b.tolist()
    else:
        tags_a = np_a.view(np.uint64).tolist()
        tags_b = np_b.view(np.uint64).tolist()
    tag_pairs = list(zip(tags_a, tags_b))
    a_list = a_values if isinstance(a_values, list) else list(a_values)
    b_list = b_values if isinstance(b_values, list) else list(b_values)
    latency = unit.latency
    hit_latency = unit.hit_latency
    trivial_cycles = min(unit.trivial_latency, latency)
    commutative = config.commutative
    compute_op = compute_function(operation)
    n = len(a_list)
    # Trivial events only count cycles, so the probe loop walks just the
    # non-trivial positions (order within the opcode is preserved).
    if n_trivial:
        iter_idx = np.nonzero(~trivial_arr)[0].tolist()
    else:
        iter_idx = range(n)
    lookups = hits = commutative_hits = insertions = evictions = 0

    if type(table) is MemoTable:
        mask = config.n_sets - 1
        if fault == "wrong_set_index_mask":
            mask >>= 1
        index_list = _set_indices(config, np_a, np_b, mask=mask).tolist()
        sets_ = table._sets
        associativity = config.associativity
        policy = table._policy
        # LRU is the paper's (and default) policy; its argmin-by-recency
        # choice is inlined because the dispatch + list building around
        # ``policy.victim`` dominates miss-heavy traces.
        inline_lru = type(policy) is LRUPolicy
        victim_of = policy.victim
        clock = table._clock
        stale_tag = fault == "stale_tag_on_abort"
        prev_tag = None
        for i in iter_idx:
            clock += 1
            lookups += 1
            tag = tag_pairs[i]
            ways = sets_[index_list[i]]
            entry = None
            for way in ways:
                if way.tag == tag:
                    entry = way
                    break
            reversed_match = False
            if entry is None and commutative:
                swapped = (tag[1], tag[0])
                for way in ways:
                    if way.tag == swapped:
                        entry = way
                        reversed_match = True
                        break
            if entry is not None:
                entry.last_used = clock
                hits += 1
                if reversed_match:
                    commutative_hits += 1
                if stale_tag:
                    prev_tag = tag
                continue
            a, b = a_list[i], b_list[i]
            value = compute_op(a, b)
            clock += 1
            insertions += 1
            insert_tag = tag
            if stale_tag and prev_tag is not None:
                insert_tag = prev_tag
            entry = _Entry(insert_tag, value, (a, b), clock)
            if len(ways) < associativity:
                ways.append(entry)
            else:
                if inline_lru:
                    victim = 0
                    oldest = ways[0].last_used
                    for way_i in range(1, associativity):
                        used = ways[way_i].last_used
                        if used < oldest:
                            oldest = used
                            victim = way_i
                    if fault == "lru_victim_off_by_one":
                        victim = (victim + 1) % associativity
                else:
                    victim = victim_of(
                        [w.last_used for w in ways],
                        [w.inserted for w in ways],
                    )
                ways[victim] = entry
                evictions += 1
            if stale_tag:
                prev_tag = tag
        table._clock = clock
    else:  # InfiniteMemoTable
        entries = table._entries
        get = entries.get
        for i in iter_idx:
            lookups += 1
            tag = tag_pairs[i]
            found = get(tag)
            if found is None and commutative:
                found = get((tag[1], tag[0]))
                if found is not None:
                    commutative_hits += 1
            if found is not None:
                hits += 1
                continue
            a, b = a_list[i], b_list[i]
            value = compute_op(a, b)
            insertions += 1
            entries[tag] = (value, (a, b))

    # Cycle accounting in bulk: hits cost ``latency`` on the base
    # machine and ``hit_latency`` on the memoized one; misses cost
    # ``latency`` on both; trivial operations cost ``trivial_cycles``
    # on both (EXCLUDE short-circuits the table entirely).
    trivial_total = n_trivial * trivial_cycles
    base = trivial_total + lookups * latency
    memo = trivial_total + hits * hit_latency + (lookups - hits) * latency

    table_stats = table.stats
    table_stats.lookups += lookups
    table_stats.hits += hits
    table_stats.commutative_hits += commutative_hits
    table_stats.insertions += insertions
    table_stats.evictions += evictions
    unit_stats = unit.stats
    unit_stats.operations += n
    unit_stats.trivial += n_trivial
    unit_stats.cycles_base += base
    unit_stats.cycles_memo += memo
    return base, memo, 0


# -- whole-trace execution --------------------------------------------------


def run_events(
    events,
    units: Optional[Dict[Operation, object]],
    *,
    machine=None,
    hierarchy=None,
    fp_add_latency: int = 3,
    validate: bool = False,
    scalar: bool = False,
    backend: Optional[str] = None,
    start: int = 0,
    stop: Optional[int] = None,
) -> KernelReport:
    """Run a trace (or an index slice of one) through the kernel.

    With ``machine`` (a :class:`~repro.arch.latency.ProcessorModel`)
    the pass also charges cycles: uncovered memoizable operations cost
    the machine latency, loads/stores go through ``hierarchy``, FADD
    costs ``fp_add_latency`` and everything else one cycle -- the
    section 3.3 accounting.  Without it, only statistics accumulate
    (the Shade-style run).

    Execution strategy is delegated to the backend registry
    (:func:`repro.core.backend.dispatch`): ``backend=`` pins a named
    backend, ``scalar=True`` is the legacy spelling of
    ``backend="scalar"``, and with neither the process-wide selection
    (``REPRO_BACKEND`` / ``--backend``) applies.
    """
    from . import backend as backend_registry

    if backend is None and scalar:
        backend = "scalar"
    return backend_registry.dispatch(
        events, units,
        backend=backend,
        machine=machine, hierarchy=hierarchy,
        fp_add_latency=fp_add_latency, validate=validate,
        start=start, stop=stop,
    )


def run_events_scalar(
    events: Iterable,
    units: Optional[Dict[Operation, object]],
    *,
    machine=None,
    hierarchy=None,
    fp_add_latency: int = 3,
    validate: bool = False,
) -> KernelReport:
    """The scalar reference loop (one ``unit.execute`` per event).

    This is the consolidation of the per-record loops the simulator
    front-ends used to carry; it stays as the ground truth the batched
    path is tested against, and as the fallback for plain event
    iterables."""
    counts: Dict[Opcode, int] = {}
    cycles_by_opcode: Dict[Opcode, int] = {}
    instructions = 0
    mismatches = 0
    base_total = memo_total = 0
    cycle_mode = machine is not None
    for event in events:
        instructions += 1
        opcode = event.opcode
        counts[opcode] = counts.get(opcode, 0) + 1
        operation = opcode.operation  # cached on the enum member
        if operation is not None:
            unit = units.get(operation) if units else None
            if unit is not None:
                outcome = unit.execute(event.a, event.b)
                if validate and not values_match(outcome.value, event.result):
                    mismatches += 1
                if not cycle_mode:
                    continue
                base = outcome.base_cycles
                memo = outcome.cycles
            elif cycle_mode:
                base = memo = machine.latency(operation)
            else:
                continue
        elif cycle_mode:
            if opcode.is_memory:
                address = event.address if event.address is not None else 0
                base = memo = (
                    hierarchy.access(address) if hierarchy is not None else 1
                )
            elif opcode is Opcode.FADD:
                base = memo = fp_add_latency
            else:
                base = memo = 1  # IALU, BRANCH, NOP
        else:
            continue
        base_total += base
        memo_total += memo
        cycles_by_opcode[opcode] = cycles_by_opcode.get(opcode, 0) + base
    return KernelReport(
        instructions=instructions,
        counts=counts,
        mismatches=mismatches,
        base_cycles=base_total,
        memo_cycles=memo_total,
        cycles_by_opcode=cycles_by_opcode,
    )


def _decode_partition(batch, views, idx, want_results):
    """Operand value lists (and numpy arrays when type-homogeneous)
    for the events at ``idx``."""
    flags = views.flags[idx]
    if batch.wide and bool(np.bitwise_and(flags, _F_WIDE).any()):
        triples = [batch.operand_triple(i) for i in idx.tolist()]
        a_values = [t[0] for t in triples]
        b_values = [t[1] for t in triples]
        results = [t[2] for t in triples] if want_results else None
        return a_values, b_values, results, None, None
    int_flags = np.bitwise_and(flags, _F_INT)
    if not int_flags.any():
        np_a, np_b = views.a_f[idx], views.b_f[idx]
        results = views.r_f[idx].tolist() if want_results else None
    elif int_flags.all():
        np_a, np_b = views.a_i[idx], views.b_i[idx]
        results = views.r_i[idx].tolist() if want_results else None
    else:
        is_int = int_flags.tolist()
        a_f, b_f = views.a_f[idx].tolist(), views.b_f[idx].tolist()
        a_i, b_i = views.a_i[idx].tolist(), views.b_i[idx].tolist()
        a_values = [a_i[k] if is_int[k] else a_f[k] for k in range(len(is_int))]
        b_values = [b_i[k] if is_int[k] else b_f[k] for k in range(len(is_int))]
        results = None
        if want_results:
            r_f, r_i = views.r_f[idx].tolist(), views.r_i[idx].tolist()
            results = [
                r_i[k] if is_int[k] else r_f[k] for k in range(len(is_int))
            ]
        return a_values, b_values, results, None, None
    return np_a.tolist(), np_b.tolist(), results, np_a, np_b


def _run_batch(
    batch: ColumnBatch,
    units,
    machine,
    hierarchy,
    fp_add_latency: int,
    validate: bool,
    start: int,
    stop: int,
    probe: Optional[Callable] = None,
) -> KernelReport:
    """Opcode-partitioned batched execution of ``batch[start:stop]``.

    ``probe`` swaps the per-partition probe implementation (signature
    of :func:`probe_batch`); backends reuse the partitioning, memory
    walk and FADD/IALU accounting while supplying their own probe
    loop."""
    if probe is None:
        probe = probe_batch
    views = batch.views()
    opcode_codes = views.opcode[start:stop]
    count_list = np.bincount(opcode_codes, minlength=len(OPCODE_LIST)).tolist()
    counts = {
        OPCODE_LIST[code]: count
        for code, count in enumerate(count_list)
        if count
    }
    cycle_mode = machine is not None
    base_total = memo_total = 0
    mismatches = 0
    cycles_by_opcode: Dict[Opcode, int] = {}

    for opcode, count in counts.items():
        operation = opcode.operation
        if operation is None:
            continue
        unit = units.get(operation) if units else None
        if unit is None:
            if cycle_mode:
                lat = machine.latency(operation) * count
                cycles_by_opcode[opcode] = lat
                base_total += lat
                memo_total += lat
            continue
        relative = np.nonzero(opcode_codes == OPCODE_INDEX[opcode])[0]
        idx = relative + start if start else relative
        a_values, b_values, results, np_a, np_b = _decode_partition(
            batch, views, idx, validate
        )
        base, memo, bad = probe(
            unit, a_values, b_values,
            results=results, validate=validate, _np_a=np_a, _np_b=np_b,
            _idx=idx,
        )
        mismatches += bad
        if cycle_mode:
            base_total += base
            memo_total += memo
            cycles_by_opcode[opcode] = base

    if cycle_mode:
        for opcode in (Opcode.IALU, Opcode.BRANCH, Opcode.NOP):
            count = counts.get(opcode, 0)
            if count:
                cycles_by_opcode[opcode] = count
                base_total += count
                memo_total += count
        count = counts.get(Opcode.FADD, 0)
        if count:
            fadd_cycles = count * fp_add_latency
            cycles_by_opcode[Opcode.FADD] = fadd_cycles
            base_total += fadd_cycles
            memo_total += fadd_cycles
        load_count = counts.get(Opcode.LOAD, 0)
        store_count = counts.get(Opcode.STORE, 0)
        if load_count or store_count:
            load_code = OPCODE_INDEX[Opcode.LOAD]
            store_code = OPCODE_INDEX[Opcode.STORE]
            relative = np.nonzero(
                (opcode_codes == load_code) | (opcode_codes == store_code)
            )[0]
            idx = relative + start if start else relative
            if hierarchy is not None:
                # The hierarchy is stateful across BOTH memory opcodes,
                # so these events walk in original interleaved order.
                access = hierarchy.access
                load_cycles = store_cycles = 0
                for code, address in zip(
                    views.opcode[idx].tolist(), views.address[idx].tolist()
                ):
                    if code == load_code:
                        load_cycles += access(address)
                    else:
                        store_cycles += access(address)
            else:
                load_cycles, store_cycles = load_count, store_count
            if load_count:
                cycles_by_opcode[Opcode.LOAD] = load_cycles
            if store_count:
                cycles_by_opcode[Opcode.STORE] = store_cycles
            base_total += load_cycles + store_cycles
            memo_total += load_cycles + store_cycles

    return KernelReport(
        instructions=int(stop - start),
        counts=counts,
        mismatches=mismatches,
        base_cycles=base_total,
        memo_cycles=memo_total,
        cycles_by_opcode=cycles_by_opcode,
    )


# -- infinite-table replay (reuse upper bound) ------------------------------


def replay_infinite(events) -> Tuple[Dict[int, int], int, int]:
    """Replay memoizable events through per-class infinite MEMO-TABLES.

    Returns ``(per-pc execution counts, hits, total memoizable ops)`` --
    the reuse upper bound the static analyzer cross-validates against
    (``repro analyze --check``).  Column-backed traces take a batched
    path; anything else replays through real
    :class:`~repro.core.memo_table.InfiniteMemoTable` objects.
    """
    batch = None if scalar_mode() else as_batch(events)
    if batch is None:
        return _replay_infinite_scalar(events)
    views = batch.views()
    counts: Dict[int, int] = {}
    hits = 0
    total = 0
    count_list = np.bincount(views.opcode, minlength=len(OPCODE_LIST)).tolist()
    from ..arch.ieee754 import float64_to_bits

    for code, count in enumerate(count_list):
        if not count:
            continue
        opcode = OPCODE_LIST[code]
        operation = opcode.operation
        if operation is None:
            continue
        total += count
        idx = np.nonzero(views.opcode == code)[0]
        flags = views.flags[idx]
        pc_mask = np.bitwise_and(flags, _F_PC) != 0
        if pc_mask.any():
            pcs, pc_counts = np.unique(
                views.pc[idx][pc_mask], return_counts=True
            )
            for pc, pc_count in zip(pcs.tolist(), pc_counts.tolist()):
                counts[pc] = counts.get(pc, 0) + pc_count
        a_values, b_values, _, np_a, np_b = _decode_partition(
            batch, views, idx, False
        )
        int_kind = operation.operand_kind is OperandKind.INT
        if np_a is not None and int_kind == (np_a.dtype.kind == "i"):
            if int_kind:
                tags_a, tags_b = a_values, b_values
            else:
                tags_a = np_a.view(np.uint64).tolist()
                tags_b = np_b.view(np.uint64).tolist()
        elif int_kind:
            tags_a = [int(a) for a in a_values]
            tags_b = [int(b) for b in b_values]
        else:
            tags_a = [float64_to_bits(float(a)) for a in a_values]
            tags_b = [float64_to_bits(float(b)) for b in b_values]
        seen = set()
        add = seen.add
        if operation.commutative:
            for ta, tb in zip(tags_a, tags_b):
                if (ta, tb) in seen or (tb, ta) in seen:
                    hits += 1
                else:
                    add((ta, tb))
        else:
            for ta, tb in zip(tags_a, tags_b):
                if (ta, tb) in seen:
                    hits += 1
                else:
                    add((ta, tb))
    return counts, hits, total


def _replay_infinite_scalar(events) -> Tuple[Dict[int, int], int, int]:
    """Reference implementation of :func:`replay_infinite`."""
    tables: Dict[Operation, InfiniteMemoTable] = {}
    counts: Dict[int, int] = {}
    hits = 0
    total = 0
    for event in events:
        operation = event.opcode.operation
        if operation is None:
            continue
        table = tables.get(operation)
        if table is None:
            table = InfiniteMemoTable(
                operand_kind=operation.operand_kind,
                tag_mode=TagMode.FULL,
                commutative=operation.commutative,
            )
            tables[operation] = table
        found = table.lookup(event.a, event.b)
        if found.hit:
            hits += 1
        else:
            table.insert(event.a, event.b, event.result)
        if event.pc is not None:
            counts[event.pc] = counts.get(event.pc, 0) + 1
        total += 1
    return counts, hits, total
