"""Named execution backends behind one probe interface.

The kernel module owns *how* a batch is probed; this module owns
*which* implementation does it.  Every front-end (Shade statistics,
the cycle model, the sampling estimator, the corpus engine, serve
workers) funnels through :func:`dispatch`, which resolves a backend by
name and hands it the batch:

``scalar``
    The event-at-a-time reference loop
    (:func:`repro.core.kernel.run_events_scalar`) -- ground truth,
    roughly 5x slower than ``batched`` on columnar traces.

``batched``
    The opcode-partitioned columnar kernel
    (:func:`repro.core.kernel.probe_batch`) -- the default.

``fused``
    The LUT-fused kernel (:mod:`repro.core.fused`): operand pairs are
    deduplicated up front with ``np.unique`` so tag compare, value
    compute and victim selection all run over small dense integer
    tables instead of per-event tuples (the pLUTo "table as
    precomputed LUT" move).

``speculative``
    Hot-trace speculation (:mod:`repro.core.speculate`): hot pc
    regions detected by a seeded rolling-window hash are trained into
    per-region operand-tag plans and re-executed as single guarded
    bulk probes; any guard failure aborts the region to the fused
    loop with bit-exact state handoff.

Selection precedence (first match wins):

1. an explicit ``backend=`` argument (``--backend NAME`` on the CLIs,
   the ``backend`` field of a serve job spec);
2. a process-wide override installed by :func:`set_backend`;
3. the ``REPRO_BACKEND`` environment variable;
4. the legacy ``REPRO_SCALAR`` toggle (deprecated alias for
   ``REPRO_BACKEND=scalar``);
5. the default, ``batched``.

:func:`set_backend` mirrors the choice into ``REPRO_BACKEND`` so
fork/spawn worker pools inherit it, exactly as ``REPRO_SCALAR`` used
to propagate.  Unknown names raise :class:`UnknownBackendError`;
*registered but unavailable* backends (a compiled backend whose
toolchain is missing, say) degrade to ``batched`` with a one-time
warning instead of crashing -- see :meth:`ExecutionBackend.availability`.

This module is also the sanctioned facade over the kernel: lint rule
REPRO009 forbids importing :mod:`repro.core.kernel` from outside
``repro.core``, so the kernel helpers front-ends legitimately need
(:func:`probe_one`, :func:`values_match`, :func:`replay_infinite`,
the fault-injection seam) are re-exported here.
"""

from __future__ import annotations

import contextlib
import os
import time
import warnings
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from .. import obs
from ..errors import ReproError
from . import kernel
from .kernel import (  # noqa: F401  (facade re-exports; see REPRO009)
    KERNEL_FAULTS,
    KernelReport,
    as_batch,
    probe_one,
    replay_infinite,
    values_match,
)

__all__ = [
    "BackendError",
    "UnknownBackendError",
    "KernelConfig",
    "KernelResult",
    "ExecutionBackend",
    "ScalarBackend",
    "BatchedBackend",
    "register",
    "get",
    "names",
    "describe",
    "selected_name",
    "set_backend",
    "use_backend",
    "resolve",
    "dispatch",
    # kernel facade
    "KERNEL_FAULTS",
    "SPECULATE_FAULTS",
    "KernelReport",
    "as_batch",
    "probe_one",
    "replay_infinite",
    "trivial_mask",
    "set_indices",
    "values_match",
    "active_fault",
    "set_active_fault",
    "scalar_mode",
    "set_scalar_mode",
]

#: Environment variable carrying the selected backend into worker pools.
ENV_VAR = "REPRO_BACKEND"

#: Legacy boolean toggle, kept as a deprecated alias for ``scalar``.
LEGACY_ENV_VAR = "REPRO_SCALAR"

DEFAULT_BACKEND = "batched"

#: Where registered-but-unavailable backends degrade to.
FALLBACK_BACKEND = "batched"

#: Alias: a backend run produces exactly a kernel report.
KernelResult = KernelReport


class BackendError(ReproError):
    """Backend registration or selection failed."""


class UnknownBackendError(BackendError):
    """A backend name that is not in the registry."""


@dataclass(frozen=True)
class KernelConfig:
    """Everything a backend needs besides the batch and the units.

    Mirrors the keyword surface of :func:`repro.core.kernel.run_events`:
    ``machine``/``hierarchy``/``fp_add_latency`` switch on cycle
    accounting, ``validate`` compares delivered values against traced
    results, ``start``/``stop`` select an index slice of the trace.
    """

    machine: Optional[object] = None
    hierarchy: Optional[object] = None
    fp_add_latency: int = 3
    validate: bool = False
    start: int = 0
    stop: Optional[int] = None


class ExecutionBackend:
    """One named way of running a batch through the memo units.

    Subclasses implement :meth:`probe_batch` -- the whole contract --
    and may override :meth:`availability` when they depend on optional
    machinery.  Correctness bar: bit-identical
    :class:`~repro.core.stats.MemoStats`, table contents and delivered
    values to the ``scalar`` reference on any input (the parity suite
    and ``repro verify fuzz`` enforce this for every registered
    backend).
    """

    #: Registry key; also the value ``--backend`` / ``REPRO_BACKEND`` take.
    name: str = ""
    description: str = ""

    def availability(self) -> Optional[str]:
        """None when the backend can run here, else a human-readable
        reason (missing optional dependency, unsupported platform).
        Unavailable backends are resolved to ``batched`` with a
        warning rather than raising."""
        return None

    def probe_batch(self, batch, units, config: KernelConfig) -> KernelResult:
        """Run ``batch[config.start:config.stop]`` through ``units``.

        ``batch`` is anything :func:`repro.core.kernel.as_batch`
        understands (a ColumnBatch, a Trace, or a plain event
        sequence); ``units`` maps
        :class:`~repro.core.operations.Operation` to memoized units.
        Statistics must land on the units/tables exactly as the scalar
        protocol would put them."""
        raise NotImplementedError


class ScalarBackend(ExecutionBackend):
    """The retained event-at-a-time reference loop (``unit.execute``)."""

    name = "scalar"
    description = "event-at-a-time reference loop (ground truth)"

    def probe_batch(self, batch, units, config: KernelConfig) -> KernelResult:
        events = batch
        if config.start or config.stop is not None:
            end = len(events) if config.stop is None else config.stop
            indexed = events
            events = (indexed[i] for i in range(config.start, end))
        return kernel.run_events_scalar(
            events,
            units,
            machine=config.machine,
            hierarchy=config.hierarchy,
            fp_add_latency=config.fp_add_latency,
            validate=config.validate,
        )


class BatchedBackend(ExecutionBackend):
    """The opcode-partitioned columnar kernel (the default)."""

    name = "batched"
    description = "opcode-partitioned numpy batch kernel"

    def probe_batch(self, batch, units, config: KernelConfig) -> KernelResult:
        columns = as_batch(batch)
        if columns is None:
            # Plain event iterables have no columnar view; the scalar
            # loop is the documented degrade (same as before the
            # registry existed).
            return _SCALAR.probe_batch(batch, units, config)
        stop = len(columns) if config.stop is None else config.stop
        return kernel._run_batch(
            columns,
            units,
            config.machine,
            config.hierarchy,
            config.fp_add_latency,
            config.validate,
            config.start,
            stop,
        )


# -- registry ---------------------------------------------------------------

_REGISTRY: Dict[str, ExecutionBackend] = {}
_override: Optional[str] = None
_warned_unavailable = set()


def register(backend: ExecutionBackend, replace: bool = False) -> ExecutionBackend:
    """Add a backend to the registry (``replace=True`` to overwrite)."""
    if not backend.name:
        raise BackendError("execution backend must declare a non-empty name")
    if backend.name in _REGISTRY and not replace:
        raise BackendError(
            f"execution backend {backend.name!r} is already registered"
        )
    _REGISTRY[backend.name] = backend
    return backend


def names() -> Tuple[str, ...]:
    """Registered backend names, in registration order."""
    return tuple(_REGISTRY)


def get(name: str) -> ExecutionBackend:
    """The registered backend called ``name`` (no availability check)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownBackendError(
            f"unknown execution backend {name!r}; registered: "
            + ", ".join(_REGISTRY)
        ) from None


def describe() -> Dict[str, str]:
    """``{name: description}`` for every registered backend."""
    return {name: impl.description for name, impl in _REGISTRY.items()}


def selected_name() -> str:
    """The backend name the precedence chain currently selects.

    This is the *requested* name; :func:`resolve` additionally applies
    the availability fallback."""
    if _override is not None:
        return _override
    env = os.environ.get(ENV_VAR, "").strip()
    if env:
        return env
    if os.environ.get(LEGACY_ENV_VAR, "") not in ("", "0"):
        return ScalarBackend.name
    return DEFAULT_BACKEND


def set_backend(name: Optional[str]) -> None:
    """Force (or, with None, release) a backend process-wide.

    The choice is mirrored into ``REPRO_BACKEND`` so worker processes
    started after this call inherit it -- the same propagation contract
    ``REPRO_SCALAR`` had.  Unknown names raise eagerly."""
    global _override
    if name is None:
        _override = None
        os.environ.pop(ENV_VAR, None)
        return
    get(name)  # validate before installing
    _override = name
    os.environ[ENV_VAR] = name


@contextlib.contextmanager
def use_backend(name: Optional[str]) -> Iterator[None]:
    """Temporarily force a backend (serve jobs scope their spec's
    ``backend`` field with this); restores both the override and the
    environment variable on exit."""
    global _override
    prev_override = _override
    prev_env = os.environ.get(ENV_VAR)
    try:
        if name is not None:
            set_backend(name)
        yield
    finally:
        _override = prev_override
        if prev_env is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = prev_env


def resolve(name: Optional[str] = None) -> ExecutionBackend:
    """The backend to actually run: ``name`` (or the precedence-chain
    selection), degraded to ``batched`` when unavailable."""
    chosen = name if name is not None else selected_name()
    backend = get(chosen)
    reason = backend.availability()
    if reason is not None:
        if chosen not in _warned_unavailable:
            _warned_unavailable.add(chosen)
            warnings.warn(
                f"execution backend {chosen!r} is unavailable ({reason}); "
                f"falling back to {FALLBACK_BACKEND!r}",
                RuntimeWarning,
                stacklevel=2,
            )
        backend = get(FALLBACK_BACKEND)
    return backend


# -- the one entry point front-ends call ------------------------------------


def dispatch(
    events,
    units,
    *,
    backend: Optional[str] = None,
    machine=None,
    hierarchy=None,
    fp_add_latency: int = 3,
    validate: bool = False,
    start: int = 0,
    stop: Optional[int] = None,
) -> KernelResult:
    """Resolve a backend and run ``events`` through it.

    Keyword surface matches :func:`repro.core.kernel.run_events` (which
    is now a thin shim over this).  With metrics enabled, the run is
    attributed to its backend: a ``backend.selected`` gauge keyed by
    name, a ``backend.<name>.dispatches`` counter and a
    ``backend.<name>.run`` span, so ``repro stats`` shows which
    backend served a run.
    """
    impl = resolve(backend)
    config = KernelConfig(
        machine=machine,
        hierarchy=hierarchy,
        fp_add_latency=fp_add_latency,
        validate=validate,
        start=start,
        stop=stop,
    )
    if not obs.enabled():
        return impl.probe_batch(events, units, config)
    reg = obs.registry()
    reg.gauge_set(f"backend.{impl.name}.selected", 1.0)
    reg.counter_add(f"backend.{impl.name}.dispatches")
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    with obs.span("kernel.run"):
        report = impl.probe_batch(events, units, config)
    reg.record_span(
        f"backend.{impl.name}.run",
        time.perf_counter() - wall0,
        time.process_time() - cpu0,
    )
    reg.counter_add("kernel.instructions", report.instructions)
    return report


# -- kernel facade (REPRO009: outside repro.core, import *this* module) -----


def active_fault() -> Optional[str]:
    """The currently injected kernel fault name (None in production)."""
    return kernel._active_fault


def set_active_fault(name: Optional[str]) -> None:
    """Arm (or, with None, disarm) a named kernel fault.  Only
    :func:`repro.verify.faults.inject` should call this."""
    kernel._active_fault = name


def trivial_mask(operation, a, b):
    """Public face of the kernel's vectorized trivial-operand detector.

    Value comparisons, exactly like :mod:`repro.core.trivial`: ``-0.0``
    is zero, ``NaN`` is never trivial.  Analysis layers (sampling,
    verification) use this instead of importing the kernel directly
    (REPRO009)."""
    return kernel._trivial_mask(operation, a, b)


def set_indices(config, a, b):
    """Public face of the kernel's vectorized set-index computation.

    ``config`` is a :class:`~repro.core.config.MemoTableConfig`; ``a``
    and ``b`` are operand arrays of the config's kind (int64 values for
    INT units, float64 values for FLOAT units).  Returns each pair's
    table set index under the production mapping -- the same formula
    the probe fast path uses, so placement models in analysis layers
    (sampling residency screens, conflict studies) can never drift from
    the simulator (REPRO009)."""
    return kernel._set_indices(config, a, b)


def scalar_mode() -> bool:
    """True when the precedence chain selects the scalar reference
    backend (compatibility shim for the old boolean API)."""
    return selected_name() == ScalarBackend.name


def set_scalar_mode(enabled: bool) -> None:
    """Deprecated alias: force the ``scalar`` backend (True) or restore
    the default ``batched`` backend (False)."""
    set_backend(ScalarBackend.name if enabled else DEFAULT_BACKEND)


_SCALAR = register(ScalarBackend())
register(BatchedBackend())

# The fused and speculative backends live in their own modules;
# importing them last keeps the circular edge trivial (they need
# ExecutionBackend, defined above).
from .fused import FusedBackend  # noqa: E402

register(FusedBackend())

from .speculate import (  # noqa: E402,F401  (facade re-export)
    SPECULATE_FAULTS,
    SpeculativeBackend,
)

register(SpeculativeBackend())
