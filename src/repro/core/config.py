"""Configuration objects for MEMO-TABLES.

The paper's basic configuration is a 32-entry table arranged as 8 sets of
4 ways (section 3.2), storing full floating point values, excluding
trivial operations, with LRU-like replacement.  All of those choices are
knobs here, because the evaluation sweeps them (Figures 3 and 4, Tables 9
and 10).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from ..errors import ConfigurationError

__all__ = [
    "OperandKind",
    "TagMode",
    "ReplacementKind",
    "TrivialPolicy",
    "MemoTableConfig",
    "PAPER_BASELINE",
]


class OperandKind(enum.Enum):
    """What kind of operand bits the table indexes and tags."""

    INT = "int"
    FLOAT = "float"


class TagMode(enum.Enum):
    """How much of a floating point operand participates in the tag.

    ``FULL`` stores the whole 64-bit pattern of each operand; ``MANTISSA``
    stores only the 52-bit mantissa fields (Table 10), which raises hit
    ratios slightly at the cost of needing an exponent adder next to the
    table.  Integer tables always tag the full operand values.
    """

    FULL = "full"
    MANTISSA = "mantissa"


class ReplacementKind(enum.Enum):
    """Victim selection policy within a set."""

    LRU = "lru"
    FIFO = "fifo"
    RANDOM = "random"


class TrivialPolicy(enum.Enum):
    """How trivial operations (x*0, x*1, x/1, 0/x) interact with the table.

    Mirrors the three columns of Table 9:

    * ``CACHE_ALL`` -- trivial operations are looked up and inserted like
      any other operation (column "all").
    * ``EXCLUDE`` -- trivial operations bypass the table entirely and are
      not counted in the statistics (column "non"; this is the paper's
      default for every headline number).
    * ``INTEGRATED`` -- a trivial-operation detector sits in front of the
      table; trivial operations are counted as hits but never stored
      (column "intgr").
    """

    CACHE_ALL = "all"
    EXCLUDE = "non-trivial"
    INTEGRATED = "integrated"


@dataclass(frozen=True)
class MemoTableConfig:
    """Geometry and behaviour of one MEMO-TABLE.

    Parameters
    ----------
    entries:
        Total number of entries in the table.  Must be a positive power of
        two (the paper sweeps 8 to 8192).
    associativity:
        Ways per set.  Must divide ``entries``; the resulting number of
        sets must also be a power of two so a bit-sliced XOR index can
        address it.  ``associativity == entries`` yields a fully
        associative table.
    operand_kind:
        Whether operands are indexed as integers (XOR of low bits) or
        floats (XOR of mantissa high bits).
    tag_mode:
        Full-value or mantissa-only tags (floats only).
    commutative:
        When true, lookups compare operands in both orders (used for
        multiplication units, section 2.2).
    replacement:
        Victim selection policy.
    seed:
        Seed used by the RANDOM replacement policy.
    """

    entries: int = 32
    associativity: int = 4
    operand_kind: OperandKind = OperandKind.FLOAT
    tag_mode: TagMode = TagMode.FULL
    commutative: bool = False
    replacement: ReplacementKind = ReplacementKind.LRU
    seed: int = 0

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.entries & (self.entries - 1):
            raise ConfigurationError(
                f"entries must be a positive power of two, got {self.entries}"
            )
        if self.associativity <= 0:
            raise ConfigurationError(
                f"associativity must be positive, got {self.associativity}"
            )
        if self.entries % self.associativity:
            raise ConfigurationError(
                f"associativity {self.associativity} does not divide "
                f"entries {self.entries}"
            )
        sets = self.entries // self.associativity
        if sets & (sets - 1):
            raise ConfigurationError(
                f"number of sets must be a power of two, got {sets}"
            )
        if self.tag_mode is TagMode.MANTISSA and self.operand_kind is OperandKind.INT:
            raise ConfigurationError(
                "mantissa-only tags are meaningful for float tables only"
            )

    @property
    def n_sets(self) -> int:
        """Number of sets addressed by the index hash."""
        return self.entries // self.associativity

    @property
    def index_bits(self) -> int:
        """Number of operand bits consumed by the set index."""
        return (self.n_sets - 1).bit_length()

    @property
    def is_direct_mapped(self) -> bool:
        return self.associativity == 1

    @property
    def is_fully_associative(self) -> bool:
        return self.associativity == self.entries

    def with_entries(self, entries: int) -> "MemoTableConfig":
        """Return a copy with a different total size (used by size sweeps)."""
        return replace(self, entries=entries)

    def with_associativity(self, associativity: int) -> "MemoTableConfig":
        """Return a copy with a different associativity (associativity sweeps)."""
        return replace(self, associativity=associativity)

    def storage_bits(self) -> int:
        """Approximate storage cost in bits (tags + results), per section 2.4.

        A full-value float entry holds two 64-bit operand tags plus one
        64-bit result; a mantissa-only entry holds two 52-bit tags plus a
        64-bit result.  Integer entries hold two 64-bit operands plus a
        64-bit result.
        """
        if self.operand_kind is OperandKind.FLOAT and self.tag_mode is TagMode.MANTISSA:
            tag_bits = 2 * 52
        else:
            tag_bits = 2 * 64
        return self.entries * (tag_bits + 64)


#: The configuration used for every headline result in the paper:
#: 32 entries, 8 sets of 4 ways, full floating point tags.
PAPER_BASELINE = MemoTableConfig(entries=32, associativity=4)
