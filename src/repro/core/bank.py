"""A bank of memoized units, one per operation class.

The simulated system of section 3.1 places MEMO-TABLES next to the
integer multiplier, FP multiplier, and FP divider; a
:class:`MemoTableBank` bundles those three (optionally more, for the
future-work operations) behind one dispatch interface, which is what the
trace-driven simulator talks to.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

from .config import MemoTableConfig, TrivialPolicy
from .memo_table import InfiniteMemoTable
from .operations import Operation
from .stats import UnitStats
from .unit import DEFAULT_LATENCIES, Execution, MemoizedUnit

__all__ = ["MemoTableBank"]

#: The operation classes instrumented in the paper's simulations.
PAPER_OPERATIONS = (Operation.INT_MUL, Operation.FP_MUL, Operation.FP_DIV)


class MemoTableBank:
    """Per-operation memoized units behind a single ``execute`` call."""

    def __init__(self, units: Mapping[Operation, MemoizedUnit]) -> None:
        self.units: Dict[Operation, MemoizedUnit] = dict(units)

    @classmethod
    def paper_baseline(
        cls,
        config: Optional[MemoTableConfig] = None,
        operations: Iterable[Operation] = PAPER_OPERATIONS,
        trivial_policy: TrivialPolicy = TrivialPolicy.EXCLUDE,
        latencies: Optional[Mapping[Operation, int]] = None,
    ) -> "MemoTableBank":
        """Build the paper's simulated system.

        One 32-entry 4-way table per unit by default; ``config`` overrides
        the geometry for every unit (operand kind and commutativity are
        always corrected per operation).
        """
        latencies = dict(latencies or DEFAULT_LATENCIES)
        units = {}
        for op in operations:
            units[op] = MemoizedUnit(
                op,
                config=config,
                latency=latencies.get(op, DEFAULT_LATENCIES[op]),
                trivial_policy=trivial_policy,
            )
        return cls(units)

    @classmethod
    def infinite(
        cls,
        operations: Iterable[Operation] = PAPER_OPERATIONS,
        trivial_policy: TrivialPolicy = TrivialPolicy.EXCLUDE,
    ) -> "MemoTableBank":
        """Build the "infinitely large fully associative" reference system."""
        units = {}
        for op in operations:
            table = InfiniteMemoTable(
                operand_kind=op.operand_kind, commutative=op.commutative
            )
            units[op] = MemoizedUnit(op, table=table, trivial_policy=trivial_policy)
        return cls(units)

    def execute(self, op: Operation, a: float, b: float = 0.0) -> Execution:
        """Dispatch one operation to its unit."""
        return self.units[op].execute(a, b)

    def supports(self, op: Operation) -> bool:
        return op in self.units

    def hit_ratio(self, op: Operation) -> float:
        return self.units[op].hit_ratio

    def stats(self) -> Dict[Operation, UnitStats]:
        return {op: unit.stats for op, unit in self.units.items()}

    def reset_stats(self) -> None:
        for unit in self.units.values():
            unit.reset_stats()

    def flush(self) -> None:
        for unit in self.units.values():
            unit.table.flush()
